//! The TCP front end: accept loop, per-connection state machines, the
//! `/metrics` text endpoint, and graceful drain.
//!
//! ```text
//! accept thread ──▶ conn thread (reader) ──bounded channel──▶ writer thread
//!                        │ decode frame                        │ resolve handle
//!                        └─ Gateway::try_submit_* ─────────────┘ encode frame
//! ```
//!
//! Each connection is a pair of threads: the **reader** decodes frames
//! and submits to the gateway without waiting for results; the
//! **writer** resolves [`GatewayHandle`]s in submission order and writes
//! response frames. The channel between them is bounded at
//! `max_inflight`, so a client that pipelines faster than the engine
//! serves backpressures at the socket instead of growing a queue.
//!
//! Shutdown mirrors the gateway's drop order, outermost layer first:
//! close the listener → stop reads at frame boundaries → resolve every
//! in-flight request (bounded by the drain deadline) → close the
//! submission ring → drain the engine. After [`NetServer::shutdown`]
//! returns, `Gateway::snapshot` is final and the lifecycle conservation
//! laws hold exactly — the e2e CI job scrapes and asserts them.

use crate::metrics::NetMetrics;
use crate::wire::{
    check_frame_len, decode_request, encode_response, InferenceRequest, Request, Response,
    ResponseBody, WireStatus, DEFAULT_MAX_FRAME_BYTES,
};
use dp_gateway::{Admission, Gateway, GatewayError, GatewayHandle, SubmitOptions};
use dp_serve::{JobError, ModelKey};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads and handle waits wake up to check the
/// shutdown flag and the slow-loris clock.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Maps a terminal [`GatewayError`] onto its wire status. Every variant
/// has a distinct code — the client sees exactly the verdict the
/// gateway produced (see the README mapping table).
pub fn wire_status_of_error(e: &GatewayError) -> WireStatus {
    match e {
        GatewayError::Shed => WireStatus::Shed,
        GatewayError::Closed => WireStatus::Closed,
        GatewayError::DeadlineExceeded => WireStatus::DeadlineExceeded,
        GatewayError::Cancelled => WireStatus::Cancelled,
        GatewayError::Degraded => WireStatus::Degraded,
        GatewayError::Job(JobError::Panicked) => WireStatus::Failed,
        GatewayError::Job(JobError::Stalled) => WireStatus::Stalled,
        GatewayError::Job(JobError::Cancelled) => WireStatus::Cancelled,
    }
}

/// Configures and binds a [`NetServer`]. Start from
/// [`NetServer::builder`].
pub struct NetServerBuilder {
    gateway: Arc<Gateway>,
    max_frame_bytes: u32,
    max_connections: usize,
    max_inflight: usize,
    read_timeout: Duration,
    drain_deadline: Duration,
    allow_remote_shutdown: bool,
}

impl NetServerBuilder {
    /// Ceiling on a single frame's payload; oversized length prefixes
    /// are rejected before any buffer is allocated. Default 4 MiB.
    pub fn max_frame_bytes(mut self, bytes: u32) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Connection cap; further connections get [`WireStatus::Busy`] and
    /// are closed. Default 64.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n.max(1);
        self
    }

    /// Per-connection pipelining bound: how many submitted-but-unwritten
    /// responses a connection may have before its reads backpressure.
    /// Default 16.
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n.max(1);
        self
    }

    /// Slow-loris guard: a frame whose first byte has arrived must
    /// complete within this window or the connection is closed with a
    /// protocol error. Idle connections (no partial frame) never time
    /// out. Default 2 s.
    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// Budget for resolving in-flight requests during shutdown; past it,
    /// unresolved requests are cancelled and answered
    /// [`WireStatus::Closed`]. Default 10 s.
    pub fn drain_deadline(mut self, t: Duration) -> Self {
        self.drain_deadline = t;
        self
    }

    /// Honour the shutdown opcode from clients (off by default — a
    /// production listener should not let any peer drain it).
    pub fn allow_remote_shutdown(mut self, allow: bool) -> Self {
        self.allow_remote_shutdown = allow;
        self
    }

    /// Binds the listener and starts the accept thread. Use port 0 to
    /// let the OS pick ([`NetServer::local_addr`] reports the result).
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            gateway: self.gateway,
            metrics: NetMetrics::default(),
            // clock-ok: construction-time anchor for the /statusz uptime
            // line; never compared against serving-path stamps.
            started: Instant::now(),
            max_frame_bytes: self.max_frame_bytes,
            max_connections: self.max_connections,
            max_inflight: self.max_inflight,
            read_timeout: self.read_timeout,
            drain_deadline: self.drain_deadline,
            allow_remote_shutdown: self.allow_remote_shutdown,
            shutdown: AtomicBool::new(false),
            shutdown_at: Mutex::new(None),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            live_conns: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dp-net-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept thread") // panic-ok: thread spawn fails only on OS resource exhaustion at bind time
        };
        Ok(NetServer {
            shared,
            local_addr,
            accept: Mutex::new(Some(accept)),
        })
    }
}

struct Shared {
    gateway: Arc<Gateway>,
    metrics: NetMetrics,
    /// Bind time, for the `/statusz` uptime line.
    started: Instant,
    max_frame_bytes: u32,
    max_connections: usize,
    max_inflight: usize,
    read_timeout: Duration,
    drain_deadline: Duration,
    allow_remote_shutdown: bool,
    shutdown: AtomicBool,
    /// When the drain began; writers measure their budget from this.
    shutdown_at: Mutex<Option<Instant>>,
    /// Set by a remote shutdown opcode (or a local shutdown), watched by
    /// [`NetServer::wait_for_shutdown_request`].
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    live_conns: AtomicUsize,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        // Acquire (audited, was SeqCst): pairs with the Release store in
        // `drain`. Nothing is published through the flag (the drain
        // instant travels via `shutdown_at`'s mutex), but Acquire/Release
        // keeps the conventional flag idiom without SeqCst's total order,
        // which no site here compares against another atomic to need.
        self.shutdown.load(Ordering::Acquire)
    }

    fn drain_expired(&self) -> bool {
        // panic-ok: only poisoned if a drain path panicked mid-store;
        // the critical section is a plain Option write that cannot panic.
        match *self.shutdown_at.lock().expect("shutdown_at lock") {
            Some(t0) => t0.elapsed() >= self.drain_deadline,
            None => false,
        }
    }

    fn signal_shutdown_requested(&self) {
        // panic-ok: critical sections on this flag are single bool writes
        // that cannot panic; poisoning implies a torn unwinding already.
        let mut req = self.shutdown_requested.lock().expect("shutdown flag lock");
        *req = true;
        self.shutdown_cv.notify_all();
    }

    fn render_metrics(&self) -> String {
        let mut s = self.gateway.snapshot().to_prometheus();
        s.push_str(&self.metrics.to_prometheus());
        s
    }

    /// The `/statusz` body: uptime, build info, drain/degraded state,
    /// connection and queue occupancy, per-worker busy/idle, the
    /// queue-depth reservoir and recorder totals — the one-page "is this
    /// process healthy and why" view.
    fn render_statusz(&self) -> String {
        use std::fmt::Write as _;
        let gw = &self.gateway;
        let mut s = String::with_capacity(1024);
        let _ = writeln!(s, "dp_net statusz");
        let _ = writeln!(s, "version: {}", env!("CARGO_PKG_VERSION"));
        let _ = writeln!(s, "uptime_s: {}", self.started.elapsed().as_secs());
        let _ = writeln!(s, "draining: {}", self.shutting_down());
        let _ = writeln!(s, "degraded: {}", gw.is_degraded());
        let _ = writeln!(
            s,
            "connections: live {} / max {}",
            // relaxed-ok: debug occupancy read; see accept_loop's cap check.
            self.live_conns.load(Ordering::Relaxed),
            self.max_connections
        );
        let _ = writeln!(
            s,
            "queue: depth {} / capacity {}",
            gw.queue_depth(),
            gw.queue_capacity()
        );
        let engine = gw.engine();
        let stats = engine.stats();
        let _ = writeln!(
            s,
            "engine: workers {} jobs_run {} panics {} stalled {} respawned {}",
            stats.workers, stats.jobs_run, stats.panics, stats.stalled, stats.respawned
        );
        for (i, busy) in engine.worker_busy_ms().iter().enumerate() {
            match busy {
                0 => {
                    let _ = writeln!(s, "worker[{i}]: idle");
                }
                ms => {
                    let _ = writeln!(s, "worker[{i}]: busy {ms}ms");
                }
            }
        }
        match gw.recorder() {
            Some(rec) => {
                let t = rec.stats();
                let _ = writeln!(
                    s,
                    "trace: begun {} terminals {} published {} slow {} dropped {} dup {}",
                    t.begun,
                    t.terminals_total(),
                    t.published,
                    t.slow_captured,
                    t.dropped_contended,
                    t.dup_terminals
                );
                match rec.queue_depth_summary() {
                    Some(d) => {
                        let _ = writeln!(
                            s,
                            "queue_depth_reservoir: min {} mean {:.1} max {} (n={})",
                            d.min, d.mean, d.max, d.count
                        );
                    }
                    None => {
                        let _ = writeln!(s, "queue_depth_reservoir: empty");
                    }
                }
            }
            None => {
                let _ = writeln!(s, "trace: disabled");
            }
        }
        s
    }
}

/// A bound TCP front end over a shared [`Gateway`].
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl NetServer {
    /// Starts configuring a server over `gateway`.
    pub fn builder(gateway: Arc<Gateway>) -> NetServerBuilder {
        NetServerBuilder {
            gateway,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_connections: 64,
            max_inflight: 16,
            read_timeout: Duration::from_secs(2),
            drain_deadline: Duration::from_secs(10),
            allow_remote_shutdown: false,
        }
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The front end's own counters (the gateway keeps its own).
    pub fn metrics(&self) -> &NetMetrics {
        &self.shared.metrics
    }

    /// Gateway + net counters as one Prometheus text exposition — the
    /// same bytes `GET /metrics` serves.
    pub fn render_metrics(&self) -> String {
        self.shared.render_metrics()
    }

    /// Whether a shutdown has been requested (remotely or locally).
    pub fn shutdown_requested(&self) -> bool {
        *self
            .shared
            .shutdown_requested
            .lock()
            .expect("shutdown flag lock") // panic-ok: see `Shared::signal_shutdown_requested`
    }

    /// Blocks until a shutdown request arrives (remote opcode or a local
    /// [`NetServer::shutdown`]). The caller then performs the actual
    /// drain — typically `server.shutdown()`.
    pub fn wait_for_shutdown_request(&self) {
        let mut req = self
            .shared
            .shutdown_requested
            .lock()
            .expect("shutdown flag lock"); // panic-ok: see `Shared::signal_shutdown_requested`
        while !*req {
            req = self
                .shared
                .shutdown_cv
                .wait(req)
                .expect("shutdown condvar wait"); // panic-ok: see `Shared::signal_shutdown_requested`
        }
    }

    /// Graceful drain: stop accepting, stop reading at frame boundaries,
    /// resolve every in-flight request (bounded by the drain deadline),
    /// then close the gateway (ring, then engine). After this returns,
    /// [`Gateway::snapshot`] is final and conserved — and
    /// [`NetServer::render_metrics`] renders the settled totals, which
    /// is what the e2e CI job asserts conservation over. Idempotent;
    /// takes `&self` so callers can still render metrics afterwards.
    pub fn shutdown(&self) {
        self.drain(true);
    }

    fn drain(&self, close_gateway: bool) {
        // Release (audited, was SeqCst): pairs with the Acquire load in
        // `Shared::shutting_down`; see the note there.
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // panic-ok: see `Shared::drain_expired`
            let mut at = self.shared.shutdown_at.lock().expect("shutdown_at lock");
            // clock-ok: real-time drain-budget anchor — shutdown must be
            // bounded in wall time even under a virtualized trace clock.
            at.get_or_insert_with(Instant::now);
        }
        self.shared.signal_shutdown_requested();
        // panic-ok: only poisoned if a concurrent drain panicked in `take`
        if let Some(h) = self.accept.lock().expect("accept handle lock").take() {
            // panic-ok: accept_loop handles every io::Error arm without
            // panicking — a panic there is a front-end bug worth surfacing.
            h.join().expect("accept thread never panics");
        }
        // panic-ok: the conns table's critical sections are Vec ops on
        // non-panicking paths; see `Shared::signal_shutdown_requested`.
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("conns lock"));
        for h in conns {
            // panic-ok: run_connection catches protocol errors as frames,
            // not panics; a panic is a front-end bug worth surfacing.
            h.join().expect("connection thread never panics");
        }
        if close_gateway {
            self.shared.gateway.close();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        // Join our threads, but leave the (shared) gateway running: the
        // owner decides when serving as a whole ends.
        self.drain(false);
    }
}

// ---- accept loop -------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutting_down() {
                    break;
                }
                let _ = stream.set_nodelay(true);
                // relaxed-ok: (audited, was SeqCst) only this accept
                // thread increments, so check-then-add cannot over-admit;
                // the count gates admission and orders no other data.
                if shared.live_conns.load(Ordering::Relaxed) >= shared.max_connections {
                    NetMetrics::inc(&shared.metrics.connections_rejected);
                    reject_busy(stream);
                    continue;
                }
                NetMetrics::inc(&shared.metrics.connections_accepted);
                shared.live_conns.fetch_add(1, Ordering::Relaxed); // relaxed-ok: see the cap check above
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("dp-net-conn".into())
                    .spawn(move || {
                        run_connection(stream, &conn_shared);
                        conn_shared.live_conns.fetch_sub(1, Ordering::Relaxed); // relaxed-ok: see the cap check in accept_loop
                        NetMetrics::inc(&conn_shared.metrics.connections_closed);
                    })
                    .expect("spawn connection thread"); // panic-ok: thread spawn fails only on OS resource exhaustion
                                                        // panic-ok: see `NetServer::drain`
                let mut conns = shared.conns.lock().expect("conns lock");
                conns.retain(|h| !h.is_finished());
                conns.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.shutting_down() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Dropping the listener here closes it: step one of the drain.
}

fn reject_busy(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let frame = encode_response(&Response {
        id: 0,
        body: ResponseBody::Rejected {
            status: WireStatus::Busy,
            detail: "connection cap reached".into(),
        },
    });
    let _ = stream.write_all(&frame);
}

// ---- per-connection reader ---------------------------------------------

/// What the reader hands the writer, in request order.
enum Reply {
    /// An admitted forward request: resolve the handle, then encode.
    Forward(u64, GatewayHandle<Vec<u32>>),
    /// An admitted classify request: resolve the handle, then encode.
    Classify(u64, GatewayHandle<usize>),
    /// Already decided (rejections, shutdown acks): encode and write.
    Ready(Response),
    /// Pre-rendered bytes (the HTTP `/metrics` response).
    Raw(Vec<u8>),
}

enum ReadOutcome {
    Done,
    Eof,
    ShutdownFlag,
    TimedOut,
    Failed,
}

/// Reads exactly `buf.len()` bytes. `frame_clock` starts at the first
/// byte read through it and is shared across the header and payload of
/// one frame: a frame must arrive whole within `read_timeout` of its
/// first byte (the slow-loris guard), while a connection idling
/// *between* frames waits indefinitely (until shutdown).
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    frame_clock: &mut Option<Instant>,
    shared: &Shared,
) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => {
                // clock-ok: slow-loris guard — a wall-clock bound on hostile
                // peers; doubles as the trace timeline's receive stamp.
                frame_clock.get_or_insert_with(Instant::now);
                filled += n;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down() {
                    return ReadOutcome::ShutdownFlag;
                }
                if let Some(t0) = frame_clock {
                    if t0.elapsed() >= shared.read_timeout {
                        return ReadOutcome::TimedOut;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Done
}

fn run_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL_SLICE));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = std::sync::mpsc::sync_channel::<Reply>(shared.max_inflight);
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("dp-net-write".into())
            .spawn(move || write_loop(write_half, rx, &shared))
            .expect("spawn connection writer") // panic-ok: thread spawn fails only on OS resource exhaustion
    };

    read_loop(&mut stream, &tx, shared);

    // Reader done (EOF, protocol error, or shutdown): close the intake
    // side so the writer drains what is in flight and exits.
    drop(tx);
    // panic-ok: write_loop treats every io::Error as connection death
    // without panicking; a panic is a front-end bug worth surfacing.
    writer.join().expect("connection writer never panics");
}

fn read_loop(stream: &mut TcpStream, tx: &SyncSender<Reply>, shared: &Arc<Shared>) {
    loop {
        let mut hdr = [0u8; 4];
        let mut clock = None;
        match read_full(stream, &mut hdr, &mut clock, shared) {
            ReadOutcome::Done => {}
            ReadOutcome::TimedOut => {
                NetMetrics::inc(&shared.metrics.read_timeouts);
                protocol_error(tx, shared, 0, "frame header timed out".into());
                return;
            }
            _ => return,
        }
        if &hdr == b"GET " {
            // An HTTP scrape. Unambiguous: as a length prefix these four
            // bytes would claim a ~0.5 GiB frame, far over any sane cap.
            serve_http(stream, tx, shared, clock);
            return;
        }
        let len = match check_frame_len(u32::from_le_bytes(hdr), shared.max_frame_bytes) {
            Ok(len) => len,
            Err(e) => {
                NetMetrics::inc(&shared.metrics.oversized_frames);
                protocol_error(tx, shared, 0, e.to_string());
                return;
            }
        };
        let mut payload = vec![0u8; len];
        match read_full(stream, &mut payload, &mut clock, shared) {
            ReadOutcome::Done => {}
            ReadOutcome::TimedOut => {
                NetMetrics::inc(&shared.metrics.read_timeouts);
                protocol_error(tx, shared, 0, "frame body timed out".into());
                return;
            }
            ReadOutcome::Eof => {
                // A torn frame is a protocol violation even though the
                // peer is gone; count it so truncation is observable.
                NetMetrics::inc(&shared.metrics.protocol_errors);
                return;
            }
            _ => return,
        }
        NetMetrics::inc(&shared.metrics.frames_read);
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                protocol_error(tx, shared, 0, e.to_string());
                return;
            }
        };
        // The slow-loris clock started at the frame's first byte — that
        // same instant is the trace timeline's "received" stamp.
        if !handle_request(req, tx, shared, clock) {
            return;
        }
    }
}

/// Counts and answers a malformed frame, after which the caller closes
/// the connection (its framing state is no longer trustworthy).
fn protocol_error(tx: &SyncSender<Reply>, shared: &Shared, id: u64, detail: String) {
    NetMetrics::inc(&shared.metrics.protocol_errors);
    let _ = tx.send(Reply::Ready(Response {
        id,
        body: ResponseBody::Rejected {
            status: WireStatus::ProtocolError,
            detail,
        },
    }));
}

/// Submits one decoded request. Returns `false` when the connection
/// should close (writer backpressure channel gone).
fn handle_request(
    req: Request,
    tx: &SyncSender<Reply>,
    shared: &Arc<Shared>,
    received: Option<Instant>,
) -> bool {
    let reply = match req {
        Request::Shutdown { id } => {
            if shared.allow_remote_shutdown {
                NetMetrics::inc(&shared.metrics.shutdown_requests);
                shared.signal_shutdown_requested();
                Reply::Ready(Response {
                    id,
                    body: ResponseBody::ShutdownOk,
                })
            } else {
                Reply::Ready(Response {
                    id,
                    body: ResponseBody::Rejected {
                        status: WireStatus::Unsupported,
                        detail: "remote shutdown is disabled on this listener".into(),
                    },
                })
            }
        }
        Request::Forward(r) => {
            let (id, key, xs, opts) = prepare(&shared.metrics, r, received);
            match shared.gateway.try_submit_forward_opts(&key, xs, opts) {
                Admission::Admitted(h) => Reply::Forward(id, h),
                other => Reply::Ready(rejection(id, &other)),
            }
        }
        Request::Classify(r) => {
            let (id, key, xs, opts) = prepare(&shared.metrics, r, received);
            match shared.gateway.try_submit_classify_opts(&key, xs, opts) {
                Admission::Admitted(h) => Reply::Classify(id, h),
                other => Reply::Ready(rejection(id, &other)),
            }
        }
    };
    // A blocking send is the per-connection inflight bound: when the
    // writer is `max_inflight` responses behind, reads stall right here
    // and TCP backpressures the client.
    tx.send(reply).is_ok()
}

fn prepare(
    metrics: &NetMetrics,
    r: InferenceRequest,
    received: Option<Instant>,
) -> (u64, ModelKey, Vec<Vec<f32>>, SubmitOptions) {
    NetMetrics::inc(&metrics.requests);
    let key = ModelKey::new(r.model, r.format);
    let mut opts = SubmitOptions::new();
    if r.deadline_ms > 0 {
        opts = opts.deadline_in(Duration::from_millis(u64::from(r.deadline_ms)));
    }
    // Wire identity for the flight recorder: `/tracez` timelines carry
    // the client's request id, starting at the frame-receive stamp.
    opts.trace_id = Some(r.id);
    opts.received = received;
    (r.id, key, r.xs, opts)
}

/// Maps an `Admission` rejection onto its wire verdict.
fn rejection<T>(id: u64, adm: &Admission<T>) -> Response {
    let (status, detail) = match adm {
        Admission::Admitted(_) => unreachable!("admitted requests carry handles"),
        Admission::QueueFull => (WireStatus::QueueFull, "submission ring full".into()),
        Admission::RateLimited => (WireStatus::RateLimited, "model rate limit exceeded".into()),
        Admission::ModelUnknown(key) => (WireStatus::ModelUnknown, format!("no model {key}")),
        Admission::Unsupported(what) => (WireStatus::Unsupported, what.clone()),
        Admission::Closed => (WireStatus::Closed, "gateway closed".into()),
        Admission::Degraded => (WireStatus::Degraded, "serving engine degraded".into()),
    };
    Response {
        id,
        body: ResponseBody::Rejected { status, detail },
    }
}

// ---- HTTP /metrics -----------------------------------------------------

fn serve_http(
    stream: &mut TcpStream,
    tx: &SyncSender<Reply>,
    shared: &Arc<Shared>,
    mut clock: Option<Instant>,
) {
    // "GET " is already consumed; read the rest of the head (capped) up
    // to the blank line, on the same slow-loris clock as binary frames.
    let mut head = Vec::with_capacity(256);
    while !head.ends_with(b"\r\n\r\n") && head.len() < 8192 {
        let mut byte = [0u8; 1];
        match read_full(stream, &mut byte, &mut clock, shared) {
            ReadOutcome::Done => head.push(byte[0]),
            _ => return,
        }
    }
    // The first token is the request target including any query string
    // (`/tracez?format=json` arrives as one token).
    let path = head
        .split(|&b| b == b' ')
        .next()
        .map(|p| String::from_utf8_lossy(p).into_owned())
        .unwrap_or_default();
    const TEXT: &str = "text/plain; version=0.0.4";
    let (status_line, content_type, body) = if path.starts_with("/metrics") {
        NetMetrics::inc(&shared.metrics.http_scrapes);
        ("HTTP/1.1 200 OK", TEXT, shared.render_metrics())
    } else if path.starts_with("/tracez") {
        NetMetrics::inc(&shared.metrics.http_scrapes);
        // `?slow` restricts the listing to slow exemplars; composes with
        // `format=json` (`/tracez?format=json&slow`).
        let slow_only = path
            .split_once('?')
            .is_some_and(|(_, q)| q.split('&').any(|p| p == "slow" || p == "slow=1"));
        match shared.gateway.recorder() {
            Some(rec) if path.contains("format=json") => (
                "HTTP/1.1 200 OK",
                "application/json",
                rec.render_json(slow_only),
            ),
            Some(rec) => ("HTTP/1.1 200 OK", TEXT, rec.render_text(slow_only)),
            None => (
                "HTTP/1.1 404 Not Found",
                TEXT,
                "tracing disabled (gateway built with TraceConfig::off)\n".to_string(),
            ),
        }
    } else if path.starts_with("/statusz") {
        NetMetrics::inc(&shared.metrics.http_scrapes);
        ("HTTP/1.1 200 OK", TEXT, shared.render_statusz())
    } else if path.starts_with("/healthz") {
        // Readiness: a draining or degraded process should fall out of
        // its load balancer before requests start bouncing.
        NetMetrics::inc(&shared.metrics.http_scrapes);
        if shared.shutting_down() {
            (
                "HTTP/1.1 503 Service Unavailable",
                TEXT,
                "draining\n".to_string(),
            )
        } else if shared.gateway.is_degraded() {
            (
                "HTTP/1.1 503 Service Unavailable",
                TEXT,
                "degraded\n".to_string(),
            )
        } else {
            ("HTTP/1.1 200 OK", TEXT, "ok\n".to_string())
        }
    } else {
        ("HTTP/1.1 404 Not Found", TEXT, "not found\n".to_string())
    };
    let resp = format!(
        "{status_line}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = tx.send(Reply::Raw(resp.into_bytes()));
}

// ---- per-connection writer ---------------------------------------------

fn write_loop(stream: TcpStream, rx: Receiver<Reply>, shared: &Shared) {
    let mut out = io::BufWriter::new(stream);
    for reply in rx {
        let bytes = match reply {
            Reply::Raw(bytes) => bytes,
            Reply::Ready(resp) => {
                NetMetrics::inc(&shared.metrics.frames_written);
                encode_response(&resp)
            }
            Reply::Forward(id, h) => {
                NetMetrics::inc(&shared.metrics.frames_written);
                encode_response(&Response {
                    id,
                    body: resolve(&h, shared, ResponseBody::ForwardOk),
                })
            }
            Reply::Classify(id, h) => {
                NetMetrics::inc(&shared.metrics.frames_written);
                encode_response(&Response {
                    id,
                    body: resolve(&h, shared, |classes| {
                        ResponseBody::ClassifyOk(classes.into_iter().map(|c| c as u32).collect())
                    }),
                })
            }
        };
        if out.write_all(&bytes).is_err() || out.flush().is_err() {
            // Peer went away mid-write; keep draining replies so every
            // admitted handle still gets resolved (metrics conserve).
            continue;
        }
    }
}

/// Resolves one admitted request. Blocks in shutdown-aware slices: under
/// normal operation the gateway's own deadline/watchdog machinery
/// guarantees resolution; during a drain the remaining budget is the
/// drain deadline, past which the request is cancelled and reported
/// [`WireStatus::Closed`].
fn resolve<T: Clone>(
    h: &GatewayHandle<T>,
    shared: &Shared,
    ok: impl FnOnce(Vec<T>) -> ResponseBody,
) -> ResponseBody {
    loop {
        if let Some(result) = h.wait_timeout(POLL_SLICE) {
            return match result {
                Ok(v) => ok(v),
                Err(e) => ResponseBody::Rejected {
                    status: wire_status_of_error(&e),
                    detail: e.to_string(),
                },
            };
        }
        if shared.shutting_down() && shared.drain_expired() {
            h.cancel();
            // The cancel resolves the handle; report what actually
            // happened to it (usually Cancelled) rather than guessing.
            let result = h.wait();
            return match result {
                Ok(v) => ok(v),
                Err(e) => ResponseBody::Rejected {
                    status: wire_status_of_error(&e),
                    detail: format!("drain deadline passed: {e}"),
                },
            };
        }
    }
}
