//! A small blocking client for the wire protocol — used by the bench,
//! the examples, the e2e CI job, and the hardening tests. One
//! [`NetClient`] owns one connection; `send_*`/`recv` are split so
//! callers can pipeline.

use crate::wire::{
    decode_response, encode_request, InferenceRequest, Request, Response, LEN_PREFIX_BYTES,
};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking client over one TCP connection.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl NetClient {
    /// Connects and enables `TCP_NODELAY` (the protocol is
    /// request/response; Nagle only adds latency).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(NetClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            next_id: 0,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Writes one request frame and flushes. Use with [`NetClient::recv`]
    /// to pipeline several requests on one connection.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.writer.write_all(&encode_request(req))?;
        self.writer.flush()
    }

    /// Reads one response frame (blocking).
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut hdr = [0u8; LEN_PREFIX_BYTES];
        self.reader.read_exact(&mut hdr)?;
        let len = u32::from_le_bytes(hdr) as usize;
        let mut payload = vec![0u8; len];
        self.reader.read_exact(&mut payload)?;
        decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Builds a forward request with a fresh id (0 `deadline_ms` = no
    /// deadline). Send it as-is or mutate first.
    pub fn forward_request(
        &mut self,
        model: &str,
        format: &str,
        deadline_ms: u32,
        xs: Vec<Vec<f32>>,
    ) -> Request {
        Request::Forward(InferenceRequest {
            id: self.fresh_id(),
            model: model.to_string(),
            format: format.to_string(),
            deadline_ms,
            xs,
        })
    }

    /// Builds a classify request with a fresh id.
    pub fn classify_request(
        &mut self,
        model: &str,
        format: &str,
        deadline_ms: u32,
        xs: Vec<Vec<f32>>,
    ) -> Request {
        Request::Classify(InferenceRequest {
            id: self.fresh_id(),
            model: model.to_string(),
            format: format.to_string(),
            deadline_ms,
            xs,
        })
    }

    /// One blocking forward round trip.
    pub fn forward(
        &mut self,
        model: &str,
        format: &str,
        deadline_ms: u32,
        xs: Vec<Vec<f32>>,
    ) -> io::Result<Response> {
        let req = self.forward_request(model, format, deadline_ms, xs);
        self.send(&req)?;
        self.recv()
    }

    /// One blocking classify round trip.
    pub fn classify(
        &mut self,
        model: &str,
        format: &str,
        deadline_ms: u32,
        xs: Vec<Vec<f32>>,
    ) -> io::Result<Response> {
        let req = self.classify_request(model, format, deadline_ms, xs);
        self.send(&req)?;
        self.recv()
    }

    /// Asks the server to begin its graceful drain (the listener must
    /// have been built with `allow_remote_shutdown(true)`).
    pub fn shutdown_server(&mut self) -> io::Result<Response> {
        let req = Request::Shutdown {
            id: self.fresh_id(),
        };
        self.send(&req)?;
        self.recv()
    }
}

/// Scrapes `GET /metrics` over a throwaway HTTP/1.0 connection and
/// returns the exposition body.
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> io::Result<String> {
    match http_get(addr, "/metrics")? {
        (200, body) => Ok(body),
        (status, _) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("scrape failed: HTTP {status}"),
        )),
    }
}

/// One-shot `GET` against the server's debug endpoints (`/metrics`,
/// `/tracez`, `/statusz`, `/healthz`); returns the status code and body.
/// Unlike [`scrape_metrics`] a non-200 is returned, not an error — the
/// health probe's 503 is a meaningful answer.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((head, body)) => {
            let status = head
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse::<u16>().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "malformed status line: {}",
                            head.lines().next().unwrap_or("")
                        ),
                    )
                })?;
            Ok((status, body.to_string()))
        }
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "no HTTP header terminator in scrape response",
        )),
    }
}
