//! Pure encode/decode for the length-prefixed binary wire protocol.
//!
//! Every frame on the wire is a little-endian `u32` payload length
//! followed by exactly that many payload bytes. Decoding never touches a
//! socket: [`decode_request`] and [`decode_response`] work on the payload
//! slice alone, which is what makes the protocol property-testable
//! (encode ∘ decode must be the identity for every frame type) and lets
//! the server validate the length prefix *before* allocating a buffer
//! for it.
//!
//! Request payload layout (all integers little-endian):
//!
//! | field       | bytes | notes                                        |
//! |-------------|-------|----------------------------------------------|
//! | opcode      | 1     | 1 = forward, 2 = classify, 0x5A = shutdown   |
//! | request_id  | 8     | echoed verbatim in the response              |
//! | model name  | 2 + n | u16 length, then UTF-8 bytes                 |
//! | format      | 2 + n | descriptor string, e.g. `posit<8,0>`         |
//! | deadline_ms | 4     | relative deadline; 0 = none                  |
//! | n_samples   | 4     | rows in the feature matrix                   |
//! | n_features  | 2     | columns (uniform across rows)                |
//! | features    | 4·n·f | f32 bits, row-major                          |
//!
//! A shutdown request stops after `request_id`. Response payloads carry a
//! status byte (see [`WireStatus`]), a body-kind byte, the echoed
//! request id, then a kind-specific body.

/// Number of bytes in the frame length prefix.
pub const LEN_PREFIX_BYTES: usize = 4;

/// Default ceiling on a single frame's payload size (4 MiB). Anything
/// larger is rejected from the 4-byte prefix alone, before any buffer
/// for the payload is allocated.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 4 << 20;

/// Opcode for a forward (per-sample output bit patterns) request.
pub const OP_FORWARD: u8 = 1;
/// Opcode for a classify (per-sample argmax index) request.
pub const OP_CLASSIFY: u8 = 2;
/// Opcode asking the server to begin a graceful drain. Distinctive value
/// so a stray zeroed buffer never reads as "shut down".
pub const OP_SHUTDOWN: u8 = 0x5A;

/// Response body kind: no body (shutdown ack).
const KIND_EMPTY: u8 = 0;
/// Response body kind: forward output bits.
const KIND_FORWARD: u8 = 1;
/// Response body kind: classify indices.
const KIND_CLASSIFY: u8 = 2;
/// Response body kind: UTF-8 detail message on a non-OK status.
const KIND_ERROR: u8 = 3;

/// Typed per-request verdict carried in every response frame, mirroring
/// each [`dp_gateway::Admission`] rejection and [`dp_gateway::GatewayError`]
/// plus the transport-level verdicts the gateway never sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireStatus {
    /// The request was admitted and produced a result body.
    Ok = 0,
    /// `Admission::QueueFull` — the submission ring was full.
    QueueFull = 1,
    /// `Admission::RateLimited` — the model's token bucket was empty.
    RateLimited = 2,
    /// `Admission::ModelUnknown` — no such model@format registered.
    ModelUnknown = 3,
    /// `Admission::Unsupported` — the request shape is not servable.
    Unsupported = 4,
    /// `Admission::Closed` / `GatewayError::Closed` — gateway shut down.
    Closed = 5,
    /// `GatewayError::Shed` — an overload policy evicted the request.
    Shed = 6,
    /// `GatewayError::DeadlineExceeded` — the relative deadline passed.
    DeadlineExceeded = 7,
    /// `GatewayError::Cancelled` — cancelled at a chunk boundary.
    Cancelled = 8,
    /// `JobError::Stalled` — the watchdog respawned the worker.
    Stalled = 9,
    /// `JobError::Panicked` — the serving job panicked.
    Failed = 10,
    /// `Admission::Degraded` / `GatewayError::Degraded` — panic budget
    /// tripped; the engine is refusing work until reset.
    Degraded = 11,
    /// The frame itself was malformed (bad opcode, truncated payload,
    /// oversized length prefix…). The connection closes after this.
    ProtocolError = 12,
    /// The server is at its connection cap; retry later.
    Busy = 13,
}

impl WireStatus {
    /// Decodes a status byte; `None` for codes this build doesn't know.
    pub fn from_u8(v: u8) -> Option<Self> {
        use WireStatus::*;
        Some(match v {
            0 => Ok,
            1 => QueueFull,
            2 => RateLimited,
            3 => ModelUnknown,
            4 => Unsupported,
            5 => Closed,
            6 => Shed,
            7 => DeadlineExceeded,
            8 => Cancelled,
            9 => Stalled,
            10 => Failed,
            11 => Degraded,
            12 => ProtocolError,
            13 => Busy,
            _ => return None,
        })
    }

    /// Stable lowercase name, used in logs and the README mapping table.
    pub fn as_str(&self) -> &'static str {
        match self {
            WireStatus::Ok => "ok",
            WireStatus::QueueFull => "queue_full",
            WireStatus::RateLimited => "rate_limited",
            WireStatus::ModelUnknown => "model_unknown",
            WireStatus::Unsupported => "unsupported",
            WireStatus::Closed => "closed",
            WireStatus::Shed => "shed",
            WireStatus::DeadlineExceeded => "deadline_exceeded",
            WireStatus::Cancelled => "cancelled",
            WireStatus::Stalled => "stalled",
            WireStatus::Failed => "failed",
            WireStatus::Degraded => "degraded",
            WireStatus::ProtocolError => "protocol_error",
            WireStatus::Busy => "busy",
        }
    }
}

impl std::fmt::Display for WireStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Quantized forward pass: per-sample output bit patterns.
    Forward(InferenceRequest),
    /// Classification: per-sample argmax class index.
    Classify(InferenceRequest),
    /// Ask the server to begin its graceful drain (if enabled).
    Shutdown {
        /// Echoed back in the acknowledgement.
        id: u64,
    },
}

/// The common body of forward/classify requests.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Logical model name (`iris`).
    pub model: String,
    /// Format descriptor (`posit<8,0>`, `float<8,4,3>`, `fixed<8,6>`).
    pub format: String,
    /// Relative deadline in milliseconds; 0 means none. Mapped onto
    /// `SubmitOptions::deadline_in` at admission.
    pub deadline_ms: u32,
    /// Feature rows; every row must have the same length.
    pub xs: Vec<Vec<f32>>,
}

impl Request {
    /// The request id (echoed in the response frame).
    pub fn id(&self) -> u64 {
        match self {
            Request::Forward(r) | Request::Classify(r) => r.id,
            Request::Shutdown { id } => *id,
        }
    }
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request id this response answers.
    pub id: u64,
    /// Result or typed rejection.
    pub body: ResponseBody,
}

/// The result side of a [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Forward succeeded: one row of output bit patterns per sample.
    ForwardOk(Vec<Vec<u32>>),
    /// Classify succeeded: one class index per sample.
    ClassifyOk(Vec<u32>),
    /// Shutdown acknowledged; the server is draining.
    ShutdownOk,
    /// The request was rejected or failed; `status` is never
    /// [`WireStatus::Ok`] and `detail` is a human-readable reason.
    Rejected {
        /// Typed verdict (see the README mapping table).
        status: WireStatus,
        /// Free-form diagnostic, safe to log.
        detail: String,
    },
}

impl Response {
    /// The status byte this response encodes to.
    pub fn status(&self) -> WireStatus {
        match &self.body {
            ResponseBody::Rejected { status, .. } => *status,
            _ => WireStatus::Ok,
        }
    }
}

/// Why a payload failed to decode. The server answers any of these with
/// [`WireStatus::ProtocolError`] and closes the connection (framing
/// state is no longer trustworthy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeded the configured frame cap.
    Oversized {
        /// Length the prefix claimed.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
    /// The payload ended before the named field.
    Truncated(&'static str),
    /// Bytes remained after the last field of a complete frame.
    TrailingBytes(usize),
    /// Unknown request opcode byte.
    UnknownOpcode(u8),
    /// Unknown response status byte.
    UnknownStatus(u8),
    /// Unknown response body-kind byte, or a kind inconsistent with the
    /// status (e.g. an error body on an OK status).
    UnknownKind(u8),
    /// A name/format/detail field was not valid UTF-8.
    BadUtf8(&'static str),
    /// The declared row/column counts disagree with the payload size.
    SizeMismatch(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Truncated(field) => write!(f, "payload truncated at {field}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::UnknownStatus(s) => write!(f, "unknown status byte {s}"),
            WireError::UnknownKind(k) => write!(f, "unknown or inconsistent body kind {k}"),
            WireError::BadUtf8(field) => write!(f, "{field} is not valid UTF-8"),
            WireError::SizeMismatch(what) => write!(f, "declared sizes disagree: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Validates a frame length prefix against a cap. Called on the raw
/// 4-byte prefix so oversized frames are rejected **before** any payload
/// buffer is allocated.
pub fn check_frame_len(len: u32, max: u32) -> Result<usize, WireError> {
    if len > max {
        Err(WireError::Oversized { len, max })
    } else {
        Ok(len as usize)
    }
}

// ---- little-endian cursor ----------------------------------------------

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated(field));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, WireError> {
        // panic-ok: `take(2, ..)` returned exactly 2 bytes, so the array
        // conversion is infallible (same for u32/u64 below).
        Ok(u16::from_le_bytes(self.take(2, field)?.try_into().unwrap()))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        // panic-ok: see `u16` — `take` returned exactly 4 bytes.
        Ok(u32::from_le_bytes(self.take(4, field)?.try_into().unwrap()))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        // panic-ok: see `u16` — `take` returned exactly 8 bytes.
        Ok(u64::from_le_bytes(self.take(8, field)?.try_into().unwrap()))
    }

    fn str16(&mut self, field: &'static str) -> Result<String, WireError> {
        let n = self.u16(field)? as usize;
        let bytes = self.take(n, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8(field))
    }

    fn done(self) -> Result<(), WireError> {
        let rest = self.buf.len() - self.pos;
        if rest != 0 {
            return Err(WireError::TrailingBytes(rest));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "string field over 64 KiB");
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

// ---- requests ----------------------------------------------------------

/// Encodes a request as a complete frame: length prefix plus payload.
///
/// Panics if the feature rows are ragged or a string field exceeds
/// 64 KiB — both are caller bugs, not wire conditions.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    match req {
        Request::Shutdown { id } => {
            payload.push(OP_SHUTDOWN);
            put_u64(&mut payload, *id);
        }
        Request::Forward(r) | Request::Classify(r) => {
            payload.push(if matches!(req, Request::Forward(_)) {
                OP_FORWARD
            } else {
                OP_CLASSIFY
            });
            put_u64(&mut payload, r.id);
            put_str16(&mut payload, &r.model);
            put_str16(&mut payload, &r.format);
            put_u32(&mut payload, r.deadline_ms);
            let n_features = r.xs.first().map_or(0, Vec::len);
            assert!(
                r.xs.iter().all(|row| row.len() == n_features),
                "ragged feature rows"
            );
            assert!(n_features <= u16::MAX as usize, "over 65535 features");
            put_u32(&mut payload, r.xs.len() as u32);
            put_u16(&mut payload, n_features as u16);
            for row in &r.xs {
                for &v in row {
                    put_u32(&mut payload, v.to_bits());
                }
            }
        }
    }
    frame(payload)
}

/// Decodes a request payload (the bytes after the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cur::new(payload);
    let op = c.u8("opcode")?;
    if op == OP_SHUTDOWN {
        let id = c.u64("request_id")?;
        c.done()?;
        return Ok(Request::Shutdown { id });
    }
    if op != OP_FORWARD && op != OP_CLASSIFY {
        return Err(WireError::UnknownOpcode(op));
    }
    let id = c.u64("request_id")?;
    let model = c.str16("model name")?;
    let format = c.str16("format descriptor")?;
    let deadline_ms = c.u32("deadline_ms")?;
    let n_samples = c.u32("n_samples")? as usize;
    let n_features = c.u16("n_features")? as usize;
    // Cross-check the declared matrix against the actual payload length
    // before reserving anything: a frame that lies about n_samples must
    // not make us allocate for the lie.
    let expect = n_samples
        .checked_mul(n_features)
        .and_then(|cells| cells.checked_mul(4))
        .ok_or(WireError::SizeMismatch("feature matrix overflows"))?;
    if payload.len() - c.pos != expect {
        return Err(WireError::SizeMismatch("feature matrix vs payload length"));
    }
    let mut xs = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let mut row = Vec::with_capacity(n_features);
        for _ in 0..n_features {
            row.push(f32::from_bits(c.u32("feature")?));
        }
        xs.push(row);
    }
    c.done()?;
    let body = InferenceRequest {
        id,
        model,
        format,
        deadline_ms,
        xs,
    };
    Ok(if op == OP_FORWARD {
        Request::Forward(body)
    } else {
        Request::Classify(body)
    })
}

// ---- responses ---------------------------------------------------------

/// Encodes a response as a complete frame: length prefix plus payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(resp.status() as u8);
    match &resp.body {
        ResponseBody::ShutdownOk => {
            payload.push(KIND_EMPTY);
            put_u64(&mut payload, resp.id);
        }
        ResponseBody::ForwardOk(bits) => {
            payload.push(KIND_FORWARD);
            put_u64(&mut payload, resp.id);
            let n_outputs = bits.first().map_or(0, Vec::len);
            assert!(
                bits.iter().all(|row| row.len() == n_outputs),
                "ragged output rows"
            );
            assert!(n_outputs <= u16::MAX as usize, "over 65535 outputs");
            put_u32(&mut payload, bits.len() as u32);
            put_u16(&mut payload, n_outputs as u16);
            for row in bits {
                for &b in row {
                    put_u32(&mut payload, b);
                }
            }
        }
        ResponseBody::ClassifyOk(classes) => {
            payload.push(KIND_CLASSIFY);
            put_u64(&mut payload, resp.id);
            put_u32(&mut payload, classes.len() as u32);
            for &cls in classes {
                put_u32(&mut payload, cls);
            }
        }
        ResponseBody::Rejected { status, detail } => {
            assert!(
                *status != WireStatus::Ok,
                "Rejected body cannot carry WireStatus::Ok"
            );
            payload.push(KIND_ERROR);
            put_u64(&mut payload, resp.id);
            put_str16(&mut payload, detail);
        }
    }
    frame(payload)
}

/// Decodes a response payload (the bytes after the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cur::new(payload);
    let status_byte = c.u8("status")?;
    let status = WireStatus::from_u8(status_byte).ok_or(WireError::UnknownStatus(status_byte))?;
    let kind = c.u8("body kind")?;
    let id = c.u64("request_id")?;
    let body = match (status, kind) {
        (WireStatus::Ok, KIND_EMPTY) => ResponseBody::ShutdownOk,
        (WireStatus::Ok, KIND_FORWARD) => {
            let n_samples = c.u32("n_samples")? as usize;
            let n_outputs = c.u16("n_outputs")? as usize;
            let expect = n_samples
                .checked_mul(n_outputs)
                .and_then(|cells| cells.checked_mul(4))
                .ok_or(WireError::SizeMismatch("output matrix overflows"))?;
            if payload.len() - c.pos != expect {
                return Err(WireError::SizeMismatch("output matrix vs payload length"));
            }
            let mut bits = Vec::with_capacity(n_samples);
            for _ in 0..n_samples {
                let mut row = Vec::with_capacity(n_outputs);
                for _ in 0..n_outputs {
                    row.push(c.u32("output bits")?);
                }
                bits.push(row);
            }
            ResponseBody::ForwardOk(bits)
        }
        (WireStatus::Ok, KIND_CLASSIFY) => {
            let n = c.u32("n_samples")? as usize;
            if payload.len() - c.pos != n * 4 {
                return Err(WireError::SizeMismatch("class list vs payload length"));
            }
            let mut classes = Vec::with_capacity(n);
            for _ in 0..n {
                classes.push(c.u32("class index")?);
            }
            ResponseBody::ClassifyOk(classes)
        }
        (s, KIND_ERROR) if s != WireStatus::Ok => ResponseBody::Rejected {
            status,
            detail: c.str16("detail")?,
        },
        (_, k) => return Err(WireError::UnknownKind(k)),
    };
    c.done()?;
    Ok(Response { id, body })
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(LEN_PREFIX_BYTES + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}
