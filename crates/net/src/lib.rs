//! # dp-net — std-only TCP front end for the Deep Positron gateway
//!
//! The ROADMAP's north star is a *deployable* low-precision inference
//! service; `dp_gateway` got admission, backpressure and metrics right,
//! but only for in-process callers. This crate is the missing last
//! mile: a dependency-free TCP listener (the offline registry has no
//! network crates, and needs none — `std::net` suffices) speaking a
//! length-prefixed binary protocol that drives `Gateway::try_submit_*`
//! directly.
//!
//! ```text
//! client ──frame──▶ reader ──▶ Gateway::try_submit_* ──▶ engine
//!        ◀─frame── writer ◀── GatewayHandle resolution ◀──┘
//! ```
//!
//! * [`wire`] — pure encode/decode for request/response frames: typed
//!   [`WireStatus`] verdicts mirroring every `Admission` and
//!   `GatewayError` variant, a relative `deadline_ms` field mapped onto
//!   `SubmitOptions::deadline_in` at admission, and length-prefix
//!   validation that rejects oversized frames *before* allocating.
//! * [`server`] — accept thread + per-connection reader/writer pairs
//!   with a bounded in-flight channel (pipelining backpressures at the
//!   socket), a `GET /metrics` text endpoint (gateway + `dp_net_*`
//!   counters), slow-loris read timeouts, and graceful drain that
//!   mirrors the gateway's drop order.
//! * [`client`] — a small blocking client (also the e2e/bench driver).
//! * [`metrics`] — `dp_net_*` connection/frame counters that close the
//!   conservation law the e2e CI job asserts over a scrape.

pub mod client;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{http_get, scrape_metrics, NetClient};
pub use metrics::NetMetrics;
pub use server::{wire_status_of_error, NetServer, NetServerBuilder};
pub use wire::{
    InferenceRequest, Request, Response, ResponseBody, WireError, WireStatus,
    DEFAULT_MAX_FRAME_BYTES,
};
