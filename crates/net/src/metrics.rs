//! Connection/frame counters for the TCP front end, exposed next to the
//! gateway's [`dp_gateway::MetricsSnapshot`] on the `/metrics` endpoint.
//!
//! These count what the gateway cannot see: connections, raw frames, and
//! traffic that dies at the transport layer (malformed frames, oversized
//! prefixes, slow-loris timeouts). Together with the gateway counters
//! they close the conservation law the e2e CI job asserts —
//! `dp_net_requests_total` equals `dp_gateway_submitted_total`, and
//! everything a client ever sent is accounted for as a gateway verdict
//! or a `dp_net` protocol error.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters for the network front end. All increments use
/// relaxed ordering: rows are monotone counters, not synchronization.
#[derive(Debug, Default)]
pub struct NetMetrics {
    /// Connections accepted off the listener.
    pub connections_accepted: AtomicU64,
    /// Connections turned away with [`WireStatus::Busy`]
    /// (connection cap reached).
    ///
    /// [`WireStatus::Busy`]: crate::wire::WireStatus::Busy
    pub connections_rejected: AtomicU64,
    /// Accepted connections that have fully closed.
    pub connections_closed: AtomicU64,
    /// Complete binary request frames read.
    pub frames_read: AtomicU64,
    /// Response frames written (including rejections).
    pub frames_written: AtomicU64,
    /// Well-formed forward/classify requests handed to
    /// `Gateway::try_submit_*` — by construction equal to the gateway's
    /// own `submitted` counter when the gateway serves only this front
    /// end.
    pub requests: AtomicU64,
    /// Frames that failed to decode (truncated, unknown opcode, bad
    /// sizes…). Each one also closes its connection.
    pub protocol_errors: AtomicU64,
    /// Length prefixes over the frame cap, rejected before allocation.
    /// Counted under `protocol_errors` too; this row isolates the cause.
    pub oversized_frames: AtomicU64,
    /// Partial frames that outlived the read timeout (slow-loris guard).
    /// Counted under `protocol_errors` too.
    pub read_timeouts: AtomicU64,
    /// HTTP `GET /metrics` scrapes served.
    pub http_scrapes: AtomicU64,
    /// Remote shutdown requests honoured.
    pub shutdown_requests: AtomicU64,
}

impl NetMetrics {
    /// Bumps a counter by one.
    pub(crate) fn inc(counter: &AtomicU64) {
        // relaxed-ok: independent monotone counter; a scrape tolerates
        // cross-counter skew and nothing publishes data through it.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the counters in Prometheus text exposition format with
    /// the `dp_net_` prefix, shaped exactly like
    /// [`dp_gateway::MetricsSnapshot::to_prometheus`] so the two blocks
    /// concatenate into one valid exposition.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let counters: [(&str, &AtomicU64); 11] = [
            ("connections_accepted", &self.connections_accepted),
            ("connections_rejected", &self.connections_rejected),
            ("connections_closed", &self.connections_closed),
            ("frames_read", &self.frames_read),
            ("frames_written", &self.frames_written),
            ("requests", &self.requests),
            ("protocol_errors", &self.protocol_errors),
            ("oversized_frames", &self.oversized_frames),
            ("read_timeouts", &self.read_timeouts),
            ("http_scrapes", &self.http_scrapes),
            ("shutdown_requests", &self.shutdown_requests),
        ];
        for (name, v) in counters {
            let _ = writeln!(s, "# TYPE dp_net_{name}_total counter");
            // relaxed-ok: no memory order makes an 11-counter scrape
            // atomic; each row is individually coherent and that is all
            // the exposition format promises.
            let _ = writeln!(s, "dp_net_{name}_total {}", v.load(Ordering::Relaxed));
        }
        let open = self
            .connections_accepted
            .load(Ordering::Relaxed) // relaxed-ok: see the counter loop above
            .saturating_sub(self.connections_closed.load(Ordering::Relaxed)); // relaxed-ok: see above
        let _ = writeln!(s, "# TYPE dp_net_connections_open gauge");
        let _ = writeln!(s, "dp_net_connections_open {open}");
        s
    }
}
