//! Wire-protocol unit + property tests: encode ∘ decode is the identity
//! for every frame type, and every malformation class decodes to a
//! typed [`WireError`] instead of a panic or a bogus frame.

use dp_net::wire::{
    check_frame_len, decode_request, decode_response, encode_request, encode_response,
    InferenceRequest, Request, Response, ResponseBody, WireError, WireStatus, LEN_PREFIX_BYTES,
};
use proptest::prelude::*;

/// Strips the length prefix off an encoded frame, asserting it matches.
fn payload(frame: &[u8]) -> &[u8] {
    let len = u32::from_le_bytes(frame[..LEN_PREFIX_BYTES].try_into().unwrap()) as usize;
    assert_eq!(frame.len(), LEN_PREFIX_BYTES + len, "bad length prefix");
    &frame[LEN_PREFIX_BYTES..]
}

fn non_ok_statuses() -> Vec<WireStatus> {
    (1..=13).map(|b| WireStatus::from_u8(b).unwrap()).collect()
}

// ---- property tests: round trips ---------------------------------------

prop_compose! {
    fn inference_body()(
        id in any::<u64>(),
        model in prop::collection::vec(97u8..=122, 0..12),
        format in prop::collection::vec(33u8..=126, 0..16),
        deadline_ms in 0u32..100_000,
        xs in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 0..6), 0..8),
        n_features in 0usize..6,
    ) -> InferenceRequest {
        // Rows must be uniform; resize every row to one width.
        let xs: Vec<Vec<f32>> = xs
            .into_iter()
            .map(|mut row| { row.resize(n_features, 0.5); row })
            .collect();
        InferenceRequest {
            id,
            model: String::from_utf8(model).unwrap(),
            format: String::from_utf8(format).unwrap(),
            deadline_ms,
            xs,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn forward_request_round_trips(body in inference_body()) {
        let req = Request::Forward(body);
        let frame = encode_request(&req);
        prop_assert_eq!(decode_request(payload(&frame)).unwrap(), req);
    }

    #[test]
    fn classify_request_round_trips(body in inference_body()) {
        let req = Request::Classify(body);
        let frame = encode_request(&req);
        prop_assert_eq!(decode_request(payload(&frame)).unwrap(), req);
    }

    #[test]
    fn shutdown_request_round_trips(id in any::<u64>()) {
        let req = Request::Shutdown { id };
        let frame = encode_request(&req);
        prop_assert_eq!(decode_request(payload(&frame)).unwrap(), req);
    }

    #[test]
    fn forward_response_round_trips(
        id in any::<u64>(),
        bits in prop::collection::vec(
            prop::collection::vec(any::<u32>(), 0..5), 0..6),
        n_outputs in 0usize..5,
    ) {
        let bits: Vec<Vec<u32>> = bits
            .into_iter()
            .map(|mut row| { row.resize(n_outputs, 7); row })
            .collect();
        let resp = Response { id, body: ResponseBody::ForwardOk(bits) };
        let frame = encode_response(&resp);
        prop_assert_eq!(decode_response(payload(&frame)).unwrap(), resp);
    }

    #[test]
    fn classify_response_round_trips(
        id in any::<u64>(),
        classes in prop::collection::vec(0u32..1000, 0..20),
    ) {
        let resp = Response { id, body: ResponseBody::ClassifyOk(classes) };
        let frame = encode_response(&resp);
        prop_assert_eq!(decode_response(payload(&frame)).unwrap(), resp);
    }

    #[test]
    fn rejection_response_round_trips(
        id in any::<u64>(),
        status_ix in 0usize..13,
        detail in prop::collection::vec(32u8..=126, 0..40),
    ) {
        let resp = Response {
            id,
            body: ResponseBody::Rejected {
                status: non_ok_statuses()[status_ix],
                detail: String::from_utf8(detail).unwrap(),
            },
        };
        let frame = encode_response(&resp);
        prop_assert_eq!(decode_response(payload(&frame)).unwrap(), resp);
    }

    #[test]
    fn truncating_any_request_prefix_yields_typed_error(
        body in inference_body(),
        cut_num in any::<u16>(),
    ) {
        // Any strict prefix of a valid payload must decode to an error,
        // never to a (different) valid frame or a panic.
        let frame = encode_request(&Request::Forward(body));
        let p = payload(&frame);
        let cut = (cut_num as usize) % p.len().max(1);
        prop_assert!(decode_request(&p[..cut]).is_err());
    }

    #[test]
    fn truncating_any_response_prefix_yields_typed_error(
        id in any::<u64>(),
        classes in prop::collection::vec(0u32..9, 1..8),
        cut_num in any::<u16>(),
    ) {
        let frame = encode_response(&Response { id, body: ResponseBody::ClassifyOk(classes) });
        let p = payload(&frame);
        let cut = (cut_num as usize) % p.len();
        prop_assert!(decode_response(&p[..cut]).is_err());
    }
}

// ---- targeted malformation tests ---------------------------------------

fn sample_request() -> Request {
    Request::Forward(InferenceRequest {
        id: 42,
        model: "iris".into(),
        format: "posit<8,0>".into(),
        deadline_ms: 250,
        xs: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
    })
}

#[test]
fn shutdown_response_round_trips() {
    let resp = Response {
        id: 9,
        body: ResponseBody::ShutdownOk,
    };
    let frame = encode_response(&resp);
    assert_eq!(decode_response(payload(&frame)).unwrap(), resp);
}

#[test]
fn unknown_opcode_is_rejected() {
    let mut p = payload(&encode_request(&sample_request())).to_vec();
    p[0] = 0x77;
    assert_eq!(decode_request(&p), Err(WireError::UnknownOpcode(0x77)));
}

#[test]
fn unknown_status_and_kind_are_rejected() {
    let resp = Response {
        id: 1,
        body: ResponseBody::ClassifyOk(vec![0]),
    };
    let mut p = payload(&encode_response(&resp)).to_vec();
    p[0] = 200;
    assert_eq!(decode_response(&p), Err(WireError::UnknownStatus(200)));

    let mut p = payload(&encode_response(&resp)).to_vec();
    p[1] = 9; // bogus body kind
    assert_eq!(decode_response(&p), Err(WireError::UnknownKind(9)));
}

#[test]
fn error_body_on_ok_status_is_inconsistent() {
    // status Ok + kind error would let a peer smuggle a "rejection" that
    // reads as success; the decoder must refuse the combination.
    let resp = Response {
        id: 1,
        body: ResponseBody::Rejected {
            status: WireStatus::Shed,
            detail: "x".into(),
        },
    };
    let mut p = payload(&encode_response(&resp)).to_vec();
    p[0] = 0; // flip status to Ok, leaving the error body kind
    assert!(matches!(
        decode_response(&p),
        Err(WireError::UnknownKind(_))
    ));
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut p = payload(&encode_request(&Request::Shutdown { id: 3 })).to_vec();
    p.push(0);
    assert_eq!(decode_request(&p), Err(WireError::TrailingBytes(1)));
}

#[test]
fn lying_sample_counts_are_rejected_without_allocating() {
    // The header claims 2^31 samples but carries 16 bytes of features;
    // the decoder must refuse from arithmetic alone (a Vec::with_capacity
    // on the lie would abort the process).
    let mut p = payload(&encode_request(&sample_request())).to_vec();
    // n_samples lives right after opcode + id + two str16 fields + u32.
    let off = 1 + 8 + (2 + 4) + (2 + 10) + 4;
    p[off..off + 4].copy_from_slice(&0x8000_0000u32.to_le_bytes());
    assert!(matches!(
        decode_request(&p),
        Err(WireError::SizeMismatch(_))
    ));
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    assert_eq!(check_frame_len(4096, 4096), Ok(4096));
    assert_eq!(
        check_frame_len(4097, 4096),
        Err(WireError::Oversized {
            len: 4097,
            max: 4096
        })
    );
    // The "GET " HTTP sniff as a length prefix is far over any sane cap,
    // which is what makes sharing the port unambiguous.
    let get = u32::from_le_bytes(*b"GET ");
    assert!(check_frame_len(get, dp_net::DEFAULT_MAX_FRAME_BYTES).is_err());
}

#[test]
fn status_codes_are_stable_and_self_inverse() {
    for b in 0..=13u8 {
        let s = WireStatus::from_u8(b).unwrap();
        assert_eq!(s as u8, b, "{s} must encode back to {b}");
    }
    assert_eq!(WireStatus::from_u8(14), None);
    assert_eq!(WireStatus::from_u8(255), None);
}
