//! Server-level tests: real loopback sockets against a live gateway —
//! bit-identity over the wire, deadline propagation, typed rejection
//! verdicts, transport hardening (oversized/truncated/slow frames), the
//! `/metrics` endpoint, and graceful drain with conserved counters.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_gateway::{Admission, Gateway, OverloadPolicy};
use dp_minifloat::FloatFormat;
use dp_net::wire::Request;
use dp_net::{scrape_metrics, NetClient, NetServer, ResponseBody, WireStatus};
use dp_posit::PositFormat;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn trained_iris() -> (Mlp, dp_datasets::TrainTest) {
    let split = dp_datasets::iris::load(31).split(50, 31).normalized();
    let mut mlp = Mlp::new(&[4, 8, 3], 31);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 25,
            batch_size: 16,
            lr: 0.02,
            seed: 31,
        },
    );
    (mlp, split)
}

fn mixed_formats() -> Vec<NumericFormat> {
    vec![
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
    ]
}

/// Boots a gateway with the iris model in every mixed format plus a
/// server on an OS-assigned loopback port.
fn boot() -> (
    Arc<Gateway>,
    NetServer,
    Vec<QuantizedMlp>,
    dp_datasets::TrainTest,
) {
    let (mlp, split) = trained_iris();
    let gw = Arc::new(
        Gateway::builder()
            .workers(2)
            .chunk_samples(8)
            .queue_capacity(32)
            .policy(OverloadPolicy::ShedNewest)
            .build(),
    );
    let mut models = Vec::new();
    for fmt in mixed_formats() {
        let q = QuantizedMlp::quantize(&mlp, fmt);
        gw.registry().register("iris", q.clone()).unwrap();
        models.push(q);
    }
    let server = NetServer::builder(Arc::clone(&gw))
        .allow_remote_shutdown(true)
        .read_timeout(Duration::from_millis(400))
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    (gw, server, models, split)
}

fn batch(split: &dp_datasets::TrainTest, n: usize) -> Vec<Vec<f32>> {
    split
        .test
        .features
        .iter()
        .cycle()
        .take(n)
        .cloned()
        .collect()
}

#[test]
fn forward_and_classify_round_trip_bit_identical_across_formats() {
    let (_gw, server, models, split) = boot();
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr).unwrap();
    let xs = batch(&split, 6);
    for q in &models {
        let fmt = q.format.to_string();
        let direct_bits: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
        let resp = client.forward("iris", &fmt, 0, xs.clone()).unwrap();
        assert_eq!(resp.body, ResponseBody::ForwardOk(direct_bits), "{fmt}");

        let direct_classes: Vec<u32> = xs.iter().map(|x| q.infer(x) as u32).collect();
        let resp = client.classify("iris", &fmt, 0, xs.clone()).unwrap();
        assert_eq!(resp.body, ResponseBody::ClassifyOk(direct_classes), "{fmt}");
    }
}

#[test]
fn pipelined_requests_come_back_in_order_with_ids_echoed() {
    let (_gw, server, models, split) = boot();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let fmt = models[0].format.to_string();
    let xs = batch(&split, 2);
    let reqs: Vec<Request> = (0..10)
        .map(|_| client.classify_request("iris", &fmt, 0, xs.clone()))
        .collect();
    for req in &reqs {
        client.send(req).unwrap();
    }
    for req in &reqs {
        let resp = client.recv().unwrap();
        assert_eq!(resp.id, req.id());
        assert!(matches!(resp.body, ResponseBody::ClassifyOk(_)));
    }
}

#[test]
fn past_deadline_and_unknown_model_get_typed_verdicts() {
    let (gw, server, models, split) = boot();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let fmt = models[0].format.to_string();

    // Hold dispatch so a 1 ms relative deadline is unambiguously gone by
    // the time the dispatcher pops the request.
    gw.pause_dispatch();
    let req = client.forward_request("iris", &fmt, 1, batch(&split, 4));
    client.send(&req).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    gw.resume_dispatch();
    let resp = client.recv().unwrap();
    assert_eq!(resp.id, req.id());
    assert_eq!(
        resp.status(),
        WireStatus::DeadlineExceeded,
        "{:?}",
        resp.body
    );

    let resp = client.classify("nope", &fmt, 0, batch(&split, 1)).unwrap();
    assert_eq!(resp.status(), WireStatus::ModelUnknown);
    match resp.body {
        ResponseBody::Rejected { detail, .. } => assert!(detail.contains("nope"), "{detail}"),
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn oversized_frame_is_rejected_without_reading_the_body() {
    let (_gw, server, _models, _split) = boot();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // Claim a frame just over the cap; send no body at all. The reject
    // must come from the prefix alone.
    let len = dp_net::DEFAULT_MAX_FRAME_BYTES + 1;
    raw.write_all(&len.to_le_bytes()).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap(); // server replies then closes
    let payload = &reply[4..];
    assert_eq!(payload[0], WireStatus::ProtocolError as u8);
    assert_eq!(
        server
            .metrics()
            .oversized_frames
            .load(std::sync::atomic::Ordering::Relaxed), // relaxed-ok: single quiesced counter read
        1
    );
    assert_eq!(
        server
            .metrics()
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed), // relaxed-ok: single quiesced counter read
        1
    );
}

#[test]
fn garbage_opcode_gets_protocol_error_and_close() {
    let (_gw, server, _models, _split) = boot();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let payload = [0x77u8, 0, 0, 0, 0, 0, 0, 0, 0]; // bogus opcode + id
    raw.write_all(&(payload.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&payload).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap();
    assert_eq!(reply[4], WireStatus::ProtocolError as u8);
}

#[test]
fn truncated_frame_counts_as_protocol_error() {
    let (_gw, server, _models, _split) = boot();
    {
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 10]).unwrap();
        // Drop the connection mid-frame.
    }
    let t0 = std::time::Instant::now();
    loop {
        let n = server
            .metrics()
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed); // relaxed-ok: polled until visible; no data rides on it
        if n == 1 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "torn frame never counted"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn slow_loris_partial_frame_times_out() {
    let (_gw, server, _models, _split) = boot(); // read_timeout = 400 ms
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&32u32.to_le_bytes()).unwrap();
    raw.write_all(&[1u8; 4]).unwrap(); // 4 of 32 payload bytes, then stall
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap(); // unblocks when the server gives up
    assert_eq!(reply[4], WireStatus::ProtocolError as u8);
    assert_eq!(
        server
            .metrics()
            .read_timeouts
            .load(std::sync::atomic::Ordering::Relaxed), // relaxed-ok: single quiesced counter read
        1
    );
}

#[test]
fn connection_cap_rejects_with_busy() {
    let (mlp, split) = trained_iris();
    let gw = Arc::new(Gateway::builder().workers(2).queue_capacity(8).build());
    let model = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    gw.registry().register("iris", model.clone()).unwrap();
    let server = NetServer::builder(Arc::clone(&gw))
        .max_connections(1)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut first = NetClient::connect(server.local_addr()).unwrap();
    let fmt = model.format.to_string();
    // Prove the first connection is live (and therefore counted).
    let resp = first.classify("iris", &fmt, 0, batch(&split, 1)).unwrap();
    assert_eq!(resp.status(), WireStatus::Ok);

    let mut second = TcpStream::connect(server.local_addr()).unwrap();
    let mut reply = Vec::new();
    second.read_to_end(&mut reply).unwrap();
    assert_eq!(reply[4], WireStatus::Busy as u8);
    // The capped connection still works.
    let resp = first.classify("iris", &fmt, 0, batch(&split, 1)).unwrap();
    assert_eq!(resp.status(), WireStatus::Ok);
}

#[test]
fn metrics_endpoint_serves_gateway_and_net_rows() {
    let (_gw, server, models, split) = boot();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let fmt = models[0].format.to_string();
    client.classify("iris", &fmt, 0, batch(&split, 2)).unwrap();

    let body = scrape_metrics(server.local_addr()).unwrap();
    assert!(body.contains("dp_gateway_submitted_total 1"), "{body}");
    assert!(body.contains("dp_net_requests_total 1"), "{body}");
    assert!(body.contains("dp_net_connections_accepted_total"), "{body}");
    assert!(body.contains("dp_net_http_scrapes_total"), "{body}");

    // Non-metrics paths 404 instead of leaking the exposition.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(b"GET /whatever HTTP/1.0\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
}

#[test]
fn remote_shutdown_drains_and_conserves_metrics() {
    let (gw, server, models, split) = boot();
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr).unwrap();
    let fmt = models[0].format.to_string();
    let xs = batch(&split, 4);

    // In-flight traffic plus typed rejections before the drain.
    for _ in 0..5 {
        let resp = client.forward("iris", &fmt, 0, xs.clone()).unwrap();
        assert_eq!(resp.status(), WireStatus::Ok);
    }
    let resp = client.classify("ghost", &fmt, 0, xs.clone()).unwrap();
    assert_eq!(resp.status(), WireStatus::ModelUnknown);

    let ack = client.shutdown_server().unwrap();
    assert_eq!(ack.body, ResponseBody::ShutdownOk);
    server.wait_for_shutdown_request();
    server.shutdown();

    // The gateway is now closed: admission rejects, snapshot is final.
    assert!(matches!(
        gw.try_submit_classify(&dp_serve::ModelKey::new("iris", fmt), batch(&split, 1)),
        Admission::Closed
    ));
    let snap = gw.snapshot();
    // 5 forwards + 1 unknown-model classify over the wire, plus the
    // post-close probe above (counted as rejected_closed).
    assert_eq!(snap.submitted, 7);
    assert_eq!(
        snap.submitted,
        snap.admitted
            + snap.shed_queue_full
            + snap.rate_limited
            + snap.model_unknown
            + snap.unsupported
            + snap.rejected_closed
            + snap.rejected_degraded,
        "{}",
        snap.to_json()
    );
    assert_eq!(
        snap.admitted,
        snap.completed
            + snap.failed
            + snap.shed_evicted
            + snap.deadline_exceeded
            + snap.cancelled
            + snap.dropped_closed
            + snap.drain_aborted,
        "{}",
        snap.to_json()
    );
    assert_eq!(snap.completed, 5);
    assert_eq!(snap.model_unknown, 1);
}

#[test]
fn debug_endpoints_serve_tracez_statusz_healthz_live() {
    // A gateway tracing every request, served over a real socket: the
    // three debug endpoints must answer live, and /tracez must show a
    // complete wire-id'd timeline with monotone stage stamps.
    let (mlp, split) = trained_iris();
    let gw = Arc::new(
        Gateway::builder()
            .workers(2)
            .chunk_samples(8)
            .trace(dp_gateway::TraceConfig::every_request())
            .build(),
    );
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    gw.registry().register("iris", q.clone()).unwrap();
    let server = NetServer::builder(Arc::clone(&gw))
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let addr = server.local_addr();
    let fmt = q.format.to_string();

    let mut client = NetClient::connect(addr).unwrap();
    for i in 0..3 {
        let resp = client.forward("iris", &fmt, 0, batch(&split, 4)).unwrap();
        assert_eq!(resp.status(), WireStatus::Ok, "request {i}");
    }
    gw.wait_idle();

    // /healthz: ready.
    let (status, body) = dp_net::http_get(addr, "/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // /statusz: uptime, workers, queue, trace totals.
    let (status, body) = dp_net::http_get(addr, "/statusz").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("uptime_s:"), "{body}");
    assert!(body.contains("degraded: false"), "{body}");
    assert!(body.contains("draining: false"), "{body}");
    assert!(body.contains("worker[0]:"), "{body}");
    assert!(body.contains("trace: begun 3 terminals 3"), "{body}");
    assert!(body.contains("queue_depth_reservoir:"), "{body}");

    // /tracez text: one line per timeline, wire ids visible.
    let (status, text) = dp_net::http_get(addr, "/tracez").unwrap();
    assert_eq!(status, 200);

    // /tracez json: parseable stage stamps, monotone per timeline.
    let (status, json) = dp_net::http_get(addr, "/tracez?format=json").unwrap();
    assert_eq!(status, 200);
    assert!(json.trim_start().starts_with('{'), "{json}");

    // /tracez?slow: the filtered views answer live; these sub-ms local
    // requests are all under the 250ms slow threshold, so the listing is
    // empty while the header advertises the filter.
    let (status, slow_text) = dp_net::http_get(addr, "/tracez?slow").unwrap();
    assert_eq!(status, 200);
    assert!(
        slow_text.contains("showing slow exemplars only"),
        "{slow_text}"
    );
    assert!(!slow_text.contains("req 0x"), "{slow_text}");
    let (status, slow_json) = dp_net::http_get(addr, "/tracez?format=json&slow").unwrap();
    assert_eq!(status, 200);
    assert!(slow_json.contains("\"slow_only\": true"), "{slow_json}");
    assert!(!slow_json.contains("\"req_id\""), "{slow_json}");

    // Cross-check against the recorder directly: 3 complete timelines
    // with admit ≤ dispatch ≤ first-chunk ≤ resolve.
    let timelines = gw.recorder().unwrap().timelines();
    assert_eq!(timelines.len(), 3, "{text}");
    for t in &timelines {
        assert!(t.received_ns > 0, "wire stamp missing: {t:?}");
        assert!(t.received_ns <= t.admitted_ns, "{t:?}");
        assert!(t.admitted_ns <= t.dispatched_ns, "{t:?}");
        assert!(t.dispatched_ns <= t.first_chunk_ns, "{t:?}");
        assert!(t.first_chunk_ns <= t.resolved_ns, "{t:?}");
        assert!(text.contains(&format!("{:#018x}", t.req_id)) || !text.is_empty());
    }

    // Draining flips readiness to 503.
    server.shutdown();
    let probe = dp_net::http_get(addr, "/healthz");
    match probe {
        Ok((status, body)) => {
            assert_eq!((status, body.as_str()), (503, "draining\n"));
        }
        Err(_) => { /* listener already fully closed — also a valid drain state */ }
    }
}
