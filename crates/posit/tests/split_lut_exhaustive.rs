//! Exhaustive split-table equivalence: the regime-prefix + direct-fraction
//! scheme must reproduce the bit-field decode on **every** encoding of the
//! 13–16-bit formats it serves — the same contract the monolithic LUT
//! suite pins for ≤ 12 bits, now over all 65 536 patterns of the §IV
//! sweep's widest formats.

use dp_posit::lut::{split_cached, EmacEntry, SplitLut};
use dp_posit::{decode, Decoded, PositFormat};

#[test]
fn split_decode_matches_bitfield_for_all_65536_encodings() {
    for es in [0u32, 1, 2] {
        let fmt = PositFormat::new(16, es).unwrap();
        let lut = split_cached(fmt).expect("16-bit formats are split-table-driven");
        assert_eq!(lut.format(), fmt);
        for bits in fmt.patterns() {
            assert_eq!(lut.decode(bits), decode(fmt, bits), "{fmt} {bits:#06x}");
        }
    }
}

#[test]
fn split_decode_matches_bitfield_for_13_to_15_bit_formats() {
    for (n, es) in [(13u32, 0u32), (13, 1), (14, 2), (15, 1), (15, 6)] {
        let fmt = PositFormat::new(n, es).unwrap();
        let lut = SplitLut::build(fmt).unwrap();
        for bits in fmt.patterns() {
            assert_eq!(lut.decode(bits), decode(fmt, bits), "{fmt} {bits:#06x}");
        }
    }
}

#[test]
fn split_emac_entries_reconstruct_decode_for_all_65536_encodings() {
    for es in [0u32, 1, 2] {
        let fmt = PositFormat::new(16, es).unwrap();
        let lut = split_cached(fmt).unwrap();
        let fbits = 16 - 2 - es;
        for bits in fmt.patterns() {
            let e = lut.entry(bits);
            match decode(fmt, bits) {
                Decoded::Zero => assert_eq!(e, EmacEntry(0), "{fmt} {bits:#06x}"),
                Decoded::NaR => assert!(e.is_nar(), "{fmt} {bits:#06x}"),
                Decoded::Finite(u) => {
                    assert!(!e.is_nar());
                    assert_eq!(e.sign(), u.sign, "{fmt} {bits:#06x}");
                    assert_eq!(e.field(), u.sig >> (64 - fbits), "{fmt} {bits:#06x}");
                    assert_eq!(
                        e.biased_scale() as i64,
                        u.scale as i64 + fmt.max_scale() as i64,
                        "{fmt} {bits:#06x}"
                    );
                }
            }
        }
    }
}

#[test]
fn split_decode_masks_to_width() {
    let fmt = PositFormat::new(16, 1).unwrap();
    let lut = split_cached(fmt).unwrap();
    assert_eq!(lut.decode(0x1_4000), lut.decode(0x4000), "masks to width");
    assert_eq!(lut.entry(0x1_4000), lut.entry(0x4000));
}
