//! Exhaustive-ish validation of the fused multiply-add against the exact
//! dyadic oracle, plus its fusion property (cases where the unfused form
//! differs).

use dp_posit::exact::Dyadic;
use dp_posit::{ops, PositFormat};

fn fmt(n: u32, es: u32) -> PositFormat {
    PositFormat::new(n, es).unwrap()
}

#[test]
fn fma_matches_oracle_exhaustively_p6() {
    // Full 3-operand cube at 6 bits: 63³ ≈ 250k cases.
    let f = fmt(6, 0);
    let reals: Vec<u32> = f.reals().collect();
    for &a in &reals {
        let da = Dyadic::from_posit(f, a);
        for &b in &reals {
            let p = da.mul(Dyadic::from_posit(f, b));
            for &c in &reals {
                let want = p.add(Dyadic::from_posit(f, c)).round_to_posit(f);
                assert_eq!(ops::fma(f, a, b, c), want, "{a:#x}×{b:#x}+{c:#x}");
            }
        }
    }
}

#[test]
fn fma_matches_oracle_sampled_p8() {
    let f = fmt(8, 1);
    let mut s = 0x51ce_a11du64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for _ in 0..30_000 {
        let a = (next() as u32) & f.mask();
        let b = (next() as u32) & f.mask();
        let c = (next() as u32) & f.mask();
        if [a, b, c].contains(&f.nar_bits()) {
            assert_eq!(ops::fma(f, a, b, c), f.nar_bits());
            continue;
        }
        let want = Dyadic::from_posit(f, a)
            .mul(Dyadic::from_posit(f, b))
            .add(Dyadic::from_posit(f, c))
            .round_to_posit(f);
        assert_eq!(ops::fma(f, a, b, c), want, "{a:#x}×{b:#x}+{c:#x}");
    }
}

#[test]
fn fma_beats_unfused_somewhere() {
    // The fusion must matter: find cases where round(round(ab)+c) differs
    // from round(ab+c). (Existence check — the whole point of the FMA.)
    let f = fmt(8, 0);
    let mut found = 0u32;
    for a in f.reals().step_by(3) {
        for b in f.reals().step_by(5) {
            for c in f.reals().step_by(7) {
                let fused = ops::fma(f, a, b, c);
                let unfused = ops::add(f, ops::mul(f, a, b), c);
                if fused != unfused {
                    found += 1;
                    // When they differ, the fused result must be the
                    // correctly rounded one.
                    let want = Dyadic::from_posit(f, a)
                        .mul(Dyadic::from_posit(f, b))
                        .add(Dyadic::from_posit(f, c))
                        .round_to_posit(f);
                    assert_eq!(fused, want);
                }
            }
        }
    }
    assert!(found > 0, "fusion never mattered — implementation suspect");
}

#[test]
fn fma_specials() {
    let f = fmt(8, 0);
    let one = f.one_bits();
    assert_eq!(ops::fma(f, f.nar_bits(), one, one), f.nar_bits());
    assert_eq!(ops::fma(f, one, f.nar_bits(), one), f.nar_bits());
    assert_eq!(ops::fma(f, one, one, f.nar_bits()), f.nar_bits());
    assert_eq!(ops::fma(f, 0, one, 0), 0);
    assert_eq!(ops::fma(f, 0, one, one), one);
    // x×1 + 0 == x for every real pattern.
    for x in f.reals() {
        assert_eq!(ops::fma(f, x, one, 0), x);
    }
}
