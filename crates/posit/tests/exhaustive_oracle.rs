//! Exhaustive validation of 8-bit-and-below posit arithmetic against the
//! exact dyadic oracle.
//!
//! For formats up to 8 bits every operand pair is enumerated (≤ 65536
//! cases per op per format); each correctly rounded result must equal the
//! oracle's exact computation rounded once. This pins down the full
//! behaviour of the formats the paper evaluates (n ∈ [5, 8]).

use dp_posit::exact::Dyadic;
use dp_posit::{decode, ops, Decoded, PositFormat};

const FORMATS: &[(u32, u32)] = &[
    (5, 0),
    (6, 0),
    (6, 1),
    (7, 0),
    (7, 1),
    (8, 0),
    (8, 1),
    (8, 2),
];

fn fmt(n: u32, es: u32) -> PositFormat {
    PositFormat::new(n, es).unwrap()
}

fn reals(f: PositFormat) -> impl Iterator<Item = u32> {
    f.reals()
}

#[test]
fn add_matches_oracle_exhaustively() {
    for &(n, es) in FORMATS {
        let f = fmt(n, es);
        for a in reals(f) {
            let da = Dyadic::from_posit(f, a);
            for b in reals(f) {
                let db = Dyadic::from_posit(f, b);
                let got = ops::add(f, a, b);
                let want = da.add(db).round_to_posit(f);
                assert_eq!(got, want, "{f}: {a:#x} + {b:#x}");
            }
        }
    }
}

#[test]
fn sub_matches_oracle_exhaustively() {
    for &(n, es) in FORMATS {
        let f = fmt(n, es);
        for a in reals(f) {
            let da = Dyadic::from_posit(f, a);
            for b in reals(f) {
                let db = Dyadic::from_posit(f, b);
                let got = ops::sub(f, a, b);
                let want = da.add(db.neg()).round_to_posit(f);
                assert_eq!(got, want, "{f}: {a:#x} - {b:#x}");
            }
        }
    }
}

#[test]
fn mul_matches_oracle_exhaustively() {
    for &(n, es) in FORMATS {
        let f = fmt(n, es);
        for a in reals(f) {
            let da = Dyadic::from_posit(f, a);
            for b in reals(f) {
                let db = Dyadic::from_posit(f, b);
                let got = ops::mul(f, a, b);
                let want = da.mul(db).round_to_posit(f);
                assert_eq!(got, want, "{f}: {a:#x} * {b:#x}");
            }
        }
    }
}

#[test]
fn div_matches_oracle_exhaustively() {
    // Division oracle: q is correct iff the exact quotient lies on the
    // correct side of the pattern midpoints around q. Equivalently:
    // round(a/b) = q  ⟺  a lies between (q⁻ mid)·b and (q⁺ mid)·b.
    // We verify with exact dyadic multiplication: compare a with mid·b.
    for &(n, es) in FORMATS {
        let f = fmt(n, es);
        let wide = PositFormat::new(n + 1, es).unwrap();
        for a in reals(f) {
            let da = Dyadic::from_posit(f, a);
            for b in reals(f) {
                if b == 0 {
                    assert_eq!(ops::div(f, a, b), f.nar_bits());
                    continue;
                }
                if a == 0 {
                    assert_eq!(ops::div(f, a, b), 0);
                    continue;
                }
                let db = Dyadic::from_posit(f, b);
                let q = ops::div(f, a, b);
                // Magnitude domain check.
                let qa = ops::abs(f, q);
                let (alo, ahi) = neighbors_mid(f, wide, qa);
                let mag_a = Dyadic { sign: false, ..da };
                let mag_b = Dyadic { sign: false, ..db };
                // |a/b| must lie in [alo, ahi]; on an exact pattern-space
                // tie, the even body must have been chosen.
                if let Some(alo) = alo {
                    match alo.mul(mag_b).cmp_value(mag_a) {
                        std::cmp::Ordering::Greater => {
                            panic!("{f}: |{a:#x}/{b:#x}| rounded too high to {q:#x}")
                        }
                        std::cmp::Ordering::Equal => {
                            assert_eq!(qa & 1, 0, "{f}: {a:#x}/{b:#x} tie must pick even")
                        }
                        std::cmp::Ordering::Less => {}
                    }
                }
                if let Some(ahi) = ahi {
                    match mag_a.cmp_value(ahi.mul(mag_b)) {
                        std::cmp::Ordering::Greater => {
                            panic!("{f}: |{a:#x}/{b:#x}| rounded too low to {q:#x}")
                        }
                        std::cmp::Ordering::Equal => {
                            assert_eq!(qa & 1, 0, "{f}: {a:#x}/{b:#x} tie must pick even")
                        }
                        std::cmp::Ordering::Less => {}
                    }
                }
                // Sign must be correct.
                let want_neg = (ops::is_negative(f, a)) ^ (ops::is_negative(f, b));
                assert_eq!(ops::is_negative(f, q), want_neg, "{f}: {a:#x}/{b:#x} sign");
            }
        }
    }
}

/// For a positive posit body `q`, the pattern-space midpoints to its
/// neighbours, as exact values ((n+1)-bit posits `2q−1` and `2q+1`).
/// `None` at the saturation ends (no boundary: everything beyond rounds in).
fn neighbors_mid(f: PositFormat, wide: PositFormat, q: u32) -> (Option<Dyadic>, Option<Dyadic>) {
    let lo = if q == f.minpos_bits() {
        None // below minpos everything rounds to minpos
    } else {
        Some(Dyadic::from_posit(wide, 2 * q - 1))
    };
    let hi = if q == f.maxpos_bits() {
        None // above maxpos everything rounds to maxpos
    } else {
        Some(Dyadic::from_posit(wide, 2 * q + 1))
    };
    (lo, hi)
}

#[test]
fn sqrt_matches_oracle_exhaustively() {
    for &(n, es) in FORMATS {
        let f = fmt(n, es);
        let wide = PositFormat::new(n + 1, es).unwrap();
        for a in reals(f) {
            if ops::is_negative(f, a) {
                assert_eq!(ops::sqrt(f, a), f.nar_bits());
                continue;
            }
            if a == 0 {
                assert_eq!(ops::sqrt(f, a), 0);
                continue;
            }
            let r = ops::sqrt(f, a);
            let da = Dyadic::from_posit(f, a);
            let (lo, hi) = neighbors_mid(f, wide, r);
            // lo² <= a <= hi² (sqrt is monotone; boundary ties allowed).
            if let Some(lo) = lo {
                assert_ne!(
                    lo.mul(lo).cmp_value(da),
                    std::cmp::Ordering::Greater,
                    "{f}: sqrt({a:#x}) = {r:#x} too high"
                );
            }
            if let Some(hi) = hi {
                assert_ne!(
                    da.cmp_value(hi.mul(hi)),
                    std::cmp::Ordering::Greater,
                    "{f}: sqrt({a:#x}) = {r:#x} too low"
                );
            }
        }
    }
}

#[test]
fn negation_is_exact_for_all_patterns() {
    for &(n, es) in FORMATS {
        let f = fmt(n, es);
        for a in reals(f) {
            let neg = ops::neg(f, a);
            if a != 0 {
                match (decode(f, a), decode(f, neg)) {
                    (Decoded::Finite(ua), Decoded::Finite(un)) => {
                        assert_eq!(ua.scale, un.scale, "{f} {a:#x}");
                        assert_eq!(ua.sig, un.sig, "{f} {a:#x}");
                        assert_ne!(ua.sign, un.sign, "{f} {a:#x}");
                    }
                    _ => panic!("negation changed finiteness for {a:#x}"),
                }
            }
            assert_eq!(ops::neg(f, neg), a, "double negation");
        }
    }
}

#[test]
fn addition_is_commutative_exhaustively_p8e1() {
    let f = fmt(8, 1);
    for a in reals(f) {
        for b in reals(f) {
            assert_eq!(ops::add(f, a, b), ops::add(f, b, a));
        }
    }
}

#[test]
fn multiplication_is_commutative_exhaustively_p8e2() {
    let f = fmt(8, 2);
    for a in reals(f) {
        for b in reals(f) {
            assert_eq!(ops::mul(f, a, b), ops::mul(f, b, a));
        }
    }
}
