//! Property-based tests on posit arithmetic, conversions and the quire,
//! covering the wider formats (16/32-bit) the exhaustive suite can't reach.

use dp_posit::exact::Dyadic;
use dp_posit::{convert, decode, encode, ops, Decoded, PositFormat, Quire};
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = PositFormat> {
    prop_oneof![
        Just(PositFormat::new(8, 0).unwrap()),
        Just(PositFormat::new(8, 1).unwrap()),
        Just(PositFormat::new(8, 2).unwrap()),
        Just(PositFormat::new(10, 1).unwrap()),
        Just(PositFormat::new(12, 0).unwrap()),
        Just(PositFormat::new(16, 1).unwrap()),
        Just(PositFormat::new(16, 2).unwrap()),
        Just(PositFormat::new(24, 1).unwrap()),
        Just(PositFormat::new(32, 2).unwrap()),
    ]
}

prop_compose! {
    fn format_and_two_patterns()(f in formats())(
        f in Just(f),
        a in 0u32..=u32::MAX,
        b in 0u32..=u32::MAX,
    ) -> (PositFormat, u32, u32) {
        (f, a & f.mask(), b & f.mask())
    }
}

proptest! {
    #[test]
    fn decode_encode_roundtrip((f, a, _b) in format_and_two_patterns()) {
        if let Decoded::Finite(u) = decode(f, a) {
            prop_assert_eq!(encode(f, u.sign, u.scale, u.sig, false), a);
        }
    }

    #[test]
    fn f64_roundtrip((f, a, _b) in format_and_two_patterns()) {
        // Exact for every format with max_scale <= 1023 (all of these).
        if a != f.nar_bits() {
            let v = convert::to_f64(f, a);
            prop_assert_eq!(convert::from_f64(f, v), a);
        }
    }

    #[test]
    fn pattern_order_is_value_order((f, a, b) in format_and_two_patterns()) {
        prop_assume!(a != f.nar_bits() && b != f.nar_bits());
        let (va, vb) = (convert::to_f64(f, a), convert::to_f64(f, b));
        prop_assert_eq!(ops::cmp(f, a, b), va.partial_cmp(&vb).unwrap());
    }

    #[test]
    fn add_commutes((f, a, b) in format_and_two_patterns()) {
        prop_assert_eq!(ops::add(f, a, b), ops::add(f, b, a));
    }

    #[test]
    fn mul_commutes((f, a, b) in format_and_two_patterns()) {
        prop_assert_eq!(ops::mul(f, a, b), ops::mul(f, b, a));
    }

    #[test]
    fn additive_identity_and_inverse((f, a, _b) in format_and_two_patterns()) {
        prop_assert_eq!(ops::add(f, a, 0), a);
        if a != f.nar_bits() {
            prop_assert_eq!(ops::add(f, a, ops::neg(f, a)), 0);
        }
    }

    #[test]
    fn multiplicative_identity((f, a, _b) in format_and_two_patterns()) {
        prop_assert_eq!(ops::mul(f, a, f.one_bits()), a);
        if a != 0 && a != f.nar_bits() {
            prop_assert_eq!(ops::div(f, a, f.one_bits()), a);
        }
    }

    #[test]
    fn sqrt_inverts_exactly_representable_squares((f, a, _b) in format_and_two_patterns()) {
        prop_assume!(a != f.nar_bits() && a != 0);
        // When a² is exactly representable, sqrt must recover |a| exactly.
        // (Exact squares are sparse, so this is a conditional check rather
        // than an assumption — the exhaustive suite covers rounding.)
        let da = Dyadic::from_posit(f, a);
        let dsq = da.mul(da);
        let sq = ops::mul(f, a, a);
        if Dyadic::from_posit(f, sq) == dsq {
            prop_assert_eq!(ops::sqrt(f, sq), ops::abs(f, a),
                "sqrt of exact square {:#x}", sq);
        }
    }

    #[test]
    fn neg_distributes_over_add((f, a, b) in format_and_two_patterns()) {
        // Posit negation is exact, so -(a+b) == (-a) + (-b) after rounding.
        let lhs = ops::neg(f, ops::add(f, a, b));
        let rhs = ops::add(f, ops::neg(f, a), ops::neg(f, b));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn add_matches_oracle_for_p16((a, b) in (0u32..0x1_0000, 0u32..0x1_0000)) {
        let f = PositFormat::new(16, 1).unwrap();
        prop_assume!(a != f.nar_bits() && b != f.nar_bits());
        let want = Dyadic::from_posit(f, a)
            .add(Dyadic::from_posit(f, b))
            .round_to_posit(f);
        prop_assert_eq!(ops::add(f, a, b), want);
    }

    #[test]
    fn mul_matches_oracle_for_p16((a, b) in (0u32..0x1_0000, 0u32..0x1_0000)) {
        let f = PositFormat::new(16, 1).unwrap();
        prop_assume!(a != f.nar_bits() && b != f.nar_bits());
        let want = Dyadic::from_posit(f, a)
            .mul(Dyadic::from_posit(f, b))
            .round_to_posit(f);
        prop_assert_eq!(ops::mul(f, a, b), want);
    }

    #[test]
    fn quire_single_product_equals_mul((f, a, b) in format_and_two_patterns()) {
        // With one product there is one rounding either way.
        let mut q = Quire::new(f, 1);
        q.add_product(a, b);
        prop_assert_eq!(q.to_posit(), ops::mul(f, a, b));
    }

    #[test]
    fn quire_is_permutation_invariant(
        (f, _x, _y) in format_and_two_patterns(),
        seed in 0u64..u64::MAX,
    ) {
        // Exactness implies the accumulation order cannot matter.
        let mut s = seed | 1;
        let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
        let pairs: Vec<(u32, u32)> = (0..9)
            .map(|_| ((next() as u32) & f.mask(), (next() as u32) & f.mask()))
            .filter(|&(a, b)| a != f.nar_bits() && b != f.nar_bits())
            .collect();
        let mut fwd = Quire::new(f, 9);
        let mut rev = Quire::new(f, 9);
        for &(a, b) in &pairs { fwd.add_product(a, b); }
        for &(a, b) in pairs.iter().rev() { rev.add_product(a, b); }
        prop_assert_eq!(fwd.to_posit(), rev.to_posit());
    }

    #[test]
    fn quire_add_then_sub_cancels(
        (f, a, b) in format_and_two_patterns(),
        (c, d) in (0u32..u32::MAX, 0u32..u32::MAX),
    ) {
        let (c, d) = (c & f.mask(), d & f.mask());
        prop_assume!([a, b, c, d].iter().all(|&x| x != f.nar_bits()));
        let mut q = Quire::new(f, 4);
        q.add_product(a, b);
        q.add_product(c, d);
        q.sub_product(a, b);
        q.sub_product(c, d);
        prop_assert_eq!(q.to_posit(), 0);
    }

    #[test]
    fn quire_dot_matches_oracle_p8(
        xs in prop::collection::vec(0u32..=255, 1..12),
        ys in prop::collection::vec(0u32..=255, 1..12),
    ) {
        let f = PositFormat::new(8, 2).unwrap();
        let len = xs.len().min(ys.len());
        let xs = &xs[..len];
        let ys = &ys[..len];
        prop_assume!(xs.iter().chain(ys).all(|&v| v != f.nar_bits()));
        let want = dp_posit::exact::exact_dot(f, xs, ys);
        prop_assert_eq!(Quire::dot(f, xs, ys), want);
    }

    #[test]
    fn conversion_between_formats_preserves_order(
        (a, b) in (0u32..0x1_0000, 0u32..0x1_0000),
    ) {
        let src = PositFormat::new(16, 1).unwrap();
        let dst = PositFormat::new(8, 0).unwrap();
        prop_assume!(a != src.nar_bits() && b != src.nar_bits());
        let (ca, cb) = (convert::convert(src, dst, a), convert::convert(src, dst, b));
        // Rounding is monotone: order can collapse to Equal but never flip.
        let before = ops::cmp(src, a, b);
        let after = ops::cmp(dst, ca, cb);
        prop_assert!(after == before || after == std::cmp::Ordering::Equal,
            "order flipped: {:?} -> {:?}", before, after);
    }
}
