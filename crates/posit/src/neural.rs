//! Neural-network helpers native to the posit format.
//!
//! The posit literature's celebrated "fast sigmoid" (Gustafson & Yonemoto
//! 2017, §4.1 of paper ref. \[10\]) exploits the format's structure: for
//! `es = 0` posits, shifting the pattern implements a close rational
//! approximation of the logistic function with *no arithmetic at all* —
//! one of the arguments for posits as a DNN-native number system that
//! follow-up work (including Deep Positron's ReLU datapath) builds on.

use crate::convert;
use crate::format::PositFormat;
use crate::ops;

/// Gustafson's fast sigmoid for `es = 0` posits:
/// `sigmoid(x) ≈ (bits(x) XOR sign-flip) >> 2`, i.e. flip the sign bit and
/// shift the pattern right by two. Exact at `x = 0` (½), approaches 0/1 at
/// the rails, and is monotone — everything a squashing activation needs.
///
/// # Panics
///
/// Panics if `fmt.es() != 0` (the trick is an `es = 0` identity).
///
/// # Examples
///
/// ```
/// use dp_posit::{neural, PositFormat};
/// let fmt = PositFormat::new(8, 0)?;
/// let x = dp_posit::convert::from_f64(fmt, 0.0);
/// assert_eq!(dp_posit::convert::to_f64(fmt, neural::fast_sigmoid(fmt, x)), 0.5);
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
pub fn fast_sigmoid(fmt: PositFormat, bits: u32) -> u32 {
    assert_eq!(fmt.es(), 0, "fast sigmoid requires an es = 0 posit format");
    let n = fmt.n();
    let x = bits & fmt.mask();
    if x == fmt.nar_bits() {
        return fmt.nar_bits();
    }
    // Flip the sign bit, then an unsigned shift right by 2 within n bits.
    let flipped = x ^ (1 << (n - 1));
    flipped >> 2
}

/// Reference logistic function through f64 (for accuracy comparisons).
pub fn exact_sigmoid(fmt: PositFormat, bits: u32) -> u32 {
    let v = convert::to_f64(fmt, bits);
    convert::from_f64(fmt, 1.0 / (1.0 + (-v).exp()))
}

/// ReLU on a posit pattern: negative values clamp to zero (NaR passes
/// through). This is the activation of the Deep Positron hidden layers.
pub fn relu(fmt: PositFormat, bits: u32) -> u32 {
    let x = bits & fmt.mask();
    if x == fmt.nar_bits() {
        return x;
    }
    if ops::is_negative(fmt, x) {
        fmt.zero_bits()
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt8() -> PositFormat {
        PositFormat::new(8, 0).unwrap()
    }

    #[test]
    fn fast_sigmoid_key_points() {
        let f = fmt8();
        // sigmoid(0) = 0.5 exactly.
        assert_eq!(convert::to_f64(f, fast_sigmoid(f, 0)), 0.5);
        // sigmoid(±maxpos) saturates toward 1 / 0.
        let hi = convert::to_f64(f, fast_sigmoid(f, f.maxpos_bits()));
        let lo = convert::to_f64(f, fast_sigmoid(f, ops::neg(f, f.maxpos_bits())));
        assert!(hi > 0.95, "sigmoid(maxpos) = {hi}");
        assert!((0.0..0.05).contains(&lo), "sigmoid(-maxpos) = {lo}");
        // NaR propagates.
        assert_eq!(fast_sigmoid(f, f.nar_bits()), f.nar_bits());
    }

    #[test]
    fn fast_sigmoid_is_monotone_and_bounded() {
        let f = fmt8();
        let mut last = -1.0;
        // Walk patterns in value order: NaR+1 .. maxpos.
        let mut p = f.nar_bits().wrapping_add(1) & f.mask();
        while p != f.nar_bits() {
            let s = convert::to_f64(f, fast_sigmoid(f, p));
            assert!((0.0..=1.0).contains(&s), "sigmoid out of range: {s}");
            assert!(s >= last, "monotonicity violated at {p:#x}");
            last = s;
            p = p.wrapping_add(1) & f.mask();
        }
    }

    #[test]
    fn fast_sigmoid_tracks_exact_sigmoid() {
        // The bit trick approximates the logistic closely in [-4, 4]; the
        // known worst-case error of the approximation is ≈ 0.062 around
        // |x| ≈ 3.5.
        let f = fmt8();
        let mut worst = 0f64;
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            let bits = convert::from_f64(f, x);
            let fast = convert::to_f64(f, fast_sigmoid(f, bits));
            let exact = 1.0 / (1.0 + (-convert::to_f64(f, bits)).exp());
            let err = (fast - exact).abs();
            worst = worst.max(err);
            assert!(err < 0.08, "x={x}: fast {fast} vs exact {exact}");
        }
        assert!(worst > 0.01, "approximation error exists (got {worst})");
    }

    #[test]
    fn exact_sigmoid_reference() {
        let f = fmt8();
        let bits = convert::from_f64(f, 0.0);
        assert_eq!(convert::to_f64(f, exact_sigmoid(f, bits)), 0.5);
    }

    #[test]
    #[should_panic(expected = "es = 0")]
    fn fast_sigmoid_rejects_nonzero_es() {
        fast_sigmoid(PositFormat::new(8, 1).unwrap(), 0);
    }

    #[test]
    fn relu_semantics() {
        let f = fmt8();
        let pos = convert::from_f64(f, 1.5);
        let neg = convert::from_f64(f, -1.5);
        assert_eq!(relu(f, pos), pos);
        assert_eq!(relu(f, neg), 0);
        assert_eq!(relu(f, 0), 0);
        assert_eq!(relu(f, f.nar_bits()), f.nar_bits());
    }
}
