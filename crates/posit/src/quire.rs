//! The quire: an exact Kulisch accumulator for posit dot products.
//!
//! Products of posits are fixed-point numbers whose bits all lie between
//! `minpos² = 2^(-2·max_scale)` and `maxpos² = 2^(2·max_scale)`. A register
//! covering that range plus carry-guard bits therefore accumulates any
//! dot product *exactly*; rounding happens once, at extraction. The paper
//! sizes this register with eq. (4):
//!
//! ```text
//! qsize = 2^(es+2) × (n − 2) + 2 + ⌈log2 k⌉ ,  n ≥ 3
//! ```
//!
//! where `k` is the number of accumulated products. This is the mechanism
//! that makes the posit EMAC exact (paper §III-D), and `dp-emac`'s
//! bit-accurate datapath is differentially tested against this type.

use crate::decode::{decode, Decoded};
use crate::encode::encode;
use crate::format::PositFormat;
use crate::wide::WideInt;

/// An exact accumulator for sums of posit products (paper §III-D).
///
/// # Examples
///
/// ```
/// use dp_posit::{PositFormat, Quire};
/// let fmt = PositFormat::new(8, 0)?;
/// let mut q = Quire::new(fmt, 4);
/// let half = dp_posit::convert::from_f64(fmt, 0.5);
/// for _ in 0..4 {
///     q.add_product(half, half); // 4 × 0.25
/// }
/// assert_eq!(dp_posit::convert::to_f64(fmt, q.to_posit()), 1.0);
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Quire {
    fmt: PositFormat,
    acc: WideInt,
    /// Bit index of weight 2^0 inside the accumulator.
    offset: usize,
    capacity: u64,
    count: u64,
    nar: bool,
}

impl Quire {
    /// Creates a quire for `fmt` able to absorb `capacity` products without
    /// overflow. The register width follows paper eq. (4) plus one limb of
    /// engineering margin.
    pub fn new(fmt: PositFormat, capacity: u64) -> Self {
        let capacity = capacity.max(1);
        let width = Self::paper_width(fmt, capacity) + 64;
        let offset = 2 * fmt.max_scale() as usize;
        Quire {
            fmt,
            acc: WideInt::zero(width),
            offset,
            capacity,
            count: 0,
            nar: false,
        }
    }

    /// The accumulator width prescribed by paper eq. (4) for `k` products.
    pub fn paper_width(fmt: PositFormat, k: u64) -> usize {
        let n = fmt.n() as usize;
        let es = fmt.es();
        (1usize << (es + 2)) * (n - 2) + 2 + ceil_log2(k)
    }

    /// The format this quire accumulates.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// Number of products absorbed since the last [`Quire::clear`].
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True once a NaR has been absorbed; the eventual result is NaR.
    pub fn is_nar(&self) -> bool {
        self.nar
    }

    /// Resets to zero (keeps capacity).
    pub fn clear(&mut self) {
        self.acc.clear();
        self.count = 0;
        self.nar = false;
    }

    /// Accumulates the exact product `a × b` of two posits of this format.
    pub fn add_product(&mut self, a: u32, b: u32) {
        self.mac(a, b, false);
    }

    /// Accumulates the exact negated product `-(a × b)`.
    pub fn sub_product(&mut self, a: u32, b: u32) {
        self.mac(a, b, true);
    }

    fn mac(&mut self, a: u32, b: u32, negate: bool) {
        self.count += 1;
        debug_assert!(
            self.count <= self.capacity,
            "quire sized for {} products, got {}",
            self.capacity,
            self.count
        );
        let (ua, ub) = match (decode(self.fmt, a), decode(self.fmt, b)) {
            (Decoded::NaR, _) | (_, Decoded::NaR) => {
                self.nar = true;
                return;
            }
            (Decoded::Zero, _) | (_, Decoded::Zero) => return,
            (Decoded::Finite(ua), Decoded::Finite(ub)) => (ua, ub),
        };
        let prod = (ua.sig as u128) * (ub.sig as u128); // exact, [2^126, 2^128)
        let tz = prod.trailing_zeros() as i32;
        // value = (prod >> tz) × 2^(scale_a + scale_b − 126 + tz)
        let pos = ua.scale + ub.scale - 126 + tz + self.offset as i32;
        debug_assert!(pos >= 0, "posit products are multiples of minpos²");
        self.acc
            .add_shifted_u128(prod >> tz, pos as usize, negate ^ (ua.sign ^ ub.sign));
    }

    /// Accumulates a single posit value (used to seed the EMAC with a bias).
    pub fn add_posit(&mut self, p: u32) {
        match decode(self.fmt, p) {
            Decoded::NaR => self.nar = true,
            Decoded::Zero => {}
            Decoded::Finite(u) => {
                let tz = u.sig.trailing_zeros() as i32;
                let pos = u.scale - 63 + tz + self.offset as i32;
                debug_assert!(pos >= 0, "posit values are multiples of minpos");
                self.acc
                    .add_shifted_u128((u.sig >> tz) as u128, pos as usize, u.sign);
            }
        }
    }

    /// Rounds the accumulated sum to the nearest posit (single rounding).
    pub fn to_posit(&self) -> u32 {
        if self.nar {
            return self.fmt.nar_bits();
        }
        if self.acc.is_zero() {
            return self.fmt.zero_bits();
        }
        let sign = self.acc.is_negative();
        let mag = self.acc.magnitude();
        let msb = mag.msb_index().expect("nonzero magnitude");
        let (sig, sticky) = mag.extract_window(msb);
        let scale = msb as i32 - self.offset as i32;
        encode(self.fmt, sign, scale, sig, sticky)
    }

    /// Approximate `f64` view of the accumulator (diagnostics).
    pub fn to_f64(&self) -> f64 {
        if self.nar {
            return f64::NAN;
        }
        self.acc.to_f64() * 2f64.powi(-(self.offset as i32))
    }

    /// Convenience: correctly rounded dot product `Σ xs[i]·ys[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot(fmt: PositFormat, xs: &[u32], ys: &[u32]) -> u32 {
        assert_eq!(xs.len(), ys.len(), "dot product needs equal lengths");
        let mut q = Quire::new(fmt, xs.len() as u64);
        for (&x, &y) in xs.iter().zip(ys) {
            q.add_product(x, y);
        }
        q.to_posit()
    }
}

/// ⌈log2 k⌉ for k ≥ 1.
fn ceil_log2(k: u64) -> usize {
    k.next_power_of_two().trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{from_f64, to_f64};
    use crate::exact;

    fn fmt(n: u32, es: u32) -> PositFormat {
        PositFormat::new(n, es).unwrap()
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn paper_eq4_widths() {
        // Paper eq. (4): qsize = 2^(es+2)(n-2) + 2 + ceil(log2 k)
        assert_eq!(Quire::paper_width(fmt(8, 0), 1), 4 * 6 + 2);
        assert_eq!(Quire::paper_width(fmt(8, 1), 128), 8 * 6 + 2 + 7);
        assert_eq!(Quire::paper_width(fmt(16, 1), 16), 8 * 14 + 2 + 4);
        assert_eq!(Quire::paper_width(fmt(32, 2), 1024), 16 * 30 + 2 + 10);
    }

    #[test]
    fn simple_exact_sums() {
        let f = fmt(8, 0);
        let mut q = Quire::new(f, 8);
        let half = from_f64(f, 0.5);
        let quarter = from_f64(f, 0.25);
        q.add_product(half, half); // 0.25
        q.add_product(half, quarter); // 0.125
        q.add_product(quarter, quarter); // 0.0625
        assert_eq!(to_f64(f, q.to_posit()), 0.4375);
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        // (maxpos × 1) + (-maxpos × 1) + (minpos × 1) = minpos: a rounding
        // MAC loses the minpos; the quire must not.
        let f = fmt(8, 2);
        let one = f.one_bits();
        let mut q = Quire::new(f, 4);
        q.add_product(f.maxpos_bits(), one);
        q.sub_product(f.maxpos_bits(), one);
        q.add_product(f.minpos_bits(), one);
        assert_eq!(q.to_posit(), f.minpos_bits());
    }

    #[test]
    fn bias_seeding() {
        let f = fmt(8, 0);
        let mut q = Quire::new(f, 4);
        q.add_posit(from_f64(f, 2.0));
        q.add_product(from_f64(f, 1.0), from_f64(f, 1.0));
        assert_eq!(to_f64(f, q.to_posit()), 3.0);
    }

    #[test]
    fn nar_poisons_the_quire() {
        let f = fmt(8, 0);
        let mut q = Quire::new(f, 4);
        q.add_product(f.one_bits(), f.one_bits());
        q.add_product(f.nar_bits(), f.one_bits());
        assert!(q.is_nar());
        assert_eq!(q.to_posit(), f.nar_bits());
        q.clear();
        assert!(!q.is_nar());
        assert_eq!(q.to_posit(), 0);
    }

    #[test]
    fn zero_products_are_identity() {
        let f = fmt(8, 1);
        let mut q = Quire::new(f, 4);
        q.add_product(0, f.one_bits());
        q.add_product(f.one_bits(), 0);
        assert_eq!(q.to_posit(), 0);
    }

    #[test]
    fn matches_exact_oracle_on_random_dots() {
        // Independent check against the Dyadic oracle (different code path).
        let f = fmt(8, 1);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [1usize, 2, 3, 5, 8, 13] {
            for _ in 0..200 {
                let xs: Vec<u32> = (0..len).map(|_| (next() as u32) & 0xff).collect();
                let ys: Vec<u32> = (0..len).map(|_| (next() as u32) & 0xff).collect();
                if xs.iter().chain(&ys).any(|&b| b == f.nar_bits()) {
                    continue;
                }
                assert_eq!(
                    Quire::dot(f, &xs, &ys),
                    exact::exact_dot(f, &xs, &ys),
                    "xs={xs:?} ys={ys:?}"
                );
            }
        }
    }

    #[test]
    fn minpos_squared_accumulates() {
        let f = fmt(8, 2);
        let mut q = Quire::new(f, 2);
        q.add_product(f.minpos_bits(), f.minpos_bits());
        // 2^-48 is far below minpos = 2^-24; rounds up to minpos, not zero.
        assert_eq!(q.to_posit(), f.minpos_bits());
    }

    #[test]
    fn to_f64_diagnostic() {
        let f = fmt(8, 0);
        let mut q = Quire::new(f, 4);
        q.add_product(from_f64(f, 2.0), from_f64(f, 3.0));
        assert_eq!(q.to_f64(), 6.0);
        assert_eq!(q.count(), 1);
    }
}
