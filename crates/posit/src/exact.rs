//! Exact dyadic-rational reference arithmetic.
//!
//! Every posit (and every minifloat / fixed-point number) is a *dyadic
//! rational* `m × 2^e`. [`Dyadic`] represents such values exactly with a
//! `u128` magnitude, which comfortably covers single operations on formats
//! up to 16 bits and is used as the independent test oracle for the
//! correctly rounded operations in this workspace (`dp-posit` ops, quire,
//! and `dp-emac` units are all validated against it).
//!
//! The oracle's posit rounding ([`Dyadic::round_to_posit`]) is defined the
//! way the posit standard and the paper's Algorithm 2 define it: the exact
//! value's *infinite-width posit pattern* is truncated at `n` bits with
//! round-to-nearest, ties-to-even on the pattern. The midpoint between two
//! adjacent `n`-bit posits is exactly representable as an `(n+1)`-bit posit,
//! which gives a search-free, arithmetic-free rounding rule.

use crate::decode::{decode, Decoded};
use crate::format::PositFormat;
use crate::ops;
use std::cmp::Ordering;

/// An exact dyadic rational `sign × sig × 2^exp` (`sig = 0` iff zero).
///
/// Operations panic on `u128` overflow rather than losing precision; the
/// type is an oracle for ≤16-bit formats, not a general bignum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dyadic {
    /// True when negative.
    pub sign: bool,
    /// Magnitude significand (not necessarily normalized).
    pub sig: u128,
    /// Binary exponent applied to `sig`.
    pub exp: i32,
}

// `add`/`mul`/`neg` are deliberately inherent value-semantics methods (the
// oracle is used in chained expression style); the std operator traits are
// not implemented to keep the oracle's surface minimal and explicit.
#[allow(clippy::should_implement_trait)]
impl Dyadic {
    /// Exact zero.
    pub const ZERO: Dyadic = Dyadic {
        sign: false,
        sig: 0,
        exp: 0,
    };

    /// Creates a dyadic from sign/magnitude/exponent.
    pub fn new(sign: bool, sig: u128, exp: i32) -> Self {
        let mut d = Dyadic { sign, sig, exp };
        d.normalize();
        d
    }

    /// The exact value of a posit bit pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is NaR (the oracle handles reals only).
    pub fn from_posit(fmt: PositFormat, bits: u32) -> Self {
        match decode(fmt, bits) {
            Decoded::Zero => Dyadic::ZERO,
            Decoded::NaR => panic!("Dyadic::from_posit on NaR"),
            Decoded::Finite(u) => Dyadic::new(u.sign, u.sig as u128, u.scale - 63),
        }
    }

    /// The exact value of an `f64` (must be finite).
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity.
    pub fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "Dyadic::from_f64 requires a finite value");
        if v == 0.0 {
            return Dyadic::ZERO;
        }
        let bits = v.to_bits();
        let sign = bits >> 63 == 1;
        let exp_field = ((bits >> 52) & 0x7ff) as i32;
        let man = bits & ((1u64 << 52) - 1);
        if exp_field == 0 {
            Dyadic::new(sign, man as u128, -1074)
        } else {
            Dyadic::new(sign, ((1u64 << 52) | man) as u128, exp_field - 1075)
        }
    }

    /// Approximate `f64` value (for diagnostics).
    pub fn to_f64(self) -> f64 {
        let v = self.sig as f64 * 2f64.powi(self.exp);
        if self.sign {
            -v
        } else {
            v
        }
    }

    /// True when zero.
    pub fn is_zero(self) -> bool {
        self.sig == 0
    }

    fn normalize(&mut self) {
        if self.sig == 0 {
            self.sign = false;
            self.exp = 0;
            return;
        }
        let tz = self.sig.trailing_zeros();
        self.sig >>= tz;
        self.exp += tz as i32;
    }

    /// Exact product.
    ///
    /// # Panics
    ///
    /// Panics if the product magnitude exceeds 128 bits.
    pub fn mul(self, rhs: Dyadic) -> Dyadic {
        if self.is_zero() || rhs.is_zero() {
            return Dyadic::ZERO;
        }
        let sig = self
            .sig
            .checked_mul(rhs.sig)
            .expect("Dyadic::mul overflow: oracle limited to 128-bit products");
        Dyadic::new(self.sign ^ rhs.sign, sig, self.exp + rhs.exp)
    }

    /// Exact sum.
    ///
    /// # Panics
    ///
    /// Panics if aligning the operands exceeds 128 bits.
    pub fn add(self, rhs: Dyadic) -> Dyadic {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        let exp = self.exp.min(rhs.exp);
        let a = align(self, exp);
        let b = align(rhs, exp);
        let (sign, sig) = match (self.sign, rhs.sign) {
            (s, r) if s == r => (
                s,
                a.checked_add(b)
                    .expect("Dyadic::add overflow: oracle limited to 128 bits"),
            ),
            (s, _) => match a.cmp(&b) {
                Ordering::Equal => return Dyadic::ZERO,
                Ordering::Greater => (s, a - b),
                Ordering::Less => (!s, b - a),
            },
        };
        Dyadic::new(sign, sig, exp)
    }

    /// Exact negation.
    pub fn neg(self) -> Dyadic {
        if self.is_zero() {
            self
        } else {
            Dyadic {
                sign: !self.sign,
                ..self
            }
        }
    }

    /// Exact comparison.
    pub fn cmp_value(self, rhs: Dyadic) -> Ordering {
        match (self.is_zero(), rhs.is_zero()) {
            (true, true) => return Ordering::Equal,
            (true, false) => {
                return if rhs.sign {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, true) => {
                return if self.sign {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            _ => {}
        }
        match (self.sign, rhs.sign) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => cmp_mag(self, rhs),
            (true, true) => cmp_mag(rhs, self),
        }
    }

    /// Rounds the exact value to the nearest posit of `fmt`, with the posit
    /// rule: round-to-nearest-even on the (tapered) bit pattern, saturating
    /// at ±maxpos, never rounding a nonzero value to zero.
    ///
    /// Implemented by locating the value between two adjacent posits with a
    /// binary search on the (monotone) pattern ordering and comparing
    /// against their pattern-space midpoint, which is exactly the
    /// `(n+1)`-bit posit `(2·body + 1)`.
    pub fn round_to_posit(self, fmt: PositFormat) -> u32 {
        if self.is_zero() {
            return fmt.zero_bits();
        }
        let sign = self.sign;
        let mag = Dyadic {
            sign: false,
            ..self
        };
        // Binary search the largest positive posit body <= mag (bodies are
        // 1..=maxpos, monotone increasing in value).
        let (mut lo, mut hi) = (1u32, fmt.maxpos_bits());
        let body = if Dyadic::from_posit(fmt, lo).cmp_value(mag) != Ordering::Less {
            // mag <= minpos: posits never round to zero.
            lo
        } else if Dyadic::from_posit(fmt, hi).cmp_value(mag) != Ordering::Greater {
            // mag >= maxpos: saturate.
            hi
        } else {
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                match Dyadic::from_posit(fmt, mid).cmp_value(mag) {
                    Ordering::Greater => hi = mid,
                    Ordering::Equal => {
                        lo = mid;
                        hi = mid;
                    }
                    Ordering::Less => lo = mid,
                }
            }
            if lo == hi {
                lo // exact hit
            } else {
                // Pattern-space midpoint = the (n+1)-bit posit (2·lo + 1).
                let wide = PositFormat::new(fmt.n() + 1, fmt.es()).expect("oracle needs n+1 <= 32");
                let boundary = Dyadic::from_posit(wide, 2 * lo + 1);
                match mag.cmp_value(boundary) {
                    Ordering::Less => lo,
                    Ordering::Greater => hi,
                    Ordering::Equal => {
                        // Tie: even pattern wins.
                        if lo & 1 == 0 {
                            lo
                        } else {
                            hi
                        }
                    }
                }
            }
        };
        if sign {
            ops::neg(fmt, body)
        } else {
            body
        }
    }
}

fn align(d: Dyadic, exp: i32) -> u128 {
    let sh = (d.exp - exp) as u32;
    assert!(
        sh < 128 && d.sig.leading_zeros() >= sh,
        "Dyadic alignment overflow: oracle limited to 128 bits (shift {sh})"
    );
    d.sig << sh
}

fn cmp_mag(a: Dyadic, b: Dyadic) -> Ordering {
    // Compare a.sig×2^a.exp vs b.sig×2^b.exp via MSB positions then bits.
    let msb_a = a.exp + 127 - a.sig.leading_zeros() as i32;
    let msb_b = b.exp + 127 - b.sig.leading_zeros() as i32;
    if msb_a != msb_b {
        return msb_a.cmp(&msb_b);
    }
    // Left-align both significands and compare.
    let sa = a.sig << a.sig.leading_zeros();
    let sb = b.sig << b.sig.leading_zeros();
    sa.cmp(&sb)
}

/// Convenience: the correctly rounded posit sum of exact products
/// `Σ xs[i]·ys[i]` — the semantics the quire and the posit EMAC implement.
///
/// # Panics
///
/// Panics if intermediate alignment exceeds the 128-bit oracle range or if
/// any input is NaR.
pub fn exact_dot(fmt: PositFormat, xs: &[u32], ys: &[u32]) -> u32 {
    assert_eq!(xs.len(), ys.len());
    let mut acc = Dyadic::ZERO;
    for (&x, &y) in xs.iter().zip(ys) {
        acc = acc.add(Dyadic::from_posit(fmt, x).mul(Dyadic::from_posit(fmt, y)));
    }
    acc.round_to_posit(fmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert;

    fn fmt(n: u32, es: u32) -> PositFormat {
        PositFormat::new(n, es).unwrap()
    }

    #[test]
    fn dyadic_from_f64_and_back() {
        for v in [0.0, 1.0, -1.5, 0.75, 1024.0, -3.125e-3] {
            assert_eq!(Dyadic::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn add_and_mul_are_exact() {
        let a = Dyadic::from_f64(1.5);
        let b = Dyadic::from_f64(-0.25);
        assert_eq!(a.add(b).to_f64(), 1.25);
        assert_eq!(a.mul(b).to_f64(), -0.375);
        assert_eq!(a.add(a.neg()), Dyadic::ZERO);
    }

    #[test]
    fn cmp_value_total_order() {
        let vals = [-2.0, -0.5, 0.0, 0.25, 1.0, 3.0];
        for &x in &vals {
            for &y in &vals {
                assert_eq!(
                    Dyadic::from_f64(x).cmp_value(Dyadic::from_f64(y)),
                    x.partial_cmp(&y).unwrap(),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn round_to_posit_agrees_with_from_f64_exhaustively() {
        // from_f64 (pattern construction + encode) and the oracle
        // (search + (n+1)-bit boundary) are two independent rounding paths;
        // they must agree on every representable double midpointish value.
        for (n, es) in [(6, 0), (8, 0), (8, 1), (8, 2)] {
            let f = fmt(n, es);
            for bits in f.reals() {
                let v = convert::to_f64(f, bits);
                // Perturb toward neighbours to exercise rounding decisions.
                for factor in [1.0, 1.0 + 1e-9, 1.0 - 1e-9, 1.01, 0.99] {
                    let d = Dyadic::from_f64(v * factor);
                    assert_eq!(
                        d.round_to_posit(f),
                        convert::from_f64(f, v * factor),
                        "{f} value {v} × {factor}"
                    );
                }
            }
        }
    }

    #[test]
    fn round_ties_choose_even_pattern() {
        let f = fmt(8, 0);
        // 1.015625 is halfway between 0x40 (1.0) and 0x41; 0x40 is even.
        assert_eq!(Dyadic::from_f64(1.015625).round_to_posit(f), 0x40);
        // 48 is halfway (pattern space) between 32 (0x7e, even) and 64 (0x7f).
        assert_eq!(Dyadic::from_f64(48.0).round_to_posit(f), 0x7e);
    }

    #[test]
    fn exact_dot_small() {
        let f = fmt(8, 0);
        let xs: Vec<u32> = [1.0, 2.0, -3.0]
            .iter()
            .map(|&v| convert::from_f64(f, v))
            .collect();
        let ys: Vec<u32> = [0.5, 0.25, 1.0]
            .iter()
            .map(|&v| convert::from_f64(f, v))
            .collect();
        // 0.5 + 0.5 - 3.0 = -2.0
        assert_eq!(convert::to_f64(f, exact_dot(f, &xs, &ys)), -2.0);
    }
}
