//! Arbitrary-width two's-complement integers.
//!
//! The posit quire (paper eq. 4) and the EMAC accumulators (paper eq. 3)
//! need fixed-point registers far wider than 128 bits — e.g. a 32-bit posit
//! with `es = 2` requires a quire of ~500 bits. [`WideInt`] provides exactly
//! the operations those accumulators need: shifted add/subtract of a product,
//! sign/magnitude inspection, and windowed significand extraction with a
//! sticky flag for round-to-nearest-even.

use std::cmp::Ordering;
use std::fmt;

/// A two's-complement integer over `64 × limbs` bits (little-endian limbs).
///
/// All arithmetic wraps at the full limb width; callers size the integer
/// with enough headroom (the quire adds carry-guard bits per paper eq. 4)
/// so wrapping never occurs in correct usage. Debug builds assert that
/// shifted operands stay within capacity.
///
/// # Examples
///
/// ```
/// use dp_posit::WideInt;
/// let mut w = WideInt::zero(256);
/// w.add_shifted_u128(3, 200, false); // w += 3 << 200
/// w.add_shifted_u128(3, 200, true);  // w -= 3 << 200
/// assert!(w.is_zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WideInt {
    limbs: Vec<u64>,
}

impl WideInt {
    /// A zero value with capacity of at least `min_bits` bits.
    pub fn zero(min_bits: usize) -> Self {
        let limbs = min_bits.div_ceil(64).max(1);
        WideInt {
            limbs: vec![0; limbs],
        }
    }

    /// Capacity in bits (a multiple of 64).
    pub fn bit_capacity(&self) -> usize {
        self.limbs.len() * 64
    }

    /// Builds a wide integer from an `i128`, sign-extended to at least
    /// `min_bits` of capacity.
    pub fn from_i128(v: i128, min_bits: usize) -> Self {
        let mut w = Self::zero(min_bits.max(128));
        let uv = v as u128;
        w.limbs[0] = uv as u64;
        w.limbs[1] = (uv >> 64) as u64;
        let ext = if v < 0 { u64::MAX } else { 0 };
        for l in w.limbs.iter_mut().skip(2) {
            *l = ext;
        }
        w
    }

    /// True if every bit is clear.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// True if the sign (top) bit is set.
    pub fn is_negative(&self) -> bool {
        self.limbs.last().unwrap() >> 63 == 1
    }

    /// Clears the value to zero, keeping capacity.
    pub fn clear(&mut self) {
        self.limbs.iter_mut().for_each(|l| *l = 0);
    }

    /// `self += rhs`. Both operands must have equal capacity.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if capacities differ.
    pub fn add_assign_wide(&mut self, rhs: &WideInt) {
        debug_assert_eq!(self.limbs.len(), rhs.limbs.len());
        let mut carry = 0u64;
        for (a, b) in self.limbs.iter_mut().zip(&rhs.limbs) {
            let (s1, c1) = a.overflowing_add(*b);
            let (s2, c2) = s1.overflowing_add(carry);
            *a = s2;
            carry = (c1 | c2) as u64;
        }
    }

    /// Two's-complement negation in place.
    pub fn negate(&mut self) {
        for l in self.limbs.iter_mut() {
            *l = !*l;
        }
        self.add_small(1);
    }

    fn add_small(&mut self, v: u64) {
        let mut carry = v;
        for l in self.limbs.iter_mut() {
            if carry == 0 {
                break;
            }
            let (s, c) = l.overflowing_add(carry);
            *l = s;
            carry = c as u64;
        }
    }

    /// `self += (value << shift)` treating `value` as unsigned; subtracts
    /// instead when `negate` is set. This is the quire's workhorse: a posit
    /// product (`<= 128` bits) lands at the fixed-point position `shift`.
    /// Allocation-free (it runs once per MAC in the DNN inner loop).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the shifted value does not fit capacity.
    pub fn add_shifted_u128(&mut self, value: u128, shift: usize, negate: bool) {
        if value == 0 {
            return;
        }
        let n = self.limbs.len();
        let limb_off = shift / 64;
        let bit_off = shift % 64;
        let lo = value as u64;
        let hi = (value >> 64) as u64;
        let parts: [u64; 3] = if bit_off == 0 {
            [lo, hi, 0]
        } else {
            [
                lo << bit_off,
                (hi << bit_off) | (lo >> (64 - bit_off)),
                hi >> (64 - bit_off),
            ]
        };
        if negate {
            let mut borrow = 0u64;
            for (j, &p) in parts.iter().enumerate() {
                let i = limb_off + j;
                if i >= n {
                    debug_assert_eq!(p, 0, "WideInt overflow: shifted value exceeds capacity");
                    continue;
                }
                let (d1, b1) = self.limbs[i].overflowing_sub(p);
                let (d2, b2) = d1.overflowing_sub(borrow);
                self.limbs[i] = d2;
                borrow = (b1 | b2) as u64;
            }
            let mut i = limb_off + 3;
            while borrow != 0 && i < n {
                let (d, b) = self.limbs[i].overflowing_sub(1);
                self.limbs[i] = d;
                borrow = b as u64;
                i += 1;
            }
            // A borrow past the top limb wraps: two's-complement semantics.
        } else {
            let mut carry = 0u64;
            for (j, &p) in parts.iter().enumerate() {
                let i = limb_off + j;
                if i >= n {
                    debug_assert_eq!(p, 0, "WideInt overflow: shifted value exceeds capacity");
                    continue;
                }
                let (s1, c1) = self.limbs[i].overflowing_add(p);
                let (s2, c2) = s1.overflowing_add(carry);
                self.limbs[i] = s2;
                carry = (c1 | c2) as u64;
            }
            let mut i = limb_off + 3;
            while carry != 0 && i < n {
                let (s, c) = self.limbs[i].overflowing_add(1);
                self.limbs[i] = s;
                carry = c as u64;
                i += 1;
            }
        }
    }

    /// Absolute value (two's-complement magnitude), same capacity.
    pub fn magnitude(&self) -> WideInt {
        let mut m = self.clone();
        if m.is_negative() {
            m.negate();
        }
        m
    }

    /// Index of the most significant set bit (0-based from the LSB), or
    /// `None` when zero. Intended for non-negative values (magnitudes).
    pub fn msb_index(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return Some(i * 64 + 63 - l.leading_zeros() as usize);
            }
        }
        None
    }

    /// Reads bit `i`; indices at or beyond capacity read the sign extension.
    pub fn bit(&self, i: usize) -> bool {
        if i >= self.bit_capacity() {
            return self.is_negative();
        }
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Extracts the 64-bit window whose top bit is `msb` (bits
    /// `msb ..= msb-63`, zero-filled below index 0), plus a sticky flag set
    /// when any bit strictly below the window is set.
    ///
    /// Used to normalize a quire/accumulator magnitude into a left-aligned
    /// significand for final rounding.
    pub fn extract_window(&self, msb: usize) -> (u64, bool) {
        let mut sig = 0u64;
        for k in 0..64usize {
            if k > msb {
                break;
            }
            let idx = msb - k;
            if self.bit(idx) {
                sig |= 1u64 << (63 - k);
            }
        }
        let below = msb.saturating_sub(63); // bits [0, below) are under the window
        let full = below / 64;
        let rem = below % 64;
        let mut sticky = self.limbs[..full.min(self.limbs.len())]
            .iter()
            .any(|&l| l != 0);
        if rem > 0 && full < self.limbs.len() {
            sticky |= self.limbs[full] & ((1u64 << rem) - 1) != 0;
        }
        (sig, sticky)
    }

    /// Converts to `i128` when the value fits, otherwise `None`.
    pub fn to_i128(&self) -> Option<i128> {
        let lo = self.limbs[0] as u128;
        let hi = if self.limbs.len() > 1 {
            self.limbs[1] as u128
        } else if self.is_negative() {
            u64::MAX as u128
        } else {
            0
        };
        let v = ((hi << 64) | lo) as i128;
        let ext = if v < 0 { u64::MAX } else { 0 };
        for &l in self.limbs.iter().skip(2) {
            if l != ext {
                return None;
            }
        }
        // The sign of the truncated i128 must agree with the wide sign.
        if (v < 0) != self.is_negative() && self.limbs.len() > 2 {
            return None;
        }
        Some(v)
    }

    /// Approximate conversion to `f64` (correct to f64 precision); mainly
    /// for diagnostics and plotting.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let neg = self.is_negative();
        let mag = self.magnitude();
        let msb = mag.msb_index().expect("nonzero magnitude");
        let (sig, _) = mag.extract_window(msb);
        let v = sig as f64 * 2f64.powi(msb as i32 - 63);
        if neg {
            -v
        } else {
            v
        }
    }
}

impl PartialOrd for WideInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WideInt {
    fn cmp(&self, other: &Self) -> Ordering {
        debug_assert_eq!(self.limbs.len(), other.limbs.len());
        match (self.is_negative(), other.is_negative()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            // Same sign: two's complement compares like unsigned.
            _ => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
        }
    }
}

impl fmt::Debug for WideInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WideInt(0x")?;
        for l in self.limbs.iter().rev() {
            write!(f, "{l:016x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for WideInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} (~{})", self, self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_capacity() {
        let w = WideInt::zero(200);
        assert!(w.is_zero());
        assert!(!w.is_negative());
        assert_eq!(w.bit_capacity(), 256);
        assert_eq!(WideInt::zero(0).bit_capacity(), 64);
    }

    #[test]
    fn from_i128_roundtrip() {
        for v in [0i128, 1, -1, 42, -42, i128::MAX, i128::MIN, 1 << 100] {
            let w = WideInt::from_i128(v, 256);
            assert_eq!(w.to_i128(), Some(v), "roundtrip {v}");
            assert_eq!(w.is_negative(), v < 0);
        }
    }

    #[test]
    fn add_matches_i128() {
        let cases = [
            (5i128, 7i128),
            (-5, 7),
            (5, -7),
            (-5, -7),
            (i64::MAX as i128, i64::MAX as i128),
            ((1 << 90) - 3, -(1 << 89)),
        ];
        for (a, b) in cases {
            let mut w = WideInt::from_i128(a, 256);
            w.add_assign_wide(&WideInt::from_i128(b, 256));
            assert_eq!(w.to_i128(), Some(a + b), "{a} + {b}");
        }
    }

    #[test]
    fn negate_matches_i128() {
        for v in [0i128, 1, -1, 12345, -99999, 1 << 120] {
            let mut w = WideInt::from_i128(v, 256);
            w.negate();
            assert_eq!(w.to_i128(), Some(-v));
        }
    }

    #[test]
    fn shifted_add_and_sub() {
        let mut w = WideInt::zero(512);
        w.add_shifted_u128(0xdead_beef, 300, false);
        assert!(!w.is_zero());
        assert_eq!(w.msb_index(), Some(300 + 31)); // 0xdeadbeef has msb 31
        w.add_shifted_u128(0xdead_beef, 300, true);
        assert!(w.is_zero());
    }

    #[test]
    fn shifted_add_matches_i128_at_small_shift() {
        for shift in [0usize, 1, 17, 63, 64, 65] {
            let mut w = WideInt::zero(256);
            w.add_shifted_u128(0b1011, shift, false);
            assert_eq!(w.to_i128(), Some(0b1011i128 << shift), "shift {shift}");
        }
    }

    #[test]
    fn magnitude_and_msb() {
        let w = WideInt::from_i128(-260, 256);
        let m = w.magnitude();
        assert_eq!(m.to_i128(), Some(260));
        assert_eq!(m.msb_index(), Some(8));
        assert_eq!(WideInt::zero(128).msb_index(), None);
    }

    #[test]
    fn extract_window_aligns_and_sets_sticky() {
        // value = 0b101 << 100 | 1 : window at msb=102 gives 0b101 left-aligned,
        // sticky set because of the low 1.
        let mut w = WideInt::zero(256);
        w.add_shifted_u128(0b101, 100, false);
        w.add_shifted_u128(1, 0, false);
        let (sig, sticky) = w.extract_window(102);
        assert_eq!(sig, 0b101u64 << 61);
        assert!(sticky);
        // Without the low bit there is no sticky.
        let mut w2 = WideInt::zero(256);
        w2.add_shifted_u128(0b101, 100, false);
        let (sig2, sticky2) = w2.extract_window(102);
        assert_eq!(sig2, sig);
        assert!(!sticky2);
    }

    #[test]
    fn window_near_bottom_zero_fills() {
        let mut w = WideInt::zero(128);
        w.add_shifted_u128(0b11, 2, false); // value 12, msb = 3
        let (sig, sticky) = w.extract_window(3);
        assert_eq!(sig, 0b11u64 << 62);
        assert!(!sticky);
    }

    #[test]
    fn ordering_matches_i128() {
        let vals = [-5i128, -1, 0, 1, 3, 1 << 100, -(1 << 100)];
        for &a in &vals {
            for &b in &vals {
                let wa = WideInt::from_i128(a, 256);
                let wb = WideInt::from_i128(b, 256);
                assert_eq!(wa.cmp(&wb), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn to_f64_approximates() {
        let w = WideInt::from_i128(3 << 90, 256);
        let expect = 3.0 * 2f64.powi(90);
        assert_eq!(w.to_f64(), expect);
        assert_eq!(WideInt::from_i128(-7, 128).to_f64(), -7.0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", WideInt::zero(64)).is_empty());
    }
}
