//! Conversions between posits and other numeric types.

use crate::decode::{decode, Decoded};
use crate::encode::encode;
use crate::format::{exp2i, PositFormat};

/// Converts an `f64` to the nearest posit (round to nearest, ties to even
/// on the posit pattern). NaN and ±infinity map to NaR; ±0 maps to 0.
///
/// # Examples
///
/// ```
/// use dp_posit::{convert, PositFormat};
/// let fmt = PositFormat::new(8, 0)?;
/// assert_eq!(convert::from_f64(fmt, 1.0), 0x40);
/// assert_eq!(convert::from_f64(fmt, 1e9), fmt.maxpos_bits()); // saturates
/// assert_eq!(convert::from_f64(fmt, f64::NAN), fmt.nar_bits());
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
pub fn from_f64(fmt: PositFormat, v: f64) -> u32 {
    if v.is_nan() || v.is_infinite() {
        return fmt.nar_bits();
    }
    if v == 0.0 {
        return fmt.zero_bits();
    }
    let bits = v.to_bits();
    let sign = bits >> 63 == 1;
    let exp_field = ((bits >> 52) & 0x7ff) as i32;
    let man = bits & ((1u64 << 52) - 1);
    let (scale, sig) = if exp_field == 0 {
        // Subnormal double: value = man × 2^-1074.
        let lz = man.leading_zeros();
        (-1011 - lz as i32, man << lz)
    } else {
        // Normal double: value = (2^52 + man) × 2^(exp-1075).
        (exp_field - 1023, ((1u64 << 52) | man) << 11)
    };
    encode(fmt, sign, scale, sig, false)
}

/// Converts a posit to `f64`. Exact for every format whose scales fit the
/// f64 exponent range (all formats with `max_scale() <= 1023`, i.e. every
/// format used in the paper); wider formats saturate to ±infinity at the
/// extremes. NaR maps to NaN.
pub fn to_f64(fmt: PositFormat, bits: u32) -> f64 {
    match decode(fmt, bits) {
        Decoded::Zero => 0.0,
        Decoded::NaR => f64::NAN,
        Decoded::Finite(u) => {
            let tz = u.sig.trailing_zeros();
            let m = (u.sig >> tz) as f64; // <= 32 significant bits: exact
            let v = m * exp2i(u.scale - 63 + tz as i32);
            if u.sign {
                -v
            } else {
                v
            }
        }
    }
}

/// Converts an `i64` to the nearest posit.
pub fn from_i64(fmt: PositFormat, v: i64) -> u32 {
    // i64 -> f64 can lose low bits for |v| > 2^53; go through exact path.
    if v == 0 {
        return fmt.zero_bits();
    }
    let sign = v < 0;
    let mag = v.unsigned_abs();
    let lz = mag.leading_zeros();
    let sig = mag << lz;
    let scale = 63 - lz as i32;
    encode(fmt, sign, scale, sig, false)
}

/// Re-rounds a posit of one format into another format.
pub fn convert(src: PositFormat, dst: PositFormat, bits: u32) -> u32 {
    match decode(src, bits) {
        Decoded::Zero => dst.zero_bits(),
        Decoded::NaR => dst.nar_bits(),
        Decoded::Finite(u) => encode(dst, u.sign, u.scale, u.sig, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(n: u32, es: u32) -> PositFormat {
        PositFormat::new(n, es).unwrap()
    }

    #[test]
    fn f64_roundtrip_is_identity_on_all_patterns() {
        for (n, es) in [(5, 0), (6, 1), (8, 0), (8, 1), (8, 2), (16, 1), (16, 2)] {
            let f = fmt(n, es);
            for bits in f.reals() {
                let v = to_f64(f, bits);
                assert_eq!(from_f64(f, v), bits, "{f} {bits:#x} -> {v}");
            }
            assert!(to_f64(f, f.nar_bits()).is_nan());
            assert_eq!(from_f64(f, f64::NAN), f.nar_bits());
        }
    }

    #[test]
    fn known_values_p8e0() {
        let f = fmt(8, 0);
        assert_eq!(from_f64(f, 1.0), 0x40);
        assert_eq!(from_f64(f, -1.0), 0xc0);
        assert_eq!(from_f64(f, 0.5), 0x20);
        assert_eq!(from_f64(f, 2.0), 0x60);
        assert_eq!(from_f64(f, 64.0), 0x7f);
        assert_eq!(from_f64(f, 1.0 / 64.0), 0x01);
        assert_eq!(to_f64(f, 0x48), 1.25);
    }

    #[test]
    fn saturation_behaviour() {
        let f = fmt(8, 2);
        assert_eq!(from_f64(f, 1e300), f.maxpos_bits());
        assert_eq!(from_f64(f, -1e300), f.nar_bits() | 1); // -maxpos pattern
        assert_eq!(from_f64(f, 1e-300), f.minpos_bits());
        assert_eq!(from_f64(f, f64::INFINITY), f.nar_bits());
    }

    #[test]
    fn subnormal_doubles_convert() {
        let f = fmt(8, 2);
        let tiny = f64::from_bits(1); // smallest subnormal
        assert_eq!(from_f64(f, tiny), f.minpos_bits());
        assert_eq!(from_f64(f, -tiny), from_f64(f, -f.min_value()));
    }

    #[test]
    fn from_i64_values() {
        let f = fmt(16, 1);
        for v in [-100i64, -3, -1, 0, 1, 2, 7, 255, 4096] {
            assert_eq!(to_f64(f, from_i64(f, v)), v as f64, "i64 {v}");
        }
        // Saturation for huge integers
        assert_eq!(from_i64(fmt(8, 0), i64::MAX), fmt(8, 0).maxpos_bits());
    }

    #[test]
    fn cross_format_conversion() {
        let p16 = fmt(16, 1);
        let p8 = fmt(8, 0);
        // 1.3125 is exact in p16e1; narrowing must agree with direct rounding.
        let x = from_f64(p16, 1.3125);
        assert_eq!(convert(p16, p8, x), from_f64(p8, 1.3125));
        assert_eq!(convert(p16, p8, p16.nar_bits()), p8.nar_bits());
        assert_eq!(convert(p16, p8, 0), 0);
        // Widening an exact value is lossless.
        let y = from_f64(p8, 1.25);
        assert_eq!(to_f64(p16, convert(p8, p16, y)), 1.25);
    }
}
