//! Posit data extraction (paper Algorithm 1).
//!
//! Decoding turns an `n`-bit pattern into sign, regime, exponent and
//! fraction. The regime field has dynamic width (unary run-length code,
//! paper Table I), which is what makes this step nontrivial in hardware;
//! in software we mirror the same two's-complement + leading-zero-count
//! structure the paper uses.

use crate::format::PositFormat;

/// A decoded finite nonzero posit:
/// `value = (-1)^sign × sig × 2^(scale - 63)` with `sig`'s MSB set
/// (i.e. the significand `1.f` left-aligned in a `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unpacked {
    /// Sign bit (true = negative).
    pub sign: bool,
    /// Binary scale `k·2^es + e` (paper eq. 2 collapsed to a power of two).
    pub scale: i32,
    /// Left-aligned significand with the hidden bit at position 63.
    pub sig: u64,
}

/// Result of decoding a posit bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// The all-zeros pattern.
    Zero,
    /// "Not a Real" (`1 0...0`): infinities, 0/0, sqrt(-1), ...
    NaR,
    /// A finite nonzero value.
    Finite(Unpacked),
}

impl Decoded {
    /// Returns the unpacked fields, or `None` for zero / NaR.
    pub fn finite(self) -> Option<Unpacked> {
        match self {
            Decoded::Finite(u) => Some(u),
            _ => None,
        }
    }
}

/// Decodes the low `n` bits of `bits` according to `fmt`.
///
/// Mirrors paper Algorithm 1: take the two's complement when negative,
/// use a regime-check bit to fold leading-ones runs into leading-zeros
/// (so a single leading-zero detector suffices), then split exponent and
/// fraction. Regime/exponent fields truncated by the width are read as if
/// the pattern were zero-extended, per the posit standard.
///
/// # Examples
///
/// ```
/// use dp_posit::{decode, Decoded, PositFormat};
/// let fmt = PositFormat::new(8, 0)?;
/// let one = decode(fmt, 0x40).finite().unwrap();
/// assert_eq!((one.sign, one.scale, one.sig), (false, 0, 1 << 63));
/// assert_eq!(decode(fmt, 0x00), Decoded::Zero);
/// assert_eq!(decode(fmt, 0x80), Decoded::NaR);
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
pub fn decode(fmt: PositFormat, bits: u32) -> Decoded {
    let n = fmt.n();
    let x = bits & fmt.mask();
    if x == 0 {
        return Decoded::Zero;
    }
    if x == fmt.nar_bits() {
        return Decoded::NaR;
    }
    let sign = (x >> (n - 1)) & 1 == 1;
    // Two's complement of the n-bit field for negative inputs (Alg. 1 line 4).
    let y = if sign {
        x.wrapping_neg() & fmt.mask()
    } else {
        x
    };
    // Left-align the n-1 body bits (below the sign) at bit 63. Bits below the
    // body are zero, which matches the zero-extension decode convention.
    let body = (y as u64) << (65 - n);
    // Regime check (Alg. 1 line 5): fold a ones-run into a zeros-run.
    let rc = body >> 63 == 1;
    let inv = if rc { !body } else { body };
    let run = inv.leading_zeros(); // >= 1
    let k: i32 = if rc { run as i32 - 1 } else { -(run as i32) };
    // Shift out regime and its terminator (possibly virtual past the width).
    let consumed = run + 1;
    let rest = if consumed >= 64 { 0 } else { body << consumed };
    let es = fmt.es();
    let exp = if es == 0 {
        0
    } else {
        (rest >> (64 - es)) as i32
    };
    let frac = if es == 0 { rest } else { rest << es };
    let sig = (1u64 << 63) | (frac >> 1);
    let scale = k * (1i32 << es) + exp;
    Decoded::Finite(Unpacked { sign, scale, sig })
}

/// Returns the regime value `k` of a finite posit (paper Table I), mainly
/// useful for diagnostics and for reproducing Table I.
pub fn regime(fmt: PositFormat, bits: u32) -> Option<i32> {
    decode(fmt, bits)
        .finite()
        .map(|u| u.scale.div_euclid(fmt.useed_log2()))
}

#[cfg(test)]
// Binary literals below are grouped by posit field (sign_regime_exp_frac),
// not by nibble — that is the point of the tests.
#[allow(clippy::unusual_byte_groupings)]
mod tests {
    use super::*;

    fn fmt(n: u32, es: u32) -> PositFormat {
        PositFormat::new(n, es).unwrap()
    }

    fn scale_of(f: PositFormat, bits: u32) -> i32 {
        decode(f, bits).finite().unwrap().scale
    }

    #[test]
    fn specials() {
        let f = fmt(8, 1);
        assert_eq!(decode(f, 0), Decoded::Zero);
        assert_eq!(decode(f, 0x80), Decoded::NaR);
        assert_eq!(decode(f, 0x100), Decoded::Zero, "masks to width");
    }

    #[test]
    fn p8e0_known_values() {
        let f = fmt(8, 0);
        // 0x40 = +1.0
        let u = decode(f, 0x40).finite().unwrap();
        assert_eq!((u.sign, u.scale, u.sig), (false, 0, 1 << 63));
        // 0x60 = regime 110 -> k=1 -> 2.0
        assert_eq!(scale_of(f, 0x60), 1);
        // 0x20 = regime 01 -> k=-1 -> 0.5
        assert_eq!(scale_of(f, 0x20), -1);
        // maxpos 0x7f: regime all ones -> k = n-2 = 6
        assert_eq!(scale_of(f, 0x7f), 6);
        // minpos 0x01: regime 0000001 -> k = -6
        assert_eq!(scale_of(f, 0x01), -6);
        // 0x48 = 0 10 01000 -> 1.f = 1.01 -> 1.25
        let u = decode(f, 0x48).finite().unwrap();
        assert_eq!(u.scale, 0);
        assert_eq!(u.sig, (1u64 << 63) | (1u64 << 61));
    }

    #[test]
    fn negative_values_use_twos_complement() {
        let f = fmt(8, 0);
        // -1.0 is the two's complement of 0x40: 0xc0
        let u = decode(f, 0xc0).finite().unwrap();
        assert_eq!((u.sign, u.scale, u.sig), (true, 0, 1 << 63));
        // -0.5: two's complement of 0x20 -> 0xe0
        let u = decode(f, 0xe0).finite().unwrap();
        assert_eq!((u.sign, u.scale), (true, -1));
    }

    #[test]
    fn paper_table_i_regimes() {
        // Table I: 0001 -> -3, 001 -> -2, 01 -> -1, 10 -> 0, 110 -> 1, 1110 -> 2.
        // Embed each run in a 6-bit es=0 posit body (sign 0) padded with zeros.
        let f = fmt(6, 0);
        assert_eq!(regime(f, 0b0_00010), Some(-3));
        assert_eq!(regime(f, 0b0_00100), Some(-2));
        assert_eq!(regime(f, 0b0_01000), Some(-1));
        assert_eq!(regime(f, 0b0_10000), Some(0));
        assert_eq!(regime(f, 0b0_11000), Some(1));
        assert_eq!(regime(f, 0b0_11100), Some(2));
    }

    #[test]
    fn exponent_field_extraction() {
        let f = fmt(8, 2);
        // 0 10 11 000: k=0, e=3 -> scale 3
        assert_eq!(scale_of(f, 0b0_10_11_000), 3);
        // 0 110 10 00: k=1, e=2 -> scale 4*1+2 = 6
        assert_eq!(scale_of(f, 0b0_110_10_00), 6);
    }

    #[test]
    fn truncated_exponent_reads_as_zero_extension() {
        let f = fmt(8, 2);
        // 0 111110 1: regime k=4 (run 5), only one exponent bit "1" visible,
        // zero-extended exponent = 0b10 = 2 -> scale = 4*4 + 2 = 18.
        assert_eq!(scale_of(f, 0b0_111110_1), 18);
        // maxpos: all ones regime, k = 6, scale = 24
        assert_eq!(scale_of(f, 0x7f), 24);
    }

    #[test]
    fn fraction_is_left_aligned_after_exponent() {
        let f = fmt(8, 1);
        // 0 10 1 1010: k=0, e=1, f=1010 -> sig = 1.1010, scale 1
        let u = decode(f, 0b0_10_1_1010).finite().unwrap();
        assert_eq!(u.scale, 1);
        assert_eq!(u.sig >> 59, 0b11010);
        assert_eq!(u.sig & ((1 << 59) - 1), 0);
    }

    #[test]
    fn n32_widest_format() {
        let f = fmt(32, 2);
        let one = f.one_bits();
        assert_eq!(scale_of(f, one), 0);
        assert_eq!(scale_of(f, f.maxpos_bits()), f.max_scale());
        assert_eq!(scale_of(f, 1), -f.max_scale());
    }
}
