//! Table-driven posit decode.
//!
//! The paper's whole premise is that ≤8-bit EMAC arrays are cheap because
//! the pattern space is tiny (Fig. 8 counts LUTs per format). The software
//! analogue — "Template-Based Posit Multiplication" (Murillo & Del Barrio,
//! 2019) — precomputes per-format tables once so the hot loop becomes a
//! table lookup instead of re-running Algorithm 1's bit-field extraction
//! on every multiply-accumulate.
//!
//! A [`DecodeLut`] holds the fully decoded [`Decoded`] for all `2^n`
//! patterns of one format. Formats up to [`MAX_LUT_WIDTH`] bits qualify
//! (4096 entries × 16 B = 64 KiB worst case). Formats of 13 to
//! [`MAX_SPLIT_WIDTH`] bits — the paper's §IV comparison sweep runs up to
//! \[16,1\] — use the **split-table** scheme instead ([`SplitLut`]): a
//! 256-entry regime-prefix table indexed by the top 8 bits of the
//! sign-folded body yields the regime length, its scale contribution and
//! (implicitly) the fraction-shift, composed with a direct fraction
//! extraction — table-driven regime handling without a 64 K-entry
//! monolithic table per format. Only formats wider than `MAX_SPLIT_WIDTH`
//! fall back to the bit-field [`decode`] path. [`cached`] /
//! [`split_cached`] memoize one table per format for the life of the
//! process, so callers share tables across units, layers and threads.

use crate::decode::{decode, Decoded, Unpacked};
use crate::format::PositFormat;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Widest format that gets a monolithic decode table: `2^12` entries keep
/// every table at or below 64 KiB, comfortably inside L2 for the ≤8-bit
/// formats the paper evaluates (whose tables are ≤4 KiB and live in L1).
/// Formats of `MAX_LUT_WIDTH + 1 ..= MAX_SPLIT_WIDTH` bits use the
/// [`SplitLut`] scheme; only wider ones run bit-field [`decode`].
pub const MAX_LUT_WIDTH: u32 = 12;

/// Widest format that gets a split (regime-prefix + direct fraction)
/// table. Covers the whole §IV sweep, whose widest format is posit⟨16,1⟩.
pub const MAX_SPLIT_WIDTH: u32 = 16;

/// A precomputed decode table for one posit format.
///
/// Indexing is by the raw bit pattern (masked to the format width); the
/// entry is exactly what [`decode`] returns for that pattern, so swapping
/// one for the other is bit-identical by construction — and verified
/// exhaustively by the `lut_equivalence` test suite.
///
/// # Examples
///
/// ```
/// use dp_posit::{decode, lut, PositFormat};
/// let fmt = PositFormat::new(8, 0)?;
/// let lut = lut::cached(fmt).expect("8-bit formats are table-driven");
/// for bits in fmt.patterns() {
///     assert_eq!(lut.decode(bits), decode(fmt, bits));
/// }
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodeLut {
    fmt: PositFormat,
    entries: Vec<Decoded>,
}

impl DecodeLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_LUT_WIDTH`] (table-driven decode would waste cache there).
    pub fn build(fmt: PositFormat) -> Option<Self> {
        if fmt.n() > MAX_LUT_WIDTH {
            return None;
        }
        let entries = fmt.patterns().map(|bits| decode(fmt, bits)).collect();
        Some(DecodeLut { fmt, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// Table-driven decode of the low `n` bits of `bits`; bit-identical to
    /// [`decode`]`(self.format(), bits)`.
    #[inline]
    pub fn decode(&self, bits: u32) -> Decoded {
        self.entries[(bits & self.fmt.mask()) as usize]
    }

    /// Number of table entries (`2^n`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: every format has at least `2^3` patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide decode table for `fmt`, built on first use, or `None`
/// for formats wider than [`MAX_LUT_WIDTH`].
///
/// Tables are leaked intentionally: the format space is small and finite
/// (at most 70 qualifying `(n, es)` pairs), each table is built once, and
/// a `'static` borrow lets hot loops hold the table without reference
/// counting.
pub fn cached(fmt: PositFormat) -> Option<&'static DecodeLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static DecodeLut>>> = OnceLock::new();
    if fmt.n() > MAX_LUT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("posit LUT cache poisoned");
    Some(
        map.entry((fmt.n(), fmt.es()))
            .or_insert_with(|| Box::leak(Box::new(DecodeLut::build(fmt).expect("width checked")))),
    )
}

/// One regime-prefix table entry: what the top 8 body bits reveal about
/// the regime field.
#[derive(Debug, Clone, Copy)]
struct RegimePrefix {
    /// Bits consumed by the regime run plus its terminator (`run + 1`),
    /// or 0 when the prefix is all-equal and the run extends past it.
    consumed: u8,
    /// The regime's scale contribution `k · 2^es` when resolved.
    scale_base: i16,
}

/// Split-table decode for 13–16-bit posits: a 256-entry **regime-prefix
/// table** composed with direct exponent/fraction extraction.
///
/// Algorithm 1's only dynamic-width field is the regime; once the regime
/// run length is known, exponent and fraction fall out of two constant
/// shifts. The split scheme therefore tabulates exactly the regime: the
/// sign-folded body is left-aligned in a `u64` and its top 8 bits index a
/// 256-entry table holding the run length (= the fraction-shift
/// descriptor, since `rest = body << (run+1)`) and the scale contribution
/// `k·2^es`. Unless those 8 bits are all-equal (a ≥ 8-bit regime run —
/// the extreme-magnitude tail of the encoding space), the lookup fully
/// resolves the regime; the tail cases resolve with the same
/// leading-zero detector the bit-field path uses. Either way the fraction
/// is then extracted directly, so a 16-bit format needs 256 table entries
/// (1 KiB) instead of a 65 536-entry monolithic [`DecodeLut`] (1 MiB).
///
/// Decode results are bit-identical to [`decode`] by construction,
/// verified exhaustively over all `2^16` patterns by the
/// `split_lut_exhaustive` test suite.
///
/// # Examples
///
/// ```
/// use dp_posit::{decode, lut, PositFormat};
/// let fmt = PositFormat::new(16, 1)?;
/// let lut = lut::split_cached(fmt).expect("13–16-bit formats are split-table-driven");
/// for bits in (0..=0xffffu32).step_by(127) {
///     assert_eq!(lut.decode(bits), decode(fmt, bits));
/// }
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SplitLut {
    fmt: PositFormat,
    prefix: [RegimePrefix; 256],
    /// `F = n − 2 − es`: significand width including the hidden bit.
    fbits: u32,
    /// `max_scale`, the fused-entry scale bias.
    max_scale: i32,
}

impl SplitLut {
    /// Builds the split table for `fmt`, or `None` unless
    /// [`MAX_LUT_WIDTH`]` < n ≤ `[`MAX_SPLIT_WIDTH`] (narrower formats use
    /// the monolithic [`DecodeLut`]; wider ones the bit-field [`decode`]).
    pub fn build(fmt: PositFormat) -> Option<Self> {
        if fmt.n() <= MAX_LUT_WIDTH || fmt.n() > MAX_SPLIT_WIDTH {
            return None;
        }
        let es = fmt.es();
        let mut prefix = [RegimePrefix {
            consumed: 0,
            scale_base: 0,
        }; 256];
        for (idx, entry) in prefix.iter_mut().enumerate() {
            let body = (idx as u64) << 56;
            let rc = body >> 63 == 1;
            let inv = if rc { !body } else { body };
            let run = inv.leading_zeros();
            if run >= 8 {
                // All 8 prefix bits equal: the run extends past the
                // prefix; `consumed: 0` marks the LZD fallback.
                continue;
            }
            let k: i32 = if rc { run as i32 - 1 } else { -(run as i32) };
            *entry = RegimePrefix {
                consumed: (run + 1) as u8,
                scale_base: (k << es) as i16,
            };
        }
        Some(SplitLut {
            fmt,
            prefix,
            fbits: fmt.n() - 2 - es,
            max_scale: fmt.max_scale(),
        })
    }

    /// The format this table was built for.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// Regime resolution via the prefix table: `(consumed, k·2^es)` for
    /// the left-aligned sign-folded body.
    #[inline]
    fn regime(&self, body: u64) -> (u32, i32) {
        let p = self.prefix[(body >> 56) as usize];
        if p.consumed != 0 {
            (p.consumed as u32, p.scale_base as i32)
        } else {
            // ≥ 8-bit regime run: resolve with the leading-zero detector
            // (for n ≤ 16 the run is at most 15 bits, so `consumed < 64`).
            let rc = body >> 63 == 1;
            let inv = if rc { !body } else { body };
            let run = inv.leading_zeros();
            let k: i32 = if rc { run as i32 - 1 } else { -(run as i32) };
            (run + 1, k << self.fmt.es())
        }
    }

    /// Shared unpack for finite nonzero patterns (`x` already masked,
    /// nonzero and not NaR): sign fold, body alignment, prefix-table
    /// regime resolution and exponent extraction, yielding `(sign, scale,
    /// frac)` with `frac` the explicit fraction left-aligned at bit 63.
    /// Both [`SplitLut::decode`] and [`SplitLut::entry`] build on this, so
    /// the two views cannot drift apart.
    #[inline]
    fn unpack_finite(&self, x: u32) -> (bool, i32, u64) {
        let fmt = self.fmt;
        let n = fmt.n();
        let sign = (x >> (n - 1)) & 1 == 1;
        let y = if sign {
            x.wrapping_neg() & fmt.mask()
        } else {
            x
        };
        let body = (y as u64) << (65 - n);
        let (consumed, scale_base) = self.regime(body);
        debug_assert!(consumed < 64, "split formats have ≤ 16-bit regimes");
        let rest = body << consumed;
        let es = fmt.es();
        let exp = if es == 0 {
            0
        } else {
            (rest >> (64 - es)) as i32
        };
        let frac = if es == 0 { rest } else { rest << es };
        (sign, scale_base + exp, frac)
    }

    /// Split-table decode of the low `n` bits of `bits`; bit-identical to
    /// [`decode`]`(self.format(), bits)`.
    #[inline]
    pub fn decode(&self, bits: u32) -> Decoded {
        let x = bits & self.fmt.mask();
        if x == 0 {
            return Decoded::Zero;
        }
        if x == self.fmt.nar_bits() {
            return Decoded::NaR;
        }
        let (sign, scale, frac) = self.unpack_finite(x);
        Decoded::Finite(Unpacked {
            sign,
            scale,
            sig: (1u64 << 63) | (frac >> 1),
        })
    }

    /// The fused EMAC operand for the low `n` bits of `bits`, packed
    /// exactly like [`EmacLut`]'s entries (same [`EmacEntry`] layout), but
    /// produced by the prefix table + direct fraction extraction instead
    /// of a per-pattern table.
    #[inline]
    pub fn entry(&self, bits: u32) -> EmacEntry {
        let x = bits & self.fmt.mask();
        if x == 0 {
            return EmacEntry(0);
        }
        if x == self.fmt.nar_bits() {
            return EmacEntry(EmacEntry::NAR_BIT);
        }
        let (sign, scale, frac) = self.unpack_finite(x);
        // field = sig >> (64 − F) with sig = hidden | frac >> 1.
        let field = (1u64 << (self.fbits - 1)) | (frac >> (65 - self.fbits));
        let biased = (scale + self.max_scale) as u64;
        debug_assert!(field < (1 << 16) && biased < (1 << 16));
        EmacEntry(field | (biased << 16) | if sign { EmacEntry::SIGN_BIT } else { 0 })
    }
}

/// The process-wide split table for `fmt` (leaked like [`cached`]'s
/// tables), or `None` outside the `MAX_LUT_WIDTH < n ≤ MAX_SPLIT_WIDTH`
/// band — each width band has exactly one decode scheme, so no call site
/// can mix table and fallback paths for the same format.
pub fn split_cached(fmt: PositFormat) -> Option<&'static SplitLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static SplitLut>>> = OnceLock::new();
    if fmt.n() <= MAX_LUT_WIDTH || fmt.n() > MAX_SPLIT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("posit split LUT cache poisoned");
    Some(
        map.entry((fmt.n(), fmt.es()))
            .or_insert_with(|| Box::leak(Box::new(SplitLut::build(fmt).expect("width checked")))),
    )
}

/// One fused EMAC operand: the decode *and* the EMAC front-end folded into
/// a single packed word, so the multiply-accumulate inner loop is two
/// loads, one small multiply and one shifted add. Layout:
///
/// ```text
/// bits  0..16   integer significand, hidden bit included (F = n−2−es bits)
/// bits 16..32   scale + max_scale (non-negative "per-operand bias")
/// bit  32       sign
/// bit  33       NaR flag
/// ```
///
/// Zero encodes as the all-clear word (significand 0), so zero operands
/// fall out of the product test rather than needing their own branch. Two
/// operands multiply as `field·field × 2^(bias_a + bias_b)` positioned at
/// `scale_a + scale_b + 2·max_scale` — exactly Algorithm 2's biased scale
/// factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmacEntry(pub u64);

impl EmacEntry {
    /// Bit flagging NaR.
    pub const NAR_BIT: u64 = 1 << 33;
    /// Bit carrying the sign.
    pub const SIGN_BIT: u64 = 1 << 32;

    /// The `F`-bit integer significand (hidden bit included), 0 for zero
    /// and NaR.
    #[inline]
    pub fn field(self) -> u64 {
        self.0 & 0xffff
    }

    /// `scale + max_scale` (always non-negative).
    #[inline]
    pub fn biased_scale(self) -> u64 {
        (self.0 >> 16) & 0xffff
    }

    /// Sign of the operand.
    #[inline]
    pub fn sign(self) -> bool {
        self.0 & Self::SIGN_BIT != 0
    }

    /// Whether this pattern is NaR.
    #[inline]
    pub fn is_nar(self) -> bool {
        self.0 & Self::NAR_BIT != 0
    }
}

/// Widest format that gets a **finished-product table** ([`ProductLut`]):
/// `2^(2n)` entries keep the 8-bit table at 256 KiB (inside L2), and the
/// paper's headline formats are all ≤ 8 bits.
pub const MAX_PRODUCT_WIDTH: u32 = 8;

/// One finished product: everything Algorithm 1 *and* Algorithm 2's
/// multiply stage produce for a `(weight, activation)` pair, fused into a
/// single word so the MAC inner loop has **no multiply at all**. Layout:
///
/// ```text
/// bits  0..16   field(w) × field(a), the exact 2F-bit significand product
/// bits 16..26   biased_scale(w) + biased_scale(a) — Algorithm 2 line 12's
///               sf + 2·max_scale, the register shift of the product LSB
/// bit  26       sign of the product
/// bit  27       NaR (either operand): product is 0, accumulator must poison
/// ```
///
/// Zero operands produce the all-clear word (product 0), so zero needs no
/// branch; a NaR pair also carries product 0, so a poisoned accumulation
/// leaves the register untouched exactly like the scalar datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductEntry(pub u32);

impl ProductEntry {
    /// Bit flagging NaR (either operand).
    pub const NAR_BIT: u32 = 1 << 27;
    /// Bit carrying the product sign.
    pub const SIGN_BIT: u32 = 1 << 26;

    /// The exact significand product `field(w) × field(a)` (`< 2^(2F)`),
    /// 0 when either operand is zero or NaR.
    #[inline]
    pub fn product(self) -> u64 {
        (self.0 & 0xffff) as u64
    }

    /// The biased register shift `biased_scale(w) + biased_scale(a)`.
    #[inline]
    pub fn shift(self) -> u32 {
        (self.0 >> 16) & 0x3ff
    }

    /// Sign of the product.
    #[inline]
    pub fn negate(self) -> bool {
        self.0 & Self::SIGN_BIT != 0
    }

    /// Whether either operand was NaR.
    #[inline]
    pub fn is_nar(self) -> bool {
        self.0 & Self::NAR_BIT != 0
    }
}

/// A finished-product table: one [`ProductEntry`] per `(weight,
/// activation)` pattern pair — `2^(2n)` entries, ≤ 256 KiB at 8 bits.
///
/// Where [`EmacLut`] tabulates Algorithm 1 + the operand half of
/// Algorithm 2 *per operand* (leaving one multiply per MAC), this table
/// goes one step further and tabulates the **multiply itself**, so the
/// n ≤ 8 EMAC inner loop is a single load and a shifted add. Entries are
/// derived from the same fused [`EmacEntry`] words, so the two schemes
/// cannot drift apart; the `kernel_equivalence` suite additionally pins
/// bit-identity against the reference datapath over all `2^(2n)` pairs.
#[derive(Debug, Clone)]
pub struct ProductLut {
    fmt: PositFormat,
    n: u32,
    entries: Vec<ProductEntry>,
}

impl ProductLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_PRODUCT_WIDTH`] or has no EMAC datapath (`es > n − 3`).
    pub fn build(fmt: PositFormat) -> Option<Self> {
        if fmt.n() > MAX_PRODUCT_WIDTH {
            return None;
        }
        let operands = EmacLut::build(fmt)?;
        let n = fmt.n();
        let mut entries = Vec::with_capacity(1usize << (2 * n));
        for w in fmt.patterns() {
            let ew = operands.entry(w);
            for a in fmt.patterns() {
                let ea = operands.entry(a);
                entries.push(if (ew.0 | ea.0) & EmacEntry::NAR_BIT != 0 {
                    ProductEntry(ProductEntry::NAR_BIT)
                } else {
                    let prod = ew.field() * ea.field();
                    let shift = (ew.biased_scale() + ea.biased_scale()) as u32;
                    debug_assert!(prod < (1 << 16) && shift < (1 << 10));
                    let sign = if (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0 {
                        ProductEntry::SIGN_BIT
                    } else {
                        0
                    };
                    ProductEntry(prod as u32 | (shift << 16) | sign)
                });
            }
        }
        Some(ProductLut { fmt, n, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// The finished product for the pair (low `n` bits of each operand).
    #[inline]
    pub fn entry(&self, weight: u32, activation: u32) -> ProductEntry {
        let mask = self.fmt.mask();
        self.entries[(((weight & mask) as usize) << self.n) | (activation & mask) as usize]
    }

    /// The contiguous `2^n`-entry row for `weight`: element `a` of the
    /// returned slice is `entry(weight, a)`. The tile kernels resolve a
    /// weight's row base once and index it per column, hoisting the
    /// weight shift out of the column-wide inner step — and because the
    /// row length is a power of two, `row[(a & (len − 1)) as usize]`
    /// needs no bounds check.
    #[inline]
    pub fn row(&self, weight: u32) -> &[ProductEntry] {
        let base = ((weight & self.fmt.mask()) as usize) << self.n;
        &self.entries[base..base + (1usize << self.n)]
    }

    /// Number of table entries (`2^(2n)`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: every format has at least `2^6` pairs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide finished-product table for `fmt` (leaked like
/// [`cached`]'s tables), or `None` for formats wider than
/// [`MAX_PRODUCT_WIDTH`] or without an EMAC datapath.
pub fn product_cached(fmt: PositFormat) -> Option<&'static ProductLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static ProductLut>>> = OnceLock::new();
    if fmt.n() > MAX_PRODUCT_WIDTH || fmt.es() > fmt.n() - 3 {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("posit product LUT cache poisoned");
    Some(
        map.entry((fmt.n(), fmt.es()))
            .or_insert_with(|| Box::leak(Box::new(ProductLut::build(fmt).expect("width checked")))),
    )
}

/// A fused decode + EMAC-front-end table: one [`EmacEntry`] per pattern.
///
/// This is the software rendering of template-based posit multiplication:
/// everything Algorithm 1 (decode) and the first half of Algorithm 2
/// (significand extraction, scale biasing) compute per MAC is precomputed
/// per format, once.
#[derive(Debug, Clone)]
pub struct EmacLut {
    fmt: PositFormat,
    entries: Vec<EmacEntry>,
}

impl EmacLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_LUT_WIDTH`] or has no significand bits (`es > n − 3`, no EMAC
    /// datapath in the paper).
    pub fn build(fmt: PositFormat) -> Option<Self> {
        if fmt.n() > MAX_LUT_WIDTH || fmt.es() > fmt.n() - 3 {
            return None;
        }
        let fbits = fmt.n() - 2 - fmt.es();
        let max_scale = fmt.max_scale() as i64;
        let entries = fmt
            .patterns()
            .map(|bits| match decode(fmt, bits) {
                Decoded::Zero => EmacEntry(0),
                Decoded::NaR => EmacEntry(EmacEntry::NAR_BIT),
                Decoded::Finite(u) => {
                    let field = u.sig >> (64 - fbits);
                    let biased = (u.scale as i64 + max_scale) as u64;
                    debug_assert!(field < (1 << 16) && biased < (1 << 16));
                    EmacEntry(field | (biased << 16) | if u.sign { EmacEntry::SIGN_BIT } else { 0 })
                }
            })
            .collect();
        Some(EmacLut { fmt, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// The fused operand for the low `n` bits of `bits`.
    #[inline]
    pub fn entry(&self, bits: u32) -> EmacEntry {
        self.entries[(bits & self.fmt.mask()) as usize]
    }
}

/// The process-wide fused EMAC table for `fmt` (see [`cached`] for the
/// leaking rationale), or `None` for wide or significand-free formats.
pub fn emac_cached(fmt: PositFormat) -> Option<&'static EmacLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static EmacLut>>> = OnceLock::new();
    if fmt.n() > MAX_LUT_WIDTH || fmt.es() > fmt.n() - 3 {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("posit EMAC LUT cache poisoned");
    Some(
        map.entry((fmt.n(), fmt.es()))
            .or_insert_with(|| Box::leak(Box::new(EmacLut::build(fmt).expect("width checked")))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_only_up_to_max_width() {
        assert!(DecodeLut::build(PositFormat::new(8, 0).unwrap()).is_some());
        assert!(DecodeLut::build(PositFormat::new(12, 2).unwrap()).is_some());
        assert!(DecodeLut::build(PositFormat::new(13, 0).unwrap()).is_none());
        assert!(cached(PositFormat::new(16, 1).unwrap()).is_none());
    }

    #[test]
    fn width_bands_select_exactly_one_scheme() {
        // n = 12: monolithic LUT only; n = 13 and 16: split only; n = 17+:
        // neither (bit-field decode). The bands must not overlap, so no
        // call site can mix schemes for one format.
        for es in [0u32, 1, 2] {
            let at = |n: u32| PositFormat::new(n, es).unwrap();
            assert!(cached(at(12)).is_some() && split_cached(at(12)).is_none());
            assert!(cached(at(13)).is_none() && split_cached(at(13)).is_some());
            assert!(cached(at(16)).is_none() && split_cached(at(16)).is_some());
            assert!(cached(at(17)).is_none() && split_cached(at(17)).is_none());
            assert!(emac_cached(at(13)).is_none(), "fused table stops at 12");
        }
        assert!(SplitLut::build(PositFormat::new(12, 0).unwrap()).is_none());
        assert!(SplitLut::build(PositFormat::new(17, 1).unwrap()).is_none());
    }

    #[test]
    fn split_cached_memoizes_per_format() {
        let fmt = PositFormat::new(14, 1).unwrap();
        let a = split_cached(fmt).unwrap();
        let b = split_cached(fmt).unwrap();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.format(), fmt);
    }

    #[test]
    fn split_decode_matches_bitfield_on_long_regimes() {
        // The all-equal-prefix fallback: extreme magnitudes whose regime
        // run reaches or crosses the 8-bit prefix.
        for (n, es) in [(13u32, 0u32), (15, 1), (16, 0), (16, 1), (16, 2)] {
            let fmt = PositFormat::new(n, es).unwrap();
            let lut = SplitLut::build(fmt).unwrap();
            for bits in [
                0u32,
                fmt.nar_bits(),
                fmt.minpos_bits(),
                fmt.maxpos_bits(),
                fmt.one_bits(),
                1 << (n - 9),       // run of exactly 8 zeros
                fmt.mask() >> 9,    // long ones run
                fmt.mask(),         // -minpos
                fmt.nar_bits() | 1, // most negative finite
            ] {
                assert_eq!(lut.decode(bits), decode(fmt, bits), "{fmt} {bits:#x}");
            }
        }
    }

    #[test]
    fn split_entry_matches_decode_sampled() {
        let fmt = PositFormat::new(16, 1).unwrap();
        let lut = SplitLut::build(fmt).unwrap();
        let fbits = 16 - 2 - 1;
        for bits in (0..=0xffffu32).step_by(97) {
            let e = lut.entry(bits);
            match decode(fmt, bits) {
                Decoded::Zero => assert_eq!(e, EmacEntry(0)),
                Decoded::NaR => assert!(e.is_nar()),
                Decoded::Finite(u) => {
                    assert_eq!(e.sign(), u.sign, "{bits:#x}");
                    assert_eq!(e.field(), u.sig >> (64 - fbits), "{bits:#x}");
                    assert_eq!(
                        e.biased_scale() as i64,
                        u.scale as i64 + fmt.max_scale() as i64,
                        "{bits:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn table_matches_bitfield_decode_exhaustively() {
        for (n, es) in [
            (3u32, 0u32),
            (5, 0),
            (6, 1),
            (8, 0),
            (8, 1),
            (8, 2),
            (10, 1),
            (12, 0),
        ] {
            let fmt = PositFormat::new(n, es).unwrap();
            let lut = DecodeLut::build(fmt).unwrap();
            assert_eq!(lut.len() as u64, fmt.pattern_count());
            assert!(!lut.is_empty());
            for bits in fmt.patterns() {
                assert_eq!(lut.decode(bits), decode(fmt, bits), "{fmt} {bits:#x}");
            }
        }
    }

    #[test]
    fn decode_masks_to_width() {
        let fmt = PositFormat::new(8, 1).unwrap();
        let lut = DecodeLut::build(fmt).unwrap();
        assert_eq!(lut.decode(0x140), lut.decode(0x40));
    }

    #[test]
    fn cached_returns_the_same_table() {
        let fmt = PositFormat::new(7, 1).unwrap();
        let a = cached(fmt).unwrap();
        let b = cached(fmt).unwrap();
        assert!(std::ptr::eq(a, b), "cache must memoize per format");
        assert_eq!(a.format(), fmt);
    }

    #[test]
    fn emac_entries_reconstruct_decode_exhaustively() {
        for (n, es) in [(5u32, 0u32), (8, 0), (8, 1), (8, 2), (12, 1)] {
            let fmt = PositFormat::new(n, es).unwrap();
            let lut = EmacLut::build(fmt).unwrap();
            assert_eq!(lut.format(), fmt);
            let fbits = n - 2 - es;
            for bits in fmt.patterns() {
                let e = lut.entry(bits);
                match decode(fmt, bits) {
                    Decoded::Zero => assert_eq!(e, EmacEntry(0), "{fmt} {bits:#x}"),
                    Decoded::NaR => assert!(e.is_nar(), "{fmt} {bits:#x}"),
                    Decoded::Finite(u) => {
                        assert!(!e.is_nar());
                        assert_eq!(e.sign(), u.sign, "{fmt} {bits:#x}");
                        assert_eq!(e.field(), u.sig >> (64 - fbits), "{fmt} {bits:#x}");
                        assert_eq!(
                            e.biased_scale() as i64,
                            u.scale as i64 + fmt.max_scale() as i64,
                            "{fmt} {bits:#x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn product_table_only_up_to_8_bits() {
        assert!(ProductLut::build(PositFormat::new(8, 0).unwrap()).is_some());
        assert!(ProductLut::build(PositFormat::new(5, 1).unwrap()).is_some());
        assert!(ProductLut::build(PositFormat::new(9, 0).unwrap()).is_none());
        assert!(product_cached(PositFormat::new(9, 0).unwrap()).is_none());
        // No EMAC datapath → no product table either.
        assert!(ProductLut::build(PositFormat::new(8, 6).unwrap()).is_none());
        assert!(product_cached(PositFormat::new(8, 6).unwrap()).is_none());
        let fmt = PositFormat::new(8, 1).unwrap();
        assert!(std::ptr::eq(
            product_cached(fmt).unwrap(),
            product_cached(fmt).unwrap()
        ));
    }

    #[test]
    fn product_entries_fuse_operand_pairs_exhaustively() {
        for es in [0u32, 1, 2] {
            let fmt = PositFormat::new(6, es).unwrap();
            let products = ProductLut::build(fmt).unwrap();
            let operands = EmacLut::build(fmt).unwrap();
            assert_eq!(
                products.len() as u64,
                fmt.pattern_count() * fmt.pattern_count()
            );
            assert!(!products.is_empty());
            assert_eq!(products.format(), fmt);
            for w in fmt.patterns() {
                let row = products.row(w);
                assert_eq!(row.len() as u64, fmt.pattern_count());
                for a in fmt.patterns() {
                    let p = products.entry(w, a);
                    assert_eq!(row[a as usize].0, p.0, "{fmt} {w:#x}×{a:#x} row");
                    let (ew, ea) = (operands.entry(w), operands.entry(a));
                    if ew.is_nar() || ea.is_nar() {
                        assert!(p.is_nar(), "{fmt} {w:#x}×{a:#x}");
                        assert_eq!(p.product(), 0, "{fmt} {w:#x}×{a:#x}");
                    } else {
                        assert!(!p.is_nar());
                        assert_eq!(p.product(), ew.field() * ea.field(), "{fmt} {w:#x}×{a:#x}");
                        assert_eq!(
                            p.shift() as u64,
                            ew.biased_scale() + ea.biased_scale(),
                            "{fmt} {w:#x}×{a:#x}"
                        );
                        assert_eq!(p.negate(), ew.sign() ^ ea.sign(), "{fmt} {w:#x}×{a:#x}");
                    }
                }
            }
        }
    }

    #[test]
    fn emac_lut_rejects_unsupported_formats() {
        assert!(EmacLut::build(PositFormat::new(16, 1).unwrap()).is_none());
        assert!(EmacLut::build(PositFormat::new(8, 6).unwrap()).is_none());
        assert!(emac_cached(PositFormat::new(8, 6).unwrap()).is_none());
        let fmt = PositFormat::new(8, 0).unwrap();
        assert!(std::ptr::eq(
            emac_cached(fmt).unwrap(),
            emac_cached(fmt).unwrap()
        ));
    }
}
