//! Table-driven posit decode.
//!
//! The paper's whole premise is that ≤8-bit EMAC arrays are cheap because
//! the pattern space is tiny (Fig. 8 counts LUTs per format). The software
//! analogue — "Template-Based Posit Multiplication" (Murillo & Del Barrio,
//! 2019) — precomputes per-format tables once so the hot loop becomes a
//! table lookup instead of re-running Algorithm 1's bit-field extraction
//! on every multiply-accumulate.
//!
//! A [`DecodeLut`] holds the fully decoded [`Decoded`] for all `2^n`
//! patterns of one format. Formats up to [`MAX_LUT_WIDTH`] bits qualify
//! (4096 entries × 16 B = 64 KiB worst case); wider formats fall back to
//! the bit-field [`decode`] path. [`cached`] memoizes one table per format
//! for the life of the process, so callers share tables across units,
//! layers and threads.

use crate::decode::{decode, Decoded};
use crate::format::PositFormat;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Widest format that gets a decode table: `2^12` entries keep every table
/// at or below 64 KiB, comfortably inside L2 for the ≤8-bit formats the
/// paper evaluates (whose tables are ≤4 KiB and live in L1).
pub const MAX_LUT_WIDTH: u32 = 12;

/// A precomputed decode table for one posit format.
///
/// Indexing is by the raw bit pattern (masked to the format width); the
/// entry is exactly what [`decode`] returns for that pattern, so swapping
/// one for the other is bit-identical by construction — and verified
/// exhaustively by the `lut_equivalence` test suite.
///
/// # Examples
///
/// ```
/// use dp_posit::{decode, lut, PositFormat};
/// let fmt = PositFormat::new(8, 0)?;
/// let lut = lut::cached(fmt).expect("8-bit formats are table-driven");
/// for bits in fmt.patterns() {
///     assert_eq!(lut.decode(bits), decode(fmt, bits));
/// }
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodeLut {
    fmt: PositFormat,
    entries: Vec<Decoded>,
}

impl DecodeLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_LUT_WIDTH`] (table-driven decode would waste cache there).
    pub fn build(fmt: PositFormat) -> Option<Self> {
        if fmt.n() > MAX_LUT_WIDTH {
            return None;
        }
        let entries = fmt.patterns().map(|bits| decode(fmt, bits)).collect();
        Some(DecodeLut { fmt, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// Table-driven decode of the low `n` bits of `bits`; bit-identical to
    /// [`decode`]`(self.format(), bits)`.
    #[inline]
    pub fn decode(&self, bits: u32) -> Decoded {
        self.entries[(bits & self.fmt.mask()) as usize]
    }

    /// Number of table entries (`2^n`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: every format has at least `2^3` patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide decode table for `fmt`, built on first use, or `None`
/// for formats wider than [`MAX_LUT_WIDTH`].
///
/// Tables are leaked intentionally: the format space is small and finite
/// (at most 70 qualifying `(n, es)` pairs), each table is built once, and
/// a `'static` borrow lets hot loops hold the table without reference
/// counting.
pub fn cached(fmt: PositFormat) -> Option<&'static DecodeLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static DecodeLut>>> = OnceLock::new();
    if fmt.n() > MAX_LUT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("posit LUT cache poisoned");
    Some(
        map.entry((fmt.n(), fmt.es()))
            .or_insert_with(|| Box::leak(Box::new(DecodeLut::build(fmt).expect("width checked")))),
    )
}

/// One fused EMAC operand: the decode *and* the EMAC front-end folded into
/// a single packed word, so the multiply-accumulate inner loop is two
/// loads, one small multiply and one shifted add. Layout:
///
/// ```text
/// bits  0..16   integer significand, hidden bit included (F = n−2−es bits)
/// bits 16..32   scale + max_scale (non-negative "per-operand bias")
/// bit  32       sign
/// bit  33       NaR flag
/// ```
///
/// Zero encodes as the all-clear word (significand 0), so zero operands
/// fall out of the product test rather than needing their own branch. Two
/// operands multiply as `field·field × 2^(bias_a + bias_b)` positioned at
/// `scale_a + scale_b + 2·max_scale` — exactly Algorithm 2's biased scale
/// factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmacEntry(pub u64);

impl EmacEntry {
    /// Bit flagging NaR.
    pub const NAR_BIT: u64 = 1 << 33;
    /// Bit carrying the sign.
    pub const SIGN_BIT: u64 = 1 << 32;

    /// The `F`-bit integer significand (hidden bit included), 0 for zero
    /// and NaR.
    #[inline]
    pub fn field(self) -> u64 {
        self.0 & 0xffff
    }

    /// `scale + max_scale` (always non-negative).
    #[inline]
    pub fn biased_scale(self) -> u64 {
        (self.0 >> 16) & 0xffff
    }

    /// Sign of the operand.
    #[inline]
    pub fn sign(self) -> bool {
        self.0 & Self::SIGN_BIT != 0
    }

    /// Whether this pattern is NaR.
    #[inline]
    pub fn is_nar(self) -> bool {
        self.0 & Self::NAR_BIT != 0
    }
}

/// A fused decode + EMAC-front-end table: one [`EmacEntry`] per pattern.
///
/// This is the software rendering of template-based posit multiplication:
/// everything Algorithm 1 (decode) and the first half of Algorithm 2
/// (significand extraction, scale biasing) compute per MAC is precomputed
/// per format, once.
#[derive(Debug, Clone)]
pub struct EmacLut {
    fmt: PositFormat,
    entries: Vec<EmacEntry>,
}

impl EmacLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_LUT_WIDTH`] or has no significand bits (`es > n − 3`, no EMAC
    /// datapath in the paper).
    pub fn build(fmt: PositFormat) -> Option<Self> {
        if fmt.n() > MAX_LUT_WIDTH || fmt.es() > fmt.n() - 3 {
            return None;
        }
        let fbits = fmt.n() - 2 - fmt.es();
        let max_scale = fmt.max_scale() as i64;
        let entries = fmt
            .patterns()
            .map(|bits| match decode(fmt, bits) {
                Decoded::Zero => EmacEntry(0),
                Decoded::NaR => EmacEntry(EmacEntry::NAR_BIT),
                Decoded::Finite(u) => {
                    let field = u.sig >> (64 - fbits);
                    let biased = (u.scale as i64 + max_scale) as u64;
                    debug_assert!(field < (1 << 16) && biased < (1 << 16));
                    EmacEntry(field | (biased << 16) | if u.sign { EmacEntry::SIGN_BIT } else { 0 })
                }
            })
            .collect();
        Some(EmacLut { fmt, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// The fused operand for the low `n` bits of `bits`.
    #[inline]
    pub fn entry(&self, bits: u32) -> EmacEntry {
        self.entries[(bits & self.fmt.mask()) as usize]
    }
}

/// The process-wide fused EMAC table for `fmt` (see [`cached`] for the
/// leaking rationale), or `None` for wide or significand-free formats.
pub fn emac_cached(fmt: PositFormat) -> Option<&'static EmacLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static EmacLut>>> = OnceLock::new();
    if fmt.n() > MAX_LUT_WIDTH || fmt.es() > fmt.n() - 3 {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("posit EMAC LUT cache poisoned");
    Some(
        map.entry((fmt.n(), fmt.es()))
            .or_insert_with(|| Box::leak(Box::new(EmacLut::build(fmt).expect("width checked")))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_only_up_to_max_width() {
        assert!(DecodeLut::build(PositFormat::new(8, 0).unwrap()).is_some());
        assert!(DecodeLut::build(PositFormat::new(12, 2).unwrap()).is_some());
        assert!(DecodeLut::build(PositFormat::new(13, 0).unwrap()).is_none());
        assert!(cached(PositFormat::new(16, 1).unwrap()).is_none());
    }

    #[test]
    fn table_matches_bitfield_decode_exhaustively() {
        for (n, es) in [
            (3u32, 0u32),
            (5, 0),
            (6, 1),
            (8, 0),
            (8, 1),
            (8, 2),
            (10, 1),
            (12, 0),
        ] {
            let fmt = PositFormat::new(n, es).unwrap();
            let lut = DecodeLut::build(fmt).unwrap();
            assert_eq!(lut.len() as u64, fmt.pattern_count());
            assert!(!lut.is_empty());
            for bits in fmt.patterns() {
                assert_eq!(lut.decode(bits), decode(fmt, bits), "{fmt} {bits:#x}");
            }
        }
    }

    #[test]
    fn decode_masks_to_width() {
        let fmt = PositFormat::new(8, 1).unwrap();
        let lut = DecodeLut::build(fmt).unwrap();
        assert_eq!(lut.decode(0x140), lut.decode(0x40));
    }

    #[test]
    fn cached_returns_the_same_table() {
        let fmt = PositFormat::new(7, 1).unwrap();
        let a = cached(fmt).unwrap();
        let b = cached(fmt).unwrap();
        assert!(std::ptr::eq(a, b), "cache must memoize per format");
        assert_eq!(a.format(), fmt);
    }

    #[test]
    fn emac_entries_reconstruct_decode_exhaustively() {
        for (n, es) in [(5u32, 0u32), (8, 0), (8, 1), (8, 2), (12, 1)] {
            let fmt = PositFormat::new(n, es).unwrap();
            let lut = EmacLut::build(fmt).unwrap();
            assert_eq!(lut.format(), fmt);
            let fbits = n - 2 - es;
            for bits in fmt.patterns() {
                let e = lut.entry(bits);
                match decode(fmt, bits) {
                    Decoded::Zero => assert_eq!(e, EmacEntry(0), "{fmt} {bits:#x}"),
                    Decoded::NaR => assert!(e.is_nar(), "{fmt} {bits:#x}"),
                    Decoded::Finite(u) => {
                        assert!(!e.is_nar());
                        assert_eq!(e.sign(), u.sign, "{fmt} {bits:#x}");
                        assert_eq!(e.field(), u.sig >> (64 - fbits), "{fmt} {bits:#x}");
                        assert_eq!(
                            e.biased_scale() as i64,
                            u.scale as i64 + fmt.max_scale() as i64,
                            "{fmt} {bits:#x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn emac_lut_rejects_unsupported_formats() {
        assert!(EmacLut::build(PositFormat::new(16, 1).unwrap()).is_none());
        assert!(EmacLut::build(PositFormat::new(8, 6).unwrap()).is_none());
        assert!(emac_cached(PositFormat::new(8, 6).unwrap()).is_none());
        let fmt = PositFormat::new(8, 0).unwrap();
        assert!(std::ptr::eq(
            emac_cached(fmt).unwrap(),
            emac_cached(fmt).unwrap()
        ));
    }
}
