//! # dp-posit — posit arithmetic for Deep Positron
//!
//! A from-scratch implementation of the posit number system (Type III unum)
//! as described by Gustafson & Yonemoto and used by the DATE 2019 paper
//! *"Deep Positron: A Deep Neural Network Using the Posit Number System"*.
//!
//! A posit format is parameterized by `n`, the total width in bits, and
//! `es`, the number of exponent bits. The value of a finite nonzero posit is
//!
//! ```text
//! (-1)^s × (2^(2^es))^k × 2^e × 1.f        (paper eq. 2)
//! ```
//!
//! where `k` is the run-length-encoded regime, `e` the unsigned exponent and
//! `1.f` the significand. Two bit patterns are reserved: all zeros is `0`,
//! and `1 0...0` is NaR ("Not a Real").
//!
//! ## What this crate provides
//!
//! * [`PositFormat`] — a runtime-parameterized format descriptor (any
//!   `3 ≤ n ≤ 32`, `0 ≤ es ≤ 6`), with correctly rounded (round to nearest,
//!   ties to even) [`ops`] (add/sub/mul/div/sqrt), [`decode`](mod@decode)/[`encode`](mod@encode) and
//!   exact [`convert`] conversions to and from `f64`.
//! * [`Posit`] — a zero-cost const-generic wrapper (`P8E0`, `P16E1`, ...)
//!   with standard operator overloads.
//! * [`Quire`] — an exact Kulisch-style accumulator whose width follows
//!   paper eq. (4); sums of products are accumulated without intermediate
//!   rounding and rounded exactly once, which is what makes the paper's
//!   EMAC ("exact multiply-and-accumulate") unit *exact*.
//! * [`WideInt`] — the arbitrary-width two's-complement integer substrate
//!   used by the quire and by `dp-emac`'s accumulators.
//! * [`exact`] — an exact dyadic-rational reference arithmetic used as a
//!   test oracle throughout the workspace.
//!
//! ## Quickstart
//!
//! ```
//! use dp_posit::{P8E0, PositFormat, Quire};
//!
//! // Typed API
//! let a = P8E0::from_f64(0.5);
//! let b = P8E0::from_f64(1.5);
//! assert_eq!((a + b).to_f64(), 2.0);
//!
//! // Runtime-parameterized API
//! let fmt = PositFormat::new(8, 0).unwrap();
//! let bits = dp_posit::ops::mul(fmt, a.to_bits(), b.to_bits());
//! assert_eq!(dp_posit::convert::to_f64(fmt, bits), 0.75);
//!
//! // Exact dot product through the quire
//! let mut q = Quire::new(fmt, 16);
//! q.add_product(a.to_bits(), b.to_bits());
//! q.add_product(b.to_bits(), b.to_bits());
//! assert_eq!(dp_posit::convert::to_f64(fmt, q.to_posit()), 3.0);
//! ```

pub mod convert;
pub mod decode;
pub mod encode;
pub mod exact;
pub mod format;
pub mod lut;
pub mod neural;
pub mod ops;
pub mod quire;
pub mod value;
pub mod wide;

pub use decode::{decode, Decoded, Unpacked};
pub use encode::encode;
pub use format::{FormatError, PositFormat};
pub use quire::Quire;
pub use value::{
    ParsePositError, Posit, P16E1, P16E2, P32E2, P5E0, P6E0, P6E1, P7E0, P7E1, P8E0, P8E1, P8E2,
};
pub use wide::WideInt;
