//! Typed, const-generic posit values with operator overloads.

use crate::convert;
use crate::format::PositFormat;
use crate::ops;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// A posit value of compile-time format `posit<N, ES>`.
///
/// This is a zero-cost wrapper over the runtime-parameterized arithmetic in
/// [`crate::ops`]; the format descriptor is a `const` and the value is the
/// raw `N`-bit pattern in a `u32`.
///
/// # Examples
///
/// ```
/// use dp_posit::P8E0;
/// let a = P8E0::from_f64(1.5);
/// let b = P8E0::from_f64(0.25);
/// assert_eq!((a * b).to_f64(), 0.375);
/// assert_eq!((a - a), P8E0::ZERO);
/// assert!(P8E0::NAR.is_nar());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Posit<const N: u32, const ES: u32>(u32);

/// 5-bit posit, es = 0.
pub type P5E0 = Posit<5, 0>;
/// 6-bit posit, es = 0.
pub type P6E0 = Posit<6, 0>;
/// 6-bit posit, es = 1.
pub type P6E1 = Posit<6, 1>;
/// 7-bit posit, es = 0 (the format of paper Fig. 2a).
pub type P7E0 = Posit<7, 0>;
/// 7-bit posit, es = 1.
pub type P7E1 = Posit<7, 1>;
/// 8-bit posit, es = 0 (the paper's headline inference format).
pub type P8E0 = Posit<8, 0>;
/// 8-bit posit, es = 1.
pub type P8E1 = Posit<8, 1>;
/// 8-bit posit, es = 2.
pub type P8E2 = Posit<8, 2>;
/// 16-bit posit, es = 1 (pre-2022-standard default).
pub type P16E1 = Posit<16, 1>;
/// 16-bit posit, es = 2 (2022-standard default).
pub type P16E2 = Posit<16, 2>;
/// 32-bit posit, es = 2.
pub type P32E2 = Posit<32, 2>;

impl<const N: u32, const ES: u32> Posit<N, ES> {
    /// The format descriptor of this type.
    pub const FORMAT: PositFormat = PositFormat::new_const(N, ES);
    /// Zero.
    pub const ZERO: Self = Posit(0);
    /// One.
    pub const ONE: Self = Posit(Self::FORMAT.one_bits());
    /// Not a Real.
    pub const NAR: Self = Posit(Self::FORMAT.nar_bits());
    /// Largest finite value (maxpos).
    pub const MAX: Self = Posit(Self::FORMAT.maxpos_bits());
    /// Smallest positive value (minpos).
    pub const MIN_POSITIVE: Self = Posit(Self::FORMAT.minpos_bits());

    /// Constructs from a raw bit pattern (masked to `N` bits).
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        Posit(bits & Self::FORMAT.mask())
    }

    /// The raw `N`-bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Rounds an `f64` to this posit format (NaN/∞ → NaR).
    pub fn from_f64(v: f64) -> Self {
        Posit(convert::from_f64(Self::FORMAT, v))
    }

    /// Converts to `f64` (exact for paper-scale formats; NaR → NaN).
    pub fn to_f64(self) -> f64 {
        convert::to_f64(Self::FORMAT, self.0)
    }

    /// True for the NaR pattern.
    pub fn is_nar(self) -> bool {
        self.0 == Self::FORMAT.nar_bits()
    }

    /// True for zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True for finite negative values.
    pub fn is_negative(self) -> bool {
        ops::is_negative(Self::FORMAT, self.0)
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        Posit(ops::abs(Self::FORMAT, self.0))
    }

    /// Correctly rounded square root (NaR for negative inputs).
    pub fn sqrt(self) -> Self {
        Posit(ops::sqrt(Self::FORMAT, self.0))
    }

    /// Fused multiply-add `self × b + c` with a single rounding.
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Posit(ops::fma(Self::FORMAT, self.0, b.0, c.0))
    }

    /// The next representable value toward +∞ (wraps NaR → maxneg…; mainly
    /// for enumeration in tests and plots).
    pub fn next_up(self) -> Self {
        Posit(self.0.wrapping_add(1) & Self::FORMAT.mask())
    }
}

impl<const N: u32, const ES: u32> Add for Posit<N, ES> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Posit(ops::add(Self::FORMAT, self.0, rhs.0))
    }
}

impl<const N: u32, const ES: u32> Sub for Posit<N, ES> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Posit(ops::sub(Self::FORMAT, self.0, rhs.0))
    }
}

impl<const N: u32, const ES: u32> Mul for Posit<N, ES> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Posit(ops::mul(Self::FORMAT, self.0, rhs.0))
    }
}

impl<const N: u32, const ES: u32> Div for Posit<N, ES> {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        Posit(ops::div(Self::FORMAT, self.0, rhs.0))
    }
}

impl<const N: u32, const ES: u32> Neg for Posit<N, ES> {
    type Output = Self;
    fn neg(self) -> Self {
        Posit(ops::neg(Self::FORMAT, self.0))
    }
}

impl<const N: u32, const ES: u32> AddAssign for Posit<N, ES> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const N: u32, const ES: u32> SubAssign for Posit<N, ES> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const N: u32, const ES: u32> MulAssign for Posit<N, ES> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const N: u32, const ES: u32> DivAssign for Posit<N, ES> {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<const N: u32, const ES: u32> PartialOrd for Posit<N, ES> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order: NaR orders before every real value and equals itself
/// (posit patterns compare as two's-complement integers).
impl<const N: u32, const ES: u32> Ord for Posit<N, ES> {
    fn cmp(&self, other: &Self) -> Ordering {
        ops::cmp(Self::FORMAT, self.0, other.0)
    }
}

impl<const N: u32, const ES: u32> fmt::Debug for Posit<N, ES> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Posit<{N},{ES}>({:#x} = {})", self.0, self)
    }
}

impl<const N: u32, const ES: u32> fmt::Display for Posit<N, ES> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nar() {
            write!(f, "NaR")
        } else {
            fmt::Display::fmt(&self.to_f64(), f)
        }
    }
}

impl<const N: u32, const ES: u32> fmt::Binary for Posit<N, ES> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl<const N: u32, const ES: u32> fmt::LowerHex for Posit<N, ES> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl<const N: u32, const ES: u32> fmt::UpperHex for Posit<N, ES> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl<const N: u32, const ES: u32> fmt::Octal for Posit<N, ES> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl<const N: u32, const ES: u32> From<Posit<N, ES>> for f64 {
    fn from(p: Posit<N, ES>) -> f64 {
        p.to_f64()
    }
}

/// Error parsing a posit from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePositError(String);

impl fmt::Display for ParsePositError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid posit literal: {}", self.0)
    }
}

impl std::error::Error for ParsePositError {}

impl<const N: u32, const ES: u32> FromStr for Posit<N, ES> {
    type Err = ParsePositError;

    /// Parses a decimal literal (or `"NaR"`) and rounds it to this format.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("nar") {
            return Ok(Self::NAR);
        }
        let v: f64 = s.parse().map_err(|_| ParsePositError(s.to_owned()))?;
        Ok(Self::from_f64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(P8E0::ONE.to_f64(), 1.0);
        assert_eq!(P8E0::MAX.to_f64(), 64.0);
        assert_eq!(P8E0::MIN_POSITIVE.to_f64(), 1.0 / 64.0);
        assert_eq!(P8E2::MAX.to_f64(), 2f64.powi(24));
        assert!(P8E0::NAR.is_nar());
        assert!(P8E0::ZERO.is_zero());
        assert_eq!(P8E0::default(), P8E0::ZERO);
    }

    #[test]
    fn operators() {
        let a = P8E0::from_f64(1.5);
        let b = P8E0::from_f64(0.5);
        assert_eq!((a + b).to_f64(), 2.0);
        assert_eq!((a - b).to_f64(), 1.0);
        assert_eq!((a * b).to_f64(), 0.75);
        assert_eq!((a / b).to_f64(), 3.0);
        assert_eq!((-a).to_f64(), -1.5);
        let mut c = a;
        c += b;
        c -= b;
        c *= b;
        c /= b;
        assert_eq!(c, a);
    }

    #[test]
    fn ordering_matches_reals() {
        let mut vals: Vec<P8E1> = [-3.0, 2.0, 0.0, -0.5, 8.0, 0.25]
            .iter()
            .map(|&v| P8E1::from_f64(v))
            .collect();
        vals.sort();
        let sorted: Vec<f64> = vals.iter().map(|p| p.to_f64()).collect();
        assert_eq!(sorted, vec![-3.0, -0.5, 0.0, 0.25, 2.0, 8.0]);
        assert!(P8E1::NAR < P8E1::from_f64(-64.0));
        assert_eq!(P8E1::NAR, P8E1::NAR);
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(P8E0::from_f64(1.5).to_string(), "1.5");
        assert_eq!(P8E0::NAR.to_string(), "NaR");
        assert_eq!("1.5".parse::<P8E0>().unwrap().to_f64(), 1.5);
        assert_eq!("NaR".parse::<P8E0>().unwrap(), P8E0::NAR);
        assert!("bogus".parse::<P8E0>().is_err());
        assert_eq!(format!("{:08b}", P8E0::ONE), "01000000");
        assert_eq!(format!("{:x}", P8E0::ONE), "40");
        assert_eq!(format!("{:X}", P8E0::from_bits(0xab)), "AB");
        assert_eq!(format!("{:o}", P8E0::ONE), "100");
    }

    #[test]
    fn debug_contains_bits_and_value() {
        let d = format!("{:?}", P8E0::ONE);
        assert!(d.contains("0x40") && d.contains('1'), "{d}");
    }

    #[test]
    fn next_up_enumerates() {
        let mut p = P5E0::NAR; // most negative pattern
        let mut count = 0;
        let mut prev: Option<P5E0> = None;
        loop {
            if let Some(q) = prev {
                if !q.is_nar() {
                    assert!(q < p || p.is_nar(), "monotone enumeration");
                }
            }
            prev = Some(p);
            count += 1;
            p = p.next_up();
            if p.is_nar() {
                break;
            }
        }
        assert_eq!(count, 32);
    }

    #[test]
    fn from_posit_into_f64() {
        let x: f64 = P8E0::from_f64(2.0).into();
        assert_eq!(x, 2.0);
    }
}
