//! Posit rounding and encoding (the "Convergent Rounding & Encoding" stage
//! of paper Algorithm 2).
//!
//! [`encode`] takes an exact (sign, scale, significand, sticky) quadruple and
//! produces the nearest posit bit pattern under round-to-nearest, ties to
//! even — the rounding mode both the IEEE-754 recommendation and the posit
//! standard prescribe (paper §III-A). Posits saturate: values beyond maxpos
//! round to maxpos, nonzero values below minpos round to minpos; rounding
//! never produces zero or NaR from a finite nonzero input.

use crate::format::PositFormat;

/// Encodes `(-1)^sign × sig × 2^(scale-63)` (with `sig`'s MSB set) into the
/// nearest posit of format `fmt`. `sticky` indicates that nonzero bits were
/// discarded below `sig`'s LSB by an earlier exact computation.
///
/// # Panics
///
/// Panics in debug builds if `sig`'s MSB is not set (callers must pass a
/// normalized significand).
///
/// # Examples
///
/// ```
/// use dp_posit::{encode, PositFormat};
/// let fmt = PositFormat::new(8, 0)?;
/// // 1.5 = sig 0b11 << 62, scale 0
/// assert_eq!(encode(fmt, false, 0, 0b11 << 62, false), 0b0_10_10000);
/// // Saturation: 2^40 is far above maxpos = 2^6
/// assert_eq!(encode(fmt, false, 40, 1 << 63, false), fmt.maxpos_bits());
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
pub fn encode(fmt: PositFormat, sign: bool, scale: i32, sig: u64, sticky: bool) -> u32 {
    debug_assert!(sig >> 63 == 1, "significand must be normalized");
    let max_scale = fmt.max_scale();
    // value = 1.f × 2^scale >= 2^max_scale = maxpos whenever scale >= max_scale.
    if scale >= max_scale {
        return apply_sign(fmt, fmt.maxpos_bits(), sign);
    }
    // value < minpos whenever scale < -max_scale; posits never round to zero.
    if scale < -max_scale {
        return apply_sign(fmt, fmt.minpos_bits(), sign);
    }

    let es = fmt.es();
    // Regime / exponent split: k = floor(scale / 2^es), e = scale mod 2^es.
    let k = scale >> es;
    let e = (scale - (k << es)) as u128;
    let w = (fmt.n() - 1) as usize; // body width below the sign bit

    // Assemble the exact (pre-rounding) body, left-aligned at bit 127:
    // regime, then es exponent bits, then the 63 fraction bits of sig.
    let mut pat: u128 = 0;
    let rlen: usize = if k >= 0 {
        let ones = (k + 1) as usize;
        let r = ones + 1; // ones run + terminating zero
        pat |= (((1u128 << ones) - 1) << 1) << (128 - r);
        r
    } else {
        let r = (-k) as usize + 1; // zeros run + terminating one
        pat |= 1u128 << (128 - r);
        r
    };
    if es > 0 {
        pat |= e << (128 - rlen - es as usize);
    }
    let frac63 = (sig & ((1u64 << 63) - 1)) as u128;
    pat |= frac63 << (128 - rlen - es as usize - 63);

    // Round to nearest, ties to even at the body width.
    let keep = (pat >> (128 - w)) as u32;
    let round = (pat >> (127 - w)) & 1 == 1;
    let rest = pat & ((1u128 << (127 - w)) - 1);
    let sticky_all = sticky || rest != 0;
    let mut body = keep;
    if round && (sticky_all || keep & 1 == 1) {
        body += 1;
    }
    if body >> w != 0 {
        // Rounding carried past the regime of maxpos: clamp (posit saturation).
        body = fmt.maxpos_bits();
    }
    debug_assert_ne!(body, 0, "finite nonzero values never round to zero");
    apply_sign(fmt, body, sign)
}

#[inline]
fn apply_sign(fmt: PositFormat, body: u32, sign: bool) -> u32 {
    if sign {
        body.wrapping_neg() & fmt.mask()
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode, Decoded};

    fn fmt(n: u32, es: u32) -> PositFormat {
        PositFormat::new(n, es).unwrap()
    }

    /// Every real pattern must decode and re-encode to itself (bijectivity).
    fn roundtrips(f: PositFormat) {
        for bits in f.reals() {
            if let Decoded::Finite(u) = decode(f, bits) {
                let re = encode(f, u.sign, u.scale, u.sig, false);
                assert_eq!(re, bits, "{f} pattern {bits:#x} decoded to {u:?}");
            }
        }
    }

    #[test]
    fn exhaustive_roundtrip_small_formats() {
        for (n, es) in [
            (3, 0),
            (4, 0),
            (5, 0),
            (5, 1),
            (6, 0),
            (6, 1),
            (6, 2),
            (7, 0),
            (7, 1),
            (8, 0),
            (8, 1),
            (8, 2),
            (8, 3),
            (9, 0),
            (10, 2),
            (12, 1),
            (16, 1),
            (16, 2),
        ] {
            roundtrips(fmt(n, es));
        }
    }

    #[test]
    fn saturates_to_maxpos_and_minpos() {
        let f = fmt(8, 0);
        assert_eq!(encode(f, false, 100, 1 << 63, false), 0x7f);
        assert_eq!(encode(f, true, 100, 1 << 63, false), 0x81);
        assert_eq!(encode(f, false, -100, 1 << 63, false), 0x01);
        assert_eq!(encode(f, true, -100, 1 << 63, false), 0xff);
        // Exactly max_scale with a nonzero fraction is also maxpos.
        assert_eq!(encode(f, false, 6, (1 << 63) | (1 << 62), false), 0x7f);
    }

    #[test]
    fn ties_round_to_even_pattern() {
        let f = fmt(8, 0);
        // 1.felem: p8e0 has 5 fraction bits around 1.0. A value exactly halfway
        // between 1.0 (0x40) and 1.03125 (0x41) must round to 0x40 (even LSB).
        let halfway = (1u64 << 63) | (1u64 << 57);
        assert_eq!(encode(f, false, 0, halfway, false), 0x40);
        // The same halfway point above an odd pattern rounds up to even.
        let v = (1u64 << 63) | (1u64 << 58) | (1u64 << 57); // 1.000011 -> between 0x41 and 0x42
        assert_eq!(encode(f, false, 0, v, false), 0x42);
        // Sticky breaks the tie upward.
        assert_eq!(encode(f, false, 0, halfway, true), 0x41);
        assert_eq!(encode(f, false, 0, halfway | 1, false), 0x41);
    }

    #[test]
    fn rounding_below_minpos_scale_boundary() {
        let f = fmt(8, 2); // max_scale 24
                           // 1.9 × 2^-24 is within [minpos, 2 minpos); nearest posit is
                           // 2^-24 (0x01) or 2^-20 (0x02). 1.9·2^-24 vs midpoint 8.5·2^-24:
                           // rounds down to minpos.
        let sig = 0xF333_3333_3333_3333u64; // ~1.9 left-aligned
        assert_eq!(encode(f, false, -24, sig, true), 0x01);
        // 9 × 2^-24 = 1.125 × 2^-21, above the midpoint -> rounds to 2^-20.
        let sig9 = (9u64) << 60; // 1001 left-aligned
        assert_eq!(encode(f, false, -21, sig9, false), 0x02);
    }

    #[test]
    fn negative_encoding_is_twos_complement() {
        let f = fmt(8, 0);
        let plus = encode(f, false, 1, 1 << 63, false);
        let minus = encode(f, true, 1, 1 << 63, false);
        assert_eq!(minus, plus.wrapping_neg() & 0xff);
    }

    #[test]
    fn widest_format_roundtrip_samples() {
        let f = fmt(32, 2);
        for bits in [
            1u32,
            f.one_bits(),
            f.maxpos_bits(),
            0x4123_4567,
            0x7ff0_0001,
            0x0000_0101,
        ] {
            if let Decoded::Finite(u) = decode(f, bits) {
                assert_eq!(encode(f, u.sign, u.scale, u.sig, false), bits);
            }
        }
    }
}
