//! Correctly rounded posit arithmetic on raw bit patterns.
//!
//! Every operation computes an exact `(sign, scale, significand, sticky)`
//! intermediate in integer arithmetic and rounds exactly once through
//! [`crate::encode`](mod@crate::encode). NaR propagates; posits never overflow to NaR from
//! finite inputs (they saturate at ±maxpos) and never underflow to zero.

use crate::decode::{decode, Decoded, Unpacked};
use crate::encode::encode;
use crate::format::PositFormat;
use std::cmp::Ordering;

/// Negation. Exact for every posit: the two's complement of the pattern.
/// `-0 = 0` and `-NaR = NaR` fall out of the encoding.
#[inline]
pub fn neg(fmt: PositFormat, a: u32) -> u32 {
    a.wrapping_neg() & fmt.mask()
}

/// Absolute value (NaR maps to NaR).
#[inline]
pub fn abs(fmt: PositFormat, a: u32) -> u32 {
    if a == fmt.nar_bits() {
        return a;
    }
    if is_negative(fmt, a) {
        neg(fmt, a)
    } else {
        a & fmt.mask()
    }
}

/// True if the pattern represents a negative real (NaR is not negative).
#[inline]
pub fn is_negative(fmt: PositFormat, a: u32) -> bool {
    let a = a & fmt.mask();
    a != fmt.nar_bits() && (a >> (fmt.n() - 1)) & 1 == 1
}

/// Total order on patterns: NaR first, then reals by value.
///
/// Posit patterns compare as `n`-bit two's-complement integers — one of the
/// format's designed-in conveniences (used verbatim by comparators in the
/// Deep Positron datapath).
#[inline]
pub fn cmp(fmt: PositFormat, a: u32, b: u32) -> Ordering {
    let sh = 32 - fmt.n();
    let ai = ((a << sh) as i32) >> sh;
    let bi = ((b << sh) as i32) >> sh;
    ai.cmp(&bi)
}

/// Addition with a single rounding.
pub fn add(fmt: PositFormat, a: u32, b: u32) -> u32 {
    let (ua, ub) = match specials(fmt, a, b) {
        Specials::Result(r) => return r,
        Specials::Finite(ua, ub) => (ua, ub),
    };
    // Order by magnitude so hi dominates.
    let (hi, lo) = if (ua.scale, ua.sig) >= (ub.scale, ub.sig) {
        (ua, ub)
    } else {
        (ub, ua)
    };
    let d = (hi.scale - lo.scale) as u32;
    let hi128 = (hi.sig as u128) << 64;
    let lo_full = (lo.sig as u128) << 64;
    let (lo128, mut sticky) = if d == 0 {
        (lo_full, false)
    } else if d < 128 {
        (lo_full >> d, lo_full & ((1u128 << d) - 1) != 0)
    } else {
        (0, true)
    };

    if hi.sign == lo.sign {
        let (sum, carry) = hi128.overflowing_add(lo128);
        let (sum, scale_inc) = if carry {
            sticky |= sum & 1 == 1;
            ((sum >> 1) | (1u128 << 127), 1)
        } else {
            (sum, 0)
        };
        let sig = (sum >> 64) as u64;
        sticky |= sum as u64 != 0;
        encode(fmt, hi.sign, hi.scale + scale_inc, sig, sticky)
    } else {
        // Magnitude subtraction. When low bits of `lo` were discarded the
        // true difference is (hi - lo128) - tail with tail in (0,1) ulp, so
        // borrow one ulp and keep sticky set — standard guard/sticky trick.
        let mut mag = hi128.wrapping_sub(lo128);
        if sticky {
            mag = mag.wrapping_sub(1);
        }
        if mag == 0 {
            return fmt.zero_bits(); // exact cancellation (sticky implies mag>0)
        }
        let lz = mag.leading_zeros();
        // Cancellation of more than one bit only happens for d <= 1, which is
        // exact (sticky = false), so shifting in zeros is sound.
        mag <<= lz;
        let sig = (mag >> 64) as u64;
        sticky |= mag as u64 != 0;
        encode(fmt, hi.sign, hi.scale - lz as i32, sig, sticky)
    }
}

/// Subtraction: `a + (-b)` (exact negation, so correctly rounded).
#[inline]
pub fn sub(fmt: PositFormat, a: u32, b: u32) -> u32 {
    add(fmt, a, neg(fmt, b))
}

/// Multiplication with a single rounding.
pub fn mul(fmt: PositFormat, a: u32, b: u32) -> u32 {
    let (ua, ub) = match specials_mul(fmt, a, b) {
        Specials::Result(r) => return r,
        Specials::Finite(ua, ub) => (ua, ub),
    };
    let prod = (ua.sig as u128) * (ub.sig as u128); // in [2^126, 2^128)
    let sign = ua.sign ^ ub.sign;
    let (sig, sticky, scale) = if prod >> 127 == 1 {
        (
            (prod >> 64) as u64,
            prod as u64 != 0,
            ua.scale + ub.scale + 1,
        )
    } else {
        (
            (prod >> 63) as u64,
            prod & ((1u128 << 63) - 1) != 0,
            ua.scale + ub.scale,
        )
    };
    encode(fmt, sign, scale, sig, sticky)
}

/// Division with a single rounding. `x/0 = NaR`, `0/x = 0` (x nonzero).
pub fn div(fmt: PositFormat, a: u32, b: u32) -> u32 {
    let nar = fmt.nar_bits();
    let (a, b) = (a & fmt.mask(), b & fmt.mask());
    if a == nar || b == nar || b == 0 {
        return nar;
    }
    if a == 0 {
        return 0;
    }
    let ua = decode(fmt, a).finite().expect("finite");
    let ub = decode(fmt, b).finite().expect("finite");
    let sign = ua.sign ^ ub.sign;
    let num = (ua.sig as u128) << 63;
    let den = ub.sig as u128;
    let q = num / den; // in (2^62, 2^64)
    let r = num % den;
    let (sig, scale, sticky) = if q >> 63 == 1 {
        (q as u64, ua.scale - ub.scale, r != 0)
    } else {
        // One more quotient bit for normalization.
        let r2 = r << 1;
        let bit = (r2 >= den) as u128;
        let r3 = r2 - if bit == 1 { den } else { 0 };
        (((q << 1) | bit) as u64, ua.scale - ub.scale - 1, r3 != 0)
    };
    encode(fmt, sign, scale, sig, sticky)
}

/// Fused multiply-add `a×b + c` with a single rounding, computed through
/// a three-term quire — the numerically recommended primitive of the
/// posit standard and exactly what one EMAC step performs.
///
/// # Examples
///
/// ```
/// use dp_posit::{convert, ops, PositFormat};
/// let f = PositFormat::new(8, 0)?;
/// let x = convert::from_f64(f, 1.25);
/// let tiny = f.minpos_bits();
/// // 1.25 × 1.25 + minpos: the product alone rounds to 1.5625; the fused
/// // form sees the minpos before rounding.
/// let fused = ops::fma(f, x, x, tiny);
/// assert_eq!(convert::to_f64(f, fused), 1.5625);
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
pub fn fma(fmt: PositFormat, a: u32, b: u32, c: u32) -> u32 {
    let nar = fmt.nar_bits();
    if (a & fmt.mask()) == nar || (b & fmt.mask()) == nar || (c & fmt.mask()) == nar {
        return nar;
    }
    let mut q = crate::quire::Quire::new(fmt, 2);
    q.add_product(a, b);
    q.add_posit(c);
    q.to_posit()
}

/// Square root with a single rounding. Negative inputs and NaR give NaR.
pub fn sqrt(fmt: PositFormat, a: u32) -> u32 {
    let a = a & fmt.mask();
    if a == 0 {
        return 0;
    }
    if a == fmt.nar_bits() || is_negative(fmt, a) {
        return fmt.nar_bits();
    }
    let u = decode(fmt, a).finite().expect("finite positive");
    let e = u.scale - 63; // value = sig × 2^e
    let shift: u32 = if (e + 63) % 2 == 0 { 63 } else { 64 };
    let big = (u.sig as u128) << shift; // in [2^126, 2^128)
    let r = isqrt_u128(big); // in [2^63, 2^64)
    let rem = big - r * r;
    let scale = (e - shift as i32) / 2 + 63;
    encode(fmt, false, scale, r as u64, rem != 0)
}

/// Integer square root of a u128 (floor).
fn isqrt_u128(v: u128) -> u128 {
    if v == 0 {
        return 0;
    }
    // Newton's method seeded from the f64 estimate.
    let mut x = (v as f64).sqrt() as u128 + 2;
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            break;
        }
        x = y;
    }
    while x.checked_mul(x).is_none_or(|sq| sq > v) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= v) {
        x += 1;
    }
    x
}

enum Specials {
    Result(u32),
    Finite(Unpacked, Unpacked),
}

fn specials(fmt: PositFormat, a: u32, b: u32) -> Specials {
    let (a, b) = (a & fmt.mask(), b & fmt.mask());
    let nar = fmt.nar_bits();
    if a == nar || b == nar {
        return Specials::Result(nar);
    }
    match (decode(fmt, a), decode(fmt, b)) {
        (Decoded::Zero, _) => Specials::Result(b),
        (_, Decoded::Zero) => Specials::Result(a),
        (Decoded::Finite(ua), Decoded::Finite(ub)) => Specials::Finite(ua, ub),
        _ => unreachable!("NaR handled above"),
    }
}

fn specials_mul(fmt: PositFormat, a: u32, b: u32) -> Specials {
    let (a, b) = (a & fmt.mask(), b & fmt.mask());
    let nar = fmt.nar_bits();
    if a == nar || b == nar {
        return Specials::Result(nar);
    }
    if a == 0 || b == 0 {
        return Specials::Result(0);
    }
    match (decode(fmt, a), decode(fmt, b)) {
        (Decoded::Finite(ua), Decoded::Finite(ub)) => Specials::Finite(ua, ub),
        _ => unreachable!("specials handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{from_f64, to_f64};

    fn fmt(n: u32, es: u32) -> PositFormat {
        PositFormat::new(n, es).unwrap()
    }

    #[test]
    fn add_simple_values() {
        let f = fmt(8, 0);
        let one = from_f64(f, 1.0);
        let half = from_f64(f, 0.5);
        assert_eq!(to_f64(f, add(f, one, half)), 1.5);
        assert_eq!(to_f64(f, add(f, one, one)), 2.0);
        assert_eq!(to_f64(f, add(f, half, neg(f, one))), -0.5);
    }

    #[test]
    fn add_specials() {
        let f = fmt(8, 1);
        let nar = f.nar_bits();
        let x = from_f64(f, 3.0);
        assert_eq!(add(f, nar, x), nar);
        assert_eq!(add(f, x, nar), nar);
        assert_eq!(add(f, 0, x), x);
        assert_eq!(add(f, x, 0), x);
        assert_eq!(add(f, x, neg(f, x)), 0);
    }

    #[test]
    fn add_saturates_at_maxpos() {
        let f = fmt(8, 0);
        let maxpos = f.maxpos_bits();
        assert_eq!(add(f, maxpos, maxpos), maxpos);
    }

    #[test]
    fn mul_simple_values() {
        let f = fmt(8, 0);
        let a = from_f64(f, 1.5);
        let b = from_f64(f, 2.0);
        assert_eq!(to_f64(f, mul(f, a, b)), 3.0);
        assert_eq!(mul(f, a, 0), 0);
        assert_eq!(mul(f, f.nar_bits(), 0), f.nar_bits());
    }

    #[test]
    fn mul_never_underflows_to_zero() {
        let f = fmt(8, 2);
        let minpos = f.minpos_bits();
        assert_eq!(mul(f, minpos, minpos), minpos);
    }

    #[test]
    fn div_basics() {
        let f = fmt(8, 1);
        let six = from_f64(f, 6.0);
        let two = from_f64(f, 2.0);
        assert_eq!(to_f64(f, div(f, six, two)), 3.0);
        assert_eq!(div(f, six, 0), f.nar_bits());
        assert_eq!(div(f, 0, two), 0);
        assert_eq!(to_f64(f, div(f, two, neg(f, two))), -1.0);
    }

    #[test]
    fn sqrt_basics() {
        let f = fmt(8, 1);
        assert_eq!(to_f64(f, sqrt(f, from_f64(f, 4.0))), 2.0);
        assert_eq!(to_f64(f, sqrt(f, from_f64(f, 1.0))), 1.0);
        assert_eq!(sqrt(f, 0), 0);
        assert_eq!(sqrt(f, from_f64(f, -1.0)), f.nar_bits());
        assert_eq!(sqrt(f, f.nar_bits()), f.nar_bits());
    }

    #[test]
    fn sqrt_of_two_rounds_correctly() {
        let f = fmt(16, 1);
        let r = to_f64(f, sqrt(f, from_f64(f, 2.0)));
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-3, "got {r}");
    }

    #[test]
    fn cmp_orders_like_reals() {
        let f = fmt(8, 0);
        let vals = [-4.0, -1.0, -0.25, 0.0, 0.125, 1.0, 3.0, 60.0];
        for &x in &vals {
            for &y in &vals {
                let (px, py) = (from_f64(f, x), from_f64(f, y));
                assert_eq!(cmp(f, px, py), x.partial_cmp(&y).unwrap(), "{x} vs {y}");
            }
        }
        // NaR orders first
        assert_eq!(cmp(f, f.nar_bits(), from_f64(f, -60.0)), Ordering::Less);
    }

    #[test]
    fn neg_and_abs() {
        let f = fmt(8, 2);
        let x = from_f64(f, -2.5);
        assert_eq!(to_f64(f, neg(f, x)), 2.5);
        assert_eq!(to_f64(f, abs(f, x)), 2.5);
        assert_eq!(neg(f, 0), 0);
        assert_eq!(neg(f, f.nar_bits()), f.nar_bits());
        assert!(is_negative(f, x));
        assert!(!is_negative(f, f.nar_bits()));
    }

    #[test]
    fn isqrt_exhaustive_small() {
        for v in 0u128..2000 {
            let r = isqrt_u128(v);
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
        let big = u128::MAX;
        let r = isqrt_u128(big);
        assert!(r * r <= big);
        assert!(r
            .checked_add(1)
            .is_none_or(|r1| r1.checked_mul(r1).is_none_or(|sq| sq > big)));
    }
}
