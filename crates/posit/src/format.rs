//! Runtime-parameterized posit format descriptor.

use std::fmt;

/// Error returned when constructing an invalid [`PositFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatError {
    /// `n` outside the supported `3..=32` range.
    WidthOutOfRange(u32),
    /// `es` outside the supported `0..=6` range.
    ExponentOutOfRange(u32),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::WidthOutOfRange(n) => {
                write!(f, "posit width n={n} outside supported range 3..=32")
            }
            FormatError::ExponentOutOfRange(es) => {
                write!(
                    f,
                    "posit exponent size es={es} outside supported range 0..=6"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// A posit number format, parameterized by total width `n` and exponent
/// size `es` (paper §II-B).
///
/// Bit patterns for this format are carried in the low `n` bits of a `u32`.
///
/// # Examples
///
/// ```
/// use dp_posit::PositFormat;
/// let fmt = PositFormat::new(8, 0)?;
/// assert_eq!(fmt.max_scale(), 6);            // maxpos = 2^6 = 64
/// assert_eq!(fmt.maxpos_bits(), 0x7f);
/// assert_eq!(fmt.nar_bits(), 0x80);
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PositFormat {
    n: u32,
    es: u32,
}

impl PositFormat {
    /// Creates a format with width `n` (bits) and exponent size `es`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] unless `3 <= n <= 32` and `es <= 6`.
    pub const fn new(n: u32, es: u32) -> Result<Self, FormatError> {
        if n < 3 || n > 32 {
            return Err(FormatError::WidthOutOfRange(n));
        }
        if es > 6 {
            return Err(FormatError::ExponentOutOfRange(es));
        }
        Ok(PositFormat { n, es })
    }

    /// Like [`PositFormat::new`] but panics on invalid parameters; usable in
    /// `const` contexts (backs the const-generic [`crate::Posit`] wrapper).
    ///
    /// # Panics
    ///
    /// Panics unless `3 <= n <= 32` and `es <= 6`.
    pub const fn new_const(n: u32, es: u32) -> Self {
        match Self::new(n, es) {
            Ok(f) => f,
            Err(_) => panic!("invalid posit format parameters"),
        }
    }

    /// Total width in bits.
    #[inline]
    pub const fn n(self) -> u32 {
        self.n
    }

    /// Number of exponent bits.
    #[inline]
    pub const fn es(self) -> u32 {
        self.es
    }

    /// Mask selecting the low `n` bits of a pattern.
    #[inline]
    pub const fn mask(self) -> u32 {
        if self.n == 32 {
            u32::MAX
        } else {
            (1u32 << self.n) - 1
        }
    }

    /// The bit pattern of NaR ("Not a Real"): `1 0...0`.
    #[inline]
    pub const fn nar_bits(self) -> u32 {
        1u32 << (self.n - 1)
    }

    /// The bit pattern of zero (all bits clear).
    #[inline]
    pub const fn zero_bits(self) -> u32 {
        0
    }

    /// The bit pattern of +1.0: regime `10` followed by zeros.
    #[inline]
    pub const fn one_bits(self) -> u32 {
        1u32 << (self.n - 2)
    }

    /// The bit pattern of maxpos, the largest finite posit (`0 1...1`).
    #[inline]
    pub const fn maxpos_bits(self) -> u32 {
        self.mask() >> 1
    }

    /// The bit pattern of minpos, the smallest positive posit (`0...0 1`).
    #[inline]
    pub const fn minpos_bits(self) -> u32 {
        1
    }

    /// `useed = 2^(2^es)` expressed as a base-2 logarithm.
    #[inline]
    pub const fn useed_log2(self) -> i32 {
        1i32 << self.es
    }

    /// Largest binary scale: `maxpos = 2^max_scale = useed^(n-2)`.
    #[inline]
    pub const fn max_scale(self) -> i32 {
        (self.n as i32 - 2) * self.useed_log2()
    }

    /// `maxpos` as an `f64` (may overflow to infinity for extreme formats).
    pub fn max_value(self) -> f64 {
        exp2i(self.max_scale())
    }

    /// `minpos` as an `f64` (may underflow to zero for extreme formats).
    pub fn min_value(self) -> f64 {
        exp2i(-self.max_scale())
    }

    /// Dynamic range in decades, `log10(maxpos / minpos)` (paper §IV-A).
    pub fn dynamic_range_log10(self) -> f64 {
        2.0 * self.max_scale() as f64 * std::f64::consts::LOG10_2
    }

    /// Number of distinct bit patterns, `2^n`.
    #[inline]
    pub const fn pattern_count(self) -> u64 {
        1u64 << self.n
    }

    /// Iterator over every bit pattern of the format (including 0 and NaR).
    ///
    /// ```
    /// use dp_posit::PositFormat;
    /// let fmt = PositFormat::new(5, 0)?;
    /// assert_eq!(fmt.patterns().count(), 32);
    /// # Ok::<(), dp_posit::FormatError>(())
    /// ```
    pub fn patterns(self) -> impl Iterator<Item = u32> {
        0..=self.mask()
    }

    /// Iterator over every *real-valued* bit pattern (skips NaR).
    pub fn reals(self) -> impl Iterator<Item = u32> {
        let nar = self.nar_bits();
        self.patterns().filter(move |&b| b != nar)
    }
}

/// `2^e` as `f64`, saturating to 0 / infinity outside the exponent range.
pub(crate) fn exp2i(e: i32) -> f64 {
    // f64::powi is exact for powers of two representable in f64.
    2f64.powi(e)
}

impl fmt::Debug for PositFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PositFormat(n={}, es={})", self.n, self.es)
    }
}

impl fmt::Display for PositFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "posit<{},{}>", self.n, self.es)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(PositFormat::new(8, 0).is_ok());
        assert!(PositFormat::new(2, 0).is_err());
        assert!(PositFormat::new(33, 0).is_err());
        assert!(PositFormat::new(8, 7).is_err());
        assert_eq!(
            PositFormat::new(2, 0).unwrap_err(),
            FormatError::WidthOutOfRange(2)
        );
    }

    #[test]
    fn p8e0_constants() {
        let f = PositFormat::new(8, 0).unwrap();
        assert_eq!(f.mask(), 0xff);
        assert_eq!(f.nar_bits(), 0x80);
        assert_eq!(f.one_bits(), 0x40);
        assert_eq!(f.maxpos_bits(), 0x7f);
        assert_eq!(f.max_scale(), 6);
        assert_eq!(f.max_value(), 64.0);
        assert_eq!(f.min_value(), 1.0 / 64.0);
    }

    #[test]
    fn p8e2_scale() {
        let f = PositFormat::new(8, 2).unwrap();
        assert_eq!(f.useed_log2(), 4);
        assert_eq!(f.max_scale(), 24);
    }

    #[test]
    fn p32_full_mask() {
        let f = PositFormat::new(32, 2).unwrap();
        assert_eq!(f.mask(), u32::MAX);
        assert_eq!(f.nar_bits(), 0x8000_0000);
    }

    #[test]
    fn dynamic_range_matches_paper_intuition() {
        // Paper Fig. 6 discussion: posit offers a wider dynamic range than
        // float at the same width for n <= 7 with es >= 1.
        let p7e1 = PositFormat::new(7, 1).unwrap();
        assert!((p7e1.dynamic_range_log10() - 20.0 * std::f64::consts::LOG10_2).abs() < 1e-12);
    }

    #[test]
    fn pattern_iterators() {
        let f = PositFormat::new(6, 1).unwrap();
        assert_eq!(f.patterns().count() as u64, f.pattern_count());
        assert_eq!(f.reals().count() as u64, f.pattern_count() - 1);
        assert!(f.reals().all(|b| b != f.nar_bits()));
    }

    #[test]
    fn display_formats() {
        let f = PositFormat::new(16, 1).unwrap();
        assert_eq!(format!("{f}"), "posit<16,1>");
        assert_eq!(format!("{f:?}"), "PositFormat(n=16, es=1)");
    }
}
