//! Synthetic Mushroom (Agaricus-Lepiota).
//!
//! The real dataset (Schlimmer 1987, paper ref. \[16\]) has 8124 samples —
//! 4208 edible (51.8%), 3916 poisonous — described by 22 categorical
//! attributes that one-hot encode to 117 binary features. Odor is famously
//! dominant (odor alone classifies ≈ 98.5% correctly; the residue is the
//! odorless-poisonous group that needs spore print color). The generator
//! reproduces that structure: an explicit odor table with the odorless
//! overlap, a correlated spore-print table that resolves most of it, and
//! twenty further attributes with seeded class-conditional tables of
//! varying informativeness.
//!
//! The resulting Bayes ceiling is ≈ 99%, leaving headroom above the
//! paper's 96.4–96.8% Table II row for quantized inference to land in.

use crate::data::Dataset;
use crate::sampling::categorical;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Edible sample count (as in the real data).
pub const EDIBLE: usize = 4208;
/// Poisonous sample count (as in the real data).
pub const POISONOUS: usize = 3916;

/// Attribute names with their category counts (one-hot width 117, as the
/// real dataset's 22 attributes produce).
pub const ATTRIBUTES: [(&str, usize); 22] = [
    ("cap-shape", 6),
    ("cap-surface", 4),
    ("cap-color", 10),
    ("bruises", 2),
    ("odor", 9),
    ("gill-attachment", 2),
    ("gill-spacing", 2),
    ("gill-size", 2),
    ("gill-color", 12),
    ("stalk-shape", 2),
    ("stalk-root", 5),
    ("stalk-surface-above-ring", 4),
    ("stalk-surface-below-ring", 4),
    ("stalk-color-above-ring", 9),
    ("stalk-color-below-ring", 9),
    ("veil-type", 1),
    ("veil-color", 4),
    ("ring-number", 3),
    ("ring-type", 5),
    ("spore-print-color", 9),
    ("population", 6),
    ("habitat", 7),
];

/// Index of the odor attribute.
const ODOR: usize = 4;
/// Index of the spore-print-color attribute.
const SPORE: usize = 19;

/// Odor categories: almond, anise, creosote, fishy, foul, musty, none,
/// pungent, spicy. Edible mushrooms are mostly odorless or sweet;
/// poisonous ones stink — except a small odorless group.
const ODOR_EDIBLE: [f64; 9] = [0.095, 0.095, 0.0, 0.0, 0.0, 0.0, 0.806, 0.002, 0.002];
const ODOR_POISON: [f64; 9] = [0.0, 0.0, 0.049, 0.147, 0.551, 0.009, 0.031, 0.065, 0.147];

/// One-hot encoded width (sum of category counts).
pub fn one_hot_dim() -> usize {
    ATTRIBUTES.iter().map(|(_, c)| *c).sum()
}

/// Generates the 8124-sample synthetic Mushroom dataset, one-hot encoded
/// to 117 binary features (label 1 = poisonous), deterministically from
/// `seed`.
///
/// ```
/// let d = dp_datasets::mushroom::load(7);
/// assert_eq!(d.len(), 8124);
/// assert_eq!(d.dim(), 117);
/// ```
pub fn load(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x1987));
    let tables = build_tables();
    let dim = one_hot_dim();
    let mut features = Vec::with_capacity(EDIBLE + POISONOUS);
    let mut labels = Vec::with_capacity(EDIBLE + POISONOUS);
    for (count, poisonous) in [(EDIBLE, false), (POISONOUS, true)] {
        for _ in 0..count {
            let mut row = vec![0f32; dim];
            // Draw odor first so correlated attributes can condition on it.
            let odorless = {
                let w = if poisonous {
                    &ODOR_POISON
                } else {
                    &ODOR_EDIBLE
                };
                let cat = categorical(&mut rng, w);
                set_one_hot(&mut row, offset_of(ODOR), cat);
                cat == 6
            };
            for (attr, (_, cats)) in ATTRIBUTES.iter().enumerate() {
                if attr == ODOR {
                    continue; // already drawn
                }
                let cat = if attr == SPORE && odorless && poisonous {
                    // The odorless-poisonous group shows green/white spore
                    // prints — the real data's disambiguator (mostly).
                    if rng.gen::<f64>() < 0.85 {
                        4 // "green"
                    } else {
                        categorical(&mut rng, &tables[attr].1)
                    }
                } else {
                    let w = if poisonous {
                        &tables[attr].1
                    } else {
                        &tables[attr].0
                    };
                    categorical(&mut rng, w)
                };
                set_one_hot(&mut row, offset_of(attr), cat.min(cats - 1));
            }
            features.push(row);
            labels.push(poisonous as usize);
        }
    }
    Dataset::new("mushroom", features, labels, 2)
}

fn offset_of(attr: usize) -> usize {
    ATTRIBUTES[..attr].iter().map(|(_, c)| *c).sum()
}

fn set_one_hot(row: &mut [f32], offset: usize, cat: usize) {
    row[offset + cat] = 1.0;
}

/// Builds (edible, poisonous) category weight tables for every attribute.
/// Informativeness varies per attribute: a deterministic per-attribute
/// pattern skews the poisonous distribution away from the edible one.
fn build_tables() -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut mix = StdRng::seed_from_u64(0xA6A7_1C05);
    ATTRIBUTES
        .iter()
        .enumerate()
        .map(|(attr, &(_, cats))| {
            if attr == ODOR {
                return (ODOR_EDIBLE.to_vec(), ODOR_POISON.to_vec());
            }
            // Informativeness: a few attributes are strong (gill size,
            // ring type, spore print), the rest are weak or noise.
            let strength: f64 = match attr {
                7 | 18 | 19 => 0.8,     // gill-size, ring-type, spore-print
                3 | 6 | 11 | 12 => 0.5, // bruises, spacing, stalk surfaces
                15 => 0.0,              // veil-type is constant
                _ => 0.15,
            };
            let base: Vec<f64> = (0..cats).map(|_| 0.2 + mix.gen::<f64>()).collect();
            let skew: Vec<f64> = (0..cats).map(|_| mix.gen::<f64>()).collect();
            let edible = base.clone();
            let poison: Vec<f64> = base
                .iter()
                .zip(&skew)
                .map(|(b, s)| b * (1.0 - strength) + s * strength * 1.5)
                .collect();
            (edible, poison)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_balance() {
        let d = load(1);
        assert_eq!(d.len(), 8124);
        assert_eq!(d.dim(), 117);
        assert_eq!(d.class_counts(), vec![EDIBLE, POISONOUS]);
    }

    #[test]
    fn one_hot_rows_are_valid() {
        let d = load(2);
        for row in d.features.iter().take(200) {
            let mut offset = 0;
            for &(_, cats) in &ATTRIBUTES {
                let ones: usize = row[offset..offset + cats]
                    .iter()
                    .filter(|&&v| v == 1.0)
                    .count();
                assert_eq!(ones, 1, "exactly one category per attribute");
                offset += cats;
            }
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(load(3).features[0], load(3).features[0]);
        let a = load(3);
        let b = load(4);
        assert_ne!(a.features, b.features);
    }

    #[test]
    fn odor_is_the_dominant_predictor() {
        // Classify by odor alone: foul/fishy/spicy/pungent/creosote/musty
        // -> poisonous. Should exceed 95% as in the real data.
        let d = load(5);
        let off = offset_of(ODOR);
        let mut correct = 0;
        for (row, &l) in d.features.iter().zip(&d.labels) {
            let cat = (0..9).find(|&c| row[off + c] == 1.0).unwrap();
            let predict_poison = matches!(cat, 2 | 3 | 4 | 5 | 7 | 8);
            if predict_poison == (l == 1) {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.95, "odor-only accuracy {acc}");
        assert!(acc < 0.995, "odor must not be perfect (odorless poisonous)");
    }

    #[test]
    fn spore_print_resolves_odorless_poisonous() {
        let d = load(6);
        let odor_off = offset_of(ODOR);
        let spore_off = offset_of(SPORE);
        let mut resolved = 0;
        let mut odorless_poison = 0;
        for (row, &l) in d.features.iter().zip(&d.labels) {
            if l == 1 && row[odor_off + 6] == 1.0 {
                odorless_poison += 1;
                if row[spore_off + 4] == 1.0 {
                    resolved += 1;
                }
            }
        }
        assert!(odorless_poison > 50, "overlap group exists");
        assert!(
            resolved as f64 / odorless_poison as f64 > 0.7,
            "spore print resolves most of the overlap"
        );
    }

    #[test]
    fn paper_split_sizes() {
        let tt = load(7).split(2708, 7);
        assert_eq!(tt.test.len(), 2708, "paper inference size");
        assert_eq!(tt.train.len(), 5416);
    }
}
