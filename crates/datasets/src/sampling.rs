//! Deterministic sampling helpers (normal and categorical draws).
//!
//! `rand 0.8` ships uniform sampling only (the distributions live in the
//! separate `rand_distr` crate, which is outside this project's offline
//! dependency allow-list), so the two draws the generators need are
//! implemented here.

use rand::Rng;

/// One standard-normal draw via the Box–Muller transform.
pub fn normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal draw with the given mean and standard deviation.
pub fn normal_with<R: Rng>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * normal(rng)
}

/// Samples an index from unnormalized non-negative weights.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn categorical<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "categorical needs positive total weight");
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_with_scales() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20000;
        let draws: Vec<f64> = (0..n).map(|_| normal_with(&mut rng, 5.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.06);
    }

    #[test]
    fn categorical_frequencies() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..10000 {
            counts[categorical(&mut rng, &w)] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let p2 = counts[2] as f64 / 10000.0;
        assert!((p2 - 0.6).abs() < 0.03, "p2 {p2}");
    }

    #[test]
    fn categorical_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20)
                .map(|_| categorical(&mut rng, &[1.0, 1.0, 2.0]))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }
}
