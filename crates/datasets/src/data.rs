//! Dataset container, stratified splitting and min-max normalization.

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labelled classification dataset (row-major features).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (for reports).
    pub name: String,
    /// `len × dim` feature matrix, row per sample.
    pub features: Vec<Vec<f32>>,
    /// Class label per sample, in `0..n_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shape consistency.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent widths, labels mismatch the sample
    /// count, or a label is out of range.
    pub fn new(
        name: impl Into<String>,
        features: Vec<Vec<f32>>,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Self {
        assert_eq!(features.len(), labels.len(), "samples vs labels");
        if let Some(first) = features.first() {
            let d = first.len();
            assert!(features.iter().all(|r| r.len() == d), "ragged rows");
        }
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        Dataset {
            name: name.into(),
            features,
            labels,
            n_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, |r| r.len())
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.n_classes];
        for &l in &self.labels {
            c[l] += 1;
        }
        c
    }

    /// Stratified split reserving exactly `test_count` samples for the test
    /// set (class proportions preserved to ±1), deterministically from
    /// `seed`. Remaining samples form the training set.
    ///
    /// # Panics
    ///
    /// Panics if `test_count >= len()`.
    pub fn split(&self, test_count: usize, seed: u64) -> TrainTest {
        assert!(test_count < self.len(), "test_count too large");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5117_5eed);
        // Group indices per class, shuffle each group.
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            per_class[l].push(i);
        }
        for group in &mut per_class {
            group.shuffle(&mut rng);
        }
        // Allocate test slots proportionally (largest remainder).
        let total = self.len() as f64;
        let mut alloc: Vec<usize> = per_class
            .iter()
            .map(|g| (g.len() as f64 / total * test_count as f64).floor() as usize)
            .collect();
        let mut remaining = test_count - alloc.iter().sum::<usize>();
        let mut order: Vec<usize> = (0..self.n_classes).collect();
        order.sort_by(|&a, &b| {
            let fa = per_class[a].len() as f64 / total * test_count as f64;
            let fb = per_class[b].len() as f64 / total * test_count as f64;
            (fb - fb.floor()).partial_cmp(&(fa - fa.floor())).unwrap()
        });
        for &cls in &order {
            if remaining == 0 {
                break;
            }
            if alloc[cls] < per_class[cls].len() {
                alloc[cls] += 1;
                remaining -= 1;
            }
        }
        let mut test_idx = Vec::new();
        let mut train_idx = Vec::new();
        for (cls, group) in per_class.iter().enumerate() {
            test_idx.extend_from_slice(&group[..alloc[cls]]);
            train_idx.extend_from_slice(&group[alloc[cls]..]);
        }
        train_idx.shuffle(&mut rng);
        test_idx.shuffle(&mut rng);
        let pick = |idx: &[usize]| Dataset {
            name: self.name.clone(),
            features: idx.iter().map(|&i| self.features[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        };
        TrainTest {
            train: pick(&train_idx),
            test: pick(&test_idx),
        }
    }
}

/// A train/test split of a [`Dataset`].
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training portion.
    pub train: Dataset,
    /// Held-out inference portion (paper's "inference size").
    pub test: Dataset,
}

impl TrainTest {
    /// Fits a min-max normalizer on the training set and applies it to
    /// both portions, mapping features into `[0, 1]` (the input range the
    /// paper's low-precision formats want; weights cluster in [−1, 1],
    /// Fig. 2b).
    pub fn normalized(mut self) -> TrainTest {
        let norm = MinMaxNormalizer::fit(&self.train);
        norm.apply(&mut self.train);
        norm.apply(&mut self.test);
        self
    }
}

/// Min-max feature scaling fitted on training data.
#[derive(Debug, Clone)]
pub struct MinMaxNormalizer {
    mins: Vec<f32>,
    ranges: Vec<f32>,
}

impl MinMaxNormalizer {
    /// Learns per-feature min/max from `data`.
    pub fn fit(data: &Dataset) -> Self {
        let d = data.dim();
        let mut mins = vec![f32::INFINITY; d];
        let mut maxs = vec![f32::NEG_INFINITY; d];
        for row in &data.features {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| if hi > lo { hi - lo } else { 1.0 })
            .collect();
        MinMaxNormalizer { mins, ranges }
    }

    /// Maps features into `[0, 1]` in place (clamping test outliers).
    pub fn apply(&self, data: &mut Dataset) {
        for row in &mut data.features {
            for (j, v) in row.iter_mut().enumerate() {
                *v = ((*v - self.mins[j]) / self.ranges[j]).clamp(0.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let features = (0..n).map(|i| vec![i as f32, (2 * i) as f32]).collect();
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new("toy", features, labels, 3)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy(9);
        assert_eq!(d.len(), 9);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.class_counts(), vec![3, 3, 3]);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        Dataset::new("bad", vec![vec![1.0]], vec![5], 3);
    }

    #[test]
    fn stratified_split_counts() {
        let d = toy(90);
        let tt = d.split(30, 42);
        assert_eq!(tt.test.len(), 30);
        assert_eq!(tt.train.len(), 60);
        assert_eq!(tt.test.class_counts(), vec![10, 10, 10]);
        assert_eq!(tt.train.class_counts(), vec![20, 20, 20]);
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let d = toy(60);
        let a = d.split(20, 7);
        let b = d.split(20, 7);
        let c = d.split(20, 8);
        assert_eq!(a.test.features, b.test.features);
        assert_ne!(a.test.features, c.test.features);
    }

    #[test]
    fn split_partitions_without_duplicates() {
        let d = toy(30);
        let tt = d.split(10, 3);
        let mut all: Vec<Vec<f32>> = tt
            .train
            .features
            .iter()
            .chain(tt.test.features.iter())
            .cloned()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut orig = d.features.clone();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, orig);
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let d = toy(50);
        let tt = d.split(10, 1).normalized();
        for row in tt.train.features.iter().chain(&tt.test.features) {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        // Train min/max hit exactly 0 and 1 somewhere.
        let col0: Vec<f32> = tt.train.features.iter().map(|r| r[0]).collect();
        let min = col0.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = col0.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(min, 0.0);
        assert_eq!(max, 1.0);
    }
}
