//! Synthetic Iris: Fisher's three-species flower measurements.
//!
//! The real dataset (Fisher 1936, paper ref. \[15\]) has 150 samples, 4
//! features (sepal length/width, petal length/width in cm) and 3 balanced
//! classes. The generator draws class-conditional Gaussians with the real
//! dataset's per-class means and standard deviations, plus a shared latent
//! "flower size" factor that reproduces the positive feature correlations.
//! Setosa is linearly separable; versicolor and virginica overlap slightly
//! — the structure that gives the paper its 98% / 96% / 92% Table II row.

use crate::data::Dataset;
use crate::sampling::normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-class means from the real Iris data (cm).
const MEANS: [[f64; 4]; 3] = [
    [5.006, 3.428, 1.462, 0.246], // setosa
    [5.936, 2.770, 4.260, 1.326], // versicolor
    [6.588, 2.974, 5.552, 2.026], // virginica
];

/// Per-class standard deviations from the real Iris data (cm).
const SDS: [[f64; 4]; 3] = [
    [0.352, 0.379, 0.174, 0.105],
    [0.516, 0.314, 0.470, 0.198],
    [0.636, 0.322, 0.552, 0.275],
];

/// Shared-factor loading per feature (reproduces the real data's positive
/// size correlations; petal measurements load strongest). Loadings are
/// kept moderate: stronger correlation along the size direction — which is
/// also the between-class direction — would inflate versicolor/virginica
/// overlap beyond the real data's (where only a few samples cross).
const LOADING: [f64; 4] = [0.3, 0.15, 0.35, 0.3];

/// Number of samples per class (as in the real dataset).
pub const PER_CLASS: usize = 50;

/// Class names, index-aligned with labels.
pub const CLASSES: [&str; 3] = ["setosa", "versicolor", "virginica"];

/// Generates the 150-sample synthetic Iris dataset, deterministically from
/// `seed`.
///
/// ```
/// let d = dp_datasets::iris::load(7);
/// assert_eq!(d.len(), 150);
/// assert_eq!(d.dim(), 4);
/// assert_eq!(d.class_counts(), vec![50, 50, 50]);
/// ```
pub fn load(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x1215));
    let mut features = Vec::with_capacity(3 * PER_CLASS);
    let mut labels = Vec::with_capacity(3 * PER_CLASS);
    for cls in 0..3 {
        for _ in 0..PER_CLASS {
            let size = normal(&mut rng); // shared latent factor
            let row: Vec<f32> = (0..4)
                .map(|j| {
                    let rho = LOADING[j];
                    let eps = normal(&mut rng);
                    let z = rho * size + (1.0 - rho * rho).sqrt() * eps;
                    (MEANS[cls][j] + SDS[cls][j] * z).max(0.05) as f32
                })
                .collect();
            features.push(row);
            labels.push(cls);
        }
    }
    Dataset::new("iris", features, labels, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_balance() {
        let d = load(1);
        assert_eq!(d.len(), 150);
        assert_eq!(d.dim(), 4);
        assert_eq!(d.class_counts(), vec![50, 50, 50]);
    }

    #[test]
    fn determinism() {
        assert_eq!(load(5).features, load(5).features);
        assert_ne!(load(5).features, load(6).features);
    }

    #[test]
    fn class_means_track_fisher_statistics() {
        let d = load(2);
        for cls in 0..3 {
            for j in 0..4 {
                let vals: Vec<f64> = d
                    .features
                    .iter()
                    .zip(&d.labels)
                    .filter(|(_, &l)| l == cls)
                    .map(|(r, _)| r[j] as f64)
                    .collect();
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                assert!(
                    (mean - MEANS[cls][j]).abs() < 4.0 * SDS[cls][j] / (50f64).sqrt() + 0.05,
                    "class {cls} feature {j}: mean {mean} vs {}",
                    MEANS[cls][j]
                );
            }
        }
    }

    #[test]
    fn setosa_petals_are_separable() {
        // In the real data petal length < 2.5 identifies setosa exactly.
        let d = load(3);
        for (row, &l) in d.features.iter().zip(&d.labels) {
            if l == 0 {
                assert!(row[2] < 2.6, "setosa petal length {}", row[2]);
            } else {
                assert!(row[2] > 2.6, "non-setosa petal length {}", row[2]);
            }
        }
    }

    #[test]
    fn paper_split_sizes() {
        let tt = load(4).split(50, 4);
        assert_eq!(tt.test.len(), 50, "paper inference size");
        assert_eq!(tt.train.len(), 100);
    }
}
