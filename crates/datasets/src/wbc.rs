//! Synthetic Wisconsin Diagnostic Breast Cancer (WDBC).
//!
//! The real dataset (Street, Wolberg & Mangasarian 1993, paper ref. \[14\])
//! has 569 samples — 357 benign, 212 malignant — with 30 features: ten
//! cell-nucleus measurements, each reported as the per-image **mean**,
//! **standard error** and **worst** (mean of the three largest values).
//! The generator draws the ten base features from class-conditional
//! distributions matching the published per-class statistics, derives
//! geometrically coupled features (perimeter ≈ 2πr, area ≈ πr²), then
//! expands to the 30-column mean/SE/worst layout. Malignant nuclei are
//! larger, more irregular and more variable — the separation that lets
//! linear models reach ≈95% and the paper's 32-bit float MLP 90.1%.

use crate::data::Dataset;
use crate::sampling::{normal, normal_with};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Benign sample count (as in the real data).
pub const BENIGN: usize = 357;
/// Malignant sample count (as in the real data).
pub const MALIGNANT: usize = 212;

/// Base feature names (each expanded to mean / SE / worst columns).
pub const BASE_FEATURES: [&str; 10] = [
    "radius",
    "texture",
    "perimeter",
    "area",
    "smoothness",
    "compactness",
    "concavity",
    "concave_points",
    "symmetry",
    "fractal_dimension",
];

/// (benign mean, benign sd, malignant mean, malignant sd) for the
/// non-derived base features, from the published WDBC class statistics.
struct BaseStat {
    b_mean: f64,
    b_sd: f64,
    m_mean: f64,
    m_sd: f64,
}

const RADIUS: BaseStat = BaseStat {
    b_mean: 12.15,
    b_sd: 1.78,
    m_mean: 17.46,
    m_sd: 3.20,
};
const TEXTURE: BaseStat = BaseStat {
    b_mean: 17.91,
    b_sd: 3.99,
    m_mean: 21.60,
    m_sd: 3.78,
};
const SMOOTHNESS: BaseStat = BaseStat {
    b_mean: 0.0925,
    b_sd: 0.0134,
    m_mean: 0.1029,
    m_sd: 0.0126,
};
const COMPACTNESS: BaseStat = BaseStat {
    b_mean: 0.0801,
    b_sd: 0.0337,
    m_mean: 0.1452,
    m_sd: 0.0540,
};
const CONCAVITY: BaseStat = BaseStat {
    b_mean: 0.0461,
    b_sd: 0.0434,
    m_mean: 0.1608,
    m_sd: 0.0750,
};
const CONCAVE_PTS: BaseStat = BaseStat {
    b_mean: 0.0257,
    b_sd: 0.0159,
    m_mean: 0.0880,
    m_sd: 0.0344,
};
const SYMMETRY: BaseStat = BaseStat {
    b_mean: 0.1742,
    b_sd: 0.0248,
    m_mean: 0.1929,
    m_sd: 0.0276,
};
const FRACTAL: BaseStat = BaseStat {
    b_mean: 0.0629,
    b_sd: 0.0067,
    m_mean: 0.0627,
    m_sd: 0.0075,
};

impl BaseStat {
    /// Samples the feature; `blend ∈ [0, 1]` mixes the parameters toward
    /// the *other* class — atypical cases (early-stage malignancies,
    /// benign masses with irregular nuclei) that give the real data its
    /// irreducible error.
    fn sample<R: Rng>(&self, rng: &mut R, malignant: bool, shared: f64, blend: f64) -> f64 {
        let (own, other) = if malignant {
            ((self.m_mean, self.m_sd), (self.b_mean, self.b_sd))
        } else {
            ((self.b_mean, self.b_sd), (self.m_mean, self.m_sd))
        };
        let mean = own.0 * (1.0 - blend) + other.0 * blend;
        let sd = own.1 * (1.0 - blend) + other.1 * blend;
        // A shared severity factor couples the shape features within a
        // sample, as in real nuclei morphology. (Its strength sets the
        // class overlap: higher rho collapses the 30 features toward one
        // effective dimension.)
        let rho = 0.35;
        let eps = normal(rng);
        (mean + sd * (rho * shared + (1.0 - rho * rho).sqrt() * eps)).max(mean * 0.05)
    }
}

/// Generates the 569-sample synthetic WDBC dataset (label 1 = malignant),
/// deterministically from `seed`.
///
/// ```
/// let d = dp_datasets::wbc::load(7);
/// assert_eq!(d.len(), 569);
/// assert_eq!(d.dim(), 30);
/// assert_eq!(d.class_counts(), vec![357, 212]);
/// ```
pub fn load(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x1993));
    let mut features = Vec::with_capacity(BENIGN + MALIGNANT);
    let mut labels = Vec::with_capacity(BENIGN + MALIGNANT);
    for (count, malignant) in [(BENIGN, false), (MALIGNANT, true)] {
        for _ in 0..count {
            features.push(sample_row(&mut rng, malignant));
            labels.push(malignant as usize);
        }
    }
    Dataset::new("wbc", features, labels, 2)
}

fn sample_row<R: Rng>(rng: &mut R, malignant: bool) -> Vec<f32> {
    let severity = normal(rng);
    // Atypical fraction: ~12% of malignant samples present near-benign
    // morphology (and ~8% of benign near-malignant), reproducing the
    // real data's hard cases (f32 MLP ≈ 90% in the paper). Atypical
    // samples blend 65–95% toward the other class's parameters, so a
    // portion of them is genuinely ambiguous.
    let atypical_p = if malignant { 0.12 } else { 0.08 };
    let blend = if rng.gen::<f64>() < atypical_p {
        0.65 + 0.3 * rng.gen::<f64>()
    } else {
        0.08 * rng.gen::<f64>()
    };
    let radius = RADIUS.sample(rng, malignant, severity, blend);
    let texture = TEXTURE.sample(rng, malignant, severity, blend);
    let smoothness = SMOOTHNESS.sample(rng, malignant, severity, blend);
    let compactness = COMPACTNESS.sample(rng, malignant, severity, blend);
    let concavity = CONCAVITY.sample(rng, malignant, severity, blend).max(0.0);
    let concave_pts = CONCAVE_PTS.sample(rng, malignant, severity, blend).max(0.0);
    let symmetry = SYMMETRY.sample(rng, malignant, severity, blend);
    let fractal = FRACTAL.sample(rng, malignant, severity, blend);
    // Geometric derivations with lumpiness noise: irregular (malignant)
    // nuclei have perimeters above the circular minimum.
    let lumpiness = 1.0 + 0.10 * concavity / 0.05 + 0.01 * normal(rng).abs();
    let perimeter = std::f64::consts::TAU * radius / 2.0 * lumpiness * 0.33 + radius * 4.7;
    let area = std::f64::consts::PI * radius * radius * (1.0 + 0.02 * normal(rng));

    let base = [
        radius,
        texture,
        perimeter,
        area,
        smoothness,
        compactness,
        concavity,
        concave_pts,
        symmetry,
        fractal,
    ];
    // Standard errors scale with the base magnitude and with the sample's
    // *effective* morphology (atypical samples carry the other class's
    // heterogeneity too — otherwise the SE/worst columns would leak the
    // true label and make the task trivially separable).
    let effective = if malignant { 1.0 - blend } else { blend };
    let se_scale = 0.030 + 0.015 * effective;
    let mut row = Vec::with_capacity(30);
    let mut ses = [0f64; 10];
    for (j, &v) in base.iter().enumerate() {
        let se = (v * se_scale * (1.0 + 0.4 * normal(rng).abs())).max(1e-4);
        ses[j] = se;
        row.push(v as f32);
    }
    for &se in &ses {
        row.push(se as f32);
    }
    let spread = 2.6 + 0.6 * effective;
    for (j, &v) in base.iter().enumerate() {
        let worst = v + ses[j] * (spread + 0.5 * normal_with(rng, 0.0, 1.0).abs()) * 3.0_f64.sqrt();
        row.push(worst as f32);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_balance() {
        let d = load(1);
        assert_eq!(d.len(), 569);
        assert_eq!(d.dim(), 30);
        assert_eq!(d.class_counts(), vec![357, 212]);
    }

    #[test]
    fn determinism() {
        assert_eq!(load(9).features, load(9).features);
        assert_ne!(load(9).features, load(10).features);
    }

    #[test]
    fn malignant_nuclei_are_larger() {
        let d = load(2);
        let mean_radius = |cls: usize| {
            let v: Vec<f64> = d
                .features
                .iter()
                .zip(&d.labels)
                .filter(|(_, &l)| l == cls)
                .map(|(r, _)| r[0] as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean_radius(1) > mean_radius(0) + 3.0);
    }

    #[test]
    fn derived_features_are_geometrically_consistent() {
        let d = load(3);
        for row in &d.features {
            let (r, p, a) = (row[0] as f64, row[2] as f64, row[3] as f64);
            assert!(p > 2.0 * r, "perimeter {p} vs radius {r}");
            let circle_area = std::f64::consts::PI * r * r;
            assert!(
                (a / circle_area - 1.0).abs() < 0.2,
                "area {a} vs {circle_area}"
            );
        }
    }

    #[test]
    fn worst_exceeds_mean_columns() {
        let d = load(4);
        for row in &d.features {
            for j in 0..10 {
                assert!(
                    row[20 + j] >= row[j],
                    "worst[{j}] {} < mean {}",
                    row[20 + j],
                    row[j]
                );
            }
        }
    }

    #[test]
    fn paper_split_sizes() {
        let tt = load(5).split(190, 5);
        assert_eq!(tt.test.len(), 190, "paper inference size");
        assert_eq!(tt.train.len(), 379);
    }

    #[test]
    fn classes_separate_on_concave_points_but_not_perfectly() {
        // A one-feature threshold does far better than chance (as in the
        // real data) yet stays short of perfect: the atypical cases keep
        // the task at the real dataset's difficulty.
        let d = load(6);
        let vals: Vec<(f64, usize)> = d
            .features
            .iter()
            .zip(&d.labels)
            .map(|(r, &l)| (r[7] as f64, l))
            .collect();
        let threshold = 0.05;
        let correct = vals
            .iter()
            .filter(|&&(v, l)| (v > threshold) == (l == 1))
            .count();
        let acc = correct as f64 / vals.len() as f64;
        assert!(acc > 0.75, "one-feature accuracy {acc}");
        assert!(acc < 0.97, "task must not be trivially separable: {acc}");
    }
}
