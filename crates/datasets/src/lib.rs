//! # dp-datasets — synthetic stand-ins for the paper's UCI datasets
//!
//! The Deep Positron evaluation (paper Table II) uses three low-dimensional
//! UCI datasets: **Wisconsin Breast Cancer** (569 × 30, inference size 190),
//! **Iris** (150 × 4, inference size 50) and **Mushroom** (8124 × 22
//! categorical → 117 one-hot, inference size 2708). This reproduction has
//! no network access, so this crate provides **seeded synthetic
//! generators** calibrated to each dataset's published structure:
//!
//! * [`iris`] — three 4-dimensional class-conditional Gaussians with
//!   Fisher's per-class means/SDs and a shared size factor (setosa
//!   linearly separable, versicolor/virginica overlapping).
//! * [`wbc`] — ten cell-nucleus base features per class (radius, texture,
//!   …, fractal dimension) with published benign/malignant statistics,
//!   expanded to the WDBC 30-column mean/SE/worst layout.
//! * [`mushroom`] — 22 categorical features with class-conditional tables;
//!   odor is the dominant predictor (as in the real data, where it alone
//!   reaches ≈ 98.5%), with a small odorless-poisonous overlap so the task
//!   is not trivially separable.
//!
//! The substitution preserves what Table II measures: the *relative*
//! accuracy of ≤8-bit formats against a 32-bit float upper bound on
//! low-dimensional tasks. Same split sizes as the paper.
//!
//! ```
//! use dp_datasets::{iris, TrainTest};
//! let split: TrainTest = iris::load(7).split(50, 7); // 100 train / 50 test
//! assert_eq!(split.test.len(), 50);
//! assert_eq!(split.train.dim(), 4);
//! ```

pub mod data;
pub mod iris;
pub mod mushroom;
pub mod sampling;
pub mod wbc;

pub use data::{Dataset, MinMaxNormalizer, TrainTest};
