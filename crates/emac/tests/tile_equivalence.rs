//! Tile-kernel equivalence: [`Emac::dot_tile`] must be bit-identical, per
//! column, to the `set_bias → dot_slice → result` expansion on every input,
//! or a tile fast path is a silent numerics change.
//!
//! Coverage, per the tile bands:
//! * **Blocked product (n ≤ 8)** — exhaustive over all `2^(2n)` operand
//!   pairs at batch widths B ∈ {1, 8} for posit⟨8, es ∈ {0,1,2}⟩, the
//!   8-bit minifloat and an 8-bit fixed format, against the reference
//!   datapath (the slice row covers every weight pattern, each column
//!   holds one constant activation pattern).
//! * **Gathered fused (9–16 bits)** and **per-column scalar (> 16 bits)**
//!   — randomized tile-vs-expansion bit-identity with random biases,
//!   including K = 0, B ∈ {0, 1} and ragged (non-power-of-two) B.
//! * **Accounting** — a non-empty tile leaves `macs_done` at exactly
//!   K × B, agreeing with slice/scalar/reference paths fed the same
//!   K × B workload; B = 0 is a state no-op.
//! * **Selection** — `tile_kernel(B)` pins per band and batch width,
//!   steps down under `with_kernel_cap` and under accumulator-window
//!   spills exactly as the row kernel does.

use dp_emac::{Emac, EmacUnit, FixedEmac, FloatEmac, MacKernel, PositEmac, TileKernel};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Runs one tile through `unit.dot_tile` and checks every column against
/// the per-column `set_bias → dot_slice → result` expansion on a clone of
/// the same unit (same kernel selection), plus the K × B accounting and
/// the last-column state contract.
fn tile_vs_expansion<E: Emac + Clone>(unit: &mut E, bias: u32, ws: &[u32], cols: &[Vec<u32>]) {
    let col_refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
    let mut out = vec![0u32; cols.len()];
    unit.dot_tile(bias, ws, &col_refs, &mut out);
    let mut expansion = unit.clone();
    for (col, &got) in cols.iter().zip(&out) {
        expansion.set_bias(bias);
        expansion.dot_slice(ws, col);
        assert_eq!(got, expansion.result(), "tile vs expansion column");
    }
    if !cols.is_empty() {
        assert_eq!(
            unit.macs_done(),
            (ws.len() * cols.len()) as u64,
            "tile macs_done must be K × B"
        );
        assert_eq!(
            unit.result(),
            out[cols.len() - 1],
            "unit state after the tile must equal the last column's"
        );
    }
}

#[test]
fn posit8_tile_matches_reference_exhaustively() {
    // All 65 536 (w, a) pairs per es: the weight row is every bit pattern
    // once, each column holds one constant activation pattern, so 256
    // columns sweep every pair. Run as 32 tiles of B = 8 (blocked-product
    // fast path) and as 256 tiles of B = 1 (per-column wrap), both against
    // the WideInt reference datapath.
    for es in [0u32, 1, 2] {
        let fmt = PositFormat::new(8, es).unwrap();
        let all: Vec<u32> = fmt.patterns().collect();
        let mut unit = PositEmac::new(fmt, 256);
        assert_eq!(unit.tile_kernel(8), TileKernel::BlockedProduct, "{fmt}");
        let mut reference = PositEmac::new_reference(fmt, 256);
        let bias = all[all.len() / 3];
        let mut expected = Vec::with_capacity(all.len());
        for &a in &all {
            reference.set_bias(bias);
            for &w in &all {
                reference.mac(w, a);
            }
            expected.push(reference.result());
        }
        for (tile, want) in all.chunks(8).zip(expected.chunks(8)) {
            let cols: Vec<Vec<u32>> = tile.iter().map(|&a| vec![a; all.len()]).collect();
            let col_refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
            let mut out = vec![0u32; cols.len()];
            unit.dot_tile(bias, &all, &col_refs, &mut out);
            assert_eq!(out, want, "{fmt} B=8 tile");
        }
        for (&a, &want) in all.iter().zip(&expected) {
            let col = vec![a; all.len()];
            let mut out = [0u32];
            unit.dot_tile(bias, &all, &[&col], &mut out);
            assert_eq!(out[0], want, "{fmt} B=1 a={a:#x}");
        }
    }
}

#[test]
fn minifloat8_tile_matches_reference_exhaustively() {
    let fmt = FloatFormat::new(4, 3).unwrap();
    let all: Vec<u32> = fmt.patterns().collect();
    let mut unit = FloatEmac::new(fmt, 256);
    assert_eq!(unit.tile_kernel(8), TileKernel::BlockedProduct);
    let mut reference = FloatEmac::new_reference(fmt, 256);
    let bias = all[all.len() / 3];
    let mut expected = Vec::with_capacity(all.len());
    for &a in &all {
        reference.set_bias(bias);
        for &w in &all {
            reference.mac(w, a);
        }
        expected.push(reference.result());
    }
    for (tile, want) in all.chunks(8).zip(expected.chunks(8)) {
        let cols: Vec<Vec<u32>> = tile.iter().map(|&a| vec![a; all.len()]).collect();
        let col_refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut out = vec![0u32; cols.len()];
        unit.dot_tile(bias, &all, &col_refs, &mut out);
        assert_eq!(out, want, "B=8 tile");
    }
    for (&a, &want) in all.iter().zip(&expected) {
        let col = vec![a; all.len()];
        let mut out = [0u32];
        unit.dot_tile(bias, &all, &[&col], &mut out);
        assert_eq!(out[0], want, "B=1 a={a:#x}");
    }
}

#[test]
fn fixed8_tile_matches_scalar_exhaustively() {
    // The fixed unit has no WideInt variant; its scalar-capped twin is the
    // reference datapath.
    let fmt = FixedFormat::new(8, 6).unwrap();
    let all: Vec<u32> = (0..256u32).collect();
    let mut unit = FixedEmac::new(fmt, 256);
    assert_eq!(unit.tile_kernel(8), TileKernel::BlockedProduct);
    let mut scalar = FixedEmac::new(fmt, 256).with_kernel_cap(MacKernel::Scalar);
    let bias = 0x5au32;
    let mut expected = Vec::with_capacity(all.len());
    for &a in &all {
        scalar.set_bias(bias);
        for &w in &all {
            scalar.mac(w, a);
        }
        expected.push(scalar.result());
    }
    for (tile, want) in all.chunks(8).zip(expected.chunks(8)) {
        let cols: Vec<Vec<u32>> = tile.iter().map(|&a| vec![a; all.len()]).collect();
        let col_refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut out = vec![0u32; cols.len()];
        unit.dot_tile(bias, &all, &col_refs, &mut out);
        assert_eq!(out, want, "B=8 tile");
    }
    for (&a, &want) in all.iter().zip(&expected) {
        let col = vec![a; all.len()];
        let mut out = [0u32];
        unit.dot_tile(bias, &all, &[&col], &mut out);
        assert_eq!(out[0], want, "B=1 a={a:#x}");
    }
}

#[test]
fn posit_gathered_and_scalar_tiles_match_randomized() {
    // 13–16-bit formats (gathered fused tile over split/monolithic
    // operands) and > 16-bit formats (per-column scalar) — random tiles
    // with random biases, always including K = 0, B ∈ {0, 1} and ragged
    // batch widths.
    let mut next = xorshift(0x711e_c0de ^ 0x51ce_ba7c_4ed0_7e57);
    for (n, es, want) in [
        (13u32, 0u32, TileKernel::GatherFused),
        (14, 1, TileKernel::GatherFused),
        (16, 2, TileKernel::GatherFused),
        (17, 1, TileKernel::PerColumn(MacKernel::Scalar)),
        (20, 2, TileKernel::PerColumn(MacKernel::Scalar)),
    ] {
        let fmt = PositFormat::new(n, es).unwrap();
        for trial in 0..60 {
            let (k, b) = match trial {
                0 => (0usize, 8usize),
                1 => (24, 0),
                2 => (24, 1),
                3 => (24, 7),
                _ => ((next() % 48) as usize, (next() % 11) as usize),
            };
            let mut unit = PositEmac::new(fmt, k.max(1) as u64);
            if b >= 2 {
                assert_eq!(unit.tile_kernel(b), want, "{fmt}");
            }
            let bias = (next() as u32) & fmt.mask();
            let ws: Vec<u32> = (0..k).map(|_| (next() as u32) & fmt.mask()).collect();
            let cols: Vec<Vec<u32>> = (0..b)
                .map(|_| (0..k).map(|_| (next() as u32) & fmt.mask()).collect())
                .collect();
            tile_vs_expansion(&mut unit, bias, &ws, &cols);
        }
    }
}

#[test]
fn minifloat_gathered_and_scalar_tiles_match_randomized() {
    let mut next = xorshift(0xf10a_7b47_0000_711e ^ 0xffff);
    for (we, wf, want) in [
        (4u32, 8u32, TileKernel::GatherFused),             // n = 13
        (5, 10, TileKernel::GatherFused),                  // n = 16
        (5, 11, TileKernel::PerColumn(MacKernel::Scalar)), // n = 17
        (8, 14, TileKernel::PerColumn(MacKernel::Scalar)), // n = 23
    ] {
        let fmt = FloatFormat::new(we, wf).unwrap();
        for trial in 0..60 {
            let (k, b) = match trial {
                0 => (0usize, 8usize),
                1 => (24, 0),
                2 => (24, 1),
                3 => (24, 7),
                _ => ((next() % 48) as usize, (next() % 11) as usize),
            };
            let mut unit = FloatEmac::new(fmt, k.max(1) as u64);
            if b >= 2 {
                assert_eq!(unit.tile_kernel(b), want, "{fmt}");
            }
            let bias = (next() as u32) & fmt.mask();
            let ws: Vec<u32> = (0..k).map(|_| (next() as u32) & fmt.mask()).collect();
            let cols: Vec<Vec<u32>> = (0..b)
                .map(|_| (0..k).map(|_| (next() as u32) & fmt.mask()).collect())
                .collect();
            tile_vs_expansion(&mut unit, bias, &ws, &cols);
        }
    }
}

#[test]
fn fixed_gathered_and_scalar_tiles_match_randomized() {
    let mut next = xorshift(0xf1ed_711e_4ed0_5eed ^ 0xaaaa);
    for (n, q, want) in [
        (13u32, 6u32, TileKernel::GatherFused),
        (16, 8, TileKernel::GatherFused),
        (17, 8, TileKernel::PerColumn(MacKernel::Scalar)),
        (24, 12, TileKernel::PerColumn(MacKernel::Scalar)),
    ] {
        let fmt = FixedFormat::new(n, q).unwrap();
        let mask = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        for trial in 0..60 {
            let (k, b) = match trial {
                0 => (0usize, 8usize),
                1 => (24, 0),
                2 => (24, 1),
                3 => (24, 7),
                _ => ((next() % 48) as usize, (next() % 11) as usize),
            };
            let mut unit = FixedEmac::new(fmt, k.max(1) as u64);
            if b >= 2 {
                assert_eq!(unit.tile_kernel(b), want, "{fmt}");
            }
            let bias = (next() as u32) & mask;
            let ws: Vec<u32> = (0..k).map(|_| (next() as u32) & mask).collect();
            let cols: Vec<Vec<u32>> = (0..b)
                .map(|_| (0..k).map(|_| (next() as u32) & mask).collect())
                .collect();
            tile_vs_expansion(&mut unit, bias, &ws, &cols);
        }
    }
}

#[test]
fn tile_macs_done_is_k_times_b_on_every_band() {
    // The accounting audit, per band: a tile of K weights × B columns
    // leaves macs_done at exactly K × B — the same count a scalar unit and
    // the reference datapath report after an identical K × B workload —
    // including the K = 0, B = 1 and ragged-B edge cases. B = 0 must not
    // touch the counter at all.
    let mut next = xorshift(0xacc0_0117_ab1e_5eed);
    for n in [8u32, 16, 17] {
        let fmt = PositFormat::new(n, 1).unwrap();
        for (k, b) in [(24usize, 8usize), (24, 1), (24, 5), (0, 8), (7, 3)] {
            let mut unit = PositEmac::new(fmt, k.max(1) as u64);
            let ws: Vec<u32> = (0..k).map(|_| (next() as u32) & fmt.mask()).collect();
            let cols: Vec<Vec<u32>> = (0..b)
                .map(|_| (0..k).map(|_| (next() as u32) & fmt.mask()).collect())
                .collect();
            let col_refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
            let mut out = vec![0u32; b];
            unit.dot_tile(0, &ws, &col_refs, &mut out);
            assert_eq!(unit.macs_done(), (k * b) as u64, "posit<{n},1> K={k} B={b}");

            let mut scalar = PositEmac::new(fmt, k.max(1) as u64);
            let mut reference = PositEmac::new_reference(fmt, k.max(1) as u64);
            for col in &cols {
                scalar.set_bias(0);
                reference.set_bias(0);
                for (&w, &a) in ws.iter().zip(col) {
                    scalar.mac(w, a);
                    reference.mac(w, a);
                }
            }
            if b > 0 {
                // The per-column expansion's counter resets each set_bias,
                // so it reports only the last column's K; the tile keeps
                // the whole sweep. Their *workloads* are identical.
                assert_eq!(scalar.macs_done(), k as u64);
                assert_eq!(reference.macs_done(), k as u64);
                assert_eq!(
                    unit.macs_done(),
                    scalar.macs_done() * b as u64,
                    "tile count = per-column count × B"
                );
            }

            // B = 0 leaves all state untouched.
            let before = unit.macs_done();
            unit.dot_tile(0, &ws, &[], &mut []);
            assert_eq!(unit.macs_done(), before, "B=0 must be a no-op");
        }
    }
}

#[test]
fn tile_kernels_pin_per_band_and_batch_width() {
    // B ≤ 1 always wraps the row kernel; B ≥ 2 promotes the product band
    // to the blocked tile and the fused band to the gathered tile, while
    // the scalar band stays per-column. Kernel caps and accumulator-window
    // spills step the tile down exactly as they step the row kernel down.
    let p8 = PositFormat::new(8, 1).unwrap();
    let p16 = PositFormat::new(16, 1).unwrap();
    let p17 = PositFormat::new(17, 1).unwrap();
    for b in [0usize, 1] {
        assert_eq!(
            PositEmac::new(p8, 128).tile_kernel(b),
            TileKernel::PerColumn(MacKernel::ProductTable)
        );
        assert_eq!(
            PositEmac::new(p16, 128).tile_kernel(b),
            TileKernel::PerColumn(MacKernel::BatchedFused)
        );
    }
    for b in [2usize, 8, 64] {
        assert_eq!(
            PositEmac::new(p8, 128).tile_kernel(b),
            TileKernel::BlockedProduct
        );
        assert_eq!(
            PositEmac::new(p16, 128).tile_kernel(b),
            TileKernel::GatherFused
        );
        assert_eq!(
            PositEmac::new(p17, 128).tile_kernel(b),
            TileKernel::PerColumn(MacKernel::Scalar)
        );
    }

    // Caps step the tile down without changing results.
    assert_eq!(
        PositEmac::new(p8, 128)
            .with_kernel_cap(MacKernel::BatchedFused)
            .tile_kernel(8),
        TileKernel::GatherFused
    );
    assert_eq!(
        PositEmac::new(p8, 128)
            .with_kernel_cap(MacKernel::Scalar)
            .tile_kernel(8),
        TileKernel::PerColumn(MacKernel::Scalar)
    );

    // Accumulator-window spills demote tiles like they demote row kernels:
    // posit<8,2> at k = 2^40 spills the i128 window (no product table);
    // posit<16,2> at k = 256 spills Acc256 (no native window at all).
    let spill8 = PositEmac::new(PositFormat::new(8, 2).unwrap(), 1 << 40);
    assert_eq!(spill8.kernel(), MacKernel::BatchedFused);
    assert_eq!(spill8.tile_kernel(8), TileKernel::GatherFused);
    let spill16 = PositEmac::new(PositFormat::new(16, 2).unwrap(), 256);
    assert_eq!(spill16.kernel(), MacKernel::Scalar);
    assert_eq!(
        spill16.tile_kernel(8),
        TileKernel::PerColumn(MacKernel::Scalar)
    );

    // The erased unit dispatches tile selection like the concrete units.
    let erased = EmacUnit::Posit(PositEmac::new(p8, 128));
    assert_eq!(erased.tile_kernel(8), TileKernel::BlockedProduct);
    assert_eq!(
        erased.tile_kernel(1),
        TileKernel::PerColumn(MacKernel::ProductTable)
    );
}

#[test]
fn spilled_window_tiles_stay_bit_identical() {
    // The demoted tiles must still honour the per-column contract: run the
    // posit<16,2>/k=256 spill case (per-column scalar tile) against the
    // reference datapath.
    let fmt = PositFormat::new(16, 2).unwrap();
    let mut unit = PositEmac::new(fmt, 256);
    assert_eq!(
        unit.tile_kernel(4),
        TileKernel::PerColumn(MacKernel::Scalar)
    );
    let mut next = xorshift(0x0b5e_55ed_ca11_ab1e);
    let ws: Vec<u32> = (0..256).map(|_| (next() as u32) & fmt.mask()).collect();
    let cols: Vec<Vec<u32>> = (0..4)
        .map(|_| (0..256).map(|_| (next() as u32) & fmt.mask()).collect())
        .collect();
    let col_refs: Vec<&[u32]> = cols.iter().map(|c| c.as_slice()).collect();
    let mut out = vec![0u32; 4];
    unit.dot_tile(0, &ws, &col_refs, &mut out);
    let mut reference = PositEmac::new_reference(fmt, 256);
    for (col, &got) in cols.iter().zip(&out) {
        reference.set_bias(0);
        for (&w, &a) in ws.iter().zip(col) {
            reference.mac(w, a);
        }
        assert_eq!(got, reference.result(), "spilled tile vs reference");
    }
    assert_eq!(unit.macs_done(), 256 * 4);
}
