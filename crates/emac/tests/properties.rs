//! Property-based differential tests for the EMAC units: random dot
//! products across random formats must agree with independent references.

use dp_emac::{Emac, FixedEmac, FloatEmac, PositEmac};
use dp_fixed::FixedFormat;
use dp_minifloat::{FloatClass, FloatFormat};
use dp_posit::{PositFormat, Quire};
use proptest::prelude::*;

fn posit_formats() -> impl Strategy<Value = PositFormat> {
    (5u32..=16, 0u32..=2).prop_map(|(n, es)| PositFormat::new(n, es.min(n - 3)).unwrap())
}

fn float_formats() -> impl Strategy<Value = FloatFormat> {
    (2u32..=5, 1u32..=5).prop_map(|(we, wf)| FloatFormat::new(we, wf).unwrap())
}

fn fixed_formats() -> impl Strategy<Value = FixedFormat> {
    (4u32..=12, 1u32..=11).prop_map(|(n, q)| FixedFormat::new(n, q.min(n - 1)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn posit_emac_equals_quire(
        fmt in posit_formats(),
        raw in prop::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 1..24),
    ) {
        let mut emac = PositEmac::new(fmt, raw.len() as u64);
        let mut quire = Quire::new(fmt, raw.len() as u64);
        for &(a, b) in &raw {
            let (mut a, mut b) = (a & fmt.mask(), b & fmt.mask());
            if a == fmt.nar_bits() { a = 0; }
            if b == fmt.nar_bits() { b = 0; }
            emac.mac(a, b);
            quire.add_product(a, b);
        }
        prop_assert_eq!(emac.result(), quire.to_posit());
    }

    #[test]
    fn posit_emac_with_bias_equals_quire(
        fmt in posit_formats(),
        bias in 0u32..=u32::MAX,
        raw in prop::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 1..12),
    ) {
        let mut bias = bias & fmt.mask();
        if bias == fmt.nar_bits() { bias = 0; }
        let mut emac = PositEmac::new(fmt, raw.len() as u64);
        emac.set_bias(bias);
        let mut quire = Quire::new(fmt, raw.len() as u64);
        quire.add_posit(bias);
        for &(a, b) in &raw {
            let (mut a, mut b) = (a & fmt.mask(), b & fmt.mask());
            if a == fmt.nar_bits() { a = 0; }
            if b == fmt.nar_bits() { b = 0; }
            emac.mac(a, b);
            quire.add_product(a, b);
        }
        prop_assert_eq!(emac.result(), quire.to_posit());
    }

    #[test]
    fn float_emac_equals_f64_reference_for_narrow_formats(
        fmt in float_formats(),
        raw in prop::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 1..16),
    ) {
        // Sums of ≤16 products of (we ≤ 5, wf ≤ 5) floats are exact in f64.
        let mut emac = FloatEmac::new(fmt, raw.len() as u64);
        let mut reference = 0f64;
        for &(a, b) in &raw {
            let (a, b) = (a & fmt.mask(), b & fmt.mask());
            let ca = dp_minifloat::decode(fmt, a);
            let cb = dp_minifloat::decode(fmt, b);
            let finite = |c: &FloatClass| matches!(c, FloatClass::Finite(_) | FloatClass::Zero(_));
            if !finite(&ca) || !finite(&cb) {
                continue;
            }
            emac.mac(a, b);
            reference += dp_minifloat::convert::to_f64(fmt, a)
                * dp_minifloat::convert::to_f64(fmt, b);
        }
        let got = dp_minifloat::convert::to_f64(fmt, emac.result());
        let want = dp_minifloat::convert::to_f64(
            fmt,
            dp_minifloat::convert::from_f64_saturating(fmt, reference),
        );
        // The EMAC's empty/zero accumulator reads +0 where the reference
        // may carry a signed zero.
        prop_assert!(got == want || (got == 0.0 && want == 0.0),
            "emac {} vs reference {}", got, want);
    }

    #[test]
    fn fixed_emac_equals_i128_reference(
        fmt in fixed_formats(),
        raw in prop::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 1..32),
    ) {
        let mask = (1u64 << fmt.n()) - 1;
        let sext = |b: u32| -> i128 {
            let sh = 64 - fmt.n();
            ((((b as u64) << sh) as i64) >> sh) as i128
        };
        let mut emac = FixedEmac::new(fmt, raw.len() as u64);
        let mut acc: i128 = 0;
        for &(a, b) in &raw {
            let (a, b) = ((a as u64 & mask) as u32, (b as u64 & mask) as u32);
            emac.mac(a, b);
            acc += sext(a) * sext(b);
        }
        let want = (acc >> fmt.q()).clamp(fmt.min_raw() as i128, fmt.max_raw() as i128);
        let got_bits = emac.result();
        prop_assert_eq!(sext(got_bits), want);
    }

    #[test]
    fn emac_order_invariance(
        fmt in posit_formats(),
        raw in prop::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 2..16),
    ) {
        let clean: Vec<(u32, u32)> = raw
            .iter()
            .map(|&(a, b)| {
                let (a, b) = (a & fmt.mask(), b & fmt.mask());
                (
                    if a == fmt.nar_bits() { 0 } else { a },
                    if b == fmt.nar_bits() { 0 } else { b },
                )
            })
            .collect();
        let mut fwd = PositEmac::new(fmt, clean.len() as u64);
        let mut rev = PositEmac::new(fmt, clean.len() as u64);
        for &(a, b) in &clean {
            fwd.mac(a, b);
        }
        for &(a, b) in clean.iter().rev() {
            rev.mac(a, b);
        }
        prop_assert_eq!(fwd.result(), rev.result(), "exactness implies order invariance");
    }

    #[test]
    fn emac_reset_restores_zero(
        fmt in posit_formats(),
        a in 0u32..=u32::MAX,
        b in 0u32..=u32::MAX,
    ) {
        let (mut a, mut b) = (a & fmt.mask(), b & fmt.mask());
        if a == fmt.nar_bits() { a = 0; }
        if b == fmt.nar_bits() { b = 0; }
        let mut emac = PositEmac::new(fmt, 4);
        emac.mac(a, b);
        emac.reset();
        prop_assert_eq!(emac.result(), 0);
        prop_assert_eq!(emac.macs_done(), 0);
    }
}
