//! Slice-kernel equivalence: [`Emac::dot_slice`] must be bit-identical to
//! the scalar `mac()` loop and to the pre-LUT reference datapath on every
//! input, or a kernel is a silent numerics change.
//!
//! Coverage, per the kernel bands:
//! * **Product table (n ≤ 8)** — exhaustive over all `2^(2n)` operand
//!   pairs for posit⟨8, es ∈ {0,1,2}⟩, an 8-bit minifloat and an 8-bit
//!   fixed format, against the reference datapath.
//! * **Batched fused (9–16 bits)** and **scalar (> 16 bits)** — randomized
//!   slice-vs-scalar bit-identity, including empty and length-1 slices.
//! * **Band pinning** — the kernel each constructor selects at the
//!   boundaries n = 8/9 and 16/17, and `macs_done` equality between the
//!   slice, scalar-fast and reference paths after identical workloads.

use dp_emac::{Emac, FixedEmac, FloatEmac, MacKernel, PositEmac};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// Runs `(weights, activations)` through `fast.dot_slice` and through a
/// scalar `mac()` loop on `scalar`, returning both readouts.
fn slice_vs_scalar<E: Emac>(fast: &mut E, scalar: &mut E, ws: &[u32], xs: &[u32]) -> (u32, u32) {
    fast.reset();
    fast.dot_slice(ws, xs);
    scalar.reset();
    for (&w, &a) in ws.iter().zip(xs) {
        scalar.mac(w, a);
    }
    assert_eq!(fast.macs_done(), scalar.macs_done());
    (fast.result(), scalar.result())
}

#[test]
fn posit8_product_kernel_matches_reference_exhaustively() {
    // All 65 536 (w, a) pairs per es: once as length-1 slices (per-pair
    // rounding) and once as whole 256-long rows (accumulation order and
    // NaR poisoning), both against the WideInt reference datapath.
    for es in [0u32, 1, 2] {
        let fmt = PositFormat::new(8, es).unwrap();
        let all: Vec<u32> = fmt.patterns().collect();
        let mut fast = PositEmac::new(fmt, 256);
        assert_eq!(fast.kernel(), MacKernel::ProductTable, "{fmt}");
        let mut reference = PositEmac::new_reference(fmt, 256);
        for &w in &all {
            let row = vec![w; all.len()];
            fast.reset();
            fast.dot_slice(&row, &all);
            reference.reset();
            for &a in &all {
                reference.mac(w, a);
            }
            assert_eq!(fast.result(), reference.result(), "{fmt} row w={w:#x}");
            for &a in &all {
                fast.reset();
                fast.dot_slice(&[w], &[a]);
                reference.reset();
                reference.mac(w, a);
                assert_eq!(fast.result(), reference.result(), "{fmt} {w:#x}×{a:#x}");
            }
        }
    }
}

#[test]
fn minifloat8_product_kernel_matches_reference_exhaustively() {
    let fmt = FloatFormat::new(4, 3).unwrap();
    let all: Vec<u32> = fmt.patterns().collect();
    let mut fast = FloatEmac::new(fmt, 256);
    assert_eq!(fast.kernel(), MacKernel::ProductTable);
    let mut reference = FloatEmac::new_reference(fmt, 256);
    for &w in &all {
        let row = vec![w; all.len()];
        fast.reset();
        fast.dot_slice(&row, &all);
        reference.reset();
        for &a in &all {
            reference.mac(w, a);
        }
        assert_eq!(fast.result(), reference.result(), "row w={w:#x}");
        for &a in &all {
            fast.reset();
            fast.dot_slice(&[w], &[a]);
            reference.reset();
            reference.mac(w, a);
            assert_eq!(fast.result(), reference.result(), "{w:#x}×{a:#x}");
        }
    }
}

#[test]
fn fixed8_product_kernel_matches_scalar_exhaustively() {
    // The fixed unit has no WideInt variant (its register is always an
    // i128); the scalar mac() loop is its reference datapath.
    let fmt = FixedFormat::new(8, 6).unwrap();
    let all: Vec<u32> = (0..256u32).collect();
    let mut fast = FixedEmac::new(fmt, 256);
    assert_eq!(fast.kernel(), MacKernel::ProductTable);
    let mut scalar = FixedEmac::new(fmt, 256).with_kernel_cap(MacKernel::Scalar);
    assert_eq!(scalar.kernel(), MacKernel::Scalar);
    for &w in &all {
        let row = vec![w; all.len()];
        let (f, s) = slice_vs_scalar(&mut fast, &mut scalar, &row, &all);
        assert_eq!(f, s, "row w={w:#x}");
        for &a in &all {
            let (f, s) = slice_vs_scalar(&mut fast, &mut scalar, &[w], &[a]);
            assert_eq!(f, s, "{w:#x}×{a:#x}");
        }
    }
}

#[test]
fn posit_batched_and_scalar_bands_match_randomized() {
    // 13–16-bit formats (batched fused kernel over split-table operands,
    // i128 or 256-bit window) and > 16-bit formats (scalar kernel) —
    // random slices, always including the empty and length-1 edge cases,
    // checked against the per-MAC loop on the same unit kind AND the
    // reference datapath.
    let mut next = xorshift(0x51ce_ba7c_4ed0_7e57);
    for (n, es, want) in [
        (13u32, 0u32, MacKernel::BatchedFused),
        (14, 1, MacKernel::BatchedFused),
        (16, 1, MacKernel::BatchedFused),
        (16, 2, MacKernel::BatchedFused),
        (17, 1, MacKernel::Scalar),
        (20, 2, MacKernel::Scalar),
    ] {
        let fmt = PositFormat::new(n, es).unwrap();
        for trial in 0..120 {
            let len = match trial {
                0 => 0usize,
                1 => 1,
                _ => (next() % 40 + 1) as usize,
            };
            let cap = len.max(1) as u64;
            let mut fast = PositEmac::new(fmt, cap);
            assert_eq!(fast.kernel(), want, "{fmt}");
            let mut scalar = PositEmac::new(fmt, cap);
            let mut reference = PositEmac::new_reference(fmt, cap);
            let ws: Vec<u32> = (0..len).map(|_| (next() as u32) & fmt.mask()).collect();
            let xs: Vec<u32> = (0..len).map(|_| (next() as u32) & fmt.mask()).collect();
            let (f, s) = slice_vs_scalar(&mut fast, &mut scalar, &ws, &xs);
            assert_eq!(f, s, "{fmt} slice vs scalar, len {len}");
            for (&w, &a) in ws.iter().zip(&xs) {
                reference.mac(w, a);
            }
            assert_eq!(f, reference.result(), "{fmt} slice vs reference, len {len}");
        }
    }
}

#[test]
fn minifloat_batched_and_scalar_bands_match_randomized() {
    let mut next = xorshift(0xf10a_7b47_c4ed_0001);
    for (we, wf, want) in [
        (4u32, 8u32, MacKernel::BatchedFused), // n = 13
        (5, 10, MacKernel::BatchedFused),      // n = 16
        (5, 11, MacKernel::Scalar),            // n = 17
        (8, 14, MacKernel::Scalar),            // n = 23
    ] {
        let fmt = FloatFormat::new(we, wf).unwrap();
        for trial in 0..100 {
            let len = match trial {
                0 => 0usize,
                1 => 1,
                _ => (next() % 40 + 1) as usize,
            };
            let cap = len.max(1) as u64;
            let mut fast = FloatEmac::new(fmt, cap);
            assert_eq!(fast.kernel(), want, "{fmt}");
            let mut scalar = FloatEmac::new(fmt, cap);
            let mut reference = FloatEmac::new_reference(fmt, cap);
            let ws: Vec<u32> = (0..len).map(|_| (next() as u32) & fmt.mask()).collect();
            let xs: Vec<u32> = (0..len).map(|_| (next() as u32) & fmt.mask()).collect();
            let (f, s) = slice_vs_scalar(&mut fast, &mut scalar, &ws, &xs);
            assert_eq!(f, s, "{fmt} slice vs scalar, len {len}");
            for (&w, &a) in ws.iter().zip(&xs) {
                reference.mac(w, a);
            }
            assert_eq!(f, reference.result(), "{fmt} slice vs reference, len {len}");
        }
    }
}

#[test]
fn fixed_batched_and_scalar_bands_match_randomized() {
    let mut next = xorshift(0xf1ed_ba7c_4ed0_5eed);
    for (n, q, want) in [
        (13u32, 6u32, MacKernel::BatchedFused),
        (16, 8, MacKernel::BatchedFused),
        (17, 8, MacKernel::Scalar),
        (24, 12, MacKernel::Scalar),
    ] {
        let fmt = FixedFormat::new(n, q).unwrap();
        let mask = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        for trial in 0..100 {
            let len = match trial {
                0 => 0usize,
                1 => 1,
                _ => (next() % 40 + 1) as usize,
            };
            let cap = len.max(1) as u64;
            let mut fast = FixedEmac::new(fmt, cap);
            assert_eq!(fast.kernel(), want, "{fmt}");
            let mut scalar = FixedEmac::new(fmt, cap).with_kernel_cap(MacKernel::Scalar);
            let ws: Vec<u32> = (0..len).map(|_| (next() as u32) & mask).collect();
            let xs: Vec<u32> = (0..len).map(|_| (next() as u32) & mask).collect();
            let (f, s) = slice_vs_scalar(&mut fast, &mut scalar, &ws, &xs);
            assert_eq!(f, s, "{fmt} slice vs scalar, len {len}");
        }
    }
}

#[test]
fn macs_done_advances_by_slice_length() {
    // The accounting audit: dot_slice must advance macs_done by exactly
    // the slice length on every kernel, agreeing with the scalar-fast and
    // reference paths after identical workloads — including empty slices.
    let fmt = PositFormat::new(8, 1).unwrap();
    let mut slice_unit = PositEmac::new(fmt, 64);
    let mut scalar_unit = PositEmac::new(fmt, 64);
    let mut reference = PositEmac::new_reference(fmt, 64);
    let ws: Vec<u32> = (0..23u32).map(|i| i * 11 % 256).collect();
    let xs: Vec<u32> = (0..23u32).map(|i| i * 7 % 256).collect();
    slice_unit.dot_slice(&ws, &xs);
    slice_unit.dot_slice(&[], &[]);
    slice_unit.dot_slice(&ws[..5], &xs[..5]);
    for (&w, &a) in ws.iter().zip(&xs) {
        scalar_unit.mac(w, a);
        reference.mac(w, a);
    }
    for (&w, &a) in ws[..5].iter().zip(&xs[..5]) {
        scalar_unit.mac(w, a);
        reference.mac(w, a);
    }
    assert_eq!(slice_unit.macs_done(), 28);
    assert_eq!(slice_unit.macs_done(), scalar_unit.macs_done());
    assert_eq!(slice_unit.macs_done(), reference.macs_done());
    assert_eq!(slice_unit.result(), reference.result());
    slice_unit.reset();
    assert_eq!(slice_unit.macs_done(), 0);
}

#[test]
fn kernel_bands_pin_at_8_9_and_16_17() {
    // Posit: product table through 8 bits, batched fused through 16,
    // scalar past that; the reference constructor is always scalar.
    let pk = |n: u32, es: u32| PositEmac::new(PositFormat::new(n, es).unwrap(), 128).kernel();
    for es in [0u32, 1, 2] {
        assert_eq!(pk(8, es), MacKernel::ProductTable, "posit<8,{es}>");
        assert_eq!(pk(9, es), MacKernel::BatchedFused, "posit<9,{es}>");
        assert_eq!(pk(16, es), MacKernel::BatchedFused, "posit<16,{es}>");
        assert_eq!(pk(17, es), MacKernel::Scalar, "posit<17,{es}>");
    }
    assert_eq!(
        PositEmac::new_reference(PositFormat::new(8, 0).unwrap(), 128).kernel(),
        MacKernel::Scalar
    );

    // Minifloat: same bands by total width n = 1 + we + wf.
    let fk = |we: u32, wf: u32| FloatEmac::new(FloatFormat::new(we, wf).unwrap(), 128).kernel();
    assert_eq!(fk(4, 3), MacKernel::ProductTable); // n = 8
    assert_eq!(fk(4, 4), MacKernel::BatchedFused); // n = 9
    assert_eq!(fk(5, 10), MacKernel::BatchedFused); // n = 16
    assert_eq!(fk(5, 11), MacKernel::Scalar); // n = 17
    assert_eq!(
        FloatEmac::new_reference(FloatFormat::new(4, 3).unwrap(), 128).kernel(),
        MacKernel::Scalar
    );

    // Fixed point: same bands (the register is native at every width, so
    // the bands switch loop shape only).
    let xk = |n: u32| FixedEmac::new(FixedFormat::new(n, 4).unwrap(), 128).kernel();
    assert_eq!(xk(8), MacKernel::ProductTable);
    assert_eq!(xk(9), MacKernel::BatchedFused);
    assert_eq!(xk(16), MacKernel::BatchedFused);
    assert_eq!(xk(17), MacKernel::Scalar);

    // Kernel caps step the selection down without changing results.
    let fmt = PositFormat::new(8, 0).unwrap();
    assert_eq!(
        PositEmac::new(fmt, 128)
            .with_kernel_cap(MacKernel::BatchedFused)
            .kernel(),
        MacKernel::BatchedFused
    );
    assert_eq!(
        PositEmac::new(fmt, 128)
            .with_kernel_cap(MacKernel::Scalar)
            .kernel(),
        MacKernel::Scalar
    );
}

#[test]
fn product_kernel_requires_the_i128_window() {
    // A capacity so large the eq.-(4) register spills past 127 bits: the
    // unit must step down from the product table, and stay bit-identical.
    let fmt = PositFormat::new(8, 2).unwrap();
    let small = PositEmac::new(fmt, 128);
    assert_eq!(small.kernel(), MacKernel::ProductTable);
    let huge = PositEmac::new(fmt, 1 << 40);
    assert_eq!(huge.kernel(), MacKernel::BatchedFused);
}

#[test]
fn batched_kernel_requires_a_native_window() {
    // posit<16,2> at k = 256 needs a 256-bit register (one past Acc256's
    // ceiling), so the accumulator is WideInt even though the split table
    // exists: the unit must report Scalar AND run the scalar loop —
    // kernel() and dot_slice select on the same condition — and stay
    // bit-identical to the reference datapath.
    let fmt = PositFormat::new(16, 2).unwrap();
    let mut spilled = PositEmac::new(fmt, 256);
    assert_eq!(spilled.kernel(), MacKernel::Scalar);
    assert_eq!(PositEmac::new(fmt, 128).kernel(), MacKernel::BatchedFused);
    let mut next = xorshift(0x0b5e_55ed_ca11_ab1e);
    let ws: Vec<u32> = (0..256).map(|_| (next() as u32) & fmt.mask()).collect();
    let xs: Vec<u32> = (0..256).map(|_| (next() as u32) & fmt.mask()).collect();
    spilled.dot_slice(&ws, &xs);
    let mut reference = PositEmac::new_reference(fmt, 256);
    for (&w, &a) in ws.iter().zip(&xs) {
        reference.mac(w, a);
    }
    assert_eq!(spilled.result(), reference.result());
    assert_eq!(spilled.macs_done(), reference.macs_done());
}
