//! The fast paths must be invisible: a fused-LUT + `i128` EMAC and the
//! pre-LUT reference datapath (Algorithm-1 bit-field decode + `WideInt`
//! register) must produce bit-identical results on every input — across
//! random dot products, biases, resets and special values — or the
//! "optimization" is a silent numerics change.

use dp_emac::{Emac, FixedEmac, FloatEmac, PositEmac};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

#[test]
fn posit_fast_path_engages_for_paper_formats() {
    for (n, es) in [(5u32, 0u32), (6, 0), (7, 0), (8, 0), (8, 1), (8, 2)] {
        let fmt = PositFormat::new(n, es).unwrap();
        assert!(
            PositEmac::new(fmt, 128).is_fast_path(),
            "posit<{n},{es}> must run the fast path at k = 128"
        );
        assert!(!PositEmac::new_reference(fmt, 128).is_fast_path());
    }
    // 13–16-bit formats run the split-table + native-accumulator fast
    // path; the first width past the split ceiling does not.
    for (n, es) in [(13u32, 0u32), (13, 2), (16, 0), (16, 1), (16, 2)] {
        let fmt = PositFormat::new(n, es).unwrap();
        assert!(
            PositEmac::new(fmt, 128).is_fast_path(),
            "posit<{n},{es}> must run the split fast path at k = 128"
        );
        assert!(!PositEmac::new_reference(fmt, 128).is_fast_path());
    }
    let wide = PositFormat::new(17, 1).unwrap();
    assert!(!PositEmac::new(wide, 128).is_fast_path());
    assert!(!PositEmac::new(PositFormat::new(24, 1).unwrap(), 128).is_fast_path());
}

#[test]
fn posit_lut_boundary_is_deterministic() {
    // Satellite audit: each width band has exactly one decode scheme.
    // n = 12 is the last monolithic-LUT width, n = 13 the first split
    // width, n = 16 the last; both fast constructors at a boundary width
    // must agree with the reference on the same inputs (no path mixing).
    let mut next = xorshift(0x5eed_0f5e_11e7_0b0a);
    for (n, es) in [(12u32, 1u32), (13, 1), (16, 1)] {
        let fmt = PositFormat::new(n, es).unwrap();
        assert!(PositEmac::new(fmt, 64).is_fast_path(), "posit<{n},{es}>");
        for _ in 0..50 {
            let len = (next() % 16 + 1) as usize;
            let mut fast = PositEmac::new(fmt, len as u64);
            let mut reference = PositEmac::new_reference(fmt, len as u64);
            for _ in 0..len {
                let w = (next() as u32) & fmt.mask();
                let a = (next() as u32) & fmt.mask();
                fast.mac(w, a);
                reference.mac(w, a);
            }
            assert_eq!(fast.result(), reference.result(), "posit<{n},{es}>");
        }
    }
}

#[test]
fn posit_fast_matches_reference_on_random_dots() {
    // Every format the paper sweeps, the LUT-but-256-bit-accumulator
    // (12,2), the whole split band 13–16 (i128, 256-bit and — at large k —
    // WideInt registers behind split operands), and the no-table (17,1),
    // (24,1) fallbacks.
    let formats = [
        (5u32, 0u32),
        (6, 1),
        (7, 0),
        (8, 0),
        (8, 1),
        (8, 2),
        (10, 1),
        (12, 0),
        (12, 2),
        (13, 0),
        (13, 2),
        (14, 1),
        (16, 0),
        (16, 1),
        (16, 2),
        (17, 1),
        (24, 1),
    ];
    let mut next = xorshift(0xdead_beef_1234_5678);
    for (n, es) in formats {
        let fmt = PositFormat::new(n, es).unwrap();
        for round in 0..200 {
            let len = (next() % 32 + 1) as usize;
            let mut fast = PositEmac::new(fmt, len as u64);
            let mut reference = PositEmac::new_reference(fmt, len as u64);
            if round % 3 == 0 {
                let bias = (next() as u32) & fmt.mask();
                fast.set_bias(bias);
                reference.set_bias(bias);
            }
            for _ in 0..len {
                // Raw patterns, NaR included: poison must propagate
                // identically through both paths.
                let w = (next() as u32) & fmt.mask();
                let a = (next() as u32) & fmt.mask();
                fast.mac(w, a);
                reference.mac(w, a);
            }
            assert_eq!(
                fast.result(),
                reference.result(),
                "posit<{n},{es}> round {round}"
            );
            assert_eq!(fast.macs_done(), reference.macs_done());
        }
    }
}

#[test]
fn posit_fast_matches_reference_exhaustively_on_single_products() {
    for es in [0u32, 1, 2] {
        let fmt = PositFormat::new(8, es).unwrap();
        for a in fmt.patterns() {
            for b in [0u32, 1, 0x3f, 0x40, 0x41, 0x7f, 0x80, 0x81, 0xc0, 0xff] {
                let mut fast = PositEmac::new(fmt, 1);
                let mut reference = PositEmac::new_reference(fmt, 1);
                fast.mac(a, b);
                reference.mac(a, b);
                assert_eq!(
                    fast.result(),
                    reference.result(),
                    "posit<8,{es}> {a:#x}×{b:#x}"
                );
            }
        }
    }
}

#[test]
fn float_fast_path_engages_for_paper_formats() {
    for (we, wf) in [(2u32, 2u32), (3, 2), (3, 4), (4, 3), (5, 2)] {
        let fmt = FloatFormat::new(we, wf).unwrap();
        assert!(
            FloatEmac::new(fmt, 128).is_fast_path(),
            "float<{we},{wf}> must run the fast path at k = 128"
        );
        assert!(!FloatEmac::new_reference(fmt, 128).is_fast_path());
    }
    // 13–16-bit formats (binary16 included) run the computed-operand fast
    // path; the first width past the ceiling does not.
    for (we, wf) in [(4u32, 8u32), (5, 10), (6, 9)] {
        let fmt = FloatFormat::new(we, wf).unwrap();
        assert!(
            FloatEmac::new(fmt, 128).is_fast_path(),
            "float<{we},{wf}> must run the computed fast path at k = 128"
        );
        assert!(!FloatEmac::new_reference(fmt, 128).is_fast_path());
    }
    let wide = FloatFormat::new(5, 11).unwrap(); // n = 17
    assert!(!FloatEmac::new(wide, 128).is_fast_path());
}

#[test]
fn float_fast_matches_reference_on_random_dots() {
    let formats = [
        (2u32, 2u32),
        (3, 2),
        (3, 4),
        (4, 3),
        (5, 2),
        (4, 7),
        (4, 8),  // 13-bit: computed operands, i128 register
        (5, 10), // binary16: computed operands
        (6, 9),  // 16-bit, wide exponent: computed operands, 256-bit register
        (8, 7),  // 16-bit, we=8: computed operands over a WideInt register
        (5, 11), // 17-bit: past the ceiling, bit-field decode + WideInt
    ];
    let mut next = xorshift(0xfeed_cafe_8765_4321);
    for (we, wf) in formats {
        let fmt = FloatFormat::new(we, wf).unwrap();
        for round in 0..200 {
            let len = (next() % 24 + 1) as usize;
            let mut fast = FloatEmac::new(fmt, len as u64);
            let mut reference = FloatEmac::new_reference(fmt, len as u64);
            if round % 3 == 0 {
                let bias = (next() as u32) & fmt.mask();
                fast.set_bias(bias);
                reference.set_bias(bias);
            }
            for _ in 0..len {
                // Raw patterns: zeros, subnormals, Inf and NaN all
                // included; poison must propagate identically.
                let w = (next() as u32) & fmt.mask();
                let a = (next() as u32) & fmt.mask();
                fast.mac(w, a);
                reference.mac(w, a);
            }
            assert_eq!(
                fast.result(),
                reference.result(),
                "float<{we},{wf}> round {round}"
            );
        }
    }
}

#[test]
fn float_fast_matches_reference_exhaustively_on_single_products() {
    let fmt = FloatFormat::new(4, 3).unwrap();
    for a in fmt.patterns() {
        for b in [0u32, 1, 0x08, 0x38, 0x77, 0x78, 0x7c, 0x80, 0xff] {
            let mut fast = FloatEmac::new(fmt, 1);
            let mut reference = FloatEmac::new_reference(fmt, 1);
            fast.mac(a, b);
            reference.mac(a, b);
            assert_eq!(
                fast.result(),
                reference.result(),
                "float<4,3> {a:#x}×{b:#x}"
            );
        }
    }
}

#[test]
fn fixed_lut_sext_matches_arithmetic_sext() {
    // FixedEmac's table-driven sign extension (n ≤ 12) vs a 16-bit format
    // on the arithmetic path: both must match the i128 reference model.
    let mut next = xorshift(0x0bad_f00d_5555_aaaa);
    for (n, q) in [(5u32, 2u32), (8, 4), (8, 6), (12, 8), (16, 12)] {
        let fmt = FixedFormat::new(n, q).unwrap();
        let mask = (1u32 << n) - 1;
        for _ in 0..200 {
            let len = (next() % 32 + 1) as usize;
            let mut emac = FixedEmac::new(fmt, len as u64);
            let mut reference: i128 = 0;
            for _ in 0..len {
                let w = (next() as u32) & mask;
                let a = (next() as u32) & mask;
                emac.mac(w, a);
                let sx = |b: u32| {
                    let sh = 64 - n;
                    ((((b as u64) << sh) as i64) >> sh) as i128
                };
                reference += sx(w) * sx(a);
            }
            let expect = ((reference >> fmt.q()).clamp(fmt.min_raw() as i128, fmt.max_raw() as i128)
                as u64 as u32)
                & mask;
            assert_eq!(emac.result(), expect, "fixed<{n},{q}>");
        }
    }
}
