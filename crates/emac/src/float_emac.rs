//! The floating-point EMAC (paper Fig. 4).

use crate::acc::Accum;
use crate::ceil_log2;
use crate::kernel::{I128Lanes, PRODUCT_TILE_BLOCK, TILE_COL_GROUP};
use crate::unit::Emac;
use crate::MacKernel;
use dp_minifloat::lut::{DecodeLut, EmacDirect, EmacEntry, EmacLut, ProductEntry, ProductLut};
use dp_minifloat::{decode, encode, FloatClass, FloatFormat};

/// Where fused EMAC operands come from on the fast path: the per-pattern
/// table (`n ≤ 12`) or the computed bit-field extraction (13–16 bits).
/// Both produce identical [`EmacEntry`] words.
#[derive(Debug, Clone, Copy)]
enum FastOperands {
    Lut(&'static EmacLut),
    Direct(EmacDirect),
}

impl FastOperands {
    #[inline]
    fn entry(self, bits: u32) -> EmacEntry {
        match self {
            FastOperands::Lut(t) => t.entry(bits),
            FastOperands::Direct(d) => d.entry(bits),
        }
    }
}

/// Exact floating-point multiply-and-accumulate.
///
/// Inputs are `(1, we, wf)` minifloats. The datapath mirrors paper Fig. 4:
/// subnormal detection sets the hidden bit and adjusts the exponent;
/// significands are multiplied exactly; the product is converted to a
/// two's-complement fixed-point value by shifting with a biased scale
/// factor, then accumulated. The register spans every bit any product can
/// produce — paper eq. (3) with `⌈log2(max/min)⌉ = 2^we − 2 + wf`:
///
/// ```text
/// wa = ⌈log2 k⌉ + 2·(2^we − 2 + wf) + 2
/// ```
///
/// (plus the product fraction tail which eq. (3)'s ratio form folds into
/// its ceiling). Readout applies inverse two's complement, normalizes,
/// rounds to nearest even once, and **clips at ±max**: the paper's EMAC
/// "does not overflow to infinity".
///
/// Inf/NaN inputs are outside the paper's operating envelope ("inputs
/// don't have these values"); this model poisons the accumulator and
/// returns NaN so misuse is visible rather than silent.
///
/// # Examples
///
/// ```
/// use dp_emac::{Emac, FloatEmac};
/// use dp_minifloat::FloatFormat;
///
/// let fmt = FloatFormat::new(4, 3)?;
/// let mut emac = FloatEmac::new(fmt, 8);
/// let x = dp_minifloat::convert::from_f64(fmt, 1.5);
/// emac.mac(x, x); // 2.25
/// emac.mac(x, x); // 2.25
/// assert_eq!(dp_minifloat::convert::to_f64(fmt, emac.result()), 4.5);
/// # Ok::<(), dp_minifloat::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FloatEmac {
    fmt: FloatFormat,
    capacity: u64,
    acc: Accum,
    /// Decode table for the format, when one exists (`n ≤ 12`).
    lut: Option<&'static DecodeLut>,
    /// Fused decode + front-end operands driving the one-lookup MAC loop
    /// (`n ≤ 12`: per-pattern table; 13–16: computed bit-field operands).
    fast: Option<FastOperands>,
    /// Finished-product table for `n ≤ 8` formats: decode, multiply and
    /// underflow normalization collapse into one `2^(2n)`-entry lookup
    /// ([`MacKernel::ProductTable`] when the accumulator is an `i128`).
    product: Option<&'static ProductLut>,
    /// Bit index of weight 2^0: products are multiples of min_subnormal².
    offset: i32,
    count: u64,
    poisoned: bool,
    /// Gathered weight-operand scratch for the fused tile, retained
    /// across [`Emac::dot_tile`] calls so a tile sweep over a layer does
    /// not allocate per weight row. Never semantic: cleared and refilled
    /// on each gather-tile call.
    gather: Vec<EmacEntry>,
}

impl FloatEmac {
    /// Creates a unit for `fmt` sized for `capacity` accumulations, using
    /// the fused-operand and native-accumulator fast paths when the
    /// format qualifies (every ≤16-bit configuration of the paper's §IV
    /// sweep does; ≤8-bit ones additionally get the decode LUT).
    pub fn new(fmt: FloatFormat, capacity: u64) -> Self {
        let capacity = capacity.max(1);
        let fast = dp_minifloat::lut::emac_cached(fmt)
            .map(FastOperands::Lut)
            .or_else(|| EmacDirect::build(fmt).map(FastOperands::Direct));
        Self::build(
            fmt,
            capacity,
            dp_minifloat::lut::cached(fmt),
            fast,
            dp_minifloat::lut::product_cached(fmt),
            Accum::new(Self::accumulator_width_for(fmt, capacity)),
        )
    }

    /// [`FloatEmac::new`] in `Result` form, for uniformity with the posit
    /// and fixed units' `try_new`: every valid [`FloatFormat`] has an EMAC
    /// datapath, so this never fails.
    ///
    /// # Errors
    ///
    /// None — present so format-generic validation can treat the three
    /// families uniformly.
    pub fn try_new(fmt: FloatFormat, capacity: u64) -> Result<Self, crate::UnsupportedFormat> {
        Ok(Self::new(fmt, capacity))
    }

    /// Creates a unit on the pre-LUT reference datapath: bit-field decode
    /// per MAC and the limb-based `WideInt` register, regardless of
    /// format width. Kept for differential testing and benchmarking.
    pub fn new_reference(fmt: FloatFormat, capacity: u64) -> Self {
        let capacity = capacity.max(1);
        Self::build(
            fmt,
            capacity,
            None,
            None,
            None,
            Accum::new_wide(Self::accumulator_width_for(fmt, capacity)),
        )
    }

    /// Caps the slice-level kernel this unit may select — a bench/test
    /// knob for comparing kernels on one format; see
    /// [`crate::PositEmac::with_kernel_cap`] for the cap semantics.
    pub fn with_kernel_cap(mut self, cap: MacKernel) -> Self {
        if cap < MacKernel::ProductTable {
            self.product = None;
        }
        if cap < MacKernel::BatchedFused {
            self.fast = None;
        }
        self
    }

    fn build(
        fmt: FloatFormat,
        capacity: u64,
        lut: Option<&'static DecodeLut>,
        fast: Option<FastOperands>,
        product: Option<&'static ProductLut>,
        acc: Accum,
    ) -> Self {
        // Smallest product bit: (2^(min_normal_scale - wf))² ; the offset
        // makes that land at register bit 0.
        let offset = 2 * (fmt.min_normal_scale() - fmt.wf() as i32);
        FloatEmac {
            fmt,
            capacity,
            acc,
            lut,
            fast,
            product,
            offset: -offset,
            count: 0,
            poisoned: false,
            gather: Vec::new(),
        }
    }

    /// True when this unit runs the fused operands + native (`i128` or
    /// two-word 256-bit) accumulator fast path.
    pub fn is_fast_path(&self) -> bool {
        self.fast.is_some() && self.acc.is_native()
    }

    /// Decode via the table when present, bit fields otherwise.
    #[inline]
    fn decode_bits(&self, bits: u32) -> FloatClass {
        match self.lut {
            Some(lut) => lut.decode(bits),
            None => decode(self.fmt, bits),
        }
    }

    /// The format of this unit.
    pub fn format(&self) -> FloatFormat {
        self.fmt
    }

    /// Paper eq. (3) accumulator width for `k` accumulations.
    pub fn accumulator_width_for(fmt: FloatFormat, k: u64) -> u32 {
        let log_ratio = (1u32 << fmt.we()) - 2 + fmt.wf(); // ⌈log2(max/min)⌉
        ceil_log2(k) + 2 * log_ratio + 2
    }

    fn add_value(&mut self, sign: bool, scale: i32, sig: u64) {
        let tz = sig.trailing_zeros() as i32;
        let pos = scale - 63 + tz + self.offset;
        debug_assert!(pos >= 0, "float values are multiples of min_sub");
        self.acc
            .add_shifted_u128((sig >> tz) as u128, pos as usize, sign);
    }

    /// The [`Emac::mac`] datapath without the `macs_done` bookkeeping —
    /// shared by the scalar entry point and [`Emac::dot_slice`]'s scalar
    /// kernel (which advances the counter once per slice).
    #[inline]
    fn mac_uncounted(&mut self, weight: u32, activation: u32) {
        // Fused fast path: integer significand product, trailing zeros
        // absorbing subnormal underflow, one shifted native add.
        // Bit-identical to the datapath below (fast_path_equivalence).
        if let Some(t) = self.fast {
            let ew = t.entry(weight);
            let ea = t.entry(activation);
            if (ew.0 | ea.0) & EmacEntry::SPECIAL_BIT != 0 {
                self.poisoned = true;
                return;
            }
            let prod = ew.field() * ea.field(); // < 2^(2wf+2) <= 2^30
            if prod == 0 {
                return;
            }
            let tz = prod.trailing_zeros() as i32;
            // bias_a + bias_b + tz − 2wf = (scale_a − min) + (scale_b − min)
            // + tz(prod) ≥ 0: products are multiples of min_subnormal².
            let shift =
                ew.biased_scale() as i32 + ea.biased_scale() as i32 + tz - 2 * self.fmt.wf() as i32;
            debug_assert!(shift >= 0, "float products are multiples of min_sub²");
            let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
            match &mut self.acc {
                Accum::Small(acc) => {
                    let signed = ((prod >> tz) as i128) << shift;
                    if negate {
                        *acc -= signed;
                    } else {
                        *acc += signed;
                    }
                }
                acc => acc.add_shifted_u128((prod >> tz) as u128, shift as usize, negate),
            }
            return;
        }
        let (ua, ub) = match (self.decode_bits(weight), self.decode_bits(activation)) {
            (FloatClass::NaN, _)
            | (_, FloatClass::NaN)
            | (FloatClass::Inf(_), _)
            | (_, FloatClass::Inf(_)) => {
                self.poisoned = true;
                return;
            }
            (FloatClass::Zero(_), _) | (_, FloatClass::Zero(_)) => return,
            (FloatClass::Finite(ua), FloatClass::Finite(ub)) => (ua, ub),
        };
        // Exact product of the two significands (Fig. 4 multiply stage).
        let prod = (ua.sig as u128) * (ub.sig as u128); // [2^126, 2^128)
        let tz = prod.trailing_zeros() as i32;
        let pos = ua.scale + ub.scale - 126 + tz + self.offset;
        debug_assert!(pos >= 0, "float products are multiples of min_sub²");
        self.acc
            .add_shifted_u128(prod >> tz, pos as usize, ua.sign ^ ub.sign);
    }

    /// One finished-product table step of the product-table kernel.
    #[inline(always)]
    fn product_step(table: &ProductLut, lanes: &mut I128Lanes, special: &mut u32, w: u32, a: u32) {
        let p = table.entry(w, a);
        *special |= p.0 & ProductEntry::SPECIAL_BIT;
        debug_assert!(
            p.shift() + (64 - p.product().leading_zeros()) <= 127,
            "product-table kernel requires the i128 window"
        );
        lanes.add((p.product() as u128) << p.shift(), p.negate());
    }

    /// One finished-product step against a weight's contiguous table row
    /// ([`ProductLut::row`]): the product tile resolves the row base once
    /// per weight and shares it across the group's columns, so each step
    /// is a masked index with no weight shift and no bounds check (the
    /// row length is a power of two).
    #[inline(always)]
    fn product_row_step(row: &[ProductEntry], lanes: &mut I128Lanes, special: &mut u32, a: u32) {
        let p = row[(a as usize) & (row.len() - 1)];
        *special |= p.0 & ProductEntry::SPECIAL_BIT;
        debug_assert!(
            p.shift() + (64 - p.product().leading_zeros()) <= 127,
            "product-table kernel requires the i128 window"
        );
        lanes.add_select((p.product() as u128) << p.shift(), p.negate());
    }

    /// The batched fused-operand loop on the `i128` window, monomorphized
    /// per entry source (per-pattern table vs computed bit fields) so the
    /// inner loop is a plain gather → multiply → shifted lane-add. The net
    /// shift `bias_w + bias_a − 2wf` may be negative (subnormal products);
    /// the product then has at least that many trailing zeros, so the
    /// right shift is exact — the same value the scalar path computes via
    /// its trailing-zero count. Returns whether Inf/NaN was seen.
    #[inline(always)]
    fn dot_fused_small<F: Fn(u32) -> EmacEntry>(
        entry: F,
        wf2: i32,
        acc: &mut i128,
        weights: &[u32],
        activations: &[u32],
    ) -> bool {
        let mut lanes = I128Lanes::from_i128(*acc);
        let mut special = 0u64;
        for (&w, &a) in weights.iter().zip(activations) {
            let ew = entry(w);
            let ea = entry(a);
            special |= (ew.0 | ea.0) & EmacEntry::SPECIAL_BIT;
            let prod = ew.field() * ea.field();
            let net = ew.biased_scale() as i32 + ea.biased_scale() as i32 - wf2;
            debug_assert!(
                prod == 0 || net >= 0 || prod.trailing_zeros() >= (-net) as u32,
                "float products are multiples of min_sub²"
            );
            let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
            let term = if net >= 0 {
                (prod as u128) << net
            } else {
                (prod as u128) >> (-net)
            };
            lanes.add(term, negate);
        }
        *acc = lanes.into_i128();
        special != 0
    }

    /// The batched fused-operand loop on the medium/wide windows,
    /// accumulating through [`Accum::add_shifted_u128`]. Returns whether
    /// Inf/NaN was seen.
    #[inline(always)]
    fn dot_fused_wide<F: Fn(u32) -> EmacEntry>(
        entry: F,
        wf2: i32,
        acc: &mut Accum,
        weights: &[u32],
        activations: &[u32],
    ) -> bool {
        let mut special = false;
        for (&w, &a) in weights.iter().zip(activations) {
            let ew = entry(w);
            let ea = entry(a);
            if (ew.0 | ea.0) & EmacEntry::SPECIAL_BIT != 0 {
                special = true;
                continue;
            }
            let prod = ew.field() * ea.field();
            if prod == 0 {
                continue;
            }
            let tz = prod.trailing_zeros() as i32;
            let shift = ew.biased_scale() as i32 + ea.biased_scale() as i32 + tz - wf2;
            debug_assert!(shift >= 0, "float products are multiples of min_sub²");
            let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
            acc.add_shifted_u128((prod >> tz) as u128, shift as usize, negate);
        }
        special
    }

    /// The cache-blocked product tile ([`crate::TileKernel::BlockedProduct`]):
    /// columns processed in [`TILE_COL_GROUP`]-wide register groups (lane
    /// accumulators in fixed stack arrays, no heap traffic), K tiled in
    /// [`PRODUCT_TILE_BLOCK`]-weight blocks kept hot across each group.
    /// Exact integer adds commute, so the reordered accumulation is
    /// bit-identical to the per-column row kernel.
    fn tile_product(
        &mut self,
        table: &'static ProductLut,
        bias: u32,
        weights: &[u32],
        cols: &[&[u32]],
        out: &mut [u32],
    ) {
        self.set_bias(bias);
        let seed_poisoned = self.poisoned;
        let Accum::Small(seed) = &self.acc else {
            unreachable!("product tile requires the i128 window")
        };
        let seed = *seed;
        for (cg, og) in cols
            .chunks(TILE_COL_GROUP)
            .zip(out.chunks_mut(TILE_COL_GROUP))
        {
            self.tile_product_group(table, seed, seed_poisoned, weights, cg, og);
        }
    }

    /// One ≤ [`TILE_COL_GROUP`]-column group of the product tile. A full
    /// group runs the 4-wide micro-kernel — each weight's table row is
    /// fetched once and shared by four independent lane chains held in
    /// locals; partial groups stream in pairs plus a single-column tail.
    fn tile_product_group(
        &mut self,
        table: &'static ProductLut,
        seed: i128,
        seed_poisoned: bool,
        weights: &[u32],
        cols: &[&[u32]],
        out: &mut [u32],
    ) {
        let g = cols.len();
        debug_assert!(0 < g && g <= TILE_COL_GROUP && out.len() == g);
        let mut lanes = [I128Lanes::from_i128(seed); TILE_COL_GROUP];
        let mut specials = [0u32; TILE_COL_GROUP];
        for (kb, wblock) in weights.chunks(PRODUCT_TILE_BLOCK).enumerate() {
            let base = kb * PRODUCT_TILE_BLOCK;
            let end = base + wblock.len();
            if g == TILE_COL_GROUP {
                let (mut l0, mut l1, mut l2, mut l3) = (lanes[0], lanes[1], lanes[2], lanes[3]);
                let (mut s0, mut s1, mut s2, mut s3) =
                    (specials[0], specials[1], specials[2], specials[3]);
                let (c0, c1) = (&cols[0][base..end], &cols[1][base..end]);
                let (c2, c3) = (&cols[2][base..end], &cols[3][base..end]);
                for ((((&w, &a0), &a1), &a2), &a3) in wblock.iter().zip(c0).zip(c1).zip(c2).zip(c3)
                {
                    let row = table.row(w);
                    Self::product_row_step(row, &mut l0, &mut s0, a0);
                    Self::product_row_step(row, &mut l1, &mut s1, a1);
                    Self::product_row_step(row, &mut l2, &mut s2, a2);
                    Self::product_row_step(row, &mut l3, &mut s3, a3);
                }
                lanes = [l0, l1, l2, l3];
                specials = [s0, s1, s2, s3];
                continue;
            }
            let mut j = 0;
            while j + 2 <= g {
                let (mut l0, mut l1) = (lanes[j], lanes[j + 1]);
                let (mut s0, mut s1) = (specials[j], specials[j + 1]);
                let (c0, c1) = (&cols[j][base..end], &cols[j + 1][base..end]);
                for ((&w, &a0), &a1) in wblock.iter().zip(c0).zip(c1) {
                    let row = table.row(w);
                    Self::product_row_step(row, &mut l0, &mut s0, a0);
                    Self::product_row_step(row, &mut l1, &mut s1, a1);
                }
                lanes[j] = l0;
                lanes[j + 1] = l1;
                specials[j] = s0;
                specials[j + 1] = s1;
                j += 2;
            }
            if j < g {
                let mut l0 = lanes[j];
                let mut s0 = specials[j];
                for (&w, &a) in wblock.iter().zip(&cols[j][base..end]) {
                    Self::product_row_step(table.row(w), &mut l0, &mut s0, a);
                }
                lanes[j] = l0;
                specials[j] = s0;
            }
        }
        for j in 0..g {
            self.acc = Accum::Small(lanes[j].into_i128());
            self.poisoned = seed_poisoned || specials[j] != 0;
            out[j] = self.result();
        }
    }

    /// One gathered-operand step of the fused tile on the `i128` window.
    /// The possibly-negative net shift stays exact — the product carries
    /// at least `−net` trailing zeros.
    #[inline(always)]
    fn fused_step(
        wf2: i32,
        ew: EmacEntry,
        ea: EmacEntry,
        lanes: &mut I128Lanes,
        special: &mut u64,
    ) {
        *special |= (ew.0 | ea.0) & EmacEntry::SPECIAL_BIT;
        let prod = ew.field() * ea.field();
        let net = ew.biased_scale() as i32 + ea.biased_scale() as i32 - wf2;
        debug_assert!(
            prod == 0 || net >= 0 || prod.trailing_zeros() >= (-net) as u32,
            "float products are multiples of min_sub²"
        );
        let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
        let term = if net >= 0 {
            (prod as u128) << net
        } else {
            (prod as u128) >> (-net)
        };
        lanes.add_select(term, negate);
    }

    /// The gather tile on the `i128` window
    /// ([`crate::TileKernel::GatherFused`]): weight operands gathered
    /// once, the columns streamed four at a time through the same
    /// branch-free inner loop as [`FloatEmac::dot_fused_small`] — four
    /// independent lane chains per pass sharing each gathered weight
    /// entry.
    #[inline(always)]
    fn tile_fused_small<F: Fn(u32) -> EmacEntry>(
        &mut self,
        entry: F,
        seed: i128,
        seed_poisoned: bool,
        weights: &[u32],
        cols: &[&[u32]],
        out: &mut [u32],
    ) {
        let wf2 = 2 * self.fmt.wf() as i32;
        let mut wents = std::mem::take(&mut self.gather);
        wents.clear();
        wents.extend(weights.iter().map(|&w| entry(w)));
        let mut j = 0;
        while j + 4 <= cols.len() {
            let [mut l0, mut l1, mut l2, mut l3] = [I128Lanes::from_i128(seed); 4];
            let [mut s0, mut s1, mut s2, mut s3] = [0u64; 4];
            for ((((&ew, &a0), &a1), &a2), &a3) in wents
                .iter()
                .zip(cols[j].iter())
                .zip(cols[j + 1].iter())
                .zip(cols[j + 2].iter())
                .zip(cols[j + 3].iter())
            {
                Self::fused_step(wf2, ew, entry(a0), &mut l0, &mut s0);
                Self::fused_step(wf2, ew, entry(a1), &mut l1, &mut s1);
                Self::fused_step(wf2, ew, entry(a2), &mut l2, &mut s2);
                Self::fused_step(wf2, ew, entry(a3), &mut l3, &mut s3);
            }
            for (i, (lane, sp)) in [l0, l1, l2, l3]
                .into_iter()
                .zip([s0, s1, s2, s3])
                .enumerate()
            {
                self.acc = Accum::Small(lane.into_i128());
                self.poisoned = seed_poisoned || sp != 0;
                out[j + i] = self.result();
            }
            j += 4;
        }
        while j + 2 <= cols.len() {
            let (mut lanes0, mut lanes1) = (I128Lanes::from_i128(seed), I128Lanes::from_i128(seed));
            let (mut sp0, mut sp1) = (0u64, 0u64);
            for ((&ew, &a0), &a1) in wents.iter().zip(cols[j].iter()).zip(cols[j + 1].iter()) {
                Self::fused_step(wf2, ew, entry(a0), &mut lanes0, &mut sp0);
                Self::fused_step(wf2, ew, entry(a1), &mut lanes1, &mut sp1);
            }
            self.acc = Accum::Small(lanes0.into_i128());
            self.poisoned = seed_poisoned || sp0 != 0;
            out[j] = self.result();
            self.acc = Accum::Small(lanes1.into_i128());
            self.poisoned = seed_poisoned || sp1 != 0;
            out[j + 1] = self.result();
            j += 2;
        }
        if j < cols.len() {
            let mut lanes = I128Lanes::from_i128(seed);
            let mut special = 0u64;
            for (&ew, &a) in wents.iter().zip(cols[j].iter()) {
                Self::fused_step(wf2, ew, entry(a), &mut lanes, &mut special);
            }
            self.acc = Accum::Small(lanes.into_i128());
            self.poisoned = seed_poisoned || special != 0;
            out[j] = self.result();
        }
        self.gather = wents;
    }

    /// The gather tile on the medium/wide native windows: gathered weight
    /// operands, per-column [`Accum`] registers cloned from the bias seed.
    #[inline(always)]
    fn tile_fused_wide<F: Fn(u32) -> EmacEntry>(
        &mut self,
        entry: F,
        seed: Accum,
        seed_poisoned: bool,
        weights: &[u32],
        cols: &[&[u32]],
        out: &mut [u32],
    ) {
        let wf2 = 2 * self.fmt.wf() as i32;
        let mut wents = std::mem::take(&mut self.gather);
        wents.clear();
        wents.extend(weights.iter().map(|&w| entry(w)));
        for (col, slot) in cols.iter().zip(out.iter_mut()) {
            let mut acc = seed.clone();
            let mut special = false;
            for (&ew, &a) in wents.iter().zip(col.iter()) {
                let ea = entry(a);
                if (ew.0 | ea.0) & EmacEntry::SPECIAL_BIT != 0 {
                    special = true;
                    continue;
                }
                let prod = ew.field() * ea.field();
                if prod == 0 {
                    continue;
                }
                let tz = prod.trailing_zeros() as i32;
                let shift = ew.biased_scale() as i32 + ea.biased_scale() as i32 + tz - wf2;
                debug_assert!(shift >= 0, "float products are multiples of min_sub²");
                let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
                acc.add_shifted_u128((prod >> tz) as u128, shift as usize, negate);
            }
            self.acc = acc;
            self.poisoned = seed_poisoned || special;
            *slot = self.result();
        }
        self.gather = wents;
    }
}

impl Emac for FloatEmac {
    fn reset(&mut self) {
        self.acc.clear();
        self.count = 0;
        self.poisoned = false;
    }

    fn set_bias(&mut self, bias: u32) {
        self.reset();
        match self.decode_bits(bias) {
            FloatClass::Zero(_) => {}
            FloatClass::Finite(u) => self.add_value(u.sign, u.scale, u.sig),
            _ => self.poisoned = true,
        }
    }

    #[inline]
    fn mac(&mut self, weight: u32, activation: u32) {
        self.count += 1;
        debug_assert!(self.count <= self.capacity, "float EMAC over capacity");
        self.mac_uncounted(weight, activation);
    }

    fn dot_slice(&mut self, weights: &[u32], activations: &[u32]) {
        assert_eq!(
            weights.len(),
            activations.len(),
            "dot_slice: weight/activation length mismatch"
        );
        self.count += weights.len() as u64;
        debug_assert!(self.count <= self.capacity, "float EMAC over capacity");
        // Product-table kernel (n ≤ 8, i128 window): decode, multiply and
        // normalization are table-finished; the loop is load → lane add.
        if let (Some(table), Accum::Small(acc)) = (self.product, &mut self.acc) {
            let mut lanes = I128Lanes::from_i128(*acc);
            let mut special = 0u32;
            for (&w, &a) in weights.iter().zip(activations) {
                Self::product_step(table, &mut lanes, &mut special, w, a);
            }
            *acc = lanes.into_i128();
            if special != 0 {
                self.poisoned = true;
            }
            return;
        }
        // Batched fused-operand kernel: gathered entries through a loop
        // monomorphized per entry source, into hi/lo u64 lanes (i128
        // window) or the medium native register. Gated on a native window
        // exactly like `kernel()`, so a fast-table unit whose register
        // spilled to WideInt runs (and reports) Scalar.
        if let (Some(t), true) = (self.fast, self.acc.is_native()) {
            let wf2 = 2 * self.fmt.wf() as i32;
            let poisoned = match (&mut self.acc, t) {
                (Accum::Small(acc), FastOperands::Lut(tab)) => {
                    Self::dot_fused_small(|b| tab.entry(b), wf2, acc, weights, activations)
                }
                (Accum::Small(acc), FastOperands::Direct(d)) => {
                    Self::dot_fused_small(|b| d.entry(b), wf2, acc, weights, activations)
                }
                (acc, FastOperands::Lut(tab)) => {
                    Self::dot_fused_wide(|b| tab.entry(b), wf2, acc, weights, activations)
                }
                (acc, FastOperands::Direct(d)) => {
                    Self::dot_fused_wide(|b| d.entry(b), wf2, acc, weights, activations)
                }
            };
            if poisoned {
                self.poisoned = true;
            }
            return;
        }
        // Scalar kernel: the reference band loops the per-MAC datapath.
        for (&w, &a) in weights.iter().zip(activations) {
            self.mac_uncounted(w, a);
        }
    }

    fn dot_tile(&mut self, bias: u32, weights: &[u32], cols: &[&[u32]], out: &mut [u32]) {
        assert_eq!(
            cols.len(),
            out.len(),
            "dot_tile: column/output length mismatch"
        );
        for col in cols {
            assert_eq!(
                col.len(),
                weights.len(),
                "dot_tile: column/weight length mismatch"
            );
        }
        let (k, b) = (weights.len(), cols.len());
        if b == 0 {
            return;
        }
        debug_assert!(k as u64 <= self.capacity, "float EMAC over capacity");
        if b >= 2 {
            // Product band: cache-blocked tile. Same gate as `kernel()`.
            if let (Some(table), true) = (self.product, self.acc.is_small()) {
                self.tile_product(table, bias, weights, cols, out);
                self.count = (k * b) as u64;
                return;
            }
            // Fused band: gather the weight operands once, stream columns.
            if let (Some(t), true) = (self.fast, self.acc.is_native()) {
                self.set_bias(bias);
                let seed_poisoned = self.poisoned;
                match (self.acc.clone(), t) {
                    (Accum::Small(seed), FastOperands::Lut(tab)) => self.tile_fused_small(
                        |p| tab.entry(p),
                        seed,
                        seed_poisoned,
                        weights,
                        cols,
                        out,
                    ),
                    (Accum::Small(seed), FastOperands::Direct(d)) => self.tile_fused_small(
                        |p| d.entry(p),
                        seed,
                        seed_poisoned,
                        weights,
                        cols,
                        out,
                    ),
                    (seed, FastOperands::Lut(tab)) => self.tile_fused_wide(
                        |p| tab.entry(p),
                        seed,
                        seed_poisoned,
                        weights,
                        cols,
                        out,
                    ),
                    (seed, FastOperands::Direct(d)) => self.tile_fused_wide(
                        |p| d.entry(p),
                        seed,
                        seed_poisoned,
                        weights,
                        cols,
                        out,
                    ),
                }
                self.count = (k * b) as u64;
                return;
            }
        }
        // Per-column baseline: B == 1 keeps the row kernels, the scalar
        // band stays the differential reference at any width.
        for (col, slot) in cols.iter().zip(out.iter_mut()) {
            self.set_bias(bias);
            self.dot_slice(weights, col);
            *slot = self.result();
        }
        self.count = (k * b) as u64;
    }

    fn kernel(&self) -> MacKernel {
        if self.product.is_some() && self.acc.is_small() {
            MacKernel::ProductTable
        } else if self.fast.is_some() && self.acc.is_native() {
            MacKernel::BatchedFused
        } else {
            MacKernel::Scalar
        }
    }

    fn result(&self) -> u32 {
        if self.poisoned {
            return self.fmt.nan_bits();
        }
        // Fig. 4 readout: inverse 2's complement, LZD, normalize, round.
        let w = match self.acc.window() {
            None => return self.fmt.zero_bits(false),
            Some(w) => w,
        };
        let scale = w.msb as i32 - self.offset;
        let rounded = encode(self.fmt, w.sign, scale, w.sig, w.sticky);
        // Clip at the maximum magnitude: the EMAC never emits infinity.
        match self.decode_bits(rounded) {
            FloatClass::Inf(s) => self.fmt.max_bits(s),
            _ => rounded,
        }
    }

    fn macs_done(&self) -> u64 {
        self.count
    }

    fn pipeline_depth(&self) -> u32 {
        4 // decode/multiply/shift → accumulate → normalize → round/clip
    }

    fn accumulator_width(&self) -> u32 {
        Self::accumulator_width_for(self.fmt, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_minifloat::convert::{from_f64, to_f64};

    fn fmt(we: u32, wf: u32) -> FloatFormat {
        FloatFormat::new(we, wf).unwrap()
    }

    #[test]
    fn accumulator_width_matches_eq3() {
        // we=4, wf=3: log2(max/min) = 2^4 - 2 + 3 = 17; k=128 -> 7 + 34 + 2.
        assert_eq!(FloatEmac::accumulator_width_for(fmt(4, 3), 128), 43);
        assert_eq!(FloatEmac::accumulator_width_for(fmt(2, 2), 1), 2 * 4 + 2);
    }

    #[test]
    fn exact_small_sums() {
        let f = fmt(4, 3);
        let mut e = FloatEmac::new(f, 8);
        e.mac(from_f64(f, 0.5), from_f64(f, 0.5)); // 0.25
        e.mac(from_f64(f, 1.5), from_f64(f, 2.0)); // 3.0
        e.mac(from_f64(f, -1.0), from_f64(f, 0.25)); // -0.25
        assert_eq!(to_f64(f, e.result()), 3.0);
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        let f = fmt(4, 3);
        let mut e = FloatEmac::new(f, 4);
        let max = f.max_bits(false);
        let one = from_f64(f, 1.0);
        let minsub = 0x01; // smallest subnormal
        e.mac(max, one);
        e.mac(max | (1 << 7), one); // -max × 1
        e.mac(minsub, one);
        assert_eq!(e.result(), minsub, "quire-style exactness");
    }

    #[test]
    fn subnormal_products_accumulate() {
        let f = fmt(4, 3);
        let mut e = FloatEmac::new(f, 64);
        let minsub = 0x01u32; // 2^-9
                              // 64 × (minsub × 1.0) = 2^-3
        let one = from_f64(f, 1.0);
        for _ in 0..64 {
            e.mac(minsub, one);
        }
        assert_eq!(to_f64(f, e.result()), 2f64.powi(-3));
    }

    #[test]
    fn clips_at_max_instead_of_inf() {
        let f = fmt(4, 3);
        let mut e = FloatEmac::new(f, 8);
        let max = f.max_bits(false);
        for _ in 0..8 {
            e.mac(max, max);
        }
        assert_eq!(e.result(), max, "saturates, never Inf");
        e.reset();
        for _ in 0..8 {
            e.mac(max | (1 << 7), max);
        }
        assert_eq!(e.result(), f.max_bits(true));
    }

    #[test]
    fn bias_and_reset() {
        let f = fmt(4, 3);
        let mut e = FloatEmac::new(f, 4);
        e.set_bias(from_f64(f, 2.0));
        e.mac(from_f64(f, 1.0), from_f64(f, 0.5));
        assert_eq!(to_f64(f, e.result()), 2.5);
        e.reset();
        assert_eq!(e.result(), 0);
        assert_eq!(e.macs_done(), 0);
    }

    #[test]
    fn nan_and_inf_poison() {
        let f = fmt(4, 3);
        let mut e = FloatEmac::new(f, 4);
        e.mac(f.inf_bits(false), from_f64(f, 1.0));
        assert_eq!(decode(f, e.result()), FloatClass::NaN);
        e.reset();
        e.mac(f.nan_bits(), from_f64(f, 1.0));
        assert_eq!(decode(f, e.result()), FloatClass::NaN);
    }

    #[test]
    fn single_product_equals_rounded_mul() {
        // With one product the EMAC must equal the correctly rounded op
        // (clipped at max instead of Inf).
        for (we, wf) in [(2u32, 2u32), (3, 2), (4, 3), (5, 2)] {
            let f = fmt(we, wf);
            for a in f.finites() {
                for b in [0x01u32, 0x11, 0x23, f.max_bits(false), f.zero_bits(true)] {
                    let b = b & f.mask();
                    if !matches!(decode(f, b), FloatClass::Finite(_) | FloatClass::Zero(_)) {
                        continue;
                    }
                    let mut e = FloatEmac::new(f, 1);
                    e.mac(a, b);
                    let direct = dp_minifloat::ops::mul(f, a, b);
                    let zero_input = matches!(decode(f, a), FloatClass::Zero(_))
                        || matches!(decode(f, b), FloatClass::Zero(_));
                    let expect = match decode(f, direct) {
                        FloatClass::Inf(s) => f.max_bits(s),
                        // A zero *input* is skipped by the EMAC, whose empty
                        // accumulator reads +0; a nonzero product that
                        // underflows keeps IEEE's signed zero.
                        FloatClass::Zero(_) if zero_input => 0,
                        _ => direct,
                    };
                    assert_eq!(e.result(), expect, "{f}: {a:#x} × {b:#x}");
                }
            }
        }
    }
}
