//! The EMAC accumulation register: native `i128` when it fits, a two-word
//! 256-bit register for the paper's 13–16-bit comparison formats, and
//! [`WideInt`] beyond that.
//!
//! Paper eqs. (3)–(4) size the accumulator so a `k`-term dot product is
//! exact. For every 5–8-bit configuration the paper evaluates (Table II)
//! that width is well under 127 bits, so the register fits a native
//! two's-complement `i128` and each MAC becomes one shift and one add —
//! the software analogue of the paper's observation that small formats
//! make the EMAC adder trivially cheap. The §IV comparison sweep also runs
//! formats up to 16 bits, whose eq.-(4) registers (e.g. ~145 bits for
//! posit⟨16,1⟩ at k = 128) spill past one `i128` but fit two: the
//! [`Acc256`] variant keeps those on native carry-chain arithmetic
//! (roughly two adds with carry per MAC) instead of heap-allocated limbs.
//! Truly wide formats (e.g. posit⟨32,2⟩ needs ~500 bits) still fall back
//! to the limb-based [`WideInt`].
//!
//! All variants expose the same fixed-point semantics, and readout
//! produces the identical `(msb, window, sticky)` triple, so the final
//! rounding/encode step is shared and bit-identical between paths — a
//! property the `fast_path_equivalence` test suite checks differentially.

use dp_posit::WideInt;

/// Widest accumulator (in bits, including sign) the `i128` fast path can
/// hold. Equation-(3)/(4) widths at or below this use native arithmetic.
pub const SMALL_ACC_MAX_BITS: u32 = 127;

/// Widest accumulator (in bits, including sign) the two-word [`Acc256`]
/// path can hold. Widths in `SMALL_ACC_MAX_BITS+1 ..= MEDIUM_ACC_MAX_BITS`
/// use it; anything wider falls back to [`WideInt`].
pub const MEDIUM_ACC_MAX_BITS: u32 = 255;

/// A 256-bit two's-complement fixed-point register held in two native
/// words (`hi:lo`), covering every eq.-(3)/(4) width of the paper's §IV
/// sweep up to 16 bits without limb vectors. Adds ripple one carry from
/// the low word into the high word; readout mirrors the `i128` path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Acc256 {
    hi: i128,
    lo: u128,
}

impl Acc256 {
    /// The zero register.
    pub const ZERO: Acc256 = Acc256 { hi: 0, lo: 0 };

    /// True if every bit is clear.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.hi == 0 && self.lo == 0
    }

    /// `self += (value << shift)`, or `-=` when `negate` is set.
    #[inline]
    pub fn add_shifted_u128(&mut self, value: u128, shift: usize, negate: bool) {
        debug_assert!(
            shift as u32 + (128 - value.leading_zeros()) <= MEDIUM_ACC_MAX_BITS,
            "256-bit accumulator overflow: value does not fit capacity"
        );
        let (lo_add, hi_add): (u128, u128) = if shift == 0 {
            (value, 0)
        } else if shift < 128 {
            (value << shift, value >> (128 - shift))
        } else {
            // Capacity keeps shift − 128 + value bits ≤ 127, so nothing
            // spills past the high word.
            (0, value << (shift - 128))
        };
        if negate {
            let (lo, borrow) = self.lo.overflowing_sub(lo_add);
            self.lo = lo;
            self.hi = self
                .hi
                .wrapping_sub(hi_add as i128)
                .wrapping_sub(borrow as i128);
        } else {
            let (lo, carry) = self.lo.overflowing_add(lo_add);
            self.lo = lo;
            self.hi = self
                .hi
                .wrapping_add(hi_add as i128)
                .wrapping_add(carry as i128);
        }
    }

    /// Sign, MSB index and left-aligned 64-bit rounding window, or `None`
    /// when zero; identical in shape to the `i128` and [`WideInt`] paths.
    pub fn window(&self) -> Option<Window> {
        if self.is_zero() {
            return None;
        }
        let sign = self.hi < 0;
        let (mut mhi, mut mlo) = (self.hi as u128, self.lo);
        if sign {
            // 256-bit two's-complement negation: !x + 1 with one carry.
            mlo = mlo.wrapping_neg();
            mhi = if mlo == 0 { mhi.wrapping_neg() } else { !mhi };
        }
        let msb = if mhi != 0 {
            255 - mhi.leading_zeros() as usize
        } else {
            127 - mlo.leading_zeros() as usize
        };
        // Left-align the magnitude so bit `msb` lands at bit 255; the top
        // 64 bits are the window, everything below collapses into sticky.
        let sh = 255 - msb;
        let (ahi, alo) = if sh == 0 {
            (mhi, mlo)
        } else if sh < 128 {
            ((mhi << sh) | (mlo >> (128 - sh)), mlo << sh)
        } else {
            (mlo << (sh - 128), 0)
        };
        Some(Window {
            sign,
            msb,
            sig: (ahi >> 64) as u64,
            sticky: (ahi as u64) != 0 || alo != 0,
        })
    }
}

/// Sign/magnitude view of a nonzero accumulator, normalized for encoding:
/// the top window bit sits at `msb`, `sig` holds bits `msb..=msb-63`
/// left-aligned, and `sticky` is set when any bit below the window is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Sign of the accumulated value.
    pub sign: bool,
    /// Index of the most significant magnitude bit (from the register LSB).
    pub msb: usize,
    /// 64-bit window below (and including) `msb`, left-aligned.
    pub sig: u64,
    /// Whether any magnitude bit strictly below the window is set.
    pub sticky: bool,
}

/// A two's-complement fixed-point accumulation register.
#[derive(Debug, Clone)]
pub enum Accum {
    /// Native fast path: the whole register lives in one `i128`.
    Small(i128),
    /// Two-word native path for registers of 128–255 bits (the paper's
    /// 13–16-bit comparison formats).
    Medium(Acc256),
    /// Fallback for formats whose exact register exceeds 255 bits.
    Wide(WideInt),
}

impl Accum {
    /// A zero register for an exact width of `width` bits (per paper
    /// eqs. 3–4). Chooses the `i128` fast path whenever the width fits,
    /// the two-word [`Acc256`] up to [`MEDIUM_ACC_MAX_BITS`], and the
    /// [`WideInt`] fallback (with the traditional 64 bits of headroom)
    /// beyond that.
    pub fn new(width: u32) -> Self {
        if width <= SMALL_ACC_MAX_BITS {
            Accum::Small(0)
        } else if width <= MEDIUM_ACC_MAX_BITS {
            Accum::Medium(Acc256::ZERO)
        } else {
            Accum::Wide(WideInt::zero(width as usize + 64))
        }
    }

    /// A zero register forced onto the [`WideInt`] path regardless of
    /// width — the pre-LUT reference datapath, kept for differential
    /// testing and benchmarking against the fast path.
    pub fn new_wide(width: u32) -> Self {
        Accum::Wide(WideInt::zero(width as usize + 64))
    }

    /// True when this register uses the native `i128` fast path.
    pub fn is_small(&self) -> bool {
        matches!(self, Accum::Small(_))
    }

    /// True when this register uses native word arithmetic (`i128` or the
    /// two-word 256-bit register) rather than [`WideInt`] limbs.
    pub fn is_native(&self) -> bool {
        !matches!(self, Accum::Wide(_))
    }

    /// Clears the register to zero, keeping capacity.
    pub fn clear(&mut self) {
        match self {
            Accum::Small(v) => *v = 0,
            Accum::Medium(m) => *m = Acc256::ZERO,
            Accum::Wide(w) => w.clear(),
        }
    }

    /// True if every bit is clear.
    pub fn is_zero(&self) -> bool {
        match self {
            Accum::Small(v) => *v == 0,
            Accum::Medium(m) => m.is_zero(),
            Accum::Wide(w) => w.is_zero(),
        }
    }

    /// `self += (value << shift)`, or `-=` when `negate` is set. `value`
    /// is an unsigned product/significand; `shift` is its fixed-point
    /// position in the register.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the shifted value exceeds capacity
    /// (correctly sized accumulators never do — paper eqs. 3–4).
    #[inline]
    pub fn add_shifted_u128(&mut self, value: u128, shift: usize, negate: bool) {
        if value == 0 {
            return;
        }
        match self {
            Accum::Small(acc) => {
                debug_assert!(
                    shift as u32 + (128 - value.leading_zeros()) <= SMALL_ACC_MAX_BITS,
                    "i128 accumulator overflow: value does not fit capacity"
                );
                let shifted = (value << shift) as i128;
                if negate {
                    *acc -= shifted;
                } else {
                    *acc += shifted;
                }
            }
            Accum::Medium(m) => m.add_shifted_u128(value, shift, negate),
            Accum::Wide(w) => w.add_shifted_u128(value, shift, negate),
        }
    }

    /// Sign, MSB index and left-aligned 64-bit rounding window of the
    /// current value, or `None` when zero. Identical between paths.
    pub fn window(&self) -> Option<Window> {
        match self {
            Accum::Small(acc) => {
                if *acc == 0 {
                    return None;
                }
                let sign = *acc < 0;
                let mag = acc.unsigned_abs();
                let msb = 127 - mag.leading_zeros() as usize;
                // Left-align the magnitude so bit `msb` lands at bit 127;
                // the top half is then the 64-bit window, the bottom half
                // collapses into the sticky flag.
                let aligned = mag << (127 - msb);
                Some(Window {
                    sign,
                    msb,
                    sig: (aligned >> 64) as u64,
                    sticky: aligned as u64 != 0,
                })
            }
            Accum::Medium(m) => m.window(),
            Accum::Wide(w) => {
                if w.is_zero() {
                    return None;
                }
                let sign = w.is_negative();
                let mag = w.magnitude();
                let msb = mag.msb_index().expect("nonzero accumulator");
                let (sig, sticky) = mag.extract_window(msb);
                Some(Window {
                    sign,
                    msb,
                    sig,
                    sticky,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_selects_the_path() {
        assert!(Accum::new(26).is_small());
        assert!(Accum::new(127).is_small());
        assert!(!Accum::new(128).is_small());
        assert!(matches!(Accum::new(128), Accum::Medium(_)));
        assert!(matches!(Accum::new(255), Accum::Medium(_)));
        assert!(Accum::new(255).is_native());
        assert!(matches!(Accum::new(256), Accum::Wide(_)));
        assert!(!Accum::new(256).is_native());
        assert!(!Accum::new_wide(26).is_small());
        assert!(!Accum::new_wide(26).is_native());
    }

    #[test]
    fn zero_add_clear_roundtrip() {
        for mut acc in [
            Accum::new(100),
            Accum::new(200),
            Accum::new(300),
            Accum::new_wide(100),
        ] {
            assert!(acc.is_zero());
            assert!(acc.window().is_none());
            acc.add_shifted_u128(5, 10, false);
            assert!(!acc.is_zero());
            acc.add_shifted_u128(5, 10, true);
            assert!(acc.is_zero(), "add then sub cancels");
            acc.add_shifted_u128(1, 0, false);
            acc.clear();
            assert!(acc.is_zero());
        }
    }

    #[test]
    fn windows_agree_between_paths() {
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..500 {
            let mut small = Accum::new(120);
            let mut wide = Accum::new_wide(120);
            for _ in 0..(next() % 12 + 1) {
                let value = (next() % (1 << 20)) as u128;
                let shift = (next() % 90) as usize;
                let negate = next() % 2 == 0;
                small.add_shifted_u128(value, shift, negate);
                wide.add_shifted_u128(value, shift, negate);
            }
            assert_eq!(small.is_zero(), wide.is_zero());
            assert_eq!(small.window(), wide.window());
        }
    }

    #[test]
    fn medium_windows_agree_with_wide() {
        // The two-word 256-bit register must be bit-identical to WideInt on
        // adds that straddle the lo/hi word boundary, cancel exactly, and
        // go negative — including shifts at and above 128.
        let mut s = 0x0fed_cba9_8765_4321u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..500 {
            let mut medium = Accum::new(250);
            assert!(matches!(medium, Accum::Medium(_)));
            let mut wide = Accum::new_wide(250);
            for _ in 0..(next() % 16 + 1) {
                let value = ((next() as u128) << 64 | next() as u128) % (1 << 40);
                let shift = (next() % 200) as usize;
                let negate = next() % 2 == 0;
                medium.add_shifted_u128(value, shift, negate);
                wide.add_shifted_u128(value, shift, negate);
            }
            assert_eq!(medium.is_zero(), wide.is_zero());
            assert_eq!(medium.window(), wide.window());
            medium.clear();
            assert!(medium.is_zero());
        }
    }

    #[test]
    fn medium_boundary_carries() {
        // A carry out of the low word: 2^127 + 2^127 = 2^128.
        let mut m = Accum::new(200);
        m.add_shifted_u128(1, 127, false);
        m.add_shifted_u128(1, 127, false);
        let w = m.window().unwrap();
        assert_eq!(
            (w.sign, w.msb, w.sig, w.sticky),
            (false, 128, 1 << 63, false)
        );
        // Subtracting back across the boundary cancels exactly.
        m.add_shifted_u128(1, 128, true);
        assert!(m.is_zero());
        // A negative value straddling the boundary.
        m.add_shifted_u128(0b11, 127, true); // -(3 × 2^127)
        let w = m.window().unwrap();
        assert_eq!(
            (w.sign, w.msb, w.sig, w.sticky),
            (true, 128, 0b11 << 62, false)
        );
    }

    #[test]
    fn window_shape_for_known_value() {
        // value = 0b101 << 100 | 1: window at msb=102, sticky from the low 1.
        let mut acc = Accum::new(120);
        acc.add_shifted_u128(0b101, 100, false);
        acc.add_shifted_u128(1, 0, false);
        let w = acc.window().unwrap();
        assert!(!w.sign);
        assert_eq!(w.msb, 102);
        assert_eq!(w.sig, 0b101u64 << 61);
        assert!(w.sticky);
    }

    #[test]
    fn negative_values_report_sign_and_magnitude() {
        let mut acc = Accum::new(90);
        acc.add_shifted_u128(7, 20, true); // -7 × 2^20
        let w = acc.window().unwrap();
        assert!(w.sign);
        assert_eq!(w.msb, 22);
        assert_eq!(w.sig, 0b111u64 << 61);
        assert!(!w.sticky);
    }
}
