//! The EMAC accumulation register: native `i128` when it fits, [`WideInt`]
//! otherwise.
//!
//! Paper eqs. (3)–(4) size the accumulator so a `k`-term dot product is
//! exact. For every 5–8-bit configuration the paper evaluates (Table II)
//! that width is well under 127 bits, so the register fits a native
//! two's-complement `i128` and each MAC becomes one shift and one add —
//! the software analogue of the paper's observation that small formats
//! make the EMAC adder trivially cheap. Wider formats (e.g. posit⟨32,2⟩
//! needs ~500 bits) transparently fall back to the limb-based [`WideInt`].
//!
//! Both variants expose the same fixed-point semantics, and readout
//! produces the identical `(msb, window, sticky)` triple, so the final
//! rounding/encode step is shared and bit-identical between paths — a
//! property the `fast_path_equivalence` test suite checks differentially.

use dp_posit::WideInt;

/// Widest accumulator (in bits, including sign) the `i128` fast path can
/// hold. Equation-(3)/(4) widths at or below this use native arithmetic.
pub const SMALL_ACC_MAX_BITS: u32 = 127;

/// Sign/magnitude view of a nonzero accumulator, normalized for encoding:
/// the top window bit sits at `msb`, `sig` holds bits `msb..=msb-63`
/// left-aligned, and `sticky` is set when any bit below the window is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Sign of the accumulated value.
    pub sign: bool,
    /// Index of the most significant magnitude bit (from the register LSB).
    pub msb: usize,
    /// 64-bit window below (and including) `msb`, left-aligned.
    pub sig: u64,
    /// Whether any magnitude bit strictly below the window is set.
    pub sticky: bool,
}

/// A two's-complement fixed-point accumulation register.
#[derive(Debug, Clone)]
pub enum Accum {
    /// Native fast path: the whole register lives in one `i128`.
    Small(i128),
    /// Fallback for formats whose exact register exceeds 127 bits.
    Wide(WideInt),
}

impl Accum {
    /// A zero register for an exact width of `width` bits (per paper
    /// eqs. 3–4). Chooses the `i128` fast path whenever the width fits;
    /// the [`WideInt`] fallback gets the traditional 64 bits of headroom.
    pub fn new(width: u32) -> Self {
        if width <= SMALL_ACC_MAX_BITS {
            Accum::Small(0)
        } else {
            Accum::Wide(WideInt::zero(width as usize + 64))
        }
    }

    /// A zero register forced onto the [`WideInt`] path regardless of
    /// width — the pre-LUT reference datapath, kept for differential
    /// testing and benchmarking against the fast path.
    pub fn new_wide(width: u32) -> Self {
        Accum::Wide(WideInt::zero(width as usize + 64))
    }

    /// True when this register uses the native `i128` fast path.
    pub fn is_small(&self) -> bool {
        matches!(self, Accum::Small(_))
    }

    /// Clears the register to zero, keeping capacity.
    pub fn clear(&mut self) {
        match self {
            Accum::Small(v) => *v = 0,
            Accum::Wide(w) => w.clear(),
        }
    }

    /// True if every bit is clear.
    pub fn is_zero(&self) -> bool {
        match self {
            Accum::Small(v) => *v == 0,
            Accum::Wide(w) => w.is_zero(),
        }
    }

    /// `self += (value << shift)`, or `-=` when `negate` is set. `value`
    /// is an unsigned product/significand; `shift` is its fixed-point
    /// position in the register.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the shifted value exceeds capacity
    /// (correctly sized accumulators never do — paper eqs. 3–4).
    #[inline]
    pub fn add_shifted_u128(&mut self, value: u128, shift: usize, negate: bool) {
        if value == 0 {
            return;
        }
        match self {
            Accum::Small(acc) => {
                debug_assert!(
                    shift as u32 + (128 - value.leading_zeros()) <= SMALL_ACC_MAX_BITS,
                    "i128 accumulator overflow: value does not fit capacity"
                );
                let shifted = (value << shift) as i128;
                if negate {
                    *acc -= shifted;
                } else {
                    *acc += shifted;
                }
            }
            Accum::Wide(w) => w.add_shifted_u128(value, shift, negate),
        }
    }

    /// Sign, MSB index and left-aligned 64-bit rounding window of the
    /// current value, or `None` when zero. Identical between paths.
    pub fn window(&self) -> Option<Window> {
        match self {
            Accum::Small(acc) => {
                if *acc == 0 {
                    return None;
                }
                let sign = *acc < 0;
                let mag = acc.unsigned_abs();
                let msb = 127 - mag.leading_zeros() as usize;
                // Left-align the magnitude so bit `msb` lands at bit 127;
                // the top half is then the 64-bit window, the bottom half
                // collapses into the sticky flag.
                let aligned = mag << (127 - msb);
                Some(Window {
                    sign,
                    msb,
                    sig: (aligned >> 64) as u64,
                    sticky: aligned as u64 != 0,
                })
            }
            Accum::Wide(w) => {
                if w.is_zero() {
                    return None;
                }
                let sign = w.is_negative();
                let mag = w.magnitude();
                let msb = mag.msb_index().expect("nonzero accumulator");
                let (sig, sticky) = mag.extract_window(msb);
                Some(Window {
                    sign,
                    msb,
                    sig,
                    sticky,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_selects_the_path() {
        assert!(Accum::new(26).is_small());
        assert!(Accum::new(127).is_small());
        assert!(!Accum::new(128).is_small());
        assert!(!Accum::new_wide(26).is_small());
    }

    #[test]
    fn zero_add_clear_roundtrip() {
        for mut acc in [Accum::new(100), Accum::new(300), Accum::new_wide(100)] {
            assert!(acc.is_zero());
            assert!(acc.window().is_none());
            acc.add_shifted_u128(5, 10, false);
            assert!(!acc.is_zero());
            acc.add_shifted_u128(5, 10, true);
            assert!(acc.is_zero(), "add then sub cancels");
            acc.add_shifted_u128(1, 0, false);
            acc.clear();
            assert!(acc.is_zero());
        }
    }

    #[test]
    fn windows_agree_between_paths() {
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..500 {
            let mut small = Accum::new(120);
            let mut wide = Accum::new_wide(120);
            for _ in 0..(next() % 12 + 1) {
                let value = (next() % (1 << 20)) as u128;
                let shift = (next() % 90) as usize;
                let negate = next() % 2 == 0;
                small.add_shifted_u128(value, shift, negate);
                wide.add_shifted_u128(value, shift, negate);
            }
            assert_eq!(small.is_zero(), wide.is_zero());
            assert_eq!(small.window(), wide.window());
        }
    }

    #[test]
    fn window_shape_for_known_value() {
        // value = 0b101 << 100 | 1: window at msb=102, sticky from the low 1.
        let mut acc = Accum::new(120);
        acc.add_shifted_u128(0b101, 100, false);
        acc.add_shifted_u128(1, 0, false);
        let w = acc.window().unwrap();
        assert!(!w.sign);
        assert_eq!(w.msb, 102);
        assert_eq!(w.sig, 0b101u64 << 61);
        assert!(w.sticky);
    }

    #[test]
    fn negative_values_report_sign_and_magnitude() {
        let mut acc = Accum::new(90);
        acc.add_shifted_u128(7, 20, true); // -7 × 2^20
        let w = acc.window().unwrap();
        assert!(w.sign);
        assert_eq!(w.msb, 22);
        assert_eq!(w.sig, 0b111u64 << 61);
        assert!(!w.sticky);
    }
}
