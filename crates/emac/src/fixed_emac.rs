//! The fixed-point EMAC (paper Fig. 3).

use crate::ceil_log2;
use crate::unit::Emac;
use crate::{MacKernel, UnsupportedFormat};
use dp_fixed::lut::{DecodeLut, ProductLut};
use dp_fixed::FixedFormat;

/// Exact fixed-point multiply-and-accumulate.
///
/// Inputs are `n`-bit Q(n−q).q words. Products are kept at full `2n`-bit
/// precision (with `2q` fraction bits) and accumulated in a `wa`-bit
/// register where, per paper eq. (3),
///
/// ```text
/// wa = ⌈log2 k⌉ + 2·⌈log2(max/min)⌉ + 2 = ⌈log2 k⌉ + 2n
/// ```
///
/// At readout the sum is shifted right by `q` bits and **truncated** to `n`
/// bits, clipping at the maximum magnitude — exactly the datapath of Fig. 3.
///
/// # Examples
///
/// ```
/// use dp_emac::{Emac, FixedEmac};
/// use dp_fixed::FixedFormat;
///
/// let fmt = FixedFormat::new(8, 4)?; // Q4.4
/// let mut emac = FixedEmac::new(fmt, 4);
/// let half = fmt.from_f64(0.5) as u32; // raw 8
/// emac.mac(half, half);
/// emac.mac(half, half);
/// assert_eq!(emac.result(), 8); // 0.25 + 0.25 = 0.5 = raw 8
/// # Ok::<(), dp_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FixedEmac {
    fmt: FixedFormat,
    capacity: u64,
    acc: i128,
    /// Sign-extension table for the format, when one exists (`n ≤ 12`).
    lut: Option<&'static DecodeLut>,
    /// Finished-product table for `n ≤ 8` formats: sign extension *and*
    /// multiply collapse into one `2^(2n)`-entry lookup
    /// ([`MacKernel::ProductTable`]).
    product: Option<&'static ProductLut>,
    /// Whether [`Emac::dot_slice`] may run the unrolled partial-sum kernel
    /// (`n ≤ 16`, [`MacKernel::BatchedFused`]).
    batched: bool,
    count: u64,
}

impl FixedEmac {
    /// Creates a unit for `fmt` sized for `capacity` accumulations. The
    /// accumulator is always a native `i128` (fixed point needs only
    /// `2n + ⌈log2 k⌉` bits, paper eq. 3); decode uses the `dp_fixed::lut`
    /// sign-extension table for formats up to 12 bits.
    ///
    /// # Panics
    ///
    /// Panics if the paper-eq.-(3) accumulator would exceed 127 bits
    /// (`2n + ⌈log2 k⌉ > 127`), which no paper-scale configuration hits.
    /// Use [`FixedEmac::try_new`] to validate without panicking.
    pub fn new(fmt: FixedFormat, capacity: u64) -> Self {
        Self::try_new(fmt, capacity).expect("fixed EMAC accumulator exceeds i128")
    }

    /// [`FixedEmac::new`] returning a typed error instead of panicking
    /// when the eq.-(3) register would exceed the unit's `i128` —
    /// admission-time validation for serving registries and other
    /// untrusted callers.
    ///
    /// # Errors
    ///
    /// [`UnsupportedFormat`] when `2n + ⌈log2 k⌉ > 127`.
    pub fn try_new(fmt: FixedFormat, capacity: u64) -> Result<Self, UnsupportedFormat> {
        let wa = Self::accumulator_width_for(fmt, capacity);
        if wa > 127 {
            return Err(UnsupportedFormat::new(format!(
                "{fmt}: eq.-(3) accumulator needs {wa} bits for k = {capacity}, \
                 exceeding the fixed EMAC's i128"
            )));
        }
        Ok(FixedEmac {
            fmt,
            capacity: capacity.max(1),
            acc: 0,
            lut: dp_fixed::lut::cached(fmt),
            product: dp_fixed::lut::product_cached(fmt),
            batched: fmt.n() <= 16,
            count: 0,
        })
    }

    /// Caps the slice-level kernel this unit may select — a bench/test
    /// knob for comparing kernels on one format; see
    /// [`crate::PositEmac::with_kernel_cap`] for the cap semantics. The
    /// fixed unit's accumulator is always a native `i128`, so caps only
    /// change which loop shape [`Emac::dot_slice`] runs.
    pub fn with_kernel_cap(mut self, cap: MacKernel) -> Self {
        if cap < MacKernel::ProductTable {
            self.product = None;
        }
        if cap < MacKernel::BatchedFused {
            self.batched = false;
        }
        self
    }

    /// The format of this unit.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// Paper eq. (3) accumulator width for `k` accumulations.
    pub fn accumulator_width_for(fmt: FixedFormat, k: u64) -> u32 {
        2 * fmt.n() + ceil_log2(k)
    }

    /// Sign-extends an `n`-bit pattern to `i64` (table-driven when the
    /// format has a `dp_fixed::lut` table).
    #[inline]
    fn sext(&self, bits: u32) -> i64 {
        match self.lut {
            Some(lut) => lut.decode(bits),
            None => {
                let n = self.fmt.n();
                let sh = 64 - n;
                (((bits as u64) << sh) as i64) >> sh
            }
        }
    }

    fn clip(&self, v: i128) -> i64 {
        v.clamp(self.fmt.min_raw() as i128, self.fmt.max_raw() as i128) as i64
    }

    /// The batched loop body, monomorphized per sign-extension source.
    #[inline(always)]
    fn dot_direct<F: Fn(u32) -> i64>(
        sext: F,
        acc: &mut i128,
        weights: &[u32],
        activations: &[u32],
    ) {
        let mut wc = weights.chunks_exact(4);
        let mut ac = activations.chunks_exact(4);
        for (w4, a4) in (&mut wc).zip(&mut ac) {
            let mut partial = 0i64;
            for j in 0..4 {
                partial += sext(w4[j]) * sext(a4[j]);
            }
            *acc += partial as i128;
        }
        let mut partial = 0i64;
        for (&w, &a) in wc.remainder().iter().zip(ac.remainder()) {
            partial += sext(w) * sext(a);
        }
        *acc += partial as i128;
    }
}

impl Emac for FixedEmac {
    fn reset(&mut self) {
        self.acc = 0;
        self.count = 0;
    }

    fn set_bias(&mut self, bias: u32) {
        self.reset();
        // The bias has q fraction bits; the accumulator carries 2q, so the
        // bias is pre-shifted left by q (Fig. 3 "Pad").
        self.acc = (self.sext(bias) as i128) << self.fmt.q();
    }

    fn mac(&mut self, weight: u32, activation: u32) {
        self.count += 1;
        debug_assert!(self.count <= self.capacity, "fixed EMAC over capacity");
        let w = self.sext(weight) as i128;
        let a = self.sext(activation) as i128;
        self.acc += w * a; // exact: 2n-bit product in a >= 2n + log2k register
    }

    fn dot_slice(&mut self, weights: &[u32], activations: &[u32]) {
        assert_eq!(
            weights.len(),
            activations.len(),
            "dot_slice: weight/activation length mismatch"
        );
        self.count += weights.len() as u64;
        debug_assert!(self.count <= self.capacity, "fixed EMAC over capacity");
        // Product-table kernel (n ≤ 8): finished signed products summed in
        // an i64 partial per 8-chunk (|entry| < 2^14, so a chunk partial
        // fits with room to spare), folded into the i128 register once.
        if let Some(table) = self.product {
            let mut wc = weights.chunks_exact(8);
            let mut ac = activations.chunks_exact(8);
            for (w8, a8) in (&mut wc).zip(&mut ac) {
                let mut partial = 0i64;
                for j in 0..8 {
                    partial += table.entry(w8[j], a8[j]);
                }
                self.acc += partial as i128;
            }
            let mut partial = 0i64;
            for (&w, &a) in wc.remainder().iter().zip(ac.remainder()) {
                partial += table.entry(w, a);
            }
            self.acc += partial as i128;
            return;
        }
        // Batched kernel (n ≤ 16): sign-extension products summed in an
        // i64 partial per 4-chunk (|product| < 2^30), one i128 fold per
        // chunk — monomorphized per decode source so the loop body is
        // plain word arithmetic the optimizer can unroll.
        if self.batched {
            let n = self.fmt.n();
            match self.lut {
                Some(lut) => {
                    Self::dot_direct(|b| lut.decode(b), &mut self.acc, weights, activations)
                }
                None => Self::dot_direct(
                    |b| {
                        let sh = 64 - n;
                        (((b as u64) << sh) as i64) >> sh
                    },
                    &mut self.acc,
                    weights,
                    activations,
                ),
            }
            return;
        }
        // Scalar kernel: wide formats loop the per-MAC i128 multiply.
        for (&w, &a) in weights.iter().zip(activations) {
            self.acc += self.sext(w) as i128 * self.sext(a) as i128;
        }
    }

    fn kernel(&self) -> MacKernel {
        if self.product.is_some() {
            MacKernel::ProductTable
        } else if self.batched {
            MacKernel::BatchedFused
        } else {
            MacKernel::Scalar
        }
    }

    fn result(&self) -> u32 {
        // Fig. 3: shift right by q (arithmetic = truncation toward -inf),
        // then clip to n bits.
        let shifted = self.acc >> self.fmt.q();
        let clipped = self.clip(shifted);
        (clipped as u64 as u32) & mask(self.fmt.n())
    }

    fn macs_done(&self) -> u64 {
        self.count
    }

    fn pipeline_depth(&self) -> u32 {
        3 // multiply → accumulate → shift/clip (Fig. 3 register boundaries)
    }

    fn accumulator_width(&self) -> u32 {
        Self::accumulator_width_for(self.fmt, self.capacity)
    }
}

fn mask(n: u32) -> u32 {
    if n == 32 {
        u32::MAX
    } else {
        (1 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(n: u32, q: u32) -> FixedFormat {
        FixedFormat::new(n, q).unwrap()
    }

    fn pat(f: FixedFormat, v: f64) -> u32 {
        (f.from_f64(v) as u64 as u32) & mask(f.n())
    }

    fn val(f: FixedFormat, bits: u32) -> f64 {
        let sh = 64 - f.n();
        let raw = (((bits as u64) << sh) as i64) >> sh;
        f.to_f64(raw)
    }

    #[test]
    fn accumulator_width_matches_eq3() {
        // Paper eq. (3): wa = ceil(log2 k) + 2 ceil(log2(max/min)) + 2.
        // For fixed point max/min = 2^(n-1) - 1, so 2(n-1) + 2 = 2n.
        assert_eq!(FixedEmac::accumulator_width_for(fmt(8, 4), 1), 16);
        assert_eq!(FixedEmac::accumulator_width_for(fmt(8, 4), 128), 23);
        assert_eq!(FixedEmac::accumulator_width_for(fmt(5, 2), 10), 14);
    }

    #[test]
    fn exact_dot_product() {
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 8);
        e.mac(pat(f, 1.5), pat(f, 2.0)); // 3.0
        e.mac(pat(f, 0.25), pat(f, 0.25)); // 0.0625 (needs 2q bits!)
        e.mac(pat(f, -1.0), pat(f, 1.0)); // -1.0
                                          // Exact sum = 2.0625; >>q truncates to 2.0625 -> raw 33 = 2.0625
        assert_eq!(val(f, e.result()), 2.0625);
        assert_eq!(e.macs_done(), 3);
    }

    #[test]
    fn truncation_not_rounding_at_output() {
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 4);
        // 0.3125² = 0.09765625: below q=4 resolution; exact acc = 25 (q8).
        e.mac(pat(f, 0.3125), pat(f, 0.3125));
        // >>4 truncates 25 -> 1 => 0.0625 (a rounding MAC would give 0.125).
        assert_eq!(val(f, e.result()), 0.0625);
        // Negative products truncate toward -infinity (arithmetic shift).
        e.reset();
        e.mac(pat(f, -0.3125), pat(f, 0.3125));
        assert_eq!(val(f, e.result()), -0.125);
    }

    #[test]
    fn bias_seeding() {
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 4);
        e.set_bias(pat(f, 1.5));
        e.mac(pat(f, 1.0), pat(f, 1.0));
        assert_eq!(val(f, e.result()), 2.5);
    }

    #[test]
    fn clipping_at_both_rails() {
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 16);
        for _ in 0..16 {
            e.mac(pat(f, 7.0), pat(f, 7.0));
        }
        assert_eq!(val(f, e.result()), f.max_value());
        e.reset();
        for _ in 0..16 {
            e.mac(pat(f, -7.0), pat(f, 7.0));
        }
        assert_eq!(val(f, e.result()), -8.0);
    }

    #[test]
    fn intermediate_no_rounding_vs_per_op_mac() {
        // Sum of 16 products each below one LSB: EMAC sees them, a rounding
        // per-op MAC (truncate each product) would produce zero.
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 16);
        for _ in 0..16 {
            e.mac(pat(f, 0.125), pat(f, 0.25)); // each 0.03125 = half LSB
        }
        assert_eq!(val(f, e.result()), 0.5);
        let mut per_op = 0i64;
        for _ in 0..16 {
            per_op = f.add_sat(per_op, f.mul_truncate(f.from_f64(0.125), f.from_f64(0.25)));
        }
        assert_eq!(f.to_f64(per_op), 0.0);
    }

    #[test]
    fn matches_i128_reference_randomized() {
        let f = fmt(8, 6);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let len = (next() % 32 + 1) as usize;
            let mut e = FixedEmac::new(f, len as u64);
            let mut reference: i128 = 0;
            for _ in 0..len {
                let w = (next() as u32) & 0xff;
                let a = (next() as u32) & 0xff;
                e.mac(w, a);
                let sx = |b: u32| (((b as u64) << 56) as i64 >> 56) as i128;
                reference += sx(w) * sx(a);
            }
            let expect =
                (reference >> f.q()).clamp(f.min_raw() as i128, f.max_raw() as i128) as i64;
            let got = e.result();
            let sh = 64 - f.n();
            let got_raw = (((got as u64) << sh) as i64) >> sh;
            assert_eq!(got_raw, expect);
        }
    }
}
