//! The fixed-point EMAC (paper Fig. 3).

use crate::ceil_log2;
use crate::kernel::{PRODUCT_TILE_BLOCK, TILE_COL_GROUP};
use crate::unit::Emac;
use crate::{MacKernel, UnsupportedFormat};
use dp_fixed::lut::{DecodeLut, ProductLut};
use dp_fixed::FixedFormat;

/// Exact fixed-point multiply-and-accumulate.
///
/// Inputs are `n`-bit Q(n−q).q words. Products are kept at full `2n`-bit
/// precision (with `2q` fraction bits) and accumulated in a `wa`-bit
/// register where, per paper eq. (3),
///
/// ```text
/// wa = ⌈log2 k⌉ + 2·⌈log2(max/min)⌉ + 2 = ⌈log2 k⌉ + 2n
/// ```
///
/// At readout the sum is shifted right by `q` bits and **truncated** to `n`
/// bits, clipping at the maximum magnitude — exactly the datapath of Fig. 3.
///
/// # Examples
///
/// ```
/// use dp_emac::{Emac, FixedEmac};
/// use dp_fixed::FixedFormat;
///
/// let fmt = FixedFormat::new(8, 4)?; // Q4.4
/// let mut emac = FixedEmac::new(fmt, 4);
/// let half = fmt.from_f64(0.5) as u32; // raw 8
/// emac.mac(half, half);
/// emac.mac(half, half);
/// assert_eq!(emac.result(), 8); // 0.25 + 0.25 = 0.5 = raw 8
/// # Ok::<(), dp_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FixedEmac {
    fmt: FixedFormat,
    capacity: u64,
    acc: i128,
    /// Sign-extension table for the format, when one exists (`n ≤ 12`).
    lut: Option<&'static DecodeLut>,
    /// Finished-product table for `n ≤ 8` formats: sign extension *and*
    /// multiply collapse into one `2^(2n)`-entry lookup
    /// ([`MacKernel::ProductTable`]).
    product: Option<&'static ProductLut>,
    /// Whether [`Emac::dot_slice`] may run the unrolled partial-sum kernel
    /// (`n ≤ 16`, [`MacKernel::BatchedFused`]).
    batched: bool,
    count: u64,
    /// Sign-extended weight-row scratch for the gather tile, retained
    /// across [`Emac::dot_tile`] calls so a tile sweep over a layer does
    /// not allocate per weight row. Never semantic: cleared and refilled
    /// on each gather-tile call.
    gather: Vec<i64>,
}

impl FixedEmac {
    /// Creates a unit for `fmt` sized for `capacity` accumulations. The
    /// accumulator is always a native `i128` (fixed point needs only
    /// `2n + ⌈log2 k⌉` bits, paper eq. 3); decode uses the `dp_fixed::lut`
    /// sign-extension table for formats up to 12 bits.
    ///
    /// # Panics
    ///
    /// Panics if the paper-eq.-(3) accumulator would exceed 127 bits
    /// (`2n + ⌈log2 k⌉ > 127`), which no paper-scale configuration hits.
    /// Use [`FixedEmac::try_new`] to validate without panicking.
    pub fn new(fmt: FixedFormat, capacity: u64) -> Self {
        Self::try_new(fmt, capacity).expect("fixed EMAC accumulator exceeds i128")
    }

    /// [`FixedEmac::new`] returning a typed error instead of panicking
    /// when the eq.-(3) register would exceed the unit's `i128` —
    /// admission-time validation for serving registries and other
    /// untrusted callers.
    ///
    /// # Errors
    ///
    /// [`UnsupportedFormat`] when `2n + ⌈log2 k⌉ > 127`.
    pub fn try_new(fmt: FixedFormat, capacity: u64) -> Result<Self, UnsupportedFormat> {
        let wa = Self::accumulator_width_for(fmt, capacity);
        if wa > 127 {
            return Err(UnsupportedFormat::new(format!(
                "{fmt}: eq.-(3) accumulator needs {wa} bits for k = {capacity}, \
                 exceeding the fixed EMAC's i128"
            )));
        }
        Ok(FixedEmac {
            fmt,
            capacity: capacity.max(1),
            acc: 0,
            lut: dp_fixed::lut::cached(fmt),
            product: dp_fixed::lut::product_cached(fmt),
            batched: fmt.n() <= 16,
            count: 0,
            gather: Vec::new(),
        })
    }

    /// Caps the slice-level kernel this unit may select — a bench/test
    /// knob for comparing kernels on one format; see
    /// [`crate::PositEmac::with_kernel_cap`] for the cap semantics. The
    /// fixed unit's accumulator is always a native `i128`, so caps only
    /// change which loop shape [`Emac::dot_slice`] runs.
    pub fn with_kernel_cap(mut self, cap: MacKernel) -> Self {
        if cap < MacKernel::ProductTable {
            self.product = None;
        }
        if cap < MacKernel::BatchedFused {
            self.batched = false;
        }
        self
    }

    /// The format of this unit.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// Paper eq. (3) accumulator width for `k` accumulations.
    pub fn accumulator_width_for(fmt: FixedFormat, k: u64) -> u32 {
        2 * fmt.n() + ceil_log2(k)
    }

    /// Sign-extends an `n`-bit pattern to `i64` (table-driven when the
    /// format has a `dp_fixed::lut` table).
    #[inline]
    fn sext(&self, bits: u32) -> i64 {
        match self.lut {
            Some(lut) => lut.decode(bits),
            None => {
                let n = self.fmt.n();
                let sh = 64 - n;
                (((bits as u64) << sh) as i64) >> sh
            }
        }
    }

    fn clip(&self, v: i128) -> i64 {
        v.clamp(self.fmt.min_raw() as i128, self.fmt.max_raw() as i128) as i64
    }

    /// The batched loop body, monomorphized per sign-extension source.
    #[inline(always)]
    fn dot_direct<F: Fn(u32) -> i64>(
        sext: F,
        acc: &mut i128,
        weights: &[u32],
        activations: &[u32],
    ) {
        let mut wc = weights.chunks_exact(4);
        let mut ac = activations.chunks_exact(4);
        for (w4, a4) in (&mut wc).zip(&mut ac) {
            let mut partial = 0i64;
            for j in 0..4 {
                partial += sext(w4[j]) * sext(a4[j]);
            }
            *acc += partial as i128;
        }
        let mut partial = 0i64;
        for (&w, &a) in wc.remainder().iter().zip(ac.remainder()) {
            partial += sext(w) * sext(a);
        }
        *acc += partial as i128;
    }

    /// One column of the gather tile ([`crate::TileKernel::GatherFused`]):
    /// the 4-chunk partial-sum loop over a pre-sign-extended weight row,
    /// returning the seeded accumulator value. Exact integer adds
    /// commute, so the result is bit-identical to the per-column row
    /// kernel.
    #[inline(always)]
    fn tile_direct_col<F: Fn(u32) -> i64>(sext: F, seed: i128, wsext: &[i64], col: &[u32]) -> i128 {
        let mut acc = seed;
        let mut wc = wsext.chunks_exact(4);
        let mut ac = col.chunks_exact(4);
        for (w4, a4) in (&mut wc).zip(&mut ac) {
            let mut partial = 0i64;
            for j in 0..4 {
                partial += w4[j] * sext(a4[j]);
            }
            acc += partial as i128;
        }
        let mut partial = 0i64;
        for (&w, &a) in wc.remainder().iter().zip(ac.remainder()) {
            partial += w * sext(a);
        }
        acc += partial as i128;
        acc
    }

    /// One ≤ [`TILE_COL_GROUP`]-column group of the cache-blocked product
    /// tile body ([`crate::TileKernel::BlockedProduct`]): K tiled in
    /// [`PRODUCT_TILE_BLOCK`]-weight blocks so a block's `2^n`-entry table
    /// rows stay hot across the group. A full group runs the 4-wide
    /// micro-kernel — four independent i64 partials (|entry| < 2^14, so
    /// even a 32-entry block partial is nowhere near overflow) share each
    /// weight's hot table row; partial groups stream in pairs plus a
    /// single-column tail — folding into per-column i128 registers held
    /// in a fixed stack array (no heap traffic).
    #[inline(always)]
    fn tile_product_group(
        table: &'static ProductLut,
        seed: i128,
        weights: &[u32],
        cols: &[&[u32]],
        accs: &mut [i128; TILE_COL_GROUP],
    ) {
        let g = cols.len();
        debug_assert!(0 < g && g <= TILE_COL_GROUP);
        accs.fill(seed);
        for (kb, wblock) in weights.chunks(PRODUCT_TILE_BLOCK).enumerate() {
            let base = kb * PRODUCT_TILE_BLOCK;
            let end = base + wblock.len();
            if g == TILE_COL_GROUP {
                let [mut p0, mut p1, mut p2, mut p3] = [0i64; 4];
                let (c0, c1) = (&cols[0][base..end], &cols[1][base..end]);
                let (c2, c3) = (&cols[2][base..end], &cols[3][base..end]);
                for ((((&w, &a0), &a1), &a2), &a3) in wblock.iter().zip(c0).zip(c1).zip(c2).zip(c3)
                {
                    let row = table.row(w);
                    p0 += Self::row_product(row, a0);
                    p1 += Self::row_product(row, a1);
                    p2 += Self::row_product(row, a2);
                    p3 += Self::row_product(row, a3);
                }
                accs[0] += p0 as i128;
                accs[1] += p1 as i128;
                accs[2] += p2 as i128;
                accs[3] += p3 as i128;
                continue;
            }
            let mut j = 0;
            while j + 2 <= g {
                let (mut p0, mut p1) = (0i64, 0i64);
                let (c0, c1) = (&cols[j][base..end], &cols[j + 1][base..end]);
                for ((&w, &a0), &a1) in wblock.iter().zip(c0).zip(c1) {
                    let row = table.row(w);
                    p0 += Self::row_product(row, a0);
                    p1 += Self::row_product(row, a1);
                }
                accs[j] += p0 as i128;
                accs[j + 1] += p1 as i128;
                j += 2;
            }
            if j < g {
                let mut partial = 0i64;
                for (&w, &a) in wblock.iter().zip(&cols[j][base..end]) {
                    partial += Self::row_product(table.row(w), a);
                }
                accs[j] += partial as i128;
            }
        }
    }

    /// One product fetched from a weight's contiguous table row
    /// ([`ProductLut::row`]): the tile resolves the row base once per
    /// weight and shares it across the group's columns, so each step is
    /// a masked index with no weight shift and no bounds check (the row
    /// length is a power of two).
    #[inline(always)]
    fn row_product(row: &[i32], a: u32) -> i64 {
        row[(a as usize) & (row.len() - 1)] as i64
    }
}

impl Emac for FixedEmac {
    fn reset(&mut self) {
        self.acc = 0;
        self.count = 0;
    }

    fn set_bias(&mut self, bias: u32) {
        self.reset();
        // The bias has q fraction bits; the accumulator carries 2q, so the
        // bias is pre-shifted left by q (Fig. 3 "Pad").
        self.acc = (self.sext(bias) as i128) << self.fmt.q();
    }

    fn mac(&mut self, weight: u32, activation: u32) {
        self.count += 1;
        debug_assert!(self.count <= self.capacity, "fixed EMAC over capacity");
        let w = self.sext(weight) as i128;
        let a = self.sext(activation) as i128;
        self.acc += w * a; // exact: 2n-bit product in a >= 2n + log2k register
    }

    fn dot_slice(&mut self, weights: &[u32], activations: &[u32]) {
        assert_eq!(
            weights.len(),
            activations.len(),
            "dot_slice: weight/activation length mismatch"
        );
        self.count += weights.len() as u64;
        debug_assert!(self.count <= self.capacity, "fixed EMAC over capacity");
        // Product-table kernel (n ≤ 8): finished signed products summed in
        // an i64 partial per 8-chunk (|entry| < 2^14, so a chunk partial
        // fits with room to spare), folded into the i128 register once.
        if let Some(table) = self.product {
            let mut wc = weights.chunks_exact(8);
            let mut ac = activations.chunks_exact(8);
            for (w8, a8) in (&mut wc).zip(&mut ac) {
                let mut partial = 0i64;
                for j in 0..8 {
                    partial += table.entry(w8[j], a8[j]);
                }
                self.acc += partial as i128;
            }
            let mut partial = 0i64;
            for (&w, &a) in wc.remainder().iter().zip(ac.remainder()) {
                partial += table.entry(w, a);
            }
            self.acc += partial as i128;
            return;
        }
        // Batched kernel (n ≤ 16): sign-extension products summed in an
        // i64 partial per 4-chunk (|product| < 2^30), one i128 fold per
        // chunk — monomorphized per decode source so the loop body is
        // plain word arithmetic the optimizer can unroll.
        if self.batched {
            let n = self.fmt.n();
            match self.lut {
                Some(lut) => {
                    Self::dot_direct(|b| lut.decode(b), &mut self.acc, weights, activations)
                }
                None => Self::dot_direct(
                    |b| {
                        let sh = 64 - n;
                        (((b as u64) << sh) as i64) >> sh
                    },
                    &mut self.acc,
                    weights,
                    activations,
                ),
            }
            return;
        }
        // Scalar kernel: wide formats loop the per-MAC i128 multiply.
        for (&w, &a) in weights.iter().zip(activations) {
            self.acc += self.sext(w) as i128 * self.sext(a) as i128;
        }
    }

    fn dot_tile(&mut self, bias: u32, weights: &[u32], cols: &[&[u32]], out: &mut [u32]) {
        assert_eq!(
            cols.len(),
            out.len(),
            "dot_tile: column/output length mismatch"
        );
        for col in cols {
            assert_eq!(
                col.len(),
                weights.len(),
                "dot_tile: column/weight length mismatch"
            );
        }
        let (k, b) = (weights.len(), cols.len());
        if b == 0 {
            return;
        }
        debug_assert!(k as u64 <= self.capacity, "fixed EMAC over capacity");
        if b >= 2 && (self.product.is_some() || self.batched) {
            self.set_bias(bias);
            let seed = self.acc;
            // Product band cache-blocks the table; the batched band
            // sign-extends the weight row once. Same gates as `kernel()`.
            if let Some(table) = self.product {
                let mut accs = [0i128; TILE_COL_GROUP];
                for (cg, og) in cols
                    .chunks(TILE_COL_GROUP)
                    .zip(out.chunks_mut(TILE_COL_GROUP))
                {
                    Self::tile_product_group(table, seed, weights, cg, &mut accs);
                    for (acc, slot) in accs.iter().zip(og.iter_mut()) {
                        self.acc = *acc;
                        *slot = self.result();
                    }
                }
            } else {
                let mut wsext = std::mem::take(&mut self.gather);
                wsext.clear();
                let n = self.fmt.n();
                let lut = self.lut;
                match lut {
                    Some(l) => wsext.extend(weights.iter().map(|&p| l.decode(p))),
                    None => {
                        let sh = 64 - n;
                        wsext.extend(weights.iter().map(|&p| (((p as u64) << sh) as i64) >> sh));
                    }
                }
                for (col, slot) in cols.iter().zip(out.iter_mut()) {
                    let acc = match lut {
                        Some(l) => Self::tile_direct_col(|p| l.decode(p), seed, &wsext, col),
                        None => {
                            let sh = 64 - n;
                            Self::tile_direct_col(
                                |p| (((p as u64) << sh) as i64) >> sh,
                                seed,
                                &wsext,
                                col,
                            )
                        }
                    };
                    self.acc = acc;
                    *slot = self.result();
                }
                self.gather = wsext;
            }
            self.count = (k * b) as u64;
            return;
        }
        // Per-column baseline: B == 1 keeps the row kernels, the scalar
        // band stays the differential reference at any width.
        for (col, slot) in cols.iter().zip(out.iter_mut()) {
            self.set_bias(bias);
            self.dot_slice(weights, col);
            *slot = self.result();
        }
        self.count = (k * b) as u64;
    }

    fn kernel(&self) -> MacKernel {
        if self.product.is_some() {
            MacKernel::ProductTable
        } else if self.batched {
            MacKernel::BatchedFused
        } else {
            MacKernel::Scalar
        }
    }

    fn result(&self) -> u32 {
        // Fig. 3: shift right by q (arithmetic = truncation toward -inf),
        // then clip to n bits.
        let shifted = self.acc >> self.fmt.q();
        let clipped = self.clip(shifted);
        (clipped as u64 as u32) & mask(self.fmt.n())
    }

    fn macs_done(&self) -> u64 {
        self.count
    }

    fn pipeline_depth(&self) -> u32 {
        3 // multiply → accumulate → shift/clip (Fig. 3 register boundaries)
    }

    fn accumulator_width(&self) -> u32 {
        Self::accumulator_width_for(self.fmt, self.capacity)
    }
}

fn mask(n: u32) -> u32 {
    if n == 32 {
        u32::MAX
    } else {
        (1 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(n: u32, q: u32) -> FixedFormat {
        FixedFormat::new(n, q).unwrap()
    }

    fn pat(f: FixedFormat, v: f64) -> u32 {
        (f.from_f64(v) as u64 as u32) & mask(f.n())
    }

    fn val(f: FixedFormat, bits: u32) -> f64 {
        let sh = 64 - f.n();
        let raw = (((bits as u64) << sh) as i64) >> sh;
        f.to_f64(raw)
    }

    #[test]
    fn accumulator_width_matches_eq3() {
        // Paper eq. (3): wa = ceil(log2 k) + 2 ceil(log2(max/min)) + 2.
        // For fixed point max/min = 2^(n-1) - 1, so 2(n-1) + 2 = 2n.
        assert_eq!(FixedEmac::accumulator_width_for(fmt(8, 4), 1), 16);
        assert_eq!(FixedEmac::accumulator_width_for(fmt(8, 4), 128), 23);
        assert_eq!(FixedEmac::accumulator_width_for(fmt(5, 2), 10), 14);
    }

    #[test]
    fn exact_dot_product() {
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 8);
        e.mac(pat(f, 1.5), pat(f, 2.0)); // 3.0
        e.mac(pat(f, 0.25), pat(f, 0.25)); // 0.0625 (needs 2q bits!)
        e.mac(pat(f, -1.0), pat(f, 1.0)); // -1.0
                                          // Exact sum = 2.0625; >>q truncates to 2.0625 -> raw 33 = 2.0625
        assert_eq!(val(f, e.result()), 2.0625);
        assert_eq!(e.macs_done(), 3);
    }

    #[test]
    fn truncation_not_rounding_at_output() {
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 4);
        // 0.3125² = 0.09765625: below q=4 resolution; exact acc = 25 (q8).
        e.mac(pat(f, 0.3125), pat(f, 0.3125));
        // >>4 truncates 25 -> 1 => 0.0625 (a rounding MAC would give 0.125).
        assert_eq!(val(f, e.result()), 0.0625);
        // Negative products truncate toward -infinity (arithmetic shift).
        e.reset();
        e.mac(pat(f, -0.3125), pat(f, 0.3125));
        assert_eq!(val(f, e.result()), -0.125);
    }

    #[test]
    fn bias_seeding() {
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 4);
        e.set_bias(pat(f, 1.5));
        e.mac(pat(f, 1.0), pat(f, 1.0));
        assert_eq!(val(f, e.result()), 2.5);
    }

    #[test]
    fn clipping_at_both_rails() {
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 16);
        for _ in 0..16 {
            e.mac(pat(f, 7.0), pat(f, 7.0));
        }
        assert_eq!(val(f, e.result()), f.max_value());
        e.reset();
        for _ in 0..16 {
            e.mac(pat(f, -7.0), pat(f, 7.0));
        }
        assert_eq!(val(f, e.result()), -8.0);
    }

    #[test]
    fn intermediate_no_rounding_vs_per_op_mac() {
        // Sum of 16 products each below one LSB: EMAC sees them, a rounding
        // per-op MAC (truncate each product) would produce zero.
        let f = fmt(8, 4);
        let mut e = FixedEmac::new(f, 16);
        for _ in 0..16 {
            e.mac(pat(f, 0.125), pat(f, 0.25)); // each 0.03125 = half LSB
        }
        assert_eq!(val(f, e.result()), 0.5);
        let mut per_op = 0i64;
        for _ in 0..16 {
            per_op = f.add_sat(per_op, f.mul_truncate(f.from_f64(0.125), f.from_f64(0.25)));
        }
        assert_eq!(f.to_f64(per_op), 0.0);
    }

    #[test]
    fn matches_i128_reference_randomized() {
        let f = fmt(8, 6);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let len = (next() % 32 + 1) as usize;
            let mut e = FixedEmac::new(f, len as u64);
            let mut reference: i128 = 0;
            for _ in 0..len {
                let w = (next() as u32) & 0xff;
                let a = (next() as u32) & 0xff;
                e.mac(w, a);
                let sx = |b: u32| (((b as u64) << 56) as i64 >> 56) as i128;
                reference += sx(w) * sx(a);
            }
            let expect =
                (reference >> f.q()).clamp(f.min_raw() as i128, f.max_raw() as i128) as i64;
            let got = e.result();
            let sh = 64 - f.n();
            let got_raw = (((got as u64) << sh) as i64) >> sh;
            assert_eq!(got_raw, expect);
        }
    }
}
