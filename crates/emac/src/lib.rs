//! # dp-emac — exact multiply-and-accumulate units
//!
//! Bit-accurate software models of the Deep Positron EMAC soft cores
//! (paper §III, Figs. 3–5, Algorithms 1–2). An EMAC computes
//!
//! ```text
//! out = round( bias + Σᵢ wᵢ · aᵢ )
//! ```
//!
//! with **no intermediate rounding**: every product is converted to a wide
//! fixed-point representation and accumulated in a register sized so that
//! the sum is exact (paper eqs. 3–4); rounding/truncation happens once, at
//! readout. This is what distinguishes an EMAC from an ordinary MAC and is
//! the paper's central hardware idea.
//!
//! Three units are provided, one per numerical format at matched bit width:
//!
//! * [`FixedEmac`] — paper Fig. 3: 2n-bit products, `wa`-bit integer
//!   accumulator, output shifted right by `q` and *truncated*, clipped.
//! * [`FloatEmac`] — paper Fig. 4: subnormal-aware decode, exact product,
//!   fixed-point conversion, single round-to-nearest-even, clipped at ±max
//!   (the EMAC never overflows to infinity).
//! * [`PositEmac`] — paper Fig. 5 + Algorithms 1–2: posit decode with a
//!   single leading-zero detector, biased scale-factor fixed-point
//!   conversion into a quire-style register, convergent rounding and
//!   re-encode.
//!
//! All units implement the [`Emac`] trait over raw `u32` bit patterns and
//! carry cycle metadata used by the `dp-hw` timing model and the
//! `deep-positron` streaming simulator.
//!
//! ```
//! use dp_emac::{Emac, PositEmac};
//! use dp_posit::PositFormat;
//!
//! let fmt = PositFormat::new(8, 0)?;
//! let mut emac = PositEmac::new(fmt, 16);
//! let half = dp_posit::convert::from_f64(fmt, 0.5);
//! let two = dp_posit::convert::from_f64(fmt, 2.0);
//! emac.mac(half, two); // 1.0
//! emac.mac(half, half); // 0.25
//! assert_eq!(dp_posit::convert::to_f64(fmt, emac.result()), 1.25);
//! # Ok::<(), dp_posit::FormatError>(())
//! ```

mod acc;
mod fixed_emac;
mod float_emac;
mod kernel;
mod posit_emac;
mod unit;

pub use acc::{Acc256, Accum, Window, MEDIUM_ACC_MAX_BITS, SMALL_ACC_MAX_BITS};
pub use fixed_emac::FixedEmac;
pub use float_emac::FloatEmac;
pub use kernel::{MacKernel, TileKernel, PRODUCT_TILE_BLOCK};
pub use posit_emac::PositEmac;
pub use unit::{Emac, EmacUnit};

/// ⌈log2 k⌉ for k ≥ 1 (accumulator growth bits, paper eqs. 3–4).
pub(crate) fn ceil_log2(k: u64) -> u32 {
    k.max(1).next_power_of_two().trailing_zeros()
}

/// A format (or format + capacity pairing) with no EMAC datapath — e.g. a
/// posit with `es > n − 3` (no significand bits) or a fixed-point
/// configuration whose eq.-(3) register would exceed the unit's `i128`.
///
/// Returned by the `try_new` constructors so untrusted callers (model
/// registries, serving admission) can validate up front instead of
/// panicking a worker thread mid-request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedFormat {
    reason: String,
}

impl UnsupportedFormat {
    pub(crate) fn new(reason: String) -> Self {
        UnsupportedFormat { reason }
    }

    /// Human-readable reason this format has no EMAC datapath.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl std::fmt::Display for UnsupportedFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported EMAC format: {}", self.reason)
    }
}

impl std::error::Error for UnsupportedFormat {}
