//! The [`Emac`] trait and the format-erased [`EmacUnit`].

use crate::{FixedEmac, FloatEmac, MacKernel, PositEmac, TileKernel};

/// Common interface of the three exact multiply-and-accumulate units.
///
/// Values are raw bit patterns of the unit's numerical format. A unit is
/// used in three phases, mirroring the hardware control flow (paper §III-E):
/// seed with a bias, stream `k` MAC operations (one per cycle), read the
/// rounded result.
pub trait Emac {
    /// Clears the accumulator to zero (and any NaR/NaN poison state).
    fn reset(&mut self);

    /// Resets the accumulator to the fixed-point image of `bias` — the
    /// paper's "the accumulator D flip-flop can be reset to the fixed-point
    /// representation of the bias" (§III-A).
    fn set_bias(&mut self, bias: u32);

    /// Accumulates the exact product `weight × activation`.
    fn mac(&mut self, weight: u32, activation: u32);

    /// Accumulates one whole dot-product row: exactly equivalent to
    /// calling [`Emac::mac`] once per `(weights[i], activations[i])` pair
    /// (bit-identical result, [`Emac::macs_done`] advanced by the slice
    /// length), but dispatched once so the unit can run its slice-level
    /// [`MacKernel`] — the batch engine's and serving path's inner loop.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length.
    fn dot_slice(&mut self, weights: &[u32], activations: &[u32]) {
        assert_eq!(
            weights.len(),
            activations.len(),
            "dot_slice: weight/activation length mismatch"
        );
        for (&w, &a) in weights.iter().zip(activations) {
            self.mac(w, a);
        }
    }

    /// The slice-level kernel this unit selected at construction (fixed
    /// per format band × accumulator window; see [`MacKernel`]).
    fn kernel(&self) -> MacKernel {
        MacKernel::Scalar
    }

    /// Weight-stationary tile evaluation: for each activation column
    /// `cols[j]`, `out[j]` receives exactly what
    /// `set_bias(bias); dot_slice(weights, cols[j]); result()` would
    /// produce — bit-identical per column, dispatched once so the unit can
    /// run its tile-level [`TileKernel`] (gather the weight row's fused
    /// operands once for every column, or cache-block the finished-product
    /// table across the batch). The batch engine's and the serving chunk
    /// path's inner loop.
    ///
    /// Bookkeeping contract: a non-empty tile leaves [`Emac::macs_done`]
    /// at exactly `weights.len() × cols.len()` (the per-column `set_bias`
    /// of the reference expansion resets the counter, so the tile counts
    /// the whole `K × B` sweep instead of only its last column), and the
    /// accumulator/poison state equals that after evaluating the **last**
    /// column. An empty `cols` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics when `cols` and `out` differ in length or any column's
    /// length differs from `weights.len()`.
    fn dot_tile(&mut self, bias: u32, weights: &[u32], cols: &[&[u32]], out: &mut [u32]);

    /// The tile-level kernel [`Emac::dot_tile`] runs for a tile of
    /// `batch` activation columns: `B ≤ 1` wraps the row kernel, the
    /// product band cache-blocks its table, the fused band gathers weight
    /// operands once, and the scalar band stays per-column (see
    /// [`TileKernel`]). Kernel caps step this down exactly as they step
    /// [`Emac::kernel`] down.
    fn tile_kernel(&self, batch: usize) -> TileKernel {
        if batch <= 1 {
            return TileKernel::PerColumn(self.kernel());
        }
        match self.kernel() {
            MacKernel::ProductTable => TileKernel::BlockedProduct,
            MacKernel::BatchedFused => TileKernel::GatherFused,
            MacKernel::Scalar => TileKernel::PerColumn(MacKernel::Scalar),
        }
    }

    /// Rounds the accumulated sum once and returns its bit pattern.
    fn result(&self) -> u32;

    /// Number of MACs since the last reset.
    fn macs_done(&self) -> u64;

    /// Pipeline depth in cycles (decode/multiply → accumulate → round
    /// stages), used by the streaming latency model.
    fn pipeline_depth(&self) -> u32;

    /// Accumulator register width in bits (paper eqs. 3–4 plus the
    /// fraction tail; see each unit's documentation).
    fn accumulator_width(&self) -> u32;
}

/// A format-erased EMAC, letting the DNN engine hold heterogeneous layers.
#[derive(Debug, Clone)]
pub enum EmacUnit {
    /// Fixed-point unit (paper Fig. 3).
    Fixed(FixedEmac),
    /// Floating-point unit (paper Fig. 4).
    Float(FloatEmac),
    /// Posit unit (paper Fig. 5).
    Posit(PositEmac),
}

macro_rules! dispatch {
    ($self:ident, $u:ident => $body:expr) => {
        match $self {
            EmacUnit::Fixed($u) => $body,
            EmacUnit::Float($u) => $body,
            EmacUnit::Posit($u) => $body,
        }
    };
}

impl Emac for EmacUnit {
    fn reset(&mut self) {
        dispatch!(self, u => u.reset())
    }
    fn set_bias(&mut self, bias: u32) {
        dispatch!(self, u => u.set_bias(bias))
    }
    fn mac(&mut self, weight: u32, activation: u32) {
        dispatch!(self, u => u.mac(weight, activation))
    }
    fn dot_slice(&mut self, weights: &[u32], activations: &[u32]) {
        dispatch!(self, u => u.dot_slice(weights, activations))
    }
    fn kernel(&self) -> MacKernel {
        dispatch!(self, u => u.kernel())
    }
    fn dot_tile(&mut self, bias: u32, weights: &[u32], cols: &[&[u32]], out: &mut [u32]) {
        dispatch!(self, u => u.dot_tile(bias, weights, cols, out))
    }
    fn tile_kernel(&self, batch: usize) -> TileKernel {
        dispatch!(self, u => u.tile_kernel(batch))
    }
    fn result(&self) -> u32 {
        dispatch!(self, u => u.result())
    }
    fn macs_done(&self) -> u64 {
        dispatch!(self, u => u.macs_done())
    }
    fn pipeline_depth(&self) -> u32 {
        dispatch!(self, u => u.pipeline_depth())
    }
    fn accumulator_width(&self) -> u32 {
        dispatch!(self, u => u.accumulator_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_fixed::FixedFormat;
    use dp_minifloat::FloatFormat;
    use dp_posit::PositFormat;

    #[test]
    fn dispatch_works_for_all_variants() {
        let mut units = [
            EmacUnit::Fixed(FixedEmac::new(FixedFormat::new(8, 4).unwrap(), 8)),
            EmacUnit::Float(FloatEmac::new(FloatFormat::new(4, 3).unwrap(), 8)),
            EmacUnit::Posit(PositEmac::new(PositFormat::new(8, 0).unwrap(), 8)),
        ];
        for u in &mut units {
            u.reset();
            assert_eq!(u.macs_done(), 0);
            assert!(u.pipeline_depth() >= 3);
            assert!(u.accumulator_width() > 16);
        }
    }
}
