//! The posit EMAC (paper Fig. 5, Algorithms 1–2).

use crate::ceil_log2;
use crate::unit::Emac;
use dp_posit::{decode, encode, Decoded, PositFormat, WideInt};

/// Exact posit multiply-and-accumulate.
///
/// The datapath mirrors paper Fig. 5 and Algorithm 2:
///
/// 1. **Decode** (Algorithm 1): sign, regime, exponent and fraction are
///    extracted; the two's complement + regime-check inversion lets a
///    single leading-zero detector handle both regime polarities
///    (`dp_posit::decode` implements exactly this flow).
/// 2. **Multiply**: the fixed-width significands (`F = n − 2 − es` bits,
///    hidden bit included) multiply exactly; an overflow bit renormalizes
///    and bumps the scale factor (Algorithm 2 lines 6–10).
/// 3. **Accumulate**: the signed product is shifted by the *biased* scale
///    factor `sf + 2^(es+1)(n−2)` so all shifts are non-negative
///    (Algorithm 2 line 12) and added into a quire-style register
///    (paper eq. 4 sizes the integer span; this model keeps the product
///    fraction tail `2F − 2` explicitly, which the paper's ratio-of-extremes
///    formulation folds away — both hold every product bit exactly).
/// 4. **Round & encode** (Algorithm 2 lines 15–43): sign/magnitude split,
///    leading-zero detection, window extraction and convergent
///    (round-to-nearest-even on the pattern) re-encode.
///
/// Differentially tested against [`dp_posit::Quire`] — an independent
/// implementation of the same semantics.
///
/// # Examples
///
/// ```
/// use dp_emac::{Emac, PositEmac};
/// use dp_posit::PositFormat;
///
/// let fmt = PositFormat::new(8, 2)?;
/// let mut emac = PositEmac::new(fmt, 4);
/// let maxpos = fmt.maxpos_bits();
/// let neg_maxpos = maxpos.wrapping_neg() & fmt.mask(); // two's complement
/// let minpos = fmt.minpos_bits();
/// let one = fmt.one_bits();
/// emac.mac(maxpos, one);
/// emac.mac(neg_maxpos, one);
/// emac.mac(minpos, one);
/// assert_eq!(emac.result(), minpos); // survives catastrophic cancellation
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PositEmac {
    fmt: PositFormat,
    capacity: u64,
    acc: WideInt,
    /// `F`: significand width including the hidden bit, `n − 2 − es`.
    fbits: u32,
    /// Algorithm 2's `bias`: `2^(es+1) × (n − 2)` = 2 × max_scale.
    sf_bias: i32,
    count: u64,
    nar: bool,
}

impl PositEmac {
    /// Creates a unit for `fmt` sized for `capacity` accumulations.
    ///
    /// # Panics
    ///
    /// Panics if `es > n − 3` (no significand bits: such formats have no
    /// EMAC datapath in the paper).
    pub fn new(fmt: PositFormat, capacity: u64) -> Self {
        assert!(
            fmt.es() <= fmt.n() - 3,
            "posit EMAC requires es <= n-3 (paper datapath)"
        );
        let capacity = capacity.max(1);
        let fbits = fmt.n() - 2 - fmt.es();
        let width = Self::accumulator_width_for(fmt, capacity) as usize + 64;
        PositEmac {
            fmt,
            capacity,
            acc: WideInt::zero(width),
            fbits,
            sf_bias: 2 * fmt.max_scale(),
            count: 0,
            nar: false,
        }
    }

    /// The format of this unit.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// Register width: paper eq. (4) plus the explicit product fraction
    /// tail (`2F − 2` bits) this layout keeps below minpos².
    pub fn accumulator_width_for(fmt: PositFormat, k: u64) -> u32 {
        let qsize_eq4 = (1u32 << (fmt.es() + 2)) * (fmt.n() - 2) + 2 + ceil_log2(k);
        let tail = 2 * (fmt.n() - 2 - fmt.es()) - 2;
        qsize_eq4 + tail
    }

    /// Paper eq. (4) exactly, for reference and reporting.
    pub fn paper_qsize(fmt: PositFormat, k: u64) -> u32 {
        (1u32 << (fmt.es() + 2)) * (fmt.n() - 2) + 2 + ceil_log2(k)
    }

    /// Extracts the fixed-width `F`-bit significand (hidden bit at MSB)
    /// from a decoded left-aligned significand.
    fn field(&self, sig: u64) -> u64 {
        sig >> (64 - self.fbits)
    }

    fn add_sig(&mut self, sign: bool, frac: u128, sf_lsb: i32) {
        // Position of the value's LSB inside the register: biased shift.
        debug_assert!(sf_lsb >= 0, "biased scale factor must be non-negative");
        self.acc.add_shifted_u128(frac, sf_lsb as usize, sign);
    }
}

impl Emac for PositEmac {
    fn reset(&mut self) {
        self.acc.clear();
        self.count = 0;
        self.nar = false;
    }

    fn set_bias(&mut self, bias: u32) {
        self.reset();
        match decode(self.fmt, bias) {
            Decoded::Zero => {}
            Decoded::NaR => self.nar = true,
            Decoded::Finite(u) => {
                // value = f × 2^(scale − F + 1) with f the F-bit significand;
                // register bit b weighs 2^(b − sf_bias − (2F−2)), so the
                // bias lands with its LSB at scale + F − 1 + sf_bias.
                let f = self.field(u.sig) as u128;
                let pos = u.scale + self.fbits as i32 - 1 + self.sf_bias;
                self.add_sig(u.sign, f, pos);
            }
        }
    }

    fn mac(&mut self, weight: u32, activation: u32) {
        self.count += 1;
        debug_assert!(self.count <= self.capacity, "posit EMAC over capacity");
        let (uw, ua) = match (decode(self.fmt, weight), decode(self.fmt, activation)) {
            (Decoded::NaR, _) | (_, Decoded::NaR) => {
                self.nar = true;
                return;
            }
            (Decoded::Zero, _) | (_, Decoded::Zero) => return,
            (Decoded::Finite(uw), Decoded::Finite(ua)) => (uw, ua),
        };
        // Algorithm 2, Multiplication: F-bit significand product. The
        // overflow renormalization of lines 8–10 (`normfrac = prod >> ovf`,
        // `sf += ovf`) is a no-op on the *value*; the hardware keeps the
        // full 2F-bit product (Fig. 5 labels the path 2(n−2−es)+1 wide), so
        // this model places the unshifted product at the unbumped scale —
        // bit-identical, and provably lossless.
        let fw = self.field(uw.sig);
        let fa = self.field(ua.sig);
        let prod = (fw as u128) * (fa as u128); // [2^(2F-2), 2^(2F))
        let sf_mult = uw.scale + ua.scale;
        // Accumulation (lines 11-14): biased shift, signed add.
        let sf_biased = sf_mult + self.sf_bias; // line 12
        self.add_sig(uw.sign ^ ua.sign, prod, sf_biased);
    }

    fn result(&self) -> u32 {
        if self.nar {
            return self.fmt.nar_bits();
        }
        if self.acc.is_zero() {
            return self.fmt.zero_bits();
        }
        // Fraction & SF extraction (lines 15-19) + convergent rounding.
        let sign = self.acc.is_negative();
        let mag = self.acc.magnitude();
        let msb = mag.msb_index().expect("nonzero accumulator");
        let (sig, sticky) = mag.extract_window(msb);
        // Register bit b has weight 2^(b − sf_bias − (2F−2)).
        let scale = msb as i32 - self.sf_bias - (2 * self.fbits as i32 - 2);
        encode(self.fmt, sign, scale, sig, sticky)
    }

    fn macs_done(&self) -> u64 {
        self.count
    }

    fn pipeline_depth(&self) -> u32 {
        5 // decode → multiply/shift → accumulate → extract → round/encode
    }

    fn accumulator_width(&self) -> u32 {
        Self::accumulator_width_for(self.fmt, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_posit::convert::{from_f64, to_f64};
    use dp_posit::Quire;

    fn fmt(n: u32, es: u32) -> PositFormat {
        PositFormat::new(n, es).unwrap()
    }

    #[test]
    fn widths_match_paper_eq4() {
        assert_eq!(PositEmac::paper_qsize(fmt(8, 0), 1), 26);
        assert_eq!(PositEmac::paper_qsize(fmt(8, 1), 128), 8 * 6 + 2 + 7);
        assert_eq!(PositEmac::paper_qsize(fmt(16, 1), 16), 8 * 14 + 2 + 4);
        assert!(PositEmac::accumulator_width_for(fmt(8, 0), 1) >= 26);
    }

    #[test]
    fn simple_dot_products() {
        let f = fmt(8, 0);
        let mut e = PositEmac::new(f, 8);
        e.mac(from_f64(f, 0.5), from_f64(f, 2.0));
        e.mac(from_f64(f, 0.5), from_f64(f, 0.5));
        assert_eq!(to_f64(f, e.result()), 1.25);
        assert_eq!(e.macs_done(), 2);
    }

    #[test]
    fn bias_seeding_matches_quire() {
        let f = fmt(8, 1);
        for bias_v in [-2.0, -0.25, 0.0, 0.125, 1.0, 3.5] {
            let bias = from_f64(f, bias_v);
            let mut e = PositEmac::new(f, 4);
            e.set_bias(bias);
            e.mac(from_f64(f, 1.5), from_f64(f, -0.5));
            let mut q = Quire::new(f, 4);
            q.add_posit(bias);
            q.add_product(from_f64(f, 1.5), from_f64(f, -0.5));
            assert_eq!(e.result(), q.to_posit(), "bias {bias_v}");
        }
    }

    #[test]
    fn nar_poisons() {
        let f = fmt(8, 0);
        let mut e = PositEmac::new(f, 4);
        e.mac(f.nar_bits(), f.one_bits());
        assert_eq!(e.result(), f.nar_bits());
        e.reset();
        assert_eq!(e.result(), 0);
    }

    #[test]
    fn single_product_equals_rounded_mul_exhaustive_p8() {
        for es in [0u32, 1, 2] {
            let f = fmt(8, es);
            for a in f.reals() {
                for b in [0u32, 1, 0x23, 0x40, 0x55, 0x7f, 0x81, 0xc0, 0xff] {
                    if b == f.nar_bits() {
                        continue;
                    }
                    let mut e = PositEmac::new(f, 1);
                    e.mac(a, b);
                    assert_eq!(
                        e.result(),
                        dp_posit::ops::mul(f, a, b),
                        "{f}: {a:#x} × {b:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_quire_on_random_dots() {
        // The quire is an independently implemented accumulator with the
        // same exactness contract; the Algorithm-2 datapath must agree.
        let mut state = 0xfeed_beef_dead_cafeu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (n, es) in [(5u32, 0u32), (6, 1), (7, 0), (8, 0), (8, 1), (8, 2), (12, 1), (16, 1)] {
            let f = fmt(n, es);
            for _ in 0..300 {
                let len = (next() % 24 + 1) as usize;
                let mut e = PositEmac::new(f, len as u64);
                let mut q = Quire::new(f, len as u64);
                for _ in 0..len {
                    let mut w = (next() as u32) & f.mask();
                    let mut a = (next() as u32) & f.mask();
                    if w == f.nar_bits() {
                        w = 0;
                    }
                    if a == f.nar_bits() {
                        a = 0;
                    }
                    e.mac(w, a);
                    q.add_product(w, a);
                }
                assert_eq!(e.result(), q.to_posit(), "{f}");
            }
        }
    }

    #[test]
    fn saturates_at_maxpos() {
        let f = fmt(8, 0);
        let mut e = PositEmac::new(f, 16);
        for _ in 0..16 {
            e.mac(f.maxpos_bits(), f.maxpos_bits());
        }
        assert_eq!(e.result(), f.maxpos_bits());
    }

    #[test]
    fn minpos_squared_rounds_to_minpos_not_zero() {
        let f = fmt(8, 2);
        let mut e = PositEmac::new(f, 1);
        e.mac(f.minpos_bits(), f.minpos_bits());
        assert_eq!(e.result(), f.minpos_bits());
    }

    #[test]
    #[should_panic(expected = "es <= n-3")]
    fn rejects_formats_without_significand() {
        PositEmac::new(fmt(8, 6), 4);
    }
}
