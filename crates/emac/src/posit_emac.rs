//! The posit EMAC (paper Fig. 5, Algorithms 1–2).

use crate::acc::Accum;
use crate::ceil_log2;
use crate::kernel::{I128Lanes, PRODUCT_TILE_BLOCK, TILE_COL_GROUP};
use crate::unit::Emac;
use crate::{MacKernel, UnsupportedFormat};
use dp_posit::lut::{DecodeLut, EmacEntry, EmacLut, ProductEntry, ProductLut, SplitLut};
use dp_posit::{decode, encode, Decoded, PositFormat};

/// Where fused EMAC operands come from on the fast path: the monolithic
/// per-pattern table (`n ≤ 12`) or the split regime-prefix scheme
/// (13–16 bits). Both produce identical [`EmacEntry`] words.
#[derive(Debug, Clone, Copy)]
enum FastOperands {
    Fused(&'static EmacLut),
    Split(&'static SplitLut),
}

impl FastOperands {
    #[inline]
    fn entry(self, bits: u32) -> EmacEntry {
        match self {
            FastOperands::Fused(t) => t.entry(bits),
            FastOperands::Split(s) => s.entry(bits),
        }
    }
}

/// Exact posit multiply-and-accumulate.
///
/// The datapath mirrors paper Fig. 5 and Algorithm 2:
///
/// 1. **Decode** (Algorithm 1): sign, regime, exponent and fraction are
///    extracted; the two's complement + regime-check inversion lets a
///    single leading-zero detector handle both regime polarities
///    (`dp_posit::decode` implements exactly this flow).
/// 2. **Multiply**: the fixed-width significands (`F = n − 2 − es` bits,
///    hidden bit included) multiply exactly; an overflow bit renormalizes
///    and bumps the scale factor (Algorithm 2 lines 6–10).
/// 3. **Accumulate**: the signed product is shifted by the *biased* scale
///    factor `sf + 2^(es+1)(n−2)` so all shifts are non-negative
///    (Algorithm 2 line 12) and added into a quire-style register
///    (paper eq. 4 sizes the integer span; this model keeps the product
///    fraction tail `2F − 2` explicitly, which the paper's ratio-of-extremes
///    formulation folds away — both hold every product bit exactly).
/// 4. **Round & encode** (Algorithm 2 lines 15–43): sign/magnitude split,
///    leading-zero detection, window extraction and convergent
///    (round-to-nearest-even on the pattern) re-encode.
///
/// Differentially tested against [`dp_posit::Quire`] — an independent
/// implementation of the same semantics.
///
/// ## Fast paths
///
/// Two table/width optimizations make the software model run at MACs/sec
/// rates resembling the hardware story rather than a bit-by-bit simulator;
/// both are bit-identical to the reference datapath (enforced by the
/// `fast_path_equivalence` tests and available directly via
/// [`PositEmac::new_reference`]):
///
/// * **Decode LUT / split table** — for formats up to 12 bits the
///   Algorithm-1 bit-field extraction is replaced by one lookup in the
///   process-wide [`dp_posit::lut`] table (the software analogue of
///   template-based posit multiplication); 13–16-bit formats use the
///   split scheme ([`dp_posit::lut::SplitLut`]): a 256-entry
///   regime-prefix table composed with direct fraction extraction.
/// * **Native accumulator** — whenever the eq.-(4) register fits 127 bits
///   (true for every 5–8-bit configuration in Table II) the quire-style
///   register is a native `i128` and each MAC is one shift and one add;
///   registers up to 255 bits (every 13–16-bit §IV format) use the
///   two-word [`crate::Acc256`]; only wider formats fall back to the
///   limb-based `WideInt`.
///
/// # Examples
///
/// ```
/// use dp_emac::{Emac, PositEmac};
/// use dp_posit::PositFormat;
///
/// let fmt = PositFormat::new(8, 2)?;
/// let mut emac = PositEmac::new(fmt, 4);
/// let maxpos = fmt.maxpos_bits();
/// let neg_maxpos = maxpos.wrapping_neg() & fmt.mask(); // two's complement
/// let minpos = fmt.minpos_bits();
/// let one = fmt.one_bits();
/// emac.mac(maxpos, one);
/// emac.mac(neg_maxpos, one);
/// emac.mac(minpos, one);
/// assert_eq!(emac.result(), minpos); // survives catastrophic cancellation
/// # Ok::<(), dp_posit::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PositEmac {
    fmt: PositFormat,
    capacity: u64,
    acc: Accum,
    /// Monolithic decode table for the format, when one exists (`n ≤ 12`).
    lut: Option<&'static DecodeLut>,
    /// Split regime-prefix table for 13–16-bit formats.
    split: Option<&'static SplitLut>,
    /// Fused decode + front-end operands driving the one-lookup MAC loop
    /// (`n ≤ 12`: per-pattern table; 13–16: split-table extraction).
    fast: Option<FastOperands>,
    /// Finished-product table for `n ≤ 8` formats: decode *and* multiply
    /// collapse into one `2^(2n)`-entry lookup ([`MacKernel::ProductTable`]
    /// when the accumulator window is an `i128`).
    product: Option<&'static ProductLut>,
    /// `F`: significand width including the hidden bit, `n − 2 − es`.
    fbits: u32,
    /// Algorithm 2's `bias`: `2^(es+1) × (n − 2)` = 2 × max_scale.
    sf_bias: i32,
    count: u64,
    nar: bool,
    /// Gathered weight-operand scratch for the fused tile, retained
    /// across [`Emac::dot_tile`] calls so a tile sweep over a layer does
    /// not allocate per weight row. Never semantic: cleared and refilled
    /// on each gather-tile call.
    gather: Vec<EmacEntry>,
}

impl PositEmac {
    /// Creates a unit for `fmt` sized for `capacity` accumulations, using
    /// the decode LUT / split-table and native-accumulator fast paths
    /// when the format qualifies.
    ///
    /// # Panics
    ///
    /// Panics if `es > n − 3` (no significand bits: such formats have no
    /// EMAC datapath in the paper). Use [`PositEmac::try_new`] to validate
    /// a format without panicking.
    pub fn new(fmt: PositFormat, capacity: u64) -> Self {
        Self::try_new(fmt, capacity).expect("posit EMAC requires es <= n-3 (paper datapath)")
    }

    /// [`PositEmac::new`] returning a typed error instead of panicking for
    /// formats without an EMAC datapath (`es > n − 3`) — admission-time
    /// validation for serving registries and other untrusted callers.
    ///
    /// # Errors
    ///
    /// [`UnsupportedFormat`] when `es > n − 3`.
    pub fn try_new(fmt: PositFormat, capacity: u64) -> Result<Self, UnsupportedFormat> {
        Self::check_format(fmt)?;
        let capacity = capacity.max(1);
        let (lut, split, fast) = if fmt.n() <= dp_posit::lut::MAX_LUT_WIDTH {
            let lut = dp_posit::lut::cached(fmt);
            let fast = dp_posit::lut::emac_cached(fmt).map(FastOperands::Fused);
            (lut, None, fast)
        } else {
            let split = dp_posit::lut::split_cached(fmt);
            (None, split, split.map(FastOperands::Split))
        };
        Ok(Self::build(
            fmt,
            capacity,
            lut,
            split,
            fast,
            dp_posit::lut::product_cached(fmt),
            Accum::new(Self::accumulator_width_for(fmt, capacity)),
        ))
    }

    /// Creates a unit on the pre-LUT reference datapath: Algorithm-1
    /// bit-field decode per MAC and the limb-based `WideInt` register,
    /// regardless of format width. Kept for differential testing and for
    /// benchmarking the fast paths against it.
    ///
    /// # Panics
    ///
    /// Panics if `es > n − 3`, as for [`PositEmac::new`].
    pub fn new_reference(fmt: PositFormat, capacity: u64) -> Self {
        Self::check_format(fmt).expect("posit EMAC requires es <= n-3 (paper datapath)");
        let capacity = capacity.max(1);
        Self::build(
            fmt,
            capacity,
            None,
            None,
            None,
            None,
            Accum::new_wide(Self::accumulator_width_for(fmt, capacity)),
        )
    }

    /// Caps the slice-level kernel this unit may select — a bench/test
    /// knob for comparing kernels on one format. [`MacKernel::ProductTable`]
    /// (the default cap) changes nothing; [`MacKernel::BatchedFused`] drops
    /// the finished-product table; [`MacKernel::Scalar`] additionally drops
    /// the fused operands, so [`Emac::dot_slice`] loops the scalar
    /// datapath. The decode tables and the accumulator window are
    /// untouched, so results stay bit-identical under any cap.
    pub fn with_kernel_cap(mut self, cap: MacKernel) -> Self {
        if cap < MacKernel::ProductTable {
            self.product = None;
        }
        if cap < MacKernel::BatchedFused {
            self.fast = None;
        }
        self
    }

    fn check_format(fmt: PositFormat) -> Result<(), UnsupportedFormat> {
        if fmt.es() > fmt.n() - 3 {
            return Err(UnsupportedFormat::new(format!(
                "{fmt}: posit EMAC requires es <= n-3 (no significand bits, \
                 no paper datapath)"
            )));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        fmt: PositFormat,
        capacity: u64,
        lut: Option<&'static DecodeLut>,
        split: Option<&'static SplitLut>,
        fast: Option<FastOperands>,
        product: Option<&'static ProductLut>,
        acc: Accum,
    ) -> Self {
        PositEmac {
            fmt,
            capacity,
            acc,
            lut,
            split,
            fast,
            product,
            fbits: fmt.n() - 2 - fmt.es(),
            sf_bias: 2 * fmt.max_scale(),
            count: 0,
            nar: false,
            gather: Vec::new(),
        }
    }

    /// True when this unit runs the fused table/split operands + native
    /// (`i128` or two-word 256-bit) accumulator fast path.
    pub fn is_fast_path(&self) -> bool {
        self.fast.is_some() && self.acc.is_native()
    }

    /// Decode via the monolithic table (`n ≤ 12`) or the split table
    /// (13–16 bits) when present, Algorithm 1 otherwise. Exactly one path
    /// exists per format, so LUT and fallback results never mix.
    #[inline]
    fn decode_bits(&self, bits: u32) -> Decoded {
        match (self.lut, self.split) {
            (Some(lut), _) => lut.decode(bits),
            (None, Some(split)) => split.decode(bits),
            (None, None) => decode(self.fmt, bits),
        }
    }

    /// The format of this unit.
    pub fn format(&self) -> PositFormat {
        self.fmt
    }

    /// Register width: paper eq. (4) plus the explicit product fraction
    /// tail (`2F − 2` bits) this layout keeps below minpos².
    pub fn accumulator_width_for(fmt: PositFormat, k: u64) -> u32 {
        let qsize_eq4 = (1u32 << (fmt.es() + 2)) * (fmt.n() - 2) + 2 + ceil_log2(k);
        let tail = 2 * (fmt.n() - 2 - fmt.es()) - 2;
        qsize_eq4 + tail
    }

    /// Paper eq. (4) exactly, for reference and reporting.
    pub fn paper_qsize(fmt: PositFormat, k: u64) -> u32 {
        (1u32 << (fmt.es() + 2)) * (fmt.n() - 2) + 2 + ceil_log2(k)
    }

    /// Extracts the fixed-width `F`-bit significand (hidden bit at MSB)
    /// from a decoded left-aligned significand.
    fn field(&self, sig: u64) -> u64 {
        sig >> (64 - self.fbits)
    }

    fn add_sig(&mut self, sign: bool, frac: u128, sf_lsb: i32) {
        // Position of the value's LSB inside the register: biased shift.
        debug_assert!(sf_lsb >= 0, "biased scale factor must be non-negative");
        self.acc.add_shifted_u128(frac, sf_lsb as usize, sign);
    }

    /// The [`Emac::mac`] datapath without the `macs_done` bookkeeping —
    /// shared by the scalar entry point and [`Emac::dot_slice`]'s scalar
    /// kernel (which advances the counter once per slice).
    #[inline]
    fn mac_uncounted(&mut self, weight: u32, activation: u32) {
        // Fused fast path: one operand word (from the per-pattern table at
        // n ≤ 12, or the split regime-prefix extraction at 13–16 bits)
        // carries the F-bit significand and the per-operand biased scale,
        // so the whole of Algorithm 1 + Algorithm 2's front half becomes
        // two loads/extractions, one small multiply and one shifted native
        // add. Bit-identical to the datapath below (fast_path_equivalence
        // tests).
        if let Some(t) = self.fast {
            let ew = t.entry(weight);
            let ea = t.entry(activation);
            if (ew.0 | ea.0) & EmacEntry::NAR_BIT != 0 {
                self.nar = true;
                return;
            }
            let prod = ew.field() * ea.field(); // < 2^(2F) <= 2^28
            if prod == 0 {
                return;
            }
            // biased_a + biased_b = sf_mult + 2·max_scale = Alg. 2 line 12.
            let shift = ew.biased_scale() + ea.biased_scale();
            let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
            match &mut self.acc {
                Accum::Small(acc) => {
                    debug_assert!(shift as u32 + (64 - prod.leading_zeros()) <= 127);
                    let signed = (prod as i128) << shift;
                    if negate {
                        *acc -= signed;
                    } else {
                        *acc += signed;
                    }
                }
                acc => acc.add_shifted_u128(prod as u128, shift as usize, negate),
            }
            return;
        }
        let (uw, ua) = match (self.decode_bits(weight), self.decode_bits(activation)) {
            (Decoded::NaR, _) | (_, Decoded::NaR) => {
                self.nar = true;
                return;
            }
            (Decoded::Zero, _) | (_, Decoded::Zero) => return,
            (Decoded::Finite(uw), Decoded::Finite(ua)) => (uw, ua),
        };
        // Algorithm 2, Multiplication: F-bit significand product. The
        // overflow renormalization of lines 8–10 (`normfrac = prod >> ovf`,
        // `sf += ovf`) is a no-op on the *value*; the hardware keeps the
        // full 2F-bit product (Fig. 5 labels the path 2(n−2−es)+1 wide), so
        // this model places the unshifted product at the unbumped scale —
        // bit-identical, and provably lossless.
        let fw = self.field(uw.sig);
        let fa = self.field(ua.sig);
        let prod = (fw as u128) * (fa as u128); // [2^(2F-2), 2^(2F))
        let sf_mult = uw.scale + ua.scale;
        // Accumulation (lines 11-14): biased shift, signed add.
        let sf_biased = sf_mult + self.sf_bias; // line 12
        self.add_sig(uw.sign ^ ua.sign, prod, sf_biased);
    }

    /// One finished-product table step of the product-table kernel.
    #[inline(always)]
    fn product_step(table: &ProductLut, lanes: &mut I128Lanes, nar: &mut u32, w: u32, a: u32) {
        let p = table.entry(w, a);
        *nar |= p.0 & ProductEntry::NAR_BIT;
        debug_assert!(
            p.shift() + (64 - p.product().leading_zeros()) <= 127,
            "product-table kernel requires the i128 window"
        );
        lanes.add((p.product() as u128) << p.shift(), p.negate());
    }

    /// One finished-product step against a weight's contiguous table row
    /// ([`ProductLut::row`]): the product tile resolves the row base once
    /// per weight and shares it across the group's columns, so each step
    /// is a masked index with no weight shift and no bounds check (the
    /// row length is a power of two).
    #[inline(always)]
    fn product_row_step(row: &[ProductEntry], lanes: &mut I128Lanes, nar: &mut u32, a: u32) {
        let p = row[(a as usize) & (row.len() - 1)];
        *nar |= p.0 & ProductEntry::NAR_BIT;
        debug_assert!(
            p.shift() + (64 - p.product().leading_zeros()) <= 127,
            "product-table kernel requires the i128 window"
        );
        lanes.add_select((p.product() as u128) << p.shift(), p.negate());
    }

    /// The batched fused-operand loop on the `i128` window, monomorphized
    /// per entry source (monolithic table vs split extraction) so the
    /// inner loop is a plain gather → multiply → shifted lane-add with no
    /// per-element enum dispatch. Returns whether NaR was seen.
    #[inline(always)]
    fn dot_fused_small<F: Fn(u32) -> EmacEntry>(
        entry: F,
        acc: &mut i128,
        weights: &[u32],
        activations: &[u32],
    ) -> bool {
        let mut lanes = I128Lanes::from_i128(*acc);
        let mut nar = 0u64;
        for (&w, &a) in weights.iter().zip(activations) {
            let ew = entry(w);
            let ea = entry(a);
            nar |= (ew.0 | ea.0) & EmacEntry::NAR_BIT;
            let prod = ew.field() * ea.field();
            let shift = (ew.biased_scale() + ea.biased_scale()) as u32;
            let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
            lanes.add((prod as u128) << shift, negate);
        }
        *acc = lanes.into_i128();
        nar != 0
    }

    /// The batched fused-operand loop on the medium/wide windows,
    /// monomorphized like [`PositEmac::dot_fused_small`] but accumulating
    /// through [`Accum::add_shifted_u128`]. Returns whether NaR was seen.
    #[inline(always)]
    fn dot_fused_wide<F: Fn(u32) -> EmacEntry>(
        entry: F,
        acc: &mut Accum,
        weights: &[u32],
        activations: &[u32],
    ) -> bool {
        let mut nar = false;
        for (&w, &a) in weights.iter().zip(activations) {
            let ew = entry(w);
            let ea = entry(a);
            if (ew.0 | ea.0) & EmacEntry::NAR_BIT != 0 {
                nar = true;
                continue;
            }
            let prod = ew.field() * ea.field();
            if prod == 0 {
                continue;
            }
            let shift = ew.biased_scale() + ea.biased_scale();
            let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
            acc.add_shifted_u128(prod as u128, shift as usize, negate);
        }
        nar
    }

    /// The cache-blocked product tile ([`crate::TileKernel::BlockedProduct`]):
    /// columns are processed in [`TILE_COL_GROUP`]-wide register groups,
    /// each group's lane accumulators living in fixed stack arrays (no
    /// heap traffic), with K tiled in [`PRODUCT_TILE_BLOCK`]-weight
    /// blocks so a block's `2^n`-entry table rows stay hot across the
    /// group. Exact integer adds commute, so the reordered accumulation
    /// is bit-identical to the per-column row kernel.
    fn tile_product(
        &mut self,
        table: &'static ProductLut,
        bias: u32,
        weights: &[u32],
        cols: &[&[u32]],
        out: &mut [u32],
    ) {
        self.set_bias(bias);
        let seed_nar = self.nar;
        let Accum::Small(seed) = &self.acc else {
            unreachable!("product tile requires the i128 window")
        };
        let seed = *seed;
        for (cg, og) in cols
            .chunks(TILE_COL_GROUP)
            .zip(out.chunks_mut(TILE_COL_GROUP))
        {
            self.tile_product_group(table, seed, seed_nar, weights, cg, og);
        }
    }

    /// One ≤ [`TILE_COL_GROUP`]-column group of the product tile. A full
    /// group runs the 4-wide micro-kernel — each weight's table row is
    /// fetched once and shared by four independent lane chains held in
    /// locals; partial groups stream in pairs plus a single-column tail.
    fn tile_product_group(
        &mut self,
        table: &'static ProductLut,
        seed: i128,
        seed_nar: bool,
        weights: &[u32],
        cols: &[&[u32]],
        out: &mut [u32],
    ) {
        let g = cols.len();
        debug_assert!(0 < g && g <= TILE_COL_GROUP && out.len() == g);
        let mut lanes = [I128Lanes::from_i128(seed); TILE_COL_GROUP];
        let mut nars = [0u32; TILE_COL_GROUP];
        for (kb, wblock) in weights.chunks(PRODUCT_TILE_BLOCK).enumerate() {
            let base = kb * PRODUCT_TILE_BLOCK;
            let end = base + wblock.len();
            if g == TILE_COL_GROUP {
                let (mut l0, mut l1, mut l2, mut l3) = (lanes[0], lanes[1], lanes[2], lanes[3]);
                let (mut n0, mut n1, mut n2, mut n3) = (nars[0], nars[1], nars[2], nars[3]);
                let (c0, c1) = (&cols[0][base..end], &cols[1][base..end]);
                let (c2, c3) = (&cols[2][base..end], &cols[3][base..end]);
                for ((((&w, &a0), &a1), &a2), &a3) in wblock.iter().zip(c0).zip(c1).zip(c2).zip(c3)
                {
                    let row = table.row(w);
                    Self::product_row_step(row, &mut l0, &mut n0, a0);
                    Self::product_row_step(row, &mut l1, &mut n1, a1);
                    Self::product_row_step(row, &mut l2, &mut n2, a2);
                    Self::product_row_step(row, &mut l3, &mut n3, a3);
                }
                lanes = [l0, l1, l2, l3];
                nars = [n0, n1, n2, n3];
                continue;
            }
            let mut j = 0;
            while j + 2 <= g {
                let (mut l0, mut l1) = (lanes[j], lanes[j + 1]);
                let (mut n0, mut n1) = (nars[j], nars[j + 1]);
                let (c0, c1) = (&cols[j][base..end], &cols[j + 1][base..end]);
                for ((&w, &a0), &a1) in wblock.iter().zip(c0).zip(c1) {
                    let row = table.row(w);
                    Self::product_row_step(row, &mut l0, &mut n0, a0);
                    Self::product_row_step(row, &mut l1, &mut n1, a1);
                }
                lanes[j] = l0;
                lanes[j + 1] = l1;
                nars[j] = n0;
                nars[j + 1] = n1;
                j += 2;
            }
            if j < g {
                let mut l0 = lanes[j];
                let mut n0 = nars[j];
                for (&w, &a) in wblock.iter().zip(&cols[j][base..end]) {
                    Self::product_row_step(table.row(w), &mut l0, &mut n0, a);
                }
                lanes[j] = l0;
                nars[j] = n0;
            }
        }
        for j in 0..g {
            self.acc = Accum::Small(lanes[j].into_i128());
            self.nar = seed_nar || nars[j] != 0;
            out[j] = self.result();
        }
    }

    /// One gathered-operand step of the fused tile on the `i128` window.
    #[inline(always)]
    fn fused_step(ew: EmacEntry, ea: EmacEntry, lanes: &mut I128Lanes, nar: &mut u64) {
        *nar |= (ew.0 | ea.0) & EmacEntry::NAR_BIT;
        let prod = ew.field() * ea.field();
        let shift = (ew.biased_scale() + ea.biased_scale()) as u32;
        let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
        lanes.add_select((prod as u128) << shift, negate);
    }

    /// The gather tile on the `i128` window
    /// ([`crate::TileKernel::GatherFused`]): the weight row's fused
    /// operands are gathered **once**, then the columns stream four at a
    /// time through the same branch-free inner loop as
    /// [`PositEmac::dot_fused_small`] — per-lane adds only, four
    /// independent lane chains per pass sharing each gathered weight
    /// entry, shaped for a future `std::simd` lowering with
    /// [`I128Lanes`] as the lane fallback.
    #[inline(always)]
    fn tile_fused_small<F: Fn(u32) -> EmacEntry>(
        &mut self,
        entry: F,
        seed: i128,
        seed_nar: bool,
        weights: &[u32],
        cols: &[&[u32]],
        out: &mut [u32],
    ) {
        let mut wents = std::mem::take(&mut self.gather);
        wents.clear();
        wents.extend(weights.iter().map(|&w| entry(w)));
        let mut j = 0;
        while j + 4 <= cols.len() {
            let [mut l0, mut l1, mut l2, mut l3] = [I128Lanes::from_i128(seed); 4];
            let [mut n0, mut n1, mut n2, mut n3] = [0u64; 4];
            for ((((&ew, &a0), &a1), &a2), &a3) in wents
                .iter()
                .zip(cols[j].iter())
                .zip(cols[j + 1].iter())
                .zip(cols[j + 2].iter())
                .zip(cols[j + 3].iter())
            {
                Self::fused_step(ew, entry(a0), &mut l0, &mut n0);
                Self::fused_step(ew, entry(a1), &mut l1, &mut n1);
                Self::fused_step(ew, entry(a2), &mut l2, &mut n2);
                Self::fused_step(ew, entry(a3), &mut l3, &mut n3);
            }
            for (i, (lane, nar)) in [l0, l1, l2, l3]
                .into_iter()
                .zip([n0, n1, n2, n3])
                .enumerate()
            {
                self.acc = Accum::Small(lane.into_i128());
                self.nar = seed_nar || nar != 0;
                out[j + i] = self.result();
            }
            j += 4;
        }
        while j + 2 <= cols.len() {
            let (mut lanes0, mut lanes1) = (I128Lanes::from_i128(seed), I128Lanes::from_i128(seed));
            let (mut nar0, mut nar1) = (0u64, 0u64);
            for ((&ew, &a0), &a1) in wents.iter().zip(cols[j].iter()).zip(cols[j + 1].iter()) {
                Self::fused_step(ew, entry(a0), &mut lanes0, &mut nar0);
                Self::fused_step(ew, entry(a1), &mut lanes1, &mut nar1);
            }
            self.acc = Accum::Small(lanes0.into_i128());
            self.nar = seed_nar || nar0 != 0;
            out[j] = self.result();
            self.acc = Accum::Small(lanes1.into_i128());
            self.nar = seed_nar || nar1 != 0;
            out[j + 1] = self.result();
            j += 2;
        }
        if j < cols.len() {
            let mut lanes = I128Lanes::from_i128(seed);
            let mut nar = 0u64;
            for (&ew, &a) in wents.iter().zip(cols[j].iter()) {
                Self::fused_step(ew, entry(a), &mut lanes, &mut nar);
            }
            self.acc = Accum::Small(lanes.into_i128());
            self.nar = seed_nar || nar != 0;
            out[j] = self.result();
        }
        self.gather = wents;
    }

    /// The gather tile on the medium/wide native windows: gathered weight
    /// operands, per-column [`Accum`] registers cloned from the bias seed.
    #[inline(always)]
    fn tile_fused_wide<F: Fn(u32) -> EmacEntry>(
        &mut self,
        entry: F,
        seed: Accum,
        seed_nar: bool,
        weights: &[u32],
        cols: &[&[u32]],
        out: &mut [u32],
    ) {
        let mut wents = std::mem::take(&mut self.gather);
        wents.clear();
        wents.extend(weights.iter().map(|&w| entry(w)));
        for (col, slot) in cols.iter().zip(out.iter_mut()) {
            let mut acc = seed.clone();
            let mut nar = false;
            for (&ew, &a) in wents.iter().zip(col.iter()) {
                let ea = entry(a);
                if (ew.0 | ea.0) & EmacEntry::NAR_BIT != 0 {
                    nar = true;
                    continue;
                }
                let prod = ew.field() * ea.field();
                if prod == 0 {
                    continue;
                }
                let shift = ew.biased_scale() + ea.biased_scale();
                let negate = (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0;
                acc.add_shifted_u128(prod as u128, shift as usize, negate);
            }
            self.acc = acc;
            self.nar = seed_nar || nar;
            *slot = self.result();
        }
        self.gather = wents;
    }
}

impl Emac for PositEmac {
    fn reset(&mut self) {
        self.acc.clear();
        self.count = 0;
        self.nar = false;
    }

    fn set_bias(&mut self, bias: u32) {
        self.reset();
        match self.decode_bits(bias) {
            Decoded::Zero => {}
            Decoded::NaR => self.nar = true,
            Decoded::Finite(u) => {
                // value = f × 2^(scale − F + 1) with f the F-bit significand;
                // register bit b weighs 2^(b − sf_bias − (2F−2)), so the
                // bias lands with its LSB at scale + F − 1 + sf_bias.
                let f = self.field(u.sig) as u128;
                let pos = u.scale + self.fbits as i32 - 1 + self.sf_bias;
                self.add_sig(u.sign, f, pos);
            }
        }
    }

    #[inline]
    fn mac(&mut self, weight: u32, activation: u32) {
        self.count += 1;
        debug_assert!(self.count <= self.capacity, "posit EMAC over capacity");
        self.mac_uncounted(weight, activation);
    }

    fn dot_slice(&mut self, weights: &[u32], activations: &[u32]) {
        assert_eq!(
            weights.len(),
            activations.len(),
            "dot_slice: weight/activation length mismatch"
        );
        self.count += weights.len() as u64;
        debug_assert!(self.count <= self.capacity, "posit EMAC over capacity");
        // Product-table kernel (n ≤ 8, i128 window): decode and multiply
        // are both table-finished; the loop is load → shifted lane add.
        if let (Some(table), Accum::Small(acc)) = (self.product, &mut self.acc) {
            let mut lanes = I128Lanes::from_i128(*acc);
            let mut nar = 0u32;
            for (&w, &a) in weights.iter().zip(activations) {
                Self::product_step(table, &mut lanes, &mut nar, w, a);
            }
            *acc = lanes.into_i128();
            if nar != 0 {
                self.nar = true;
            }
            return;
        }
        // Batched fused-operand kernel: gathered entries through a loop
        // monomorphized per entry source, into hi/lo u64 lanes (i128
        // window) or the native 256-bit register (medium window). Gated on
        // a native window exactly like `kernel()`, so a fast-table unit
        // whose register spilled to WideInt runs (and reports) Scalar.
        if let (Some(t), true) = (self.fast, self.acc.is_native()) {
            let nar_seen = match (&mut self.acc, t) {
                (Accum::Small(acc), FastOperands::Fused(tab)) => {
                    Self::dot_fused_small(|b| tab.entry(b), acc, weights, activations)
                }
                (Accum::Small(acc), FastOperands::Split(s)) => {
                    Self::dot_fused_small(|b| s.entry(b), acc, weights, activations)
                }
                (acc, FastOperands::Fused(tab)) => {
                    Self::dot_fused_wide(|b| tab.entry(b), acc, weights, activations)
                }
                (acc, FastOperands::Split(s)) => {
                    Self::dot_fused_wide(|b| s.entry(b), acc, weights, activations)
                }
            };
            if nar_seen {
                self.nar = true;
            }
            return;
        }
        // Scalar kernel: the reference band loops the per-MAC datapath.
        for (&w, &a) in weights.iter().zip(activations) {
            self.mac_uncounted(w, a);
        }
    }

    fn dot_tile(&mut self, bias: u32, weights: &[u32], cols: &[&[u32]], out: &mut [u32]) {
        assert_eq!(
            cols.len(),
            out.len(),
            "dot_tile: column/output length mismatch"
        );
        for col in cols {
            assert_eq!(
                col.len(),
                weights.len(),
                "dot_tile: column/weight length mismatch"
            );
        }
        let (k, b) = (weights.len(), cols.len());
        if b == 0 {
            return;
        }
        debug_assert!(k as u64 <= self.capacity, "posit EMAC over capacity");
        if b >= 2 {
            // Product band: cache-blocked tile. Same gate as `kernel()`.
            if let (Some(table), true) = (self.product, self.acc.is_small()) {
                self.tile_product(table, bias, weights, cols, out);
                self.count = (k * b) as u64;
                return;
            }
            // Fused band: gather the weight operands once, stream columns.
            if let (Some(t), true) = (self.fast, self.acc.is_native()) {
                self.set_bias(bias);
                let seed_nar = self.nar;
                match (self.acc.clone(), t) {
                    (Accum::Small(seed), FastOperands::Fused(tab)) => {
                        self.tile_fused_small(|p| tab.entry(p), seed, seed_nar, weights, cols, out)
                    }
                    (Accum::Small(seed), FastOperands::Split(s)) => {
                        self.tile_fused_small(|p| s.entry(p), seed, seed_nar, weights, cols, out)
                    }
                    (seed, FastOperands::Fused(tab)) => {
                        self.tile_fused_wide(|p| tab.entry(p), seed, seed_nar, weights, cols, out)
                    }
                    (seed, FastOperands::Split(s)) => {
                        self.tile_fused_wide(|p| s.entry(p), seed, seed_nar, weights, cols, out)
                    }
                }
                self.count = (k * b) as u64;
                return;
            }
        }
        // Per-column baseline: B == 1 keeps the row kernels, the scalar
        // band stays the differential reference at any width.
        for (col, slot) in cols.iter().zip(out.iter_mut()) {
            self.set_bias(bias);
            self.dot_slice(weights, col);
            *slot = self.result();
        }
        self.count = (k * b) as u64;
    }

    fn kernel(&self) -> MacKernel {
        if self.product.is_some() && self.acc.is_small() {
            MacKernel::ProductTable
        } else if self.fast.is_some() && self.acc.is_native() {
            MacKernel::BatchedFused
        } else {
            MacKernel::Scalar
        }
    }

    fn result(&self) -> u32 {
        if self.nar {
            return self.fmt.nar_bits();
        }
        // Fraction & SF extraction (lines 15-19) + convergent rounding.
        let w = match self.acc.window() {
            None => return self.fmt.zero_bits(),
            Some(w) => w,
        };
        // Register bit b has weight 2^(b − sf_bias − (2F−2)).
        let scale = w.msb as i32 - self.sf_bias - (2 * self.fbits as i32 - 2);
        encode(self.fmt, w.sign, scale, w.sig, w.sticky)
    }

    fn macs_done(&self) -> u64 {
        self.count
    }

    fn pipeline_depth(&self) -> u32 {
        5 // decode → multiply/shift → accumulate → extract → round/encode
    }

    fn accumulator_width(&self) -> u32 {
        Self::accumulator_width_for(self.fmt, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_posit::convert::{from_f64, to_f64};
    use dp_posit::Quire;

    fn fmt(n: u32, es: u32) -> PositFormat {
        PositFormat::new(n, es).unwrap()
    }

    #[test]
    fn widths_match_paper_eq4() {
        assert_eq!(PositEmac::paper_qsize(fmt(8, 0), 1), 26);
        assert_eq!(PositEmac::paper_qsize(fmt(8, 1), 128), 8 * 6 + 2 + 7);
        assert_eq!(PositEmac::paper_qsize(fmt(16, 1), 16), 8 * 14 + 2 + 4);
        assert!(PositEmac::accumulator_width_for(fmt(8, 0), 1) >= 26);
    }

    #[test]
    fn simple_dot_products() {
        let f = fmt(8, 0);
        let mut e = PositEmac::new(f, 8);
        e.mac(from_f64(f, 0.5), from_f64(f, 2.0));
        e.mac(from_f64(f, 0.5), from_f64(f, 0.5));
        assert_eq!(to_f64(f, e.result()), 1.25);
        assert_eq!(e.macs_done(), 2);
    }

    #[test]
    fn bias_seeding_matches_quire() {
        let f = fmt(8, 1);
        for bias_v in [-2.0, -0.25, 0.0, 0.125, 1.0, 3.5] {
            let bias = from_f64(f, bias_v);
            let mut e = PositEmac::new(f, 4);
            e.set_bias(bias);
            e.mac(from_f64(f, 1.5), from_f64(f, -0.5));
            let mut q = Quire::new(f, 4);
            q.add_posit(bias);
            q.add_product(from_f64(f, 1.5), from_f64(f, -0.5));
            assert_eq!(e.result(), q.to_posit(), "bias {bias_v}");
        }
    }

    #[test]
    fn nar_poisons() {
        let f = fmt(8, 0);
        let mut e = PositEmac::new(f, 4);
        e.mac(f.nar_bits(), f.one_bits());
        assert_eq!(e.result(), f.nar_bits());
        e.reset();
        assert_eq!(e.result(), 0);
    }

    #[test]
    fn single_product_equals_rounded_mul_exhaustive_p8() {
        for es in [0u32, 1, 2] {
            let f = fmt(8, es);
            for a in f.reals() {
                for b in [0u32, 1, 0x23, 0x40, 0x55, 0x7f, 0x81, 0xc0, 0xff] {
                    if b == f.nar_bits() {
                        continue;
                    }
                    let mut e = PositEmac::new(f, 1);
                    e.mac(a, b);
                    assert_eq!(
                        e.result(),
                        dp_posit::ops::mul(f, a, b),
                        "{f}: {a:#x} × {b:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_quire_on_random_dots() {
        // The quire is an independently implemented accumulator with the
        // same exactness contract; the Algorithm-2 datapath must agree.
        let mut state = 0xfeed_beef_dead_cafeu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (n, es) in [
            (5u32, 0u32),
            (6, 1),
            (7, 0),
            (8, 0),
            (8, 1),
            (8, 2),
            (12, 1),
            (16, 1),
        ] {
            let f = fmt(n, es);
            for _ in 0..300 {
                let len = (next() % 24 + 1) as usize;
                let mut e = PositEmac::new(f, len as u64);
                let mut q = Quire::new(f, len as u64);
                for _ in 0..len {
                    let mut w = (next() as u32) & f.mask();
                    let mut a = (next() as u32) & f.mask();
                    if w == f.nar_bits() {
                        w = 0;
                    }
                    if a == f.nar_bits() {
                        a = 0;
                    }
                    e.mac(w, a);
                    q.add_product(w, a);
                }
                assert_eq!(e.result(), q.to_posit(), "{f}");
            }
        }
    }

    #[test]
    fn saturates_at_maxpos() {
        let f = fmt(8, 0);
        let mut e = PositEmac::new(f, 16);
        for _ in 0..16 {
            e.mac(f.maxpos_bits(), f.maxpos_bits());
        }
        assert_eq!(e.result(), f.maxpos_bits());
    }

    #[test]
    fn minpos_squared_rounds_to_minpos_not_zero() {
        let f = fmt(8, 2);
        let mut e = PositEmac::new(f, 1);
        e.mac(f.minpos_bits(), f.minpos_bits());
        assert_eq!(e.result(), f.minpos_bits());
    }

    #[test]
    #[should_panic(expected = "es <= n-3")]
    fn rejects_formats_without_significand() {
        PositEmac::new(fmt(8, 6), 4);
    }
}
