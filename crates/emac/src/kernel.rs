//! Slice-level MAC kernels: the unit of work moves from one MAC to one
//! dot-product row.
//!
//! The paper's performance story is the exact EMAC dot product
//! (eqs. 3–4); a software model that dispatches one [`crate::Emac::mac`]
//! call per weight pays per-element dispatch, per-element table lookup and
//! a per-element wide accumulate. [`crate::Emac::dot_slice`] instead hands
//! the unit a whole `(weights, activations)` row, and each unit selects a
//! [`MacKernel`] **once per (format band, accumulator window)** at
//! construction:
//!
//! * [`MacKernel::ProductTable`] — formats of ≤ 8 bits with an `i128`
//!   accumulator window. A `2^(2n)`-entry table of *finished* products
//!   (sign, shift, product fused into one word — see
//!   `dp_posit::lut::ProductLut` and its minifloat/fixed counterparts)
//!   removes the multiply entirely: the inner loop is one table load and
//!   one shifted add.
//! * [`MacKernel::BatchedFused`] — the ≤ 16-bit fused-operand paths
//!   (monolithic LUT, split regime-prefix table, computed bit-field
//!   operands) with a native accumulator. The loop gathers fused entries
//!   through a body monomorphized per entry source, with the `i128`
//!   accumulate running as wrapping two-word (hi/lo `u64` lane) adds
//!   ([`I128Lanes`]) — no variant dispatch inside the loop.
//! * [`MacKernel::Scalar`] — everything else (wide formats on the
//!   [`dp_posit::WideInt`] register, and every `new_reference()` unit):
//!   the slice loops the scalar `mac()` datapath, which stays the
//!   differential baseline.
//!
//! Every kernel accumulates the same exact integer terms in the same
//! order, so kernel choice can never change a result bit — pinned by the
//! `kernel_equivalence` test suite.
//!
//! ## Tile level
//!
//! One rung above the row kernels sits the weight-stationary tile:
//! [`crate::Emac::dot_tile`] evaluates one weight row against `B`
//! activation columns in a single dispatch, and the unit selects a
//! [`TileKernel`] per call from the same (band, accumulator-window) table
//! extended by a batch-width axis:
//!
//! * `B ≤ 1` — a tile is just a row; the per-column body wraps today's
//!   row kernel ([`TileKernel::PerColumn`]).
//! * [`TileKernel::GatherFused`] — the `batched_fused` band at `B ≥ 2`
//!   gathers the weight row's fused operands **once** and streams every
//!   column through them, halving table traffic versus per-sample rows.
//!   The inner loop is branch-shaped for `std::simd` (independent
//!   per-lane adds, no cross-iteration dependencies) with the manual
//!   two-lane [`I128Lanes`] accumulate as the portable fallback.
//! * [`TileKernel::BlockedProduct`] — the `product_table` band at `B ≥ 2`
//!   cache-blocks the `2^(2n)`-entry finished-product table: the K
//!   dimension is tiled in [`PRODUCT_TILE_BLOCK`]-weight blocks so a
//!   block's table rows (one contiguous `2^n`-entry line per weight) stay
//!   hot across all `B` columns instead of the full table being re-walked
//!   once per sample.
//!
//! Tile choice follows the row kernel (`with_kernel_cap` therefore steps
//! tile selection down too), and every tile body is pinned bit-identical
//! to the per-column `set_bias → dot_slice → result` reference by the
//! `tile_equivalence` test suite.

use std::fmt;

/// Which slice-level MAC kernel a unit selected. Selection happens once
/// at construction, per (format band, accumulator window): ≤ 8-bit
/// formats on an `i128` window take [`MacKernel::ProductTable`], ≤ 16-bit
/// fused-operand paths on a native window take
/// [`MacKernel::BatchedFused`], and everything else (wide formats,
/// `new_reference()` units) loops the scalar datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MacKernel {
    /// Scalar `mac()` loop: bit-field or table decode per element, any
    /// accumulator. The reference band (> 16 bits, and every
    /// `new_reference()` unit).
    Scalar,
    /// Batched fused-operand kernel: gathered table/computed entries,
    /// unrolled, hi/lo-lane native accumulate. The ≤ 16-bit band.
    BatchedFused,
    /// Finished-product table kernel: one `2^(2n)`-entry lookup replaces
    /// decode *and* multiply. The ≤ 8-bit band on an `i128` window.
    ProductTable,
}

impl MacKernel {
    /// Stable snake_case name, used in bench row names and reports.
    pub fn name(self) -> &'static str {
        match self {
            MacKernel::ProductTable => "product_table",
            MacKernel::BatchedFused => "batched_fused",
            MacKernel::Scalar => "scalar",
        }
    }
}

impl fmt::Display for MacKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Weights per K-block of the cache-blocked product tile. Each weight owns
/// one contiguous `2^n`-entry table row (1 KiB at n = 8, 4-byte entries),
/// so a block keeps ≤ 32 KiB of table lines — comfortably inside L1 —
/// resident while all `B` columns stream through it.
pub const PRODUCT_TILE_BLOCK: usize = 32;

/// Columns per register group of the tile kernels. A full group runs as
/// a 4-wide micro-kernel: four independent lane chains held in locals
/// (4 × `u128` ≈ 8 GPRs — fits the x86-64 register file where 8 chains
/// would spill), each weight's table row or gathered operand fetched
/// **once** and shared by all four columns. Partial groups fall back to
/// a two-chain pair loop plus a single-column tail; wider batches are
/// processed group by group, and per-group accumulator state lives in
/// fixed-size stack arrays (no heap traffic on the tile path).
pub(crate) const TILE_COL_GROUP: usize = 4;

/// Which tile-level kernel [`crate::Emac::dot_tile`] runs for a given
/// batch width — the row-kernel table of [`MacKernel`] extended by a
/// batch-width axis. `B ≤ 1` always wraps the row kernel; at `B ≥ 2` the
/// fused band gathers weight operands once ([`TileKernel::GatherFused`]),
/// the product band cache-blocks its table
/// ([`TileKernel::BlockedProduct`]), and the scalar band stays the
/// per-column differential baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileKernel {
    /// Per-column loop over the wrapped row kernel: `B ≤ 1` tiles and the
    /// scalar band.
    PerColumn(MacKernel),
    /// Weight-stationary gather tile: the row's fused operands (LUT /
    /// split / computed / sign-extension) are gathered once, then every
    /// column streams through a monomorphized branch-free inner loop.
    GatherFused,
    /// Cache-blocked finished-product tile: K is tiled in
    /// [`PRODUCT_TILE_BLOCK`]-weight blocks kept hot across all columns.
    BlockedProduct,
}

impl TileKernel {
    /// Stable snake_case name, used in bench row names and reports. Tile
    /// fast paths end in `_tile`; per-column wrappers name the row kernel
    /// they loop.
    pub fn name(self) -> &'static str {
        match self {
            TileKernel::BlockedProduct => "product_tile",
            TileKernel::GatherFused => "fused_tile",
            TileKernel::PerColumn(MacKernel::ProductTable) => "per_column_product_table",
            TileKernel::PerColumn(MacKernel::BatchedFused) => "per_column_batched_fused",
            TileKernel::PerColumn(MacKernel::Scalar) => "per_column_scalar",
        }
    }

    /// The row kernel this tile body accumulates through.
    pub fn row_kernel(self) -> MacKernel {
        match self {
            TileKernel::BlockedProduct => MacKernel::ProductTable,
            TileKernel::GatherFused => MacKernel::BatchedFused,
            TileKernel::PerColumn(k) => k,
        }
    }
}

impl fmt::Display for TileKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The batched kernels' two-word accumulation register, kept out of the
/// `Accum` enum so the unrolled loop body is plain word arithmetic with
/// no variant dispatch.
///
/// The register is held as a `u128` on purpose: unsigned two-word
/// arithmetic lowers to one `add`/`adc` (or `sub`/`sbb`) pair on the
/// hi/lo `u64` lanes, and letting the backend schedule that carry beat a
/// hand-split `(lo: u64, hi: u64)` + `overflowing_add` formulation *and*
/// a branch-free mask-negate (`(x ^ mask) − mask`) variant when measured
/// on the dot-128 bench — see the PR 5 ROADMAP note. Arithmetic is
/// two's-complement mod 2^128, identical to native `i128` wrapping
/// arithmetic, and eq.-(3)/(4) sizing guarantees the true sum fits 127
/// bits, so no information is ever lost.
#[derive(Debug, Clone, Copy)]
pub(crate) struct I128Lanes {
    acc: u128,
}

impl I128Lanes {
    /// Splits an `i128` register into lanes.
    #[inline]
    pub(crate) fn from_i128(acc: i128) -> Self {
        I128Lanes { acc: acc as u128 }
    }

    /// `self += magnitude` (or `-=` when `negate`): one wrapping two-word
    /// add (or subtract), matching `i128` wrapping semantics exactly. The
    /// conditional compiles to a select/branch over the add/sub pair —
    /// measured faster here than materializing a 128-bit sign mask.
    #[inline]
    pub(crate) fn add(&mut self, magnitude: u128, negate: bool) {
        if negate {
            self.acc = self.acc.wrapping_sub(magnitude);
        } else {
            self.acc = self.acc.wrapping_add(magnitude);
        }
    }

    /// Branchless form of [`I128Lanes::add`]: folds `negate` into a
    /// two's-complement mask (`(m ^ mask) − mask`) instead of a branch.
    /// The tile kernels run four lane chains abreast, so one
    /// unpredictable sign branch per chain per weight flushes the work
    /// of all four — the masked form wins there, while the single-chain
    /// row kernels keep the branchy form (measured faster with one
    /// chain, where the predictor can learn a repeated row's signs).
    #[inline]
    pub(crate) fn add_select(&mut self, magnitude: u128, negate: bool) {
        let mask = (negate as u128).wrapping_neg();
        self.acc = self.acc.wrapping_add((magnitude ^ mask).wrapping_sub(mask));
    }

    /// Rejoins the lanes into the `i128` register.
    #[inline]
    pub(crate) fn into_i128(self) -> i128 {
        self.acc as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(MacKernel::ProductTable.name(), "product_table");
        assert_eq!(MacKernel::BatchedFused.to_string(), "batched_fused");
        assert_eq!(MacKernel::Scalar.name(), "scalar");
        // Ordering encodes "fanciness": caps compare against it.
        assert!(MacKernel::Scalar < MacKernel::BatchedFused);
        assert!(MacKernel::BatchedFused < MacKernel::ProductTable);
    }

    #[test]
    fn tile_kernel_names_and_row_kernels_are_stable() {
        assert_eq!(TileKernel::BlockedProduct.name(), "product_tile");
        assert_eq!(TileKernel::GatherFused.to_string(), "fused_tile");
        assert_eq!(
            TileKernel::PerColumn(MacKernel::Scalar).name(),
            "per_column_scalar"
        );
        assert_eq!(
            TileKernel::PerColumn(MacKernel::BatchedFused).name(),
            "per_column_batched_fused"
        );
        assert_eq!(
            TileKernel::PerColumn(MacKernel::ProductTable).name(),
            "per_column_product_table"
        );
        assert_eq!(
            TileKernel::BlockedProduct.row_kernel(),
            MacKernel::ProductTable
        );
        assert_eq!(
            TileKernel::GatherFused.row_kernel(),
            MacKernel::BatchedFused
        );
        assert_eq!(
            TileKernel::PerColumn(MacKernel::Scalar).row_kernel(),
            MacKernel::Scalar
        );
        // The block keeps at most 32 KiB of 8-bit table rows resident.
        const { assert!(PRODUCT_TILE_BLOCK * (1 << 8) * 4 <= 32 * 1024) }
    }

    #[test]
    fn lanes_match_native_i128() {
        let mut s = 0x5eed_cafe_f00d_beefu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..2000 {
            let mut acc: i128 = ((next() as i64) as i128) << (next() % 50);
            let mut lanes = I128Lanes::from_i128(acc);
            for _ in 0..(next() % 8 + 1) {
                let mag = ((next() % (1 << 16)) as u128) << (next() % 110);
                let neg = next() % 2 == 0;
                acc = if neg {
                    acc.wrapping_sub(mag as i128)
                } else {
                    acc.wrapping_add(mag as i128)
                };
                lanes.add(mag, neg);
            }
            assert_eq!(lanes.into_i128(), acc);
        }
    }
}
