//! # dp-minifloat — parameterizable small IEEE-style floats
//!
//! The Deep Positron paper compares its posit EMAC against a floating-point
//! EMAC whose inputs are `(1, we, wf)` minifloats: one sign bit, `we`
//! exponent bits and `wf` fraction bits, with IEEE-754 semantics (subnormals,
//! round to nearest even, ±Inf/NaN in the top exponent). This crate is a
//! from-scratch, exactly rounded software model of those formats:
//!
//! * [`FloatFormat`] — runtime format descriptor (`2 ≤ we ≤ 8`,
//!   `0 ≤ wf ≤ 23`), the characteristics from paper §III-C
//!   (`bias`, `expmax`, `max`, `min`), decode/encode, and correctly rounded
//!   [`ops`] built on exact integer arithmetic.
//! * [`MiniFloat`] — const-generic typed wrapper with operator overloads
//!   (`F8E4M3`, `F8E5M2`, half precision [`F16`], [`BF16`], ...).
//! * Saturating quantization ([`convert::from_f64_saturating`]) used by the
//!   DNN path, mirroring the paper's EMAC clipping behaviour ("clipped at
//!   the maximum magnitude").
//!
//! ```
//! use dp_minifloat::{FloatFormat, F8E4M3};
//!
//! let fmt = FloatFormat::new(4, 3)?;            // 8-bit float, we=4
//! assert_eq!(fmt.max_value(), 240.0);           // 2^(emax-bias)·(2-2^-wf)
//! let a = F8E4M3::from_f64(1.5);
//! let b = F8E4M3::from_f64(2.5);
//! assert_eq!((a * b).to_f64(), 3.75);
//! # Ok::<(), dp_minifloat::FormatError>(())
//! ```

pub mod codec;
pub mod convert;
pub mod format;
pub mod lut;
pub mod ops;
pub mod value;

pub use codec::{decode, encode, encode_inf, encode_nan, encode_zero, FloatClass, FloatUnpacked};
pub use format::{FloatFormat, FormatError};
pub use value::{
    MiniFloat, BF16, F16, F6E2M3, F6E3M2, F7E3M3, F7E4M2, F8E2M5, F8E3M4, F8E4M3, F8E5M2,
};
