//! Table-driven minifloat decode.
//!
//! Mirror of `dp_posit::lut` for the float EMAC: the subnormal-aware
//! decode of paper Fig. 4 (classification, hidden-bit insertion, exponent
//! adjustment) is precomputed for all `2^n` patterns of a format when
//! `n ≤` [`MAX_LUT_WIDTH`], turning the EMAC's per-MAC decode into a
//! single table lookup. [`cached`] memoizes one table per format for the
//! life of the process.

use crate::codec::{decode, FloatClass};
use crate::format::FloatFormat;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Widest format that gets a decode table (`2^12` entries ≤ 64 KiB).
pub const MAX_LUT_WIDTH: u32 = 12;

/// A precomputed decode table for one minifloat format; entries are
/// exactly what [`decode`] returns, verified exhaustively in tests.
///
/// # Examples
///
/// ```
/// use dp_minifloat::{decode, lut, FloatFormat};
/// let fmt = FloatFormat::new(4, 3)?;
/// let lut = lut::cached(fmt).expect("8-bit formats are table-driven");
/// for bits in fmt.patterns() {
///     assert_eq!(lut.decode(bits), decode(fmt, bits));
/// }
/// # Ok::<(), dp_minifloat::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodeLut {
    fmt: FloatFormat,
    entries: Vec<FloatClass>,
}

impl DecodeLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_LUT_WIDTH`].
    pub fn build(fmt: FloatFormat) -> Option<Self> {
        if fmt.n() > MAX_LUT_WIDTH {
            return None;
        }
        let entries = fmt.patterns().map(|bits| decode(fmt, bits)).collect();
        Some(DecodeLut { fmt, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> FloatFormat {
        self.fmt
    }

    /// Table-driven decode of the low `n` bits of `bits`; bit-identical to
    /// [`decode`]`(self.format(), bits)`.
    #[inline]
    pub fn decode(&self, bits: u32) -> FloatClass {
        self.entries[(bits & self.fmt.mask()) as usize]
    }

    /// Number of table entries (`2^n`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: every format has at least `2^4` patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide decode table for `fmt`, built on first use, or `None`
/// for formats wider than [`MAX_LUT_WIDTH`]. Tables are leaked
/// intentionally (small, finite format space) so hot loops can hold a
/// `'static` borrow.
pub fn cached(fmt: FloatFormat) -> Option<&'static DecodeLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static DecodeLut>>> = OnceLock::new();
    if fmt.n() > MAX_LUT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("minifloat LUT cache poisoned");
    Some(
        map.entry((fmt.we(), fmt.wf()))
            .or_insert_with(|| Box::leak(Box::new(DecodeLut::build(fmt).expect("width checked")))),
    )
}

/// One fused EMAC operand: decode, subnormal normalization and scale
/// biasing folded into a packed word. Layout:
///
/// ```text
/// bits  0..16   integer significand with the top (hidden/normalized) bit
///               set — `wf + 1` bits; 0 for zero
/// bits 16..32   scale − min_normal_scale + wf (non-negative by
///               construction, subnormals included)
/// bit  32       sign
/// bit  33       Inf/NaN flag (poisons the EMAC)
/// ```
///
/// Two operands multiply as `field·field`, an integer whose trailing zeros
/// absorb the subnormal underflow, positioned at
/// `bias_a + bias_b + tz − 2·wf` — identical, bit for bit, to the Fig. 4
/// significand datapath (see `dp_emac::FloatEmac`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmacEntry(pub u64);

impl EmacEntry {
    /// Bit flagging Inf/NaN.
    pub const SPECIAL_BIT: u64 = 1 << 33;
    /// Bit carrying the sign.
    pub const SIGN_BIT: u64 = 1 << 32;

    /// The `wf + 1`-bit integer significand, 0 for zero/Inf/NaN.
    #[inline]
    pub fn field(self) -> u64 {
        self.0 & 0xffff
    }

    /// `scale − min_normal_scale + wf` (always non-negative).
    #[inline]
    pub fn biased_scale(self) -> u64 {
        (self.0 >> 16) & 0xffff
    }

    /// Sign of the operand.
    #[inline]
    pub fn sign(self) -> bool {
        self.0 & Self::SIGN_BIT != 0
    }

    /// Whether this pattern is Inf or NaN.
    #[inline]
    pub fn is_special(self) -> bool {
        self.0 & Self::SPECIAL_BIT != 0
    }
}

/// A fused decode + EMAC-front-end table: one [`EmacEntry`] per pattern.
#[derive(Debug, Clone)]
pub struct EmacLut {
    fmt: FloatFormat,
    entries: Vec<EmacEntry>,
}

impl EmacLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_LUT_WIDTH`].
    pub fn build(fmt: FloatFormat) -> Option<Self> {
        if fmt.n() > MAX_LUT_WIDTH {
            return None;
        }
        let wf = fmt.wf();
        let entries = fmt
            .patterns()
            .map(|bits| match decode(fmt, bits) {
                FloatClass::Zero(sign) => EmacEntry(if sign { EmacEntry::SIGN_BIT } else { 0 }),
                FloatClass::Inf(_) | FloatClass::NaN => EmacEntry(EmacEntry::SPECIAL_BIT),
                FloatClass::Finite(u) => {
                    let field = u.sig >> (63 - wf);
                    let biased = (u.scale - fmt.min_normal_scale() + wf as i32) as u64;
                    debug_assert!(field < (1 << 16) && biased < (1 << 16));
                    EmacEntry(field | (biased << 16) | if u.sign { EmacEntry::SIGN_BIT } else { 0 })
                }
            })
            .collect();
        Some(EmacLut { fmt, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> FloatFormat {
        self.fmt
    }

    /// The fused operand for the low `n` bits of `bits`.
    #[inline]
    pub fn entry(&self, bits: u32) -> EmacEntry {
        self.entries[(bits & self.fmt.mask()) as usize]
    }
}

/// The process-wide fused EMAC table for `fmt` (leaked like [`cached`]'s
/// tables), or `None` for formats wider than [`MAX_LUT_WIDTH`].
pub fn emac_cached(fmt: FloatFormat) -> Option<&'static EmacLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static EmacLut>>> = OnceLock::new();
    if fmt.n() > MAX_LUT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("minifloat EMAC LUT cache poisoned");
    Some(
        map.entry((fmt.we(), fmt.wf()))
            .or_insert_with(|| Box::leak(Box::new(EmacLut::build(fmt).expect("width checked")))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_only_up_to_max_width() {
        assert!(DecodeLut::build(FloatFormat::new(4, 3).unwrap()).is_some());
        assert!(DecodeLut::build(FloatFormat::new(5, 6).unwrap()).is_some());
        assert!(DecodeLut::build(FloatFormat::new(5, 10).unwrap()).is_none());
        assert!(cached(FloatFormat::new(8, 23).unwrap()).is_none());
        assert!(EmacLut::build(FloatFormat::new(5, 10).unwrap()).is_none());
        assert!(emac_cached(FloatFormat::new(5, 10).unwrap()).is_none());
    }

    #[test]
    fn table_matches_decode_exhaustively() {
        for (we, wf) in [(2u32, 2u32), (3, 2), (4, 3), (5, 2), (5, 6), (4, 7)] {
            let fmt = FloatFormat::new(we, wf).unwrap();
            let lut = DecodeLut::build(fmt).unwrap();
            assert_eq!(lut.len() as u64, fmt.pattern_count());
            for bits in fmt.patterns() {
                assert_eq!(lut.decode(bits), decode(fmt, bits), "{fmt} {bits:#x}");
            }
        }
    }

    #[test]
    fn cached_returns_the_same_table() {
        let fmt = FloatFormat::new(3, 2).unwrap();
        let a = cached(fmt).unwrap();
        let b = cached(fmt).unwrap();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.format(), fmt);
        assert!(std::ptr::eq(
            emac_cached(fmt).unwrap(),
            emac_cached(fmt).unwrap()
        ));
    }

    #[test]
    fn emac_entries_reconstruct_decode_exhaustively() {
        for (we, wf) in [(2u32, 2u32), (3, 2), (4, 3), (5, 2), (4, 7)] {
            let fmt = FloatFormat::new(we, wf).unwrap();
            let lut = EmacLut::build(fmt).unwrap();
            for bits in fmt.patterns() {
                let e = lut.entry(bits);
                match decode(fmt, bits) {
                    FloatClass::Zero(sign) => {
                        assert_eq!(e.field(), 0, "{fmt} {bits:#x}");
                        assert_eq!(e.sign(), sign);
                        assert!(!e.is_special());
                    }
                    FloatClass::Inf(_) | FloatClass::NaN => {
                        assert!(e.is_special(), "{fmt} {bits:#x}")
                    }
                    FloatClass::Finite(u) => {
                        assert!(!e.is_special());
                        assert_eq!(e.sign(), u.sign, "{fmt} {bits:#x}");
                        assert_eq!(e.field(), u.sig >> (63 - wf), "{fmt} {bits:#x}");
                        assert!(e.field() >> wf >= 1, "normalized top bit set");
                        assert_eq!(
                            e.biased_scale() as i32,
                            u.scale - fmt.min_normal_scale() + wf as i32,
                            "{fmt} {bits:#x}"
                        );
                    }
                }
            }
        }
    }
}
