//! Table-driven minifloat decode.
//!
//! Mirror of `dp_posit::lut` for the float EMAC: the subnormal-aware
//! decode of paper Fig. 4 (classification, hidden-bit insertion, exponent
//! adjustment) is precomputed for all `2^n` patterns of a format when
//! `n ≤` [`MAX_LUT_WIDTH`], turning the EMAC's per-MAC decode into a
//! single table lookup. [`cached`] memoizes one table per format for the
//! life of the process.
//!
//! Formats of 13 to [`MAX_DIRECT_WIDTH`] bits (the paper's §IV comparison
//! sweep runs up to 16) skip tables entirely: unlike the posit regime, a
//! minifloat's fields sit at fixed offsets, so the fused EMAC operand can
//! be **computed directly** from the bit fields ([`EmacDirect`]) — the
//! counterpart of `dp_posit::lut::SplitLut`'s "direct fraction
//! extraction", with only the subnormal normalization needing a
//! leading-zero count. Only wider formats fall back to the classifying
//! [`decode`] + `WideInt` reference datapath.

use crate::codec::{decode, FloatClass};
use crate::format::FloatFormat;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Widest format that gets a decode table (`2^12` entries ≤ 64 KiB).
pub const MAX_LUT_WIDTH: u32 = 12;

/// Widest format whose fused EMAC operands are computed directly from the
/// bit fields ([`EmacDirect`]); covers the §IV sweep's 16-bit formats.
pub const MAX_DIRECT_WIDTH: u32 = 16;

/// A precomputed decode table for one minifloat format; entries are
/// exactly what [`decode`] returns, verified exhaustively in tests.
///
/// # Examples
///
/// ```
/// use dp_minifloat::{decode, lut, FloatFormat};
/// let fmt = FloatFormat::new(4, 3)?;
/// let lut = lut::cached(fmt).expect("8-bit formats are table-driven");
/// for bits in fmt.patterns() {
///     assert_eq!(lut.decode(bits), decode(fmt, bits));
/// }
/// # Ok::<(), dp_minifloat::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodeLut {
    fmt: FloatFormat,
    entries: Vec<FloatClass>,
}

impl DecodeLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_LUT_WIDTH`].
    pub fn build(fmt: FloatFormat) -> Option<Self> {
        if fmt.n() > MAX_LUT_WIDTH {
            return None;
        }
        let entries = fmt.patterns().map(|bits| decode(fmt, bits)).collect();
        Some(DecodeLut { fmt, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> FloatFormat {
        self.fmt
    }

    /// Table-driven decode of the low `n` bits of `bits`; bit-identical to
    /// [`decode`]`(self.format(), bits)`.
    #[inline]
    pub fn decode(&self, bits: u32) -> FloatClass {
        self.entries[(bits & self.fmt.mask()) as usize]
    }

    /// Number of table entries (`2^n`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: every format has at least `2^4` patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide decode table for `fmt`, built on first use, or `None`
/// for formats wider than [`MAX_LUT_WIDTH`]. Tables are leaked
/// intentionally (small, finite format space) so hot loops can hold a
/// `'static` borrow.
pub fn cached(fmt: FloatFormat) -> Option<&'static DecodeLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static DecodeLut>>> = OnceLock::new();
    if fmt.n() > MAX_LUT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("minifloat LUT cache poisoned");
    Some(
        map.entry((fmt.we(), fmt.wf()))
            .or_insert_with(|| Box::leak(Box::new(DecodeLut::build(fmt).expect("width checked")))),
    )
}

/// One fused EMAC operand: decode, subnormal normalization and scale
/// biasing folded into a packed word. Layout:
///
/// ```text
/// bits  0..16   integer significand with the top (hidden/normalized) bit
///               set — `wf + 1` bits; 0 for zero
/// bits 16..32   scale − min_normal_scale + wf (non-negative by
///               construction, subnormals included)
/// bit  32       sign
/// bit  33       Inf/NaN flag (poisons the EMAC)
/// ```
///
/// Two operands multiply as `field·field`, an integer whose trailing zeros
/// absorb the subnormal underflow, positioned at
/// `bias_a + bias_b + tz − 2·wf` — identical, bit for bit, to the Fig. 4
/// significand datapath (see `dp_emac::FloatEmac`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmacEntry(pub u64);

impl EmacEntry {
    /// Bit flagging Inf/NaN.
    pub const SPECIAL_BIT: u64 = 1 << 33;
    /// Bit carrying the sign.
    pub const SIGN_BIT: u64 = 1 << 32;

    /// The `wf + 1`-bit integer significand, 0 for zero/Inf/NaN.
    #[inline]
    pub fn field(self) -> u64 {
        self.0 & 0xffff
    }

    /// `scale − min_normal_scale + wf` (always non-negative).
    #[inline]
    pub fn biased_scale(self) -> u64 {
        (self.0 >> 16) & 0xffff
    }

    /// Sign of the operand.
    #[inline]
    pub fn sign(self) -> bool {
        self.0 & Self::SIGN_BIT != 0
    }

    /// Whether this pattern is Inf or NaN.
    #[inline]
    pub fn is_special(self) -> bool {
        self.0 & Self::SPECIAL_BIT != 0
    }
}

/// A fused decode + EMAC-front-end table: one [`EmacEntry`] per pattern.
#[derive(Debug, Clone)]
pub struct EmacLut {
    fmt: FloatFormat,
    entries: Vec<EmacEntry>,
}

impl EmacLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_LUT_WIDTH`].
    pub fn build(fmt: FloatFormat) -> Option<Self> {
        if fmt.n() > MAX_LUT_WIDTH {
            return None;
        }
        let wf = fmt.wf();
        let entries = fmt
            .patterns()
            .map(|bits| match decode(fmt, bits) {
                FloatClass::Zero(sign) => EmacEntry(if sign { EmacEntry::SIGN_BIT } else { 0 }),
                FloatClass::Inf(_) | FloatClass::NaN => EmacEntry(EmacEntry::SPECIAL_BIT),
                FloatClass::Finite(u) => {
                    let field = u.sig >> (63 - wf);
                    let biased = (u.scale - fmt.min_normal_scale() + wf as i32) as u64;
                    debug_assert!(field < (1 << 16) && biased < (1 << 16));
                    EmacEntry(field | (biased << 16) | if u.sign { EmacEntry::SIGN_BIT } else { 0 })
                }
            })
            .collect();
        Some(EmacLut { fmt, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> FloatFormat {
        self.fmt
    }

    /// The fused operand for the low `n` bits of `bits`.
    #[inline]
    pub fn entry(&self, bits: u32) -> EmacEntry {
        self.entries[(bits & self.fmt.mask()) as usize]
    }
}

/// Widest format that gets a **finished-product table** ([`ProductLut`]):
/// `2^(2n)` entries keep the 8-bit table at 256 KiB.
pub const MAX_PRODUCT_WIDTH: u32 = 8;

/// One finished product for a `(weight, activation)` pair: the Fig. 4
/// decode, significand multiply, underflow normalization and scale
/// biasing all fused into a single word. Layout:
///
/// ```text
/// bits  0..16   normalized product (field(w)·field(a)) >> tz, odd or 0
/// bits 16..26   register shift: biased(w) + biased(a) + tz − 2·wf
///               (non-negative: products are multiples of min_subnormal²)
/// bit  26       sign of the product
/// bit  27       Inf/NaN (either operand): product is 0, poisons the unit
/// ```
///
/// Zero products (a zero operand, no special) are the all-clear word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductEntry(pub u32);

impl ProductEntry {
    /// Bit flagging Inf/NaN (either operand).
    pub const SPECIAL_BIT: u32 = 1 << 27;
    /// Bit carrying the product sign.
    pub const SIGN_BIT: u32 = 1 << 26;

    /// The normalized significand product, 0 for zero/special pairs.
    #[inline]
    pub fn product(self) -> u64 {
        (self.0 & 0xffff) as u64
    }

    /// The non-negative register shift of the product LSB.
    #[inline]
    pub fn shift(self) -> u32 {
        (self.0 >> 16) & 0x3ff
    }

    /// Sign of the product.
    #[inline]
    pub fn negate(self) -> bool {
        self.0 & Self::SIGN_BIT != 0
    }

    /// Whether either operand was Inf or NaN.
    #[inline]
    pub fn is_special(self) -> bool {
        self.0 & Self::SPECIAL_BIT != 0
    }
}

/// A finished-product table: one [`ProductEntry`] per operand pair —
/// `2^(2n)` entries, ≤ 256 KiB at 8 bits. The n ≤ 8 float EMAC inner loop
/// becomes one load and one shifted add, with no multiply and no
/// trailing-zero count. Entries are derived from the fused [`EmacEntry`]
/// words, so the schemes cannot drift; the `kernel_equivalence` suite
/// pins bit-identity against the reference datapath over all pairs.
#[derive(Debug, Clone)]
pub struct ProductLut {
    fmt: FloatFormat,
    n: u32,
    entries: Vec<ProductEntry>,
}

impl ProductLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_PRODUCT_WIDTH`].
    pub fn build(fmt: FloatFormat) -> Option<Self> {
        if fmt.n() > MAX_PRODUCT_WIDTH {
            return None;
        }
        let operands = EmacLut::build(fmt)?;
        let (n, wf) = (fmt.n(), fmt.wf());
        let mut entries = Vec::with_capacity(1usize << (2 * n));
        for w in fmt.patterns() {
            let ew = operands.entry(w);
            for a in fmt.patterns() {
                let ea = operands.entry(a);
                entries.push(if (ew.0 | ea.0) & EmacEntry::SPECIAL_BIT != 0 {
                    ProductEntry(ProductEntry::SPECIAL_BIT)
                } else {
                    let prod = ew.field() * ea.field();
                    if prod == 0 {
                        ProductEntry(0)
                    } else {
                        let tz = prod.trailing_zeros();
                        let shift = (ew.biased_scale() + ea.biased_scale()) as i32 + tz as i32
                            - 2 * wf as i32;
                        debug_assert!((prod >> tz) < (1 << 16) && (0..1 << 10).contains(&shift));
                        let sign = if (ew.0 ^ ea.0) & EmacEntry::SIGN_BIT != 0 {
                            ProductEntry::SIGN_BIT
                        } else {
                            0
                        };
                        ProductEntry((prod >> tz) as u32 | ((shift as u32) << 16) | sign)
                    }
                });
            }
        }
        Some(ProductLut { fmt, n, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> FloatFormat {
        self.fmt
    }

    /// The finished product for the pair (low `n` bits of each operand).
    #[inline]
    pub fn entry(&self, weight: u32, activation: u32) -> ProductEntry {
        let mask = self.fmt.mask();
        self.entries[(((weight & mask) as usize) << self.n) | (activation & mask) as usize]
    }

    /// The contiguous `2^n`-entry row for `weight`: element `a` of the
    /// returned slice is `entry(weight, a)`. The tile kernels resolve a
    /// weight's row base once and index it per column, hoisting the
    /// weight shift out of the column-wide inner step — and because the
    /// row length is a power of two, `row[(a & (len − 1)) as usize]`
    /// needs no bounds check.
    #[inline]
    pub fn row(&self, weight: u32) -> &[ProductEntry] {
        let base = ((weight & self.fmt.mask()) as usize) << self.n;
        &self.entries[base..base + (1usize << self.n)]
    }

    /// Number of table entries (`2^(2n)`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: every format has at least `2^8` pairs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide finished-product table for `fmt` (leaked like
/// [`cached`]'s tables), or `None` for formats wider than
/// [`MAX_PRODUCT_WIDTH`].
pub fn product_cached(fmt: FloatFormat) -> Option<&'static ProductLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static ProductLut>>> = OnceLock::new();
    if fmt.n() > MAX_PRODUCT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("minifloat product LUT cache poisoned");
    Some(
        map.entry((fmt.we(), fmt.wf()))
            .or_insert_with(|| Box::leak(Box::new(ProductLut::build(fmt).expect("width checked")))),
    )
}

/// Computed fused EMAC operands for 13–16-bit minifloats: the same packed
/// [`EmacEntry`] an [`EmacLut`] would hold, produced per call from the bit
/// fields instead of a 2^n-entry table.
///
/// A minifloat's sign/exponent/fraction live at fixed offsets, so the
/// fused operand needs no table at all: normals are two shifts and a mask
/// (`field = hidden | frac`, `biased = exp_field + wf − 1`); subnormals
/// normalize with one leading-zero count (`field = frac` shifted to the
/// hidden position, `biased = bitlen(frac) − 1`). Entries are bit-for-bit
/// what [`EmacLut::build`] would tabulate, verified exhaustively by the
/// `direct_entries_match_*` tests.
#[derive(Debug, Clone, Copy)]
pub struct EmacDirect {
    fmt: FloatFormat,
}

impl EmacDirect {
    /// Builds the computed-operand extractor for `fmt`, or `None` unless
    /// [`MAX_LUT_WIDTH`]` < n ≤ `[`MAX_DIRECT_WIDTH`] (narrower formats
    /// use the tabulated [`EmacLut`]; each width band gets exactly one
    /// scheme so call sites cannot mix paths for a format).
    pub fn build(fmt: FloatFormat) -> Option<Self> {
        if fmt.n() <= MAX_LUT_WIDTH || fmt.n() > MAX_DIRECT_WIDTH {
            return None;
        }
        Some(EmacDirect { fmt })
    }

    /// The format this extractor was built for.
    pub fn format(&self) -> FloatFormat {
        self.fmt
    }

    /// The fused operand for the low `n` bits of `bits`; identical to the
    /// entry an [`EmacLut`] for this format would hold.
    #[inline]
    pub fn entry(&self, bits: u32) -> EmacEntry {
        let fmt = self.fmt;
        let (we, wf) = (fmt.we(), fmt.wf());
        let bits = bits & fmt.mask();
        let sign = bits >> (fmt.n() - 1) == 1;
        let sign_bit = if sign { EmacEntry::SIGN_BIT } else { 0 };
        let exp_field = (bits >> wf) & ((1 << we) - 1);
        let frac = (bits & ((1u32 << wf) - 1)) as u64;
        if exp_field == (1 << we) - 1 {
            return EmacEntry(EmacEntry::SPECIAL_BIT);
        }
        if exp_field == 0 {
            if frac == 0 {
                return EmacEntry(sign_bit);
            }
            // Subnormal: normalize so the top significand bit is set; the
            // biased scale collapses to bitlen(frac) − 1 (= 63 − lz).
            let lz = frac.leading_zeros();
            let field = frac << (lz - (63 - wf));
            let biased = (63 - lz) as u64;
            return EmacEntry(field | (biased << 16) | sign_bit);
        }
        // Normal: hidden bit set, biased = (scale − min_normal) + wf
        //       = (exp_field − bias − (1 − bias)) + wf = exp_field + wf − 1.
        let field = (1u64 << wf) | frac;
        let biased = (exp_field + wf - 1) as u64;
        debug_assert!(field < (1 << 16) && biased < (1 << 16));
        EmacEntry(field | (biased << 16) | sign_bit)
    }
}

/// The process-wide fused EMAC table for `fmt` (leaked like [`cached`]'s
/// tables), or `None` for formats wider than [`MAX_LUT_WIDTH`].
pub fn emac_cached(fmt: FloatFormat) -> Option<&'static EmacLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static EmacLut>>> = OnceLock::new();
    if fmt.n() > MAX_LUT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("minifloat EMAC LUT cache poisoned");
    Some(
        map.entry((fmt.we(), fmt.wf()))
            .or_insert_with(|| Box::leak(Box::new(EmacLut::build(fmt).expect("width checked")))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_only_up_to_max_width() {
        assert!(DecodeLut::build(FloatFormat::new(4, 3).unwrap()).is_some());
        assert!(DecodeLut::build(FloatFormat::new(5, 6).unwrap()).is_some());
        assert!(DecodeLut::build(FloatFormat::new(5, 10).unwrap()).is_none());
        assert!(cached(FloatFormat::new(8, 23).unwrap()).is_none());
        assert!(EmacLut::build(FloatFormat::new(5, 10).unwrap()).is_none());
        assert!(emac_cached(FloatFormat::new(5, 10).unwrap()).is_none());
    }

    #[test]
    fn table_matches_decode_exhaustively() {
        for (we, wf) in [(2u32, 2u32), (3, 2), (4, 3), (5, 2), (5, 6), (4, 7)] {
            let fmt = FloatFormat::new(we, wf).unwrap();
            let lut = DecodeLut::build(fmt).unwrap();
            assert_eq!(lut.len() as u64, fmt.pattern_count());
            for bits in fmt.patterns() {
                assert_eq!(lut.decode(bits), decode(fmt, bits), "{fmt} {bits:#x}");
            }
        }
    }

    #[test]
    fn cached_returns_the_same_table() {
        let fmt = FloatFormat::new(3, 2).unwrap();
        let a = cached(fmt).unwrap();
        let b = cached(fmt).unwrap();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.format(), fmt);
        assert!(std::ptr::eq(
            emac_cached(fmt).unwrap(),
            emac_cached(fmt).unwrap()
        ));
    }

    #[test]
    fn direct_operands_only_between_13_and_16_bits() {
        assert!(EmacDirect::build(FloatFormat::new(4, 7).unwrap()).is_none()); // n = 12
        assert!(EmacDirect::build(FloatFormat::new(4, 8).unwrap()).is_some()); // n = 13
        assert!(EmacDirect::build(FloatFormat::new(5, 10).unwrap()).is_some()); // n = 16
        assert!(EmacDirect::build(FloatFormat::new(5, 11).unwrap()).is_none()); // n = 17
        let fmt = FloatFormat::new(5, 10).unwrap();
        assert_eq!(EmacDirect::build(fmt).unwrap().format(), fmt);
    }

    #[test]
    fn direct_entries_match_decode_exhaustively() {
        // 13–16-bit formats, including binary16 (5,10) and a bfloat-ish
        // wide-exponent shape; every pattern of each format.
        for (we, wf) in [(4u32, 8u32), (5, 8), (5, 10), (8, 7), (2, 13), (6, 9)] {
            let fmt = FloatFormat::new(we, wf).unwrap();
            let direct = EmacDirect::build(fmt).unwrap();
            for bits in fmt.patterns() {
                let e = direct.entry(bits);
                match decode(fmt, bits) {
                    FloatClass::Zero(sign) => {
                        assert_eq!(e.field(), 0, "{fmt} {bits:#x}");
                        assert_eq!(e.sign(), sign);
                        assert!(!e.is_special());
                    }
                    FloatClass::Inf(_) | FloatClass::NaN => {
                        assert!(e.is_special(), "{fmt} {bits:#x}")
                    }
                    FloatClass::Finite(u) => {
                        assert!(!e.is_special());
                        assert_eq!(e.sign(), u.sign, "{fmt} {bits:#x}");
                        assert_eq!(e.field(), u.sig >> (63 - wf), "{fmt} {bits:#x}");
                        assert!(e.field() >> wf >= 1, "normalized top bit set");
                        assert_eq!(
                            e.biased_scale() as i32,
                            u.scale - fmt.min_normal_scale() + wf as i32,
                            "{fmt} {bits:#x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn product_table_only_up_to_8_bits() {
        assert!(ProductLut::build(FloatFormat::new(4, 3).unwrap()).is_some()); // n = 8
        assert!(ProductLut::build(FloatFormat::new(4, 4).unwrap()).is_none()); // n = 9
        assert!(product_cached(FloatFormat::new(4, 4).unwrap()).is_none());
        let fmt = FloatFormat::new(4, 3).unwrap();
        assert!(std::ptr::eq(
            product_cached(fmt).unwrap(),
            product_cached(fmt).unwrap()
        ));
    }

    #[test]
    fn product_entries_fuse_operand_pairs_exhaustively() {
        for (we, wf) in [(2u32, 2u32), (3, 2), (4, 3)] {
            let fmt = FloatFormat::new(we, wf).unwrap();
            let products = ProductLut::build(fmt).unwrap();
            let operands = EmacLut::build(fmt).unwrap();
            assert_eq!(
                products.len() as u64,
                fmt.pattern_count() * fmt.pattern_count()
            );
            assert!(!products.is_empty());
            assert_eq!(products.format(), fmt);
            for w in fmt.patterns() {
                let row = products.row(w);
                assert_eq!(row.len() as u64, fmt.pattern_count());
                for a in fmt.patterns() {
                    let p = products.entry(w, a);
                    assert_eq!(row[a as usize].0, p.0, "{fmt} {w:#x}×{a:#x} row");
                    let (ew, ea) = (operands.entry(w), operands.entry(a));
                    if ew.is_special() || ea.is_special() {
                        assert!(p.is_special(), "{fmt} {w:#x}×{a:#x}");
                        assert_eq!(p.product(), 0);
                        continue;
                    }
                    assert!(!p.is_special());
                    let prod = ew.field() * ea.field();
                    if prod == 0 {
                        assert_eq!(p.0, 0, "{fmt} {w:#x}×{a:#x}");
                        continue;
                    }
                    let tz = prod.trailing_zeros();
                    assert_eq!(p.product(), prod >> tz, "{fmt} {w:#x}×{a:#x}");
                    assert_eq!(
                        p.shift() as i64,
                        (ew.biased_scale() + ea.biased_scale()) as i64 + tz as i64 - 2 * wf as i64,
                        "{fmt} {w:#x}×{a:#x}"
                    );
                    assert_eq!(p.negate(), ew.sign() ^ ea.sign(), "{fmt} {w:#x}×{a:#x}");
                }
            }
        }
    }

    #[test]
    fn emac_entries_reconstruct_decode_exhaustively() {
        for (we, wf) in [(2u32, 2u32), (3, 2), (4, 3), (5, 2), (4, 7)] {
            let fmt = FloatFormat::new(we, wf).unwrap();
            let lut = EmacLut::build(fmt).unwrap();
            for bits in fmt.patterns() {
                let e = lut.entry(bits);
                match decode(fmt, bits) {
                    FloatClass::Zero(sign) => {
                        assert_eq!(e.field(), 0, "{fmt} {bits:#x}");
                        assert_eq!(e.sign(), sign);
                        assert!(!e.is_special());
                    }
                    FloatClass::Inf(_) | FloatClass::NaN => {
                        assert!(e.is_special(), "{fmt} {bits:#x}")
                    }
                    FloatClass::Finite(u) => {
                        assert!(!e.is_special());
                        assert_eq!(e.sign(), u.sign, "{fmt} {bits:#x}");
                        assert_eq!(e.field(), u.sig >> (63 - wf), "{fmt} {bits:#x}");
                        assert!(e.field() >> wf >= 1, "normalized top bit set");
                        assert_eq!(
                            e.biased_scale() as i32,
                            u.scale - fmt.min_normal_scale() + wf as i32,
                            "{fmt} {bits:#x}"
                        );
                    }
                }
            }
        }
    }
}
