//! Runtime-parameterized minifloat format descriptor.

use std::fmt;

/// Error returned when constructing an invalid [`FloatFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatError {
    /// `we` outside the supported `2..=8` range.
    ExponentOutOfRange(u32),
    /// `wf` outside the supported `0..=23` range.
    FractionOutOfRange(u32),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::ExponentOutOfRange(we) => {
                write!(
                    f,
                    "float exponent width we={we} outside supported range 2..=8"
                )
            }
            FormatError::FractionOutOfRange(wf) => {
                write!(
                    f,
                    "float fraction width wf={wf} outside supported range 0..=23"
                )
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// An IEEE-754-style binary format with 1 sign bit, `we` exponent bits and
/// `wf` fraction bits (paper §III-C).
///
/// Characteristics follow the paper exactly:
///
/// ```text
/// bias    = 2^(we−1) − 1
/// expmax  = 2^we − 2                  (top field reserved for Inf/NaN)
/// max     = 2^(expmax−bias) × (2 − 2^−wf)
/// min     = 2^(1−bias) × 2^−wf        (smallest subnormal)
/// ```
///
/// # Examples
///
/// ```
/// use dp_minifloat::FloatFormat;
/// let f16 = FloatFormat::new(5, 10)?;
/// assert_eq!(f16.bias(), 15);
/// assert_eq!(f16.max_value(), 65504.0);
/// assert_eq!(f16.min_value(), 2f64.powi(-24));
/// # Ok::<(), dp_minifloat::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFormat {
    we: u32,
    wf: u32,
}

impl FloatFormat {
    /// Creates a format with `we` exponent bits and `wf` fraction bits.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] unless `2 <= we <= 8` and `wf <= 23`.
    pub const fn new(we: u32, wf: u32) -> Result<Self, FormatError> {
        if we < 2 || we > 8 {
            return Err(FormatError::ExponentOutOfRange(we));
        }
        if wf > 23 {
            return Err(FormatError::FractionOutOfRange(wf));
        }
        Ok(FloatFormat { we, wf })
    }

    /// Like [`FloatFormat::new`] but panics on invalid parameters; usable in
    /// `const` contexts.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= we <= 8` and `wf <= 23`.
    pub const fn new_const(we: u32, wf: u32) -> Self {
        match Self::new(we, wf) {
            Ok(f) => f,
            Err(_) => panic!("invalid minifloat format parameters"),
        }
    }

    /// Exponent field width in bits.
    #[inline]
    pub const fn we(self) -> u32 {
        self.we
    }

    /// Fraction field width in bits.
    #[inline]
    pub const fn wf(self) -> u32 {
        self.wf
    }

    /// Total width in bits, `1 + we + wf`.
    #[inline]
    pub const fn n(self) -> u32 {
        1 + self.we + self.wf
    }

    /// Mask selecting the low `n` bits of a pattern.
    #[inline]
    pub const fn mask(self) -> u32 {
        if self.n() == 32 {
            u32::MAX
        } else {
            (1u32 << self.n()) - 1
        }
    }

    /// Exponent bias, `2^(we-1) - 1`.
    #[inline]
    pub const fn bias(self) -> i32 {
        (1i32 << (self.we - 1)) - 1
    }

    /// Largest non-reserved exponent field value, `2^we - 2`.
    #[inline]
    pub const fn expmax_field(self) -> u32 {
        (1u32 << self.we) - 2
    }

    /// Binary scale of the largest finite binade, `expmax − bias = bias`.
    #[inline]
    pub const fn max_scale(self) -> i32 {
        self.expmax_field() as i32 - self.bias()
    }

    /// Binary scale of the smallest normal binade, `1 − bias`.
    #[inline]
    pub const fn min_normal_scale(self) -> i32 {
        1 - self.bias()
    }

    /// Largest finite value, `2^max_scale × (2 − 2^−wf)`.
    pub fn max_value(self) -> f64 {
        2f64.powi(self.max_scale()) * (2.0 - 2f64.powi(-(self.wf as i32)))
    }

    /// Smallest positive (subnormal) value, `2^(1−bias−wf)`.
    pub fn min_value(self) -> f64 {
        2f64.powi(self.min_normal_scale() - self.wf as i32)
    }

    /// Dynamic range in decades, `log10(max / min)` (paper §IV-A).
    pub fn dynamic_range_log10(self) -> f64 {
        (self.max_value().log2() - self.min_value().log2()) * std::f64::consts::LOG10_2
    }

    /// Bit pattern of +0 / −0.
    #[inline]
    pub const fn zero_bits(self, sign: bool) -> u32 {
        (sign as u32) << (self.n() - 1)
    }

    /// Bit pattern of ±infinity.
    #[inline]
    pub const fn inf_bits(self, sign: bool) -> u32 {
        self.zero_bits(sign) | (((1u32 << self.we) - 1) << self.wf)
    }

    /// The canonical quiet-NaN pattern (+, top exponent, MSB fraction set;
    /// for `wf = 0` formats the all-ones pattern is used).
    #[inline]
    pub const fn nan_bits(self) -> u32 {
        if self.wf == 0 {
            // No fraction bits: no NaN distinct from Inf exists; reuse -Inf
            // pattern is unacceptable, so reserve +Inf|1 ... fall back to
            // the +Inf pattern (formats with wf=0 cannot represent NaN).
            self.inf_bits(false)
        } else {
            self.inf_bits(false) | (1u32 << (self.wf - 1))
        }
    }

    /// Bit pattern of the largest finite value (`expmax` + all-ones frac).
    #[inline]
    pub const fn max_bits(self, sign: bool) -> u32 {
        self.zero_bits(sign) | (self.expmax_field() << self.wf) | ((1u32 << self.wf) - 1)
    }

    /// Number of distinct bit patterns, `2^n`.
    #[inline]
    pub const fn pattern_count(self) -> u64 {
        1u64 << self.n()
    }

    /// Iterator over every bit pattern of the format.
    pub fn patterns(self) -> impl Iterator<Item = u32> {
        0..=self.mask()
    }

    /// Iterator over every *finite* bit pattern (skips Inf and NaN).
    pub fn finites(self) -> impl Iterator<Item = u32> {
        let top = ((1u32 << self.we) - 1) << self.wf;
        self.patterns().filter(move |&b| (b & top) != top)
    }
}

impl fmt::Debug for FloatFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FloatFormat(we={}, wf={})", self.we, self.wf)
    }
}

impl fmt::Display for FloatFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "float<{},{},{}>", self.n(), self.we, self.wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(FloatFormat::new(4, 3).is_ok());
        assert!(FloatFormat::new(1, 3).is_err());
        assert!(FloatFormat::new(9, 3).is_err());
        assert!(FloatFormat::new(4, 24).is_err());
    }

    #[test]
    fn half_precision_characteristics() {
        let f = FloatFormat::new(5, 10).unwrap();
        assert_eq!(f.n(), 16);
        assert_eq!(f.bias(), 15);
        assert_eq!(f.expmax_field(), 30);
        assert_eq!(f.max_scale(), 15);
        assert_eq!(f.max_value(), 65504.0);
        assert_eq!(f.min_value(), 2f64.powi(-24));
    }

    #[test]
    fn e4m3_characteristics() {
        let f = FloatFormat::new(4, 3).unwrap();
        assert_eq!(f.n(), 8);
        assert_eq!(f.bias(), 7);
        assert_eq!(f.max_value(), 240.0);
        assert_eq!(f.min_value(), 2f64.powi(-9));
        assert_eq!(f.zero_bits(true), 0x80);
        assert_eq!(f.inf_bits(false), 0x78);
        assert_eq!(f.max_bits(false), 0x77);
        assert_eq!(f.nan_bits(), 0x7c);
    }

    #[test]
    fn paper_min_max_formulas() {
        // Paper §III-C: max = 2^(expmax−bias)(2−2^−wf), min = 2^(1−bias)·2^−wf.
        for (we, wf) in [(2u32, 2u32), (3, 4), (4, 3), (5, 2)] {
            let f = FloatFormat::new(we, wf).unwrap();
            let bias = (1i32 << (we - 1)) - 1;
            let expmax = (1i32 << we) - 2;
            let max = 2f64.powi(expmax - bias) * (2.0 - 2f64.powi(-(wf as i32)));
            let min = 2f64.powi(1 - bias) * 2f64.powi(-(wf as i32));
            assert_eq!(f.max_value(), max, "we={we} wf={wf}");
            assert_eq!(f.min_value(), min, "we={we} wf={wf}");
        }
    }

    #[test]
    fn finites_skip_top_exponent() {
        let f = FloatFormat::new(3, 2).unwrap();
        assert_eq!(f.patterns().count(), 64);
        // 2 signs × 4 fraction values in the top exponent are excluded.
        assert_eq!(f.finites().count(), 64 - 8);
    }

    #[test]
    fn display_forms() {
        let f = FloatFormat::new(4, 3).unwrap();
        assert_eq!(format!("{f}"), "float<8,4,3>");
        assert!(!format!("{f:?}").is_empty());
    }
}
