//! Minifloat decode / encode with IEEE-754 round-to-nearest-even.

use crate::format::FloatFormat;

/// A decoded finite nonzero minifloat:
/// `value = (-1)^sign × sig × 2^(scale - 63)` with `sig`'s MSB set.
/// Subnormals are normalized into this form during decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloatUnpacked {
    /// Sign bit (true = negative).
    pub sign: bool,
    /// Unbiased binary scale.
    pub scale: i32,
    /// Left-aligned significand with the hidden/normalized bit at position 63.
    pub sig: u64,
}

/// Classification of a minifloat bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloatClass {
    /// ±0 (sign preserved).
    Zero(bool),
    /// A finite nonzero value (normal or subnormal).
    Finite(FloatUnpacked),
    /// ±infinity.
    Inf(bool),
    /// Not a number.
    NaN,
}

impl FloatClass {
    /// Returns the unpacked fields, or `None` for zero / Inf / NaN.
    pub fn finite(self) -> Option<FloatUnpacked> {
        match self {
            FloatClass::Finite(u) => Some(u),
            _ => None,
        }
    }
}

/// Decodes the low `n` bits of `bits` according to `fmt`, performing the
/// subnormal detection of paper Fig. 4 (hidden bit cleared, exponent
/// adjusted).
///
/// # Examples
///
/// ```
/// use dp_minifloat::{decode, FloatClass, FloatFormat};
/// let fmt = FloatFormat::new(4, 3)?;
/// let one = decode(fmt, 0x38).finite().unwrap(); // 0 0111 000
/// assert_eq!((one.sign, one.scale, one.sig), (false, 0, 1 << 63));
/// assert_eq!(decode(fmt, 0x78), FloatClass::Inf(false));
/// # Ok::<(), dp_minifloat::FormatError>(())
/// ```
pub fn decode(fmt: FloatFormat, bits: u32) -> FloatClass {
    let bits = bits & fmt.mask();
    let (we, wf) = (fmt.we(), fmt.wf());
    let sign = bits >> (fmt.n() - 1) == 1;
    let exp_field = (bits >> wf) & ((1 << we) - 1);
    let frac = bits & ((1u32 << wf) - 1);
    if exp_field == (1 << we) - 1 {
        return if frac == 0 {
            FloatClass::Inf(sign)
        } else {
            FloatClass::NaN
        };
    }
    if exp_field == 0 {
        if frac == 0 {
            return FloatClass::Zero(sign);
        }
        // Subnormal: value = frac × 2^(1 − bias − wf); normalize.
        let lz = (frac as u64).leading_zeros();
        let sig = (frac as u64) << lz;
        let scale = fmt.min_normal_scale() - wf as i32 + (63 - lz as i32);
        return FloatClass::Finite(FloatUnpacked { sign, scale, sig });
    }
    let sig = ((1u64 << wf) | frac as u64) << (63 - wf);
    let scale = exp_field as i32 - fmt.bias();
    FloatClass::Finite(FloatUnpacked { sign, scale, sig })
}

/// Encodes `(-1)^sign × sig × 2^(scale-63)` (with `sig`'s MSB set) into the
/// nearest minifloat under IEEE round-to-nearest-even, producing subnormals,
/// ±0 on underflow and ±Inf on overflow. `sticky` marks discarded low bits.
///
/// # Panics
///
/// Panics in debug builds if `sig`'s MSB is not set.
pub fn encode(fmt: FloatFormat, sign: bool, scale: i32, sig: u64, sticky: bool) -> u32 {
    debug_assert!(sig >> 63 == 1, "significand must be normalized");
    let wf = fmt.wf();
    if scale > fmt.max_scale() + 1 {
        // At least one binade above the top: overflows past max + ulp/2.
        return fmt.inf_bits(sign);
    }
    // Build an integer pattern (exp_field << wf | frac) plus guard/sticky and
    // round it as one integer so carries ripple naturally across binades.
    let (exp_field, frac_shift_extra) = if scale < fmt.min_normal_scale() {
        // Subnormal: exponent field 0, fraction shifted right further.
        (0u32, (fmt.min_normal_scale() - scale) as u32)
    } else {
        ((scale + fmt.bias()) as u32, 0)
    };
    // frac = top wf bits of sig below the hidden bit, shifted right extra for
    // subnormals (the hidden bit then becomes part of the fraction).
    let keep_bits = 64 - 1 - wf; // bits of sig dropped for a normal encode
    let total_drop = keep_bits as u64 + frac_shift_extra as u64;
    let (kept, round, rest_nonzero) = if frac_shift_extra == 0 {
        // Normal: drop the hidden bit (it is implied).
        let body = sig & !(1u64 << 63);
        shift_with_grs(body, keep_bits as u64)
    } else {
        // Subnormal: the hidden bit stays in the shifted fraction.
        shift_with_grs(sig, total_drop)
    };
    let sticky_all = sticky || rest_nonzero;
    let mut pattern = ((exp_field as u64) << wf) | kept;
    if round && (sticky_all || pattern & 1 == 1) {
        pattern += 1;
    }
    // A carry out of the fraction bumps the exponent; reaching the reserved
    // top exponent is exactly IEEE overflow-to-infinity.
    if (pattern >> wf) as u32 >= (1 << fmt.we()) - 1 {
        return fmt.inf_bits(sign);
    }
    fmt.zero_bits(sign) | pattern as u32
}

/// Splits `v >> drop` into (kept value, round bit, sticky-of-rest).
fn shift_with_grs(v: u64, drop: u64) -> (u64, bool, bool) {
    if drop == 0 {
        return (v, false, false);
    }
    if drop > 64 {
        return (0, false, v != 0);
    }
    if drop == 64 {
        return (0, v >> 63 == 1, v & ((1u64 << 63) - 1) != 0);
    }
    let kept = v >> drop;
    let round = (v >> (drop - 1)) & 1 == 1;
    let rest = v & ((1u64 << (drop - 1)) - 1) != 0;
    (kept, round, rest)
}

/// The ±0 pattern.
pub fn encode_zero(fmt: FloatFormat, sign: bool) -> u32 {
    fmt.zero_bits(sign)
}

/// The ±Inf pattern.
pub fn encode_inf(fmt: FloatFormat, sign: bool) -> u32 {
    fmt.inf_bits(sign)
}

/// The canonical NaN pattern.
pub fn encode_nan(fmt: FloatFormat) -> u32 {
    fmt.nan_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(we: u32, wf: u32) -> FloatFormat {
        FloatFormat::new(we, wf).unwrap()
    }

    #[test]
    fn decode_specials() {
        let f = fmt(4, 3);
        assert_eq!(decode(f, 0x00), FloatClass::Zero(false));
        assert_eq!(decode(f, 0x80), FloatClass::Zero(true));
        assert_eq!(decode(f, 0x78), FloatClass::Inf(false));
        assert_eq!(decode(f, 0xf8), FloatClass::Inf(true));
        assert_eq!(decode(f, 0x79), FloatClass::NaN);
        assert_eq!(decode(f, 0x7c), FloatClass::NaN);
    }

    #[test]
    fn decode_normals() {
        let f = fmt(4, 3);
        // 0x38 = 0 0111 000 = 1.0
        let u = decode(f, 0x38).finite().unwrap();
        assert_eq!((u.sign, u.scale, u.sig), (false, 0, 1 << 63));
        // 0x3c = 1.5
        let u = decode(f, 0x3c).finite().unwrap();
        assert_eq!((u.scale, u.sig), (0, 0b11 << 62));
        // 0xc0 = -2.0
        let u = decode(f, 0xc0).finite().unwrap();
        assert_eq!((u.sign, u.scale, u.sig), (true, 1, 1 << 63));
    }

    #[test]
    fn decode_subnormals_normalize() {
        let f = fmt(4, 3);
        // smallest subnormal: frac=1 -> 2^-9
        let u = decode(f, 0x01).finite().unwrap();
        assert_eq!((u.scale, u.sig), (-9, 1 << 63));
        // frac=0b101 -> 1.01b × 2^-7
        let u = decode(f, 0x05).finite().unwrap();
        assert_eq!(u.scale, -7);
        assert_eq!(u.sig >> 61, 0b101);
    }

    #[test]
    fn encode_decode_roundtrip_all_finites() {
        for (we, wf) in [(2, 2), (3, 2), (3, 4), (4, 3), (5, 2), (5, 10), (8, 7)] {
            let f = fmt(we, wf);
            for bits in f.finites() {
                match decode(f, bits) {
                    FloatClass::Zero(s) => assert_eq!(encode_zero(f, s), bits),
                    FloatClass::Finite(u) => {
                        assert_eq!(
                            encode(f, u.sign, u.scale, u.sig, false),
                            bits,
                            "{f} {bits:#x}"
                        );
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn encode_overflow_and_boundary() {
        let f = fmt(4, 3);
        // Well above max -> Inf.
        assert_eq!(encode(f, false, 20, 1 << 63, false), f.inf_bits(false));
        // max value exactly: 1.111 × 2^7 = 240
        assert_eq!(encode(f, false, 7, 0b1111 << 60, false), 0x77);
        // Just above max but below max + ulp/2 rounds down to max:
        // round bit clear, sticky set.
        assert_eq!(encode(f, false, 7, 0b11110 << 59, true), 0x77);
        let just_above = (0b1111u64 << 60) | (1 << 55);
        assert_eq!(encode(f, false, 7, just_above, false), 0x77);
        // Midpoint 1.1111 × 2^7 (= max + ulp/2) exactly: tie -> even -> Inf.
        assert_eq!(encode(f, false, 7, 0b11111 << 59, false), f.inf_bits(false));
    }

    #[test]
    fn encode_subnormal_and_underflow() {
        let f = fmt(4, 3);
        // 2^-9 = smallest subnormal
        assert_eq!(encode(f, false, -9, 1 << 63, false), 0x01);
        // 2^-10 is exactly half the smallest subnormal: tie with 0 -> even -> 0
        assert_eq!(encode(f, false, -10, 1 << 63, false), 0x00);
        // slightly more than half rounds up to the smallest subnormal
        assert_eq!(encode(f, false, -10, 1 << 63, true), 0x01);
        // far below underflows to (signed) zero
        assert_eq!(encode(f, true, -40, 1 << 63, false), 0x80);
        // subnormal rounding carry into the smallest normal:
        // largest subnormal is 0.111×2^-6; 0.1111×2^-6 rounds to 1.0×2^-6
        let v = 0b1111u64 << 60; // 1.111 × 2^(scale), choose scale -7 => 0.1111×2^-6
        assert_eq!(encode(f, false, -7, v, false), 0x08);
    }

    #[test]
    fn ties_to_even_in_fraction() {
        let f = fmt(4, 3);
        // 1.0001 is halfway between 1.000 and 1.001 -> even (1.000)
        let halfway = (1u64 << 63) | (1u64 << 59);
        assert_eq!(encode(f, false, 0, halfway, false), 0x38);
        // 1.0011 is halfway between 1.001 and 1.010 -> 1.010
        let halfway_odd = (1u64 << 63) | (0b11u64 << 59);
        assert_eq!(encode(f, false, 0, halfway_odd, false), 0x3a);
    }

    #[test]
    fn wf_zero_formats_work() {
        let f = fmt(3, 0);
        // Values are ±2^k only. 1.0 = exp field bias = 3 -> bits 0 011.
        let one = encode(f, false, 0, 1 << 63, false);
        assert_eq!(decode(f, one).finite().unwrap().scale, 0);
        // 1.5 ties between 1.0 and 2.0 -> even pattern.
        let res = encode(f, false, 0, 0b11 << 62, false);
        let u = decode(f, res).finite().unwrap();
        assert!(u.scale == 0 || u.scale == 1);
    }

    #[test]
    fn shift_with_grs_cases() {
        assert_eq!(shift_with_grs(0b1011, 0), (0b1011, false, false));
        assert_eq!(shift_with_grs(0b1011, 1), (0b101, true, false));
        assert_eq!(shift_with_grs(0b1011, 2), (0b10, true, true));
        assert_eq!(shift_with_grs(0b1000, 3), (0b1, false, false));
        assert_eq!(shift_with_grs(u64::MAX, 64), (0, true, true));
        assert_eq!(shift_with_grs(1, 65), (0, false, true));
    }
}
