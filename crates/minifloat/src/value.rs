//! Typed, const-generic minifloat values with operator overloads.

use crate::codec::{decode, FloatClass};
use crate::convert;
use crate::format::FloatFormat;
use crate::ops;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// A minifloat value of compile-time format `(1, WE, WF)`.
///
/// Zero-cost wrapper over [`crate::ops`]; the value is the raw bit pattern.
///
/// # Examples
///
/// ```
/// use dp_minifloat::F8E4M3;
/// let a = F8E4M3::from_f64(1.5);
/// assert_eq!((a + a).to_f64(), 3.0);
/// assert!(F8E4M3::NAN.is_nan());
/// assert_eq!(F8E4M3::MAX.to_f64(), 240.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MiniFloat<const WE: u32, const WF: u32>(u32);

/// 8-bit float, 2 exponent bits (paper float sweep, we = 2).
pub type F8E2M5 = MiniFloat<2, 5>;
/// 8-bit float, 3 exponent bits (paper: best float results use we ∈ {3,4}).
pub type F8E3M4 = MiniFloat<3, 4>;
/// 8-bit float, 4 exponent bits.
pub type F8E4M3 = MiniFloat<4, 3>;
/// 8-bit float, 5 exponent bits.
pub type F8E5M2 = MiniFloat<5, 2>;
/// 7-bit float, 3 exponent bits.
pub type F7E3M3 = MiniFloat<3, 3>;
/// 7-bit float, 4 exponent bits.
pub type F7E4M2 = MiniFloat<4, 2>;
/// 6-bit float, 2 exponent bits.
pub type F6E2M3 = MiniFloat<2, 3>;
/// 6-bit float, 3 exponent bits.
pub type F6E3M2 = MiniFloat<3, 2>;
/// IEEE-754 binary16 (half precision).
pub type F16 = MiniFloat<5, 10>;
/// bfloat16 (the f32 top half).
pub type BF16 = MiniFloat<8, 7>;

impl<const WE: u32, const WF: u32> MiniFloat<WE, WF> {
    /// The format descriptor of this type.
    pub const FORMAT: FloatFormat = FloatFormat::new_const(WE, WF);
    /// +0.
    pub const ZERO: Self = MiniFloat(0);
    /// +1.
    pub const ONE: Self = MiniFloat((Self::FORMAT.bias() as u32) << WF);
    /// +infinity.
    pub const INFINITY: Self = MiniFloat(Self::FORMAT.inf_bits(false));
    /// −infinity.
    pub const NEG_INFINITY: Self = MiniFloat(Self::FORMAT.inf_bits(true));
    /// Canonical NaN.
    pub const NAN: Self = MiniFloat(Self::FORMAT.nan_bits());
    /// Largest finite value.
    pub const MAX: Self = MiniFloat(Self::FORMAT.max_bits(false));
    /// Smallest positive (subnormal) value.
    pub const MIN_POSITIVE: Self = MiniFloat(1);

    /// Constructs from a raw bit pattern (masked to width).
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        MiniFloat(bits & Self::FORMAT.mask())
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Rounds an `f64` to this format (IEEE RNE).
    pub fn from_f64(v: f64) -> Self {
        MiniFloat(convert::from_f64(Self::FORMAT, v))
    }

    /// Rounds an `f64`, clipping at ±MAX instead of overflowing to ±Inf.
    pub fn from_f64_saturating(v: f64) -> Self {
        MiniFloat(convert::from_f64_saturating(Self::FORMAT, v))
    }

    /// Converts to `f64` (exact).
    pub fn to_f64(self) -> f64 {
        convert::to_f64(Self::FORMAT, self.0)
    }

    /// True for NaN patterns.
    pub fn is_nan(self) -> bool {
        matches!(decode(Self::FORMAT, self.0), FloatClass::NaN)
    }

    /// True for ±Inf.
    pub fn is_infinite(self) -> bool {
        matches!(decode(Self::FORMAT, self.0), FloatClass::Inf(_))
    }

    /// True for finite values (including ±0).
    pub fn is_finite(self) -> bool {
        matches!(
            decode(Self::FORMAT, self.0),
            FloatClass::Zero(_) | FloatClass::Finite(_)
        )
    }

    /// True for ±0.
    pub fn is_zero(self) -> bool {
        matches!(decode(Self::FORMAT, self.0), FloatClass::Zero(_))
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        MiniFloat(ops::abs(Self::FORMAT, self.0))
    }

    /// Correctly rounded square root.
    pub fn sqrt(self) -> Self {
        MiniFloat(ops::sqrt(Self::FORMAT, self.0))
    }
}

impl<const WE: u32, const WF: u32> Add for MiniFloat<WE, WF> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        MiniFloat(ops::add(Self::FORMAT, self.0, rhs.0))
    }
}

impl<const WE: u32, const WF: u32> Sub for MiniFloat<WE, WF> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        MiniFloat(ops::sub(Self::FORMAT, self.0, rhs.0))
    }
}

impl<const WE: u32, const WF: u32> Mul for MiniFloat<WE, WF> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        MiniFloat(ops::mul(Self::FORMAT, self.0, rhs.0))
    }
}

impl<const WE: u32, const WF: u32> Div for MiniFloat<WE, WF> {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        MiniFloat(ops::div(Self::FORMAT, self.0, rhs.0))
    }
}

impl<const WE: u32, const WF: u32> Neg for MiniFloat<WE, WF> {
    type Output = Self;
    fn neg(self) -> Self {
        MiniFloat(ops::neg(Self::FORMAT, self.0))
    }
}

impl<const WE: u32, const WF: u32> AddAssign for MiniFloat<WE, WF> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const WE: u32, const WF: u32> SubAssign for MiniFloat<WE, WF> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const WE: u32, const WF: u32> MulAssign for MiniFloat<WE, WF> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const WE: u32, const WF: u32> DivAssign for MiniFloat<WE, WF> {
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

/// IEEE partial order: NaN is unordered, ±0 compare equal.
impl<const WE: u32, const WF: u32> PartialOrd for MiniFloat<WE, WF> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        ops::cmp(Self::FORMAT, self.0, other.0)
    }
}

impl<const WE: u32, const WF: u32> fmt::Debug for MiniFloat<WE, WF> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MiniFloat<{WE},{WF}>({:#x} = {})", self.0, self)
    }
}

impl<const WE: u32, const WF: u32> fmt::Display for MiniFloat<WE, WF> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl<const WE: u32, const WF: u32> fmt::Binary for MiniFloat<WE, WF> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl<const WE: u32, const WF: u32> fmt::LowerHex for MiniFloat<WE, WF> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl<const WE: u32, const WF: u32> fmt::UpperHex for MiniFloat<WE, WF> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl<const WE: u32, const WF: u32> fmt::Octal for MiniFloat<WE, WF> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl<const WE: u32, const WF: u32> From<MiniFloat<WE, WF>> for f64 {
    fn from(x: MiniFloat<WE, WF>) -> f64 {
        x.to_f64()
    }
}

/// Error parsing a minifloat from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMiniFloatError(String);

impl fmt::Display for ParseMiniFloatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid minifloat literal: {}", self.0)
    }
}

impl std::error::Error for ParseMiniFloatError {}

impl<const WE: u32, const WF: u32> FromStr for MiniFloat<WE, WF> {
    type Err = ParseMiniFloatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let v: f64 = s.parse().map_err(|_| ParseMiniFloatError(s.to_owned()))?;
        Ok(Self::from_f64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(F8E4M3::ONE.to_f64(), 1.0);
        assert_eq!(F8E4M3::MAX.to_f64(), 240.0);
        assert_eq!(F8E4M3::MIN_POSITIVE.to_f64(), 2f64.powi(-9));
        assert!(F8E4M3::NAN.is_nan());
        assert!(F8E4M3::INFINITY.is_infinite());
        assert_eq!(F16::ONE.to_bits(), 0x3c00);
        assert_eq!(BF16::ONE.to_bits(), 0x3f80);
    }

    #[test]
    fn operators() {
        let a = F8E4M3::from_f64(3.0);
        let b = F8E4M3::from_f64(0.5);
        assert_eq!((a + b).to_f64(), 3.5);
        assert_eq!((a - b).to_f64(), 2.5);
        assert_eq!((a * b).to_f64(), 1.5);
        assert_eq!((a / b).to_f64(), 6.0);
        assert_eq!((-a).to_f64(), -3.0);
        let mut c = a;
        c += b;
        c -= b;
        c *= b;
        c /= b;
        assert_eq!(c, a);
    }

    #[test]
    fn partial_order_with_nan() {
        let a = F8E4M3::from_f64(1.0);
        assert!(a > F8E4M3::from_f64(0.5));
        assert!(F8E4M3::NAN.partial_cmp(&a).is_none());
        assert!(F8E4M3::NEG_INFINITY < a);
        assert_eq!(
            F8E4M3::from_bits(0x80).partial_cmp(&F8E4M3::ZERO),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(F8E4M3::from_f64(1.5).to_string(), "1.5");
        assert_eq!("2.5".parse::<F8E4M3>().unwrap().to_f64(), 2.5);
        assert!("x".parse::<F8E4M3>().is_err());
        assert_eq!(format!("{:x}", F8E4M3::ONE), "38");
        assert_eq!(format!("{:08b}", F8E4M3::ONE), "00111000");
        assert_eq!(format!("{:o}", F8E4M3::ONE), "70");
        assert_eq!(format!("{:X}", F8E4M3::from_bits(0xAB)), "AB");
    }

    #[test]
    fn saturating_constructor() {
        assert_eq!(F8E4M3::from_f64_saturating(1e9), F8E4M3::MAX);
        assert_eq!(F8E4M3::from_f64(1e9), F8E4M3::INFINITY);
    }
}
