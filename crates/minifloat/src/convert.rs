//! Conversions between minifloats and `f64`, plus the saturating quantizer
//! used by the Deep Positron DNN path.

use crate::codec::{decode, encode, encode_inf, encode_nan, encode_zero, FloatClass};
use crate::format::FloatFormat;

/// Converts an `f64` to the nearest minifloat (IEEE RNE; overflow → ±Inf,
/// underflow → ±0, NaN → NaN).
///
/// # Examples
///
/// ```
/// use dp_minifloat::{convert, FloatFormat};
/// let fmt = FloatFormat::new(4, 3)?;
/// assert_eq!(convert::to_f64(fmt, convert::from_f64(fmt, 1.5)), 1.5);
/// assert_eq!(convert::from_f64(fmt, 1e9), fmt.inf_bits(false));
/// # Ok::<(), dp_minifloat::FormatError>(())
/// ```
pub fn from_f64(fmt: FloatFormat, v: f64) -> u32 {
    if v.is_nan() {
        return encode_nan(fmt);
    }
    if v.is_infinite() {
        return encode_inf(fmt, v < 0.0);
    }
    if v == 0.0 {
        return encode_zero(fmt, v.is_sign_negative());
    }
    let bits = v.to_bits();
    let sign = bits >> 63 == 1;
    let exp_field = ((bits >> 52) & 0x7ff) as i32;
    let man = bits & ((1u64 << 52) - 1);
    let (scale, sig) = if exp_field == 0 {
        let lz = man.leading_zeros();
        (-1011 - lz as i32, man << lz)
    } else {
        (exp_field - 1023, ((1u64 << 52) | man) << 11)
    };
    encode(fmt, sign, scale, sig, false)
}

/// Converts an `f64` to the nearest minifloat, **clipping at ±max** instead
/// of overflowing to infinity — the quantization rule of the paper's EMAC
/// datapath ("clipped at the maximum magnitude if applicable"). NaN still
/// maps to NaN.
pub fn from_f64_saturating(fmt: FloatFormat, v: f64) -> u32 {
    if v.is_nan() {
        return encode_nan(fmt);
    }
    let b = from_f64(fmt, v);
    match decode(fmt, b) {
        FloatClass::Inf(s) => fmt.max_bits(s),
        _ => b,
    }
}

/// Converts a minifloat to `f64` (always exact: `wf ≤ 23`, `we ≤ 8`).
pub fn to_f64(fmt: FloatFormat, bits: u32) -> f64 {
    match decode(fmt, bits) {
        FloatClass::Zero(s) => {
            if s {
                -0.0
            } else {
                0.0
            }
        }
        FloatClass::Inf(s) => {
            if s {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        }
        FloatClass::NaN => f64::NAN,
        FloatClass::Finite(u) => {
            let tz = u.sig.trailing_zeros();
            let m = (u.sig >> tz) as f64;
            let v = m * 2f64.powi(u.scale - 63 + tz as i32);
            if u.sign {
                -v
            } else {
                v
            }
        }
    }
}

/// Re-rounds a minifloat from one format into another.
pub fn convert(src: FloatFormat, dst: FloatFormat, bits: u32) -> u32 {
    match decode(src, bits) {
        FloatClass::Zero(s) => encode_zero(dst, s),
        FloatClass::Inf(s) => encode_inf(dst, s),
        FloatClass::NaN => encode_nan(dst),
        FloatClass::Finite(u) => encode(dst, u.sign, u.scale, u.sig, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(we: u32, wf: u32) -> FloatFormat {
        FloatFormat::new(we, wf).unwrap()
    }

    #[test]
    fn roundtrip_all_patterns() {
        for (we, wf) in [(2, 2), (3, 2), (3, 4), (4, 3), (5, 2), (5, 10), (8, 7)] {
            let f = fmt(we, wf);
            for bits in f.patterns() {
                let v = to_f64(f, bits);
                let back = from_f64(f, v);
                if v.is_nan() {
                    assert_eq!(decode(f, back), FloatClass::NaN, "{f} {bits:#x}");
                } else {
                    assert_eq!(back, bits, "{f} {bits:#x} -> {v}");
                }
            }
        }
    }

    #[test]
    fn half_precision_known_values() {
        let f = fmt(5, 10);
        assert_eq!(from_f64(f, 1.0), 0x3c00);
        assert_eq!(from_f64(f, -2.0), 0xc000);
        assert_eq!(from_f64(f, 65504.0), 0x7bff);
        assert_eq!(from_f64(f, 65520.0), 0x7c00, "overflow boundary -> inf");
        assert_eq!(from_f64(f, 2f64.powi(-24)), 0x0001, "min subnormal");
        assert_eq!(from_f64(f, 2f64.powi(-25)), 0x0000, "tie to even -> 0");
    }

    #[test]
    fn bf16_known_values() {
        let f = fmt(8, 7);
        // bf16 is f32's top half: check against f32 bit patterns.
        for v in [1.0f64, -1.0, 0.5, 3.140625, 255.0] {
            let expected = (v as f32).to_bits() >> 16;
            assert_eq!(from_f64(f, v), expected, "bf16 {v}");
        }
    }

    #[test]
    fn saturating_quantizer_clips() {
        let f = fmt(4, 3);
        assert_eq!(from_f64_saturating(f, 1e9), f.max_bits(false));
        assert_eq!(from_f64_saturating(f, -1e9), f.max_bits(true));
        assert_eq!(to_f64(f, from_f64_saturating(f, 1e9)), 240.0);
        assert_eq!(from_f64_saturating(f, 1.5), from_f64(f, 1.5));
        assert_eq!(decode(f, from_f64_saturating(f, f64::NAN)), FloatClass::NaN);
    }

    #[test]
    fn signed_zero_preserved() {
        let f = fmt(4, 3);
        assert_eq!(from_f64(f, -0.0), 0x80);
        assert!(to_f64(f, 0x80).is_sign_negative());
    }

    #[test]
    fn cross_format() {
        let (a, b) = (fmt(5, 10), fmt(4, 3));
        let x = from_f64(a, 1.3125);
        assert_eq!(convert(a, b, x), from_f64(b, 1.3125));
        assert_eq!(convert(a, b, a.inf_bits(true)), b.inf_bits(true));
    }
}
