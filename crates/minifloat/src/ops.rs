//! Correctly rounded minifloat arithmetic on raw bit patterns.
//!
//! Same exactness discipline as `dp-posit`: each operation computes an
//! exact integer intermediate and rounds once, with full IEEE-754 special
//! value semantics (signed zeros, ±Inf, NaN propagation).

use crate::codec::{
    decode, encode, encode_inf, encode_nan, encode_zero, FloatClass, FloatUnpacked,
};
use crate::format::FloatFormat;
use std::cmp::Ordering;

/// Negation (sign-bit flip; exact, applies to zeros/Inf/NaN too).
#[inline]
pub fn neg(fmt: FloatFormat, a: u32) -> u32 {
    (a ^ (1 << (fmt.n() - 1))) & fmt.mask()
}

/// Absolute value (sign-bit clear).
#[inline]
pub fn abs(fmt: FloatFormat, a: u32) -> u32 {
    a & (fmt.mask() >> 1)
}

/// True for finite negative values and −Inf (not NaN, not −0).
pub fn is_negative(fmt: FloatFormat, a: u32) -> bool {
    match decode(fmt, a) {
        FloatClass::Finite(u) => u.sign,
        FloatClass::Inf(s) => s,
        _ => false,
    }
}

/// IEEE comparison: NaN is unordered (returns `None`); ±0 compare equal.
pub fn cmp(fmt: FloatFormat, a: u32, b: u32) -> Option<Ordering> {
    let ka = key(fmt, a)?;
    let kb = key(fmt, b)?;
    Some(ka.cmp(&kb))
}

/// Total-order key for finite/Inf patterns (None for NaN): sign-magnitude
/// to two's-complement trick, with both zeros mapping to 0.
fn key(fmt: FloatFormat, a: u32) -> Option<i64> {
    match decode(fmt, a) {
        FloatClass::NaN => None,
        FloatClass::Zero(_) => Some(0),
        _ => {
            let a = (a & fmt.mask()) as i64;
            let signbit = 1i64 << (fmt.n() - 1);
            Some(if a & signbit != 0 { signbit - a } else { a })
        }
    }
}

/// Addition with a single rounding (IEEE RNE).
pub fn add(fmt: FloatFormat, a: u32, b: u32) -> u32 {
    let (ua, ub) = match (decode(fmt, a), decode(fmt, b)) {
        (FloatClass::NaN, _) | (_, FloatClass::NaN) => return encode_nan(fmt),
        (FloatClass::Inf(sa), FloatClass::Inf(sb)) => {
            return if sa == sb {
                encode_inf(fmt, sa)
            } else {
                encode_nan(fmt)
            };
        }
        (FloatClass::Inf(s), _) => return encode_inf(fmt, s),
        (_, FloatClass::Inf(s)) => return encode_inf(fmt, s),
        (FloatClass::Zero(sa), FloatClass::Zero(sb)) => {
            // RNE: +0 + -0 = +0; like signs keep the sign.
            return encode_zero(fmt, sa && sb);
        }
        (FloatClass::Zero(_), _) => return b & fmt.mask(),
        (_, FloatClass::Zero(_)) => return a & fmt.mask(),
        (FloatClass::Finite(ua), FloatClass::Finite(ub)) => (ua, ub),
    };
    add_finite(fmt, ua, ub)
}

fn add_finite(fmt: FloatFormat, ua: FloatUnpacked, ub: FloatUnpacked) -> u32 {
    let (hi, lo) = if (ua.scale, ua.sig) >= (ub.scale, ub.sig) {
        (ua, ub)
    } else {
        (ub, ua)
    };
    let d = (hi.scale - lo.scale) as u32;
    let hi128 = (hi.sig as u128) << 64;
    let lo_full = (lo.sig as u128) << 64;
    let (lo128, mut sticky) = if d == 0 {
        (lo_full, false)
    } else if d < 128 {
        (lo_full >> d, lo_full & ((1u128 << d) - 1) != 0)
    } else {
        (0, true)
    };
    if hi.sign == lo.sign {
        let (sum, carry) = hi128.overflowing_add(lo128);
        let (sum, scale_inc) = if carry {
            sticky |= sum & 1 == 1;
            ((sum >> 1) | (1u128 << 127), 1)
        } else {
            (sum, 0)
        };
        let sig = (sum >> 64) as u64;
        sticky |= sum as u64 != 0;
        encode(fmt, hi.sign, hi.scale + scale_inc, sig, sticky)
    } else {
        let mut mag = hi128.wrapping_sub(lo128);
        if sticky {
            mag = mag.wrapping_sub(1);
        }
        if mag == 0 {
            return encode_zero(fmt, false); // exact cancellation -> +0 (RNE)
        }
        let lz = mag.leading_zeros();
        mag <<= lz;
        let sig = (mag >> 64) as u64;
        sticky |= mag as u64 != 0;
        encode(fmt, hi.sign, hi.scale - lz as i32, sig, sticky)
    }
}

/// Subtraction: `a + (-b)`.
#[inline]
pub fn sub(fmt: FloatFormat, a: u32, b: u32) -> u32 {
    add(fmt, a, neg(fmt, b))
}

/// Multiplication with a single rounding (IEEE RNE).
pub fn mul(fmt: FloatFormat, a: u32, b: u32) -> u32 {
    let (ua, ub) = match (decode(fmt, a), decode(fmt, b)) {
        (FloatClass::NaN, _) | (_, FloatClass::NaN) => return encode_nan(fmt),
        (FloatClass::Inf(sa), FloatClass::Inf(sb)) => return encode_inf(fmt, sa ^ sb),
        (FloatClass::Inf(s), FloatClass::Zero(_)) | (FloatClass::Zero(_), FloatClass::Inf(s)) => {
            let _ = s;
            return encode_nan(fmt); // 0 × ∞
        }
        (FloatClass::Inf(sa), FloatClass::Finite(u)) => return encode_inf(fmt, sa ^ u.sign),
        (FloatClass::Finite(u), FloatClass::Inf(sb)) => return encode_inf(fmt, u.sign ^ sb),
        (FloatClass::Zero(sa), FloatClass::Zero(sb)) => return encode_zero(fmt, sa ^ sb),
        (FloatClass::Zero(sa), FloatClass::Finite(u)) => return encode_zero(fmt, sa ^ u.sign),
        (FloatClass::Finite(u), FloatClass::Zero(sb)) => return encode_zero(fmt, u.sign ^ sb),
        (FloatClass::Finite(ua), FloatClass::Finite(ub)) => (ua, ub),
    };
    let prod = (ua.sig as u128) * (ub.sig as u128);
    let sign = ua.sign ^ ub.sign;
    let (sig, sticky, scale) = if prod >> 127 == 1 {
        (
            (prod >> 64) as u64,
            prod as u64 != 0,
            ua.scale + ub.scale + 1,
        )
    } else {
        (
            (prod >> 63) as u64,
            prod & ((1u128 << 63) - 1) != 0,
            ua.scale + ub.scale,
        )
    };
    encode(fmt, sign, scale, sig, sticky)
}

/// Division with a single rounding (IEEE RNE).
pub fn div(fmt: FloatFormat, a: u32, b: u32) -> u32 {
    let (ua, ub) = match (decode(fmt, a), decode(fmt, b)) {
        (FloatClass::NaN, _) | (_, FloatClass::NaN) => return encode_nan(fmt),
        (FloatClass::Inf(_), FloatClass::Inf(_)) => return encode_nan(fmt),
        (FloatClass::Zero(_), FloatClass::Zero(_)) => return encode_nan(fmt),
        (FloatClass::Inf(sa), FloatClass::Finite(u)) => return encode_inf(fmt, sa ^ u.sign),
        (FloatClass::Inf(sa), FloatClass::Zero(sb)) => return encode_inf(fmt, sa ^ sb),
        (FloatClass::Finite(u), FloatClass::Inf(sb)) => return encode_zero(fmt, u.sign ^ sb),
        (FloatClass::Zero(sa), FloatClass::Inf(sb)) => return encode_zero(fmt, sa ^ sb),
        (FloatClass::Zero(sa), FloatClass::Finite(u)) => return encode_zero(fmt, sa ^ u.sign),
        (FloatClass::Finite(u), FloatClass::Zero(sb)) => return encode_inf(fmt, u.sign ^ sb),
        (FloatClass::Finite(ua), FloatClass::Finite(ub)) => (ua, ub),
    };
    let sign = ua.sign ^ ub.sign;
    let num = (ua.sig as u128) << 63;
    let den = ub.sig as u128;
    let q = num / den;
    let r = num % den;
    let (sig, scale, sticky) = if q >> 63 == 1 {
        (q as u64, ua.scale - ub.scale, r != 0)
    } else {
        let r2 = r << 1;
        let bit = (r2 >= den) as u128;
        let r3 = r2 - if bit == 1 { den } else { 0 };
        (((q << 1) | bit) as u64, ua.scale - ub.scale - 1, r3 != 0)
    };
    encode(fmt, sign, scale, sig, sticky)
}

/// Square root with a single rounding. `sqrt(-0) = -0`; negatives give NaN.
pub fn sqrt(fmt: FloatFormat, a: u32) -> u32 {
    let u = match decode(fmt, a) {
        FloatClass::NaN => return encode_nan(fmt),
        FloatClass::Zero(s) => return encode_zero(fmt, s),
        FloatClass::Inf(false) => return encode_inf(fmt, false),
        FloatClass::Inf(true) => return encode_nan(fmt),
        FloatClass::Finite(u) if u.sign => return encode_nan(fmt),
        FloatClass::Finite(u) => u,
    };
    let e = u.scale - 63;
    let shift: u32 = if (e + 63) % 2 == 0 { 63 } else { 64 };
    let big = (u.sig as u128) << shift;
    let r = isqrt_u128(big);
    let rem = big - r * r;
    let scale = (e - shift as i32) / 2 + 63;
    encode(fmt, false, scale, r as u64, rem != 0)
}

fn isqrt_u128(v: u128) -> u128 {
    if v == 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as u128 + 2;
    loop {
        let y = (x + v / x) / 2;
        if y >= x {
            break;
        }
        x = y;
    }
    while x.checked_mul(x).is_none_or(|sq| sq > v) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= v) {
        x += 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{from_f64, to_f64};

    fn fmt(we: u32, wf: u32) -> FloatFormat {
        FloatFormat::new(we, wf).unwrap()
    }

    #[test]
    fn add_basic() {
        let f = fmt(4, 3);
        let one = from_f64(f, 1.0);
        let half = from_f64(f, 0.5);
        assert_eq!(to_f64(f, add(f, one, half)), 1.5);
        assert_eq!(to_f64(f, add(f, one, neg(f, half))), 0.5);
        assert_eq!(add(f, one, neg(f, one)), 0, "exact cancel -> +0");
    }

    #[test]
    fn add_special_values() {
        let f = fmt(4, 3);
        let inf = encode_inf(f, false);
        let ninf = encode_inf(f, true);
        let nan = encode_nan(f);
        let x = from_f64(f, 2.0);
        assert_eq!(add(f, inf, x), inf);
        assert_eq!(add(f, ninf, x), ninf);
        assert_eq!(decode(f, add(f, inf, ninf)), FloatClass::NaN);
        assert_eq!(decode(f, add(f, nan, x)), FloatClass::NaN);
        // Signed zero rules
        assert_eq!(
            add(f, f.zero_bits(true), f.zero_bits(true)),
            f.zero_bits(true)
        );
        assert_eq!(add(f, f.zero_bits(true), f.zero_bits(false)), 0);
        assert_eq!(add(f, f.zero_bits(true), x), x);
    }

    #[test]
    fn add_overflow_to_inf() {
        let f = fmt(4, 3);
        let max = f.max_bits(false);
        assert_eq!(add(f, max, max), f.inf_bits(false));
    }

    #[test]
    fn mul_basic_and_specials() {
        let f = fmt(4, 3);
        let a = from_f64(f, 1.5);
        let b = from_f64(f, 2.5);
        assert_eq!(to_f64(f, mul(f, a, b)), 3.75);
        assert_eq!(mul(f, a, f.zero_bits(false)), 0);
        assert_eq!(mul(f, neg(f, a), f.zero_bits(false)), f.zero_bits(true));
        assert_eq!(
            decode(f, mul(f, f.inf_bits(false), f.zero_bits(false))),
            FloatClass::NaN
        );
        assert_eq!(mul(f, f.inf_bits(false), neg(f, a)), f.inf_bits(true));
    }

    #[test]
    fn mul_underflow_is_gradual_then_zero() {
        let f = fmt(4, 3);
        let minsub = from_f64(f, f.min_value());
        let half = from_f64(f, 0.5);
        // minsub × 0.5 ties with zero -> 0 (even)
        assert_eq!(mul(f, minsub, half), 0);
        // 3×minsub × 0.5 = 1.5 minsub -> rounds to 2 minsub (even)
        let three = from_f64(f, 3.0 * f.min_value());
        assert_eq!(to_f64(f, mul(f, three, half)), 2.0 * f.min_value());
    }

    #[test]
    fn div_basic_and_specials() {
        let f = fmt(4, 3);
        let six = from_f64(f, 6.0);
        let two = from_f64(f, 2.0);
        assert_eq!(to_f64(f, div(f, six, two)), 3.0);
        assert_eq!(div(f, six, f.zero_bits(false)), f.inf_bits(false));
        assert_eq!(div(f, six, f.zero_bits(true)), f.inf_bits(true));
        assert_eq!(
            decode(f, div(f, f.zero_bits(false), f.zero_bits(true))),
            FloatClass::NaN
        );
        assert_eq!(div(f, f.zero_bits(true), six), f.zero_bits(true));
        assert_eq!(div(f, six, f.inf_bits(false)), 0);
    }

    #[test]
    fn sqrt_basic() {
        let f = fmt(5, 10); // fp16
        assert_eq!(to_f64(f, sqrt(f, from_f64(f, 4.0))), 2.0);
        assert_eq!(sqrt(f, f.zero_bits(true)), f.zero_bits(true));
        assert_eq!(decode(f, sqrt(f, from_f64(f, -1.0))), FloatClass::NaN);
        assert_eq!(sqrt(f, f.inf_bits(false)), f.inf_bits(false));
        let r = to_f64(f, sqrt(f, from_f64(f, 2.0)));
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn cmp_ieee_semantics() {
        let f = fmt(4, 3);
        let a = from_f64(f, 1.0);
        let b = from_f64(f, -2.0);
        assert_eq!(cmp(f, a, b), Some(Ordering::Greater));
        assert_eq!(cmp(f, b, a), Some(Ordering::Less));
        assert_eq!(cmp(f, a, a), Some(Ordering::Equal));
        assert_eq!(
            cmp(f, f.zero_bits(true), f.zero_bits(false)),
            Some(Ordering::Equal)
        );
        assert_eq!(cmp(f, encode_nan(f), a), None);
        assert_eq!(cmp(f, f.inf_bits(true), b), Some(Ordering::Less));
    }

    #[test]
    fn neg_abs_patterns() {
        let f = fmt(4, 3);
        let a = from_f64(f, -1.5);
        assert_eq!(to_f64(f, abs(f, a)), 1.5);
        assert_eq!(to_f64(f, neg(f, a)), 1.5);
        assert!(is_negative(f, a));
        assert!(!is_negative(f, f.zero_bits(true)));
        assert!(is_negative(f, f.inf_bits(true)));
    }
}
