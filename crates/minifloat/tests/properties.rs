//! Property-based tests for minifloat arithmetic across formats.

use dp_minifloat::{decode, ops, FloatClass, FloatFormat};
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = FloatFormat> {
    prop_oneof![
        Just(FloatFormat::new(2, 2).unwrap()),
        Just(FloatFormat::new(3, 2).unwrap()),
        Just(FloatFormat::new(3, 4).unwrap()),
        Just(FloatFormat::new(4, 3).unwrap()),
        Just(FloatFormat::new(5, 2).unwrap()),
        Just(FloatFormat::new(5, 10).unwrap()),
        Just(FloatFormat::new(8, 7).unwrap()),
        Just(FloatFormat::new(8, 23).unwrap()),
    ]
}

prop_compose! {
    fn fmt_and_patterns()(f in formats())(
        f in Just(f),
        a in 0u32..=u32::MAX,
        b in 0u32..=u32::MAX,
    ) -> (FloatFormat, u32, u32) {
        (f, a & f.mask(), b & f.mask())
    }
}

fn is_nan(f: FloatFormat, x: u32) -> bool {
    matches!(decode(f, x), FloatClass::NaN)
}

proptest! {
    #[test]
    fn f64_roundtrip((f, a, _b) in fmt_and_patterns()) {
        prop_assume!(!is_nan(f, a));
        let v = dp_minifloat::convert::to_f64(f, a);
        prop_assert_eq!(dp_minifloat::convert::from_f64(f, v), a);
    }

    #[test]
    fn add_commutes((f, a, b) in fmt_and_patterns()) {
        prop_assert_eq!(ops::add(f, a, b), ops::add(f, b, a));
    }

    #[test]
    fn mul_commutes((f, a, b) in fmt_and_patterns()) {
        prop_assert_eq!(ops::mul(f, a, b), ops::mul(f, b, a));
    }

    #[test]
    fn add_matches_f64_when_exact((f, a, b) in fmt_and_patterns()) {
        // f64 carries ≥ 52 mantissa bits; for wf ≤ 10 and we ≤ 5 the sum
        // of two finite minifloats is exact in f64, so converting back is
        // the correctly rounded result.
        prop_assume!(f.wf() <= 10 && f.we() <= 5);
        let (va, vb) = (
            dp_minifloat::convert::to_f64(f, a),
            dp_minifloat::convert::to_f64(f, b),
        );
        prop_assume!(va.is_finite() && vb.is_finite());
        let got = ops::add(f, a, b);
        let want = dp_minifloat::convert::from_f64(f, va + vb);
        // Signed-zero results may differ in sign convention only when the
        // exact sum is zero with mixed signs; both paths produce +0 there.
        prop_assert_eq!(got, want,
            "{} + {} ({} + {})", a, b, va, vb);
    }

    #[test]
    fn mul_matches_f64_when_exact((f, a, b) in fmt_and_patterns()) {
        prop_assume!(f.wf() <= 10 && f.we() <= 5);
        let (va, vb) = (
            dp_minifloat::convert::to_f64(f, a),
            dp_minifloat::convert::to_f64(f, b),
        );
        prop_assume!(va.is_finite() && vb.is_finite());
        let got = ops::mul(f, a, b);
        let want = dp_minifloat::convert::from_f64(f, va * vb);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn neg_is_involutive_and_flips_sign((f, a, _b) in fmt_and_patterns()) {
        let n = ops::neg(f, a);
        prop_assert_eq!(ops::neg(f, n), a);
        if !is_nan(f, a) {
            let (va, vn) = (
                dp_minifloat::convert::to_f64(f, a),
                dp_minifloat::convert::to_f64(f, n),
            );
            if va.is_finite() {
                prop_assert_eq!(vn, -va);
            }
        }
    }

    #[test]
    fn nan_propagates((f, a, _b) in fmt_and_patterns()) {
        prop_assume!(f.wf() > 0);
        let nan = f.nan_bits();
        prop_assert!(is_nan(f, ops::add(f, nan, a)));
        prop_assert!(is_nan(f, ops::mul(f, a, nan)));
        prop_assert!(is_nan(f, ops::div(f, nan, a)));
    }

    #[test]
    fn comparison_matches_f64((f, a, b) in fmt_and_patterns()) {
        let (va, vb) = (
            dp_minifloat::convert::to_f64(f, a),
            dp_minifloat::convert::to_f64(f, b),
        );
        prop_assert_eq!(ops::cmp(f, a, b), va.partial_cmp(&vb));
    }

    #[test]
    fn saturating_quantizer_never_yields_inf(v in -1e30f64..1e30f64, f in formats()) {
        let bits = dp_minifloat::convert::from_f64_saturating(f, v);
        prop_assert!(!matches!(decode(f, bits), FloatClass::Inf(_)));
        let back = dp_minifloat::convert::to_f64(f, bits);
        prop_assert!(back.abs() <= f.max_value());
    }

    #[test]
    fn sqrt_result_squared_is_close((f, a, _b) in fmt_and_patterns()) {
        prop_assume!(!is_nan(f, a));
        let va = dp_minifloat::convert::to_f64(f, a);
        prop_assume!(va.is_finite() && va > 0.0);
        let r = dp_minifloat::convert::to_f64(f, ops::sqrt(f, a));
        // Within a couple of ulps relatively.
        let rel = ((r * r - va) / va).abs();
        let ulp_rel = 2f64.powi(-(f.wf() as i32));
        prop_assert!(rel <= 3.0 * ulp_rel, "sqrt({va}) = {r}, rel {rel}");
    }
}
