//! Exhaustive validation of 8-bit-and-below minifloat arithmetic against an
//! independent value-space oracle built on `dp_posit::exact::Dyadic`.
//!
//! IEEE-754 rounding is round-to-nearest in *value* space with ties to even
//! mantissa, so the oracle locates the exact result between two adjacent
//! patterns (pattern order == value order for positive IEEE floats,
//! subnormals included) and compares against their arithmetic midpoint.

use dp_minifloat::{decode, ops, FloatClass, FloatFormat};
use dp_posit::exact::Dyadic;
use std::cmp::Ordering;

const FORMATS: &[(u32, u32)] = &[
    (2, 2),
    (2, 3),
    (3, 2),
    (3, 3),
    (3, 4),
    (4, 2),
    (4, 3),
    (5, 2),
];

fn fmt(we: u32, wf: u32) -> FloatFormat {
    FloatFormat::new(we, wf).unwrap()
}

/// Independent pattern → value computation (does not use crate decode).
fn pattern_value(f: FloatFormat, bits: u32) -> f64 {
    let (we, wf) = (f.we(), f.wf());
    let sign = if bits >> (f.n() - 1) == 1 { -1.0 } else { 1.0 };
    let exp = (bits >> wf) & ((1 << we) - 1);
    let frac = (bits & ((1 << wf) - 1)) as f64;
    let bias = (1i32 << (we - 1)) - 1;
    assert_ne!(exp, (1 << we) - 1, "finite patterns only");
    if exp == 0 {
        sign * frac * 2f64.powi(1 - bias - wf as i32)
    } else {
        sign * (2f64.powi(wf as i32) + frac) * 2f64.powi(exp as i32 - bias - wf as i32)
    }
}

/// Positive-domain midpoint between adjacent patterns `p` and `p+1`.
fn midpoint(f: FloatFormat, p: u32) -> Dyadic {
    let mut m =
        Dyadic::from_f64(pattern_value(f, p)).add(Dyadic::from_f64(pattern_value(f, p + 1)));
    if !m.is_zero() {
        m.exp -= 1;
    }
    m
}

/// Overflow threshold: max + ulp_top/2 (at or above rounds to infinity).
fn overflow_bound(f: FloatFormat) -> Dyadic {
    let ulp_half = Dyadic::from_f64(2f64.powi(f.max_scale() - f.wf() as i32 - 1));
    Dyadic::from_f64(f.max_value()).add(ulp_half)
}

/// Value-space RNE oracle for finite exact values.
fn round_oracle(f: FloatFormat, d: Dyadic) -> u32 {
    if d.is_zero() {
        return 0; // +0
    }
    let sign = d.sign;
    let mag = Dyadic { sign: false, ..d };
    let signbit = (sign as u32) << (f.n() - 1);
    match mag.cmp_value(overflow_bound(f)) {
        Ordering::Less => {}
        // tie or above: overflow to infinity (the hypothetical next value
        // has an even mantissa, so the tie also goes up)
        _ => return f.inf_bits(sign),
    }
    let max_pat = f.max_bits(false);
    if mag.cmp_value(Dyadic::from_f64(f.max_value())) == Ordering::Greater {
        return signbit | max_pat; // in (max, max + ulp/2)
    }
    // Binary search: largest positive pattern with value <= mag.
    let (mut lo, mut hi) = (0u32, max_pat);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        match Dyadic::from_f64(pattern_value(f, mid)).cmp_value(mag) {
            Ordering::Greater => hi = mid,
            Ordering::Equal => return signbit | mid,
            Ordering::Less => lo = mid,
        }
    }
    if Dyadic::from_f64(pattern_value(f, hi)).cmp_value(mag) != Ordering::Greater {
        lo = hi; // mag == value(hi) (or mag == max)
    }
    if Dyadic::from_f64(pattern_value(f, lo)) == mag {
        return signbit | lo;
    }
    let m = midpoint(f, lo);
    let chosen = match mag.cmp_value(m) {
        Ordering::Less => lo,
        Ordering::Greater => lo + 1,
        Ordering::Equal => {
            if lo & 1 == 0 {
                lo
            } else {
                lo + 1
            }
        }
    };
    signbit | chosen
}

fn is_zero_pat(f: FloatFormat, p: u32) -> Option<bool> {
    match decode(f, p) {
        FloatClass::Zero(s) => Some(s),
        _ => None,
    }
}

#[test]
fn add_matches_oracle_exhaustively() {
    for &(we, wf) in FORMATS {
        let f = fmt(we, wf);
        let finites: Vec<u32> = f.finites().collect();
        for &a in &finites {
            let va = Dyadic::from_f64(pattern_value(f, a));
            for &b in &finites {
                let got = ops::add(f, a, b);
                let expected = match (is_zero_pat(f, a), is_zero_pat(f, b)) {
                    (Some(sa), Some(sb)) => f.zero_bits(sa && sb),
                    (Some(_), None) => b,
                    (None, Some(_)) => a,
                    (None, None) => {
                        let exact = va.add(Dyadic::from_f64(pattern_value(f, b)));
                        if exact.is_zero() {
                            0 // x + (-x) = +0 under RNE
                        } else {
                            round_oracle(f, exact)
                        }
                    }
                };
                assert_eq!(got, expected, "{f}: {a:#x} + {b:#x}");
            }
        }
    }
}

#[test]
fn mul_matches_oracle_exhaustively() {
    for &(we, wf) in FORMATS {
        let f = fmt(we, wf);
        let finites: Vec<u32> = f.finites().collect();
        for &a in &finites {
            let va = Dyadic::from_f64(pattern_value(f, a));
            let sa = a >> (f.n() - 1) == 1;
            for &b in &finites {
                let got = ops::mul(f, a, b);
                let sb = b >> (f.n() - 1) == 1;
                let expected = if is_zero_pat(f, a).is_some() || is_zero_pat(f, b).is_some() {
                    f.zero_bits(sa ^ sb)
                } else {
                    let exact = va.mul(Dyadic::from_f64(pattern_value(f, b)));
                    let r = round_oracle(f, exact);
                    // underflow to zero keeps the product sign
                    if r & (f.mask() >> 1) == 0 {
                        f.zero_bits(sa ^ sb)
                    } else {
                        r
                    }
                };
                assert_eq!(got, expected, "{f}: {a:#x} * {b:#x}");
            }
        }
    }
}

/// Interval check for division: |a/b| must sit on the correct side of the
/// midpoints around the returned quotient (exact cross-multiplication).
#[test]
fn div_matches_oracle_exhaustively() {
    for &(we, wf) in FORMATS {
        let f = fmt(we, wf);
        let finites: Vec<u32> = f.finites().collect();
        for &a in &finites {
            if is_zero_pat(f, a).is_some() {
                continue; // special-value semantics covered by unit tests
            }
            let mag_a = Dyadic {
                sign: false,
                ..Dyadic::from_f64(pattern_value(f, a))
            };
            let sa = a >> (f.n() - 1) == 1;
            for &b in &finites {
                if is_zero_pat(f, b).is_some() {
                    continue;
                }
                let sb = b >> (f.n() - 1) == 1;
                let q = ops::div(f, a, b);
                let mag_b = Dyadic {
                    sign: false,
                    ..Dyadic::from_f64(pattern_value(f, b))
                };
                // Sign is always the XOR.
                assert_eq!(q >> (f.n() - 1) == 1, sa ^ sb, "{f}: {a:#x}/{b:#x} sign");
                let qa = q & (f.mask() >> 1);
                if qa == f.inf_bits(false) & (f.mask() >> 1) {
                    // Overflowed: |a| must be >= bound × |b| (tie goes up).
                    let lhs = overflow_bound(f).mul(mag_b);
                    assert_ne!(
                        mag_a.cmp_value(lhs),
                        Ordering::Less,
                        "{f}: {a:#x}/{b:#x} overflowed too eagerly"
                    );
                    continue;
                }
                // Lower midpoint (qa == 0 means underflow-to-zero; its lower
                // bound is absent).
                if qa > 0 {
                    let m = midpoint(f, qa - 1).mul(mag_b);
                    match m.cmp_value(mag_a) {
                        Ordering::Greater => panic!("{f}: |{a:#x}/{b:#x}| = {qa:#x} too high"),
                        Ordering::Equal => assert_eq!(qa & 1, 0, "{f}: tie must pick even"),
                        Ordering::Less => {}
                    }
                }
                // Upper midpoint.
                if qa < f.max_bits(false) {
                    let m = midpoint(f, qa).mul(mag_b);
                    match mag_a.cmp_value(m) {
                        Ordering::Greater => panic!("{f}: |{a:#x}/{b:#x}| = {qa:#x} too low"),
                        Ordering::Equal => assert_eq!(qa & 1, 0, "{f}: tie must pick even"),
                        Ordering::Less => {}
                    }
                } else {
                    let bound = overflow_bound(f).mul(mag_b);
                    assert_ne!(
                        mag_a.cmp_value(bound),
                        Ordering::Greater,
                        "{f}: {a:#x}/{b:#x} should have overflowed"
                    );
                }
            }
        }
    }
}

#[test]
fn sqrt_matches_oracle_exhaustively() {
    for &(we, wf) in FORMATS {
        let f = fmt(we, wf);
        for a in f.finites() {
            if a >> (f.n() - 1) == 1 || is_zero_pat(f, a).is_some() {
                continue;
            }
            let r = ops::sqrt(f, a);
            let da = Dyadic::from_f64(pattern_value(f, a));
            let ra = r & (f.mask() >> 1);
            assert_eq!(r, ra, "{f}: sqrt({a:#x}) must be positive");
            if ra > 0 {
                let m = midpoint(f, ra - 1);
                match m.mul(m).cmp_value(da) {
                    Ordering::Greater => panic!("{f}: sqrt({a:#x}) = {ra:#x} too high"),
                    Ordering::Equal => assert_eq!(ra & 1, 0, "{f}: sqrt tie must pick even"),
                    Ordering::Less => {}
                }
            }
            if ra < f.max_bits(false) {
                let m = midpoint(f, ra);
                match da.cmp_value(m.mul(m)) {
                    Ordering::Greater => panic!("{f}: sqrt({a:#x}) = {ra:#x} too low"),
                    Ordering::Equal => assert_eq!(ra & 1, 0, "{f}: sqrt tie must pick even"),
                    Ordering::Less => {}
                }
            }
        }
    }
}

#[test]
fn oracle_sanity_every_pattern_rounds_to_itself() {
    for &(we, wf) in FORMATS {
        let f = fmt(we, wf);
        for bits in f.finites() {
            if is_zero_pat(f, bits).is_some() {
                continue;
            }
            let d = Dyadic::from_f64(pattern_value(f, bits));
            assert_eq!(round_oracle(f, d), bits, "{f} {bits:#x}");
        }
    }
}
