//! Typed, const-generic fixed-point values with (saturating) operators.

use crate::format::FixedFormat;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// A Q(N−Q).Q fixed-point value of compile-time format.
///
/// All operators saturate; multiplication uses round-to-nearest-even of the
/// low `Q` bits (use [`FixedFormat::mul_truncate`] via the runtime API for
/// the EMAC's truncating semantics).
///
/// # Examples
///
/// ```
/// use dp_fixed::Fixed;
/// type Q8_6 = Fixed<8, 6>;
/// let a = Q8_6::from_f64(0.75);
/// let b = Q8_6::from_f64(0.5);
/// assert_eq!((a * b).to_f64(), 0.375);
/// assert_eq!((a + a).to_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fixed<const N: u32, const Q: u32>(i64);

impl<const N: u32, const Q: u32> Fixed<N, Q> {
    /// The format descriptor of this type.
    pub const FORMAT: FixedFormat = FixedFormat::new_const(N, Q);
    /// Zero.
    pub const ZERO: Self = Fixed(0);
    /// One (saturates for formats that cannot represent 1.0).
    pub const ONE: Self = {
        let raw = 1i64 << Q;
        let max = (1i64 << (N - 1)) - 1;
        Fixed(if raw > max { max } else { raw })
    };
    /// Largest value.
    pub const MAX: Self = Fixed((1i64 << (N - 1)) - 1);
    /// Smallest (most negative) value.
    pub const MIN: Self = Fixed(-(1i64 << (N - 1)));

    /// Constructs from a raw word (saturating).
    pub fn from_raw(raw: i64) -> Self {
        Fixed(Self::FORMAT.saturate(raw))
    }

    /// The raw word.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.0
    }

    /// Quantizes an `f64` (round to nearest even, clip at max magnitude).
    pub fn from_f64(v: f64) -> Self {
        Fixed(Self::FORMAT.from_f64(v))
    }

    /// The exact value as `f64`.
    pub fn to_f64(self) -> f64 {
        Self::FORMAT.to_f64(self.0)
    }

    /// Absolute value (saturating).
    pub fn abs(self) -> Self {
        Fixed(Self::FORMAT.saturate(self.0.abs()))
    }
}

impl<const N: u32, const Q: u32> Add for Fixed<N, Q> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Fixed(Self::FORMAT.add_sat(self.0, rhs.0))
    }
}

impl<const N: u32, const Q: u32> Sub for Fixed<N, Q> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Fixed(Self::FORMAT.sub_sat(self.0, rhs.0))
    }
}

impl<const N: u32, const Q: u32> Mul for Fixed<N, Q> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Fixed(Self::FORMAT.mul_round(self.0, rhs.0))
    }
}

impl<const N: u32, const Q: u32> Neg for Fixed<N, Q> {
    type Output = Self;
    fn neg(self) -> Self {
        Fixed(Self::FORMAT.neg_sat(self.0))
    }
}

impl<const N: u32, const Q: u32> AddAssign for Fixed<N, Q> {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const N: u32, const Q: u32> SubAssign for Fixed<N, Q> {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const N: u32, const Q: u32> MulAssign for Fixed<N, Q> {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const N: u32, const Q: u32> PartialOrd for Fixed<N, Q> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: u32, const Q: u32> Ord for Fixed<N, Q> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl<const N: u32, const Q: u32> fmt::Debug for Fixed<N, Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fixed<{N},{Q}>(raw {} = {})", self.0, self.to_f64())
    }
}

impl<const N: u32, const Q: u32> fmt::Display for Fixed<N, Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl<const N: u32, const Q: u32> fmt::Binary for Fixed<N, Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mask = if N == 64 { u64::MAX } else { (1u64 << N) - 1 };
        fmt::Binary::fmt(&((self.0 as u64) & mask), f)
    }
}

impl<const N: u32, const Q: u32> fmt::LowerHex for Fixed<N, Q> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mask = if N == 64 { u64::MAX } else { (1u64 << N) - 1 };
        fmt::LowerHex::fmt(&((self.0 as u64) & mask), f)
    }
}

impl<const N: u32, const Q: u32> From<Fixed<N, Q>> for f64 {
    fn from(x: Fixed<N, Q>) -> f64 {
        x.to_f64()
    }
}

/// Error parsing a fixed-point value from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFixedError(String);

impl fmt::Display for ParseFixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fixed-point literal: {}", self.0)
    }
}

impl std::error::Error for ParseFixedError {}

impl<const N: u32, const Q: u32> FromStr for Fixed<N, Q> {
    type Err = ParseFixedError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let v: f64 = s.parse().map_err(|_| ParseFixedError(s.to_owned()))?;
        Ok(Self::from_f64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Q8_4 = Fixed<8, 4>;
    type Q8_7 = Fixed<8, 7>;

    #[test]
    fn constants() {
        assert_eq!(Q8_4::ONE.to_f64(), 1.0);
        assert_eq!(Q8_4::MAX.to_f64(), 7.9375);
        assert_eq!(Q8_4::MIN.to_f64(), -8.0);
        // Q1.7 cannot represent 1.0; ONE saturates to max.
        assert_eq!(Q8_7::ONE.to_f64(), 127.0 / 128.0);
    }

    #[test]
    fn operators_saturate() {
        let a = Q8_4::from_f64(7.0);
        assert_eq!((a + a).to_f64(), Q8_4::MAX.to_f64());
        assert_eq!((-Q8_4::MIN).to_f64(), Q8_4::MAX.to_f64());
        let b = Q8_4::from_f64(1.5);
        assert_eq!((a - b).to_f64(), 5.5);
        assert_eq!((b * b).to_f64(), 2.25);
        let mut c = b;
        c += b;
        assert_eq!(c.to_f64(), 3.0);
        c -= b;
        c *= Q8_4::ONE;
        assert_eq!(c, b);
    }

    #[test]
    fn ordering() {
        assert!(Q8_4::from_f64(-1.0) < Q8_4::from_f64(0.25));
        let mut v = [Q8_4::from_f64(2.0), Q8_4::from_f64(-3.0), Q8_4::ZERO];
        v.sort();
        assert_eq!(v[0].to_f64(), -3.0);
        assert_eq!(v[2].to_f64(), 2.0);
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(Q8_4::from_f64(1.25).to_string(), "1.25");
        assert_eq!("0.5".parse::<Q8_4>().unwrap().to_f64(), 0.5);
        assert!("zzz".parse::<Q8_4>().is_err());
        assert_eq!(format!("{:x}", Q8_4::from_f64(-0.0625)), "ff");
        assert_eq!(format!("{:08b}", Q8_4::ONE), "00010000");
    }

    #[test]
    fn from_raw_saturates() {
        assert_eq!(Q8_4::from_raw(1000).raw(), 127);
        assert_eq!(Q8_4::from_raw(-1000).raw(), -128);
    }
}
