//! Runtime-parameterized fixed-point format descriptor and raw-word ops.

use std::fmt;

/// Error returned when constructing an invalid [`FixedFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatError {
    /// `n` outside the supported `2..=32` range.
    WidthOutOfRange(u32),
    /// `q` not strictly below `n`.
    FractionTooWide {
        /// Total width requested.
        n: u32,
        /// Fraction bits requested.
        q: u32,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::WidthOutOfRange(n) => {
                write!(f, "fixed-point width n={n} outside supported range 2..=32")
            }
            FormatError::FractionTooWide { n, q } => {
                write!(f, "fixed-point fraction q={q} must be < n={n}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

/// An `n`-bit two's-complement fixed-point format with `q` fraction bits
/// (Q(n−q).q). Raw words are carried sign-extended in an `i64`.
///
/// # Examples
///
/// ```
/// use dp_fixed::FixedFormat;
/// let fmt = FixedFormat::new(8, 4)?;   // Q4.4
/// assert_eq!(fmt.to_f64(fmt.from_f64(1.25)), 1.25);
/// assert_eq!(fmt.from_f64(100.0), fmt.max_raw()); // clips
/// # Ok::<(), dp_fixed::FormatError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedFormat {
    n: u32,
    q: u32,
}

impl FixedFormat {
    /// Creates a Q(n−q).q format.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] unless `2 <= n <= 32` and `q < n`.
    pub const fn new(n: u32, q: u32) -> Result<Self, FormatError> {
        if n < 2 || n > 32 {
            return Err(FormatError::WidthOutOfRange(n));
        }
        if q >= n {
            return Err(FormatError::FractionTooWide { n, q });
        }
        Ok(FixedFormat { n, q })
    }

    /// Like [`FixedFormat::new`] but panics on invalid parameters; `const`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= n <= 32` and `q < n`.
    pub const fn new_const(n: u32, q: u32) -> Self {
        match Self::new(n, q) {
            Ok(f) => f,
            Err(_) => panic!("invalid fixed-point format parameters"),
        }
    }

    /// Total width in bits.
    #[inline]
    pub const fn n(self) -> u32 {
        self.n
    }

    /// Fraction bits.
    #[inline]
    pub const fn q(self) -> u32 {
        self.q
    }

    /// Integer bits (including sign).
    #[inline]
    pub const fn integer_bits(self) -> u32 {
        self.n - self.q
    }

    /// Largest raw word, `2^(n-1) − 1`.
    #[inline]
    pub const fn max_raw(self) -> i64 {
        (1i64 << (self.n - 1)) - 1
    }

    /// Smallest raw word, `−2^(n-1)`.
    #[inline]
    pub const fn min_raw(self) -> i64 {
        -(1i64 << (self.n - 1))
    }

    /// Largest representable value, `max_raw / 2^q`.
    pub fn max_value(self) -> f64 {
        self.max_raw() as f64 * 2f64.powi(-(self.q as i32))
    }

    /// Smallest positive value (one LSB), `2^−q`.
    pub fn min_value(self) -> f64 {
        2f64.powi(-(self.q as i32))
    }

    /// Dynamic range in decades, `log10(max / min) = log10(2^(n−1) − 1)`
    /// (paper §IV-A) — independent of `q`.
    pub fn dynamic_range_log10(self) -> f64 {
        (self.max_raw() as f64).log10()
    }

    /// Saturates an arbitrary integer to the raw range.
    #[inline]
    pub fn saturate(self, v: i64) -> i64 {
        v.clamp(self.min_raw(), self.max_raw())
    }

    /// Quantizes an `f64` to the nearest raw word (ties to even), clipping
    /// at the maximum magnitude. NaN maps to 0 (documented convention: the
    /// DNN path never produces NaN inputs).
    pub fn from_f64(self, v: f64) -> i64 {
        if v.is_nan() {
            return 0;
        }
        let scaled = v * 2f64.powi(self.q as i32);
        if scaled >= self.max_raw() as f64 {
            return self.max_raw();
        }
        if scaled <= self.min_raw() as f64 {
            return self.min_raw();
        }
        // f64 round-half-even of a value already within i64 range.
        let r = scaled.round_ties_even();
        r as i64
    }

    /// The exact value of a raw word.
    pub fn to_f64(self, raw: i64) -> f64 {
        raw as f64 * 2f64.powi(-(self.q as i32))
    }

    /// Saturating addition of two raw words.
    #[inline]
    pub fn add_sat(self, a: i64, b: i64) -> i64 {
        self.saturate(a + b)
    }

    /// Saturating subtraction of two raw words.
    #[inline]
    pub fn sub_sat(self, a: i64, b: i64) -> i64 {
        self.saturate(a - b)
    }

    /// Saturating negation (−min saturates to max).
    #[inline]
    pub fn neg_sat(self, a: i64) -> i64 {
        self.saturate(-a)
    }

    /// Multiplication with **truncation** of the low `q` bits (arithmetic
    /// shift right — the hardware behaviour in paper Fig. 3) and clipping.
    #[inline]
    pub fn mul_truncate(self, a: i64, b: i64) -> i64 {
        self.saturate((a * b) >> self.q)
    }

    /// Multiplication with round-to-nearest-even of the low `q` bits and
    /// clipping (the higher-quality per-op rounding used for ablations).
    pub fn mul_round(self, a: i64, b: i64) -> i64 {
        let p = a * b;
        self.saturate(rne_shift(p, self.q))
    }

    /// Iterator over every raw word of the format.
    pub fn raws(self) -> impl Iterator<Item = i64> {
        self.min_raw()..=self.max_raw()
    }
}

/// Round-to-nearest-even arithmetic right shift.
pub(crate) fn rne_shift(v: i64, sh: u32) -> i64 {
    if sh == 0 {
        return v;
    }
    let keep = v >> sh;
    let round = (v >> (sh - 1)) & 1;
    let rest = v & ((1i64 << (sh - 1)) - 1);
    if round == 1 && (rest != 0 || keep & 1 == 1) {
        keep + 1
    } else {
        keep
    }
}

impl fmt::Debug for FixedFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FixedFormat(n={}, q={})", self.n, self.q)
    }
}

impl fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fixed<{},{}>", self.n, self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(n: u32, q: u32) -> FixedFormat {
        FixedFormat::new(n, q).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(FixedFormat::new(8, 4).is_ok());
        assert!(FixedFormat::new(1, 0).is_err());
        assert!(FixedFormat::new(33, 4).is_err());
        assert!(FixedFormat::new(8, 8).is_err());
    }

    #[test]
    fn ranges() {
        let f = fmt(8, 4);
        assert_eq!(f.max_raw(), 127);
        assert_eq!(f.min_raw(), -128);
        assert_eq!(f.max_value(), 7.9375);
        assert_eq!(f.min_value(), 0.0625);
        assert_eq!(f.integer_bits(), 4);
    }

    #[test]
    fn quantization_rounds_ties_to_even() {
        let f = fmt(8, 4);
        assert_eq!(f.from_f64(1.25), 20);
        assert_eq!(f.from_f64(0.03125), 0, "tie 0.5 LSB -> even 0");
        assert_eq!(f.from_f64(0.09375), 2, "tie 1.5 LSB -> even 2");
        assert_eq!(f.from_f64(-0.03125), 0);
        assert_eq!(f.from_f64(100.0), 127);
        assert_eq!(f.from_f64(-100.0), -128);
        assert_eq!(f.from_f64(f64::NAN), 0);
    }

    #[test]
    fn roundtrip_all_raws() {
        for (n, q) in [(5, 2), (8, 4), (8, 7), (8, 0), (12, 8), (16, 12)] {
            let f = fmt(n, q);
            for raw in f.raws() {
                assert_eq!(f.from_f64(f.to_f64(raw)), raw, "{f} raw {raw}");
            }
        }
    }

    #[test]
    fn saturating_arithmetic() {
        let f = fmt(8, 4);
        assert_eq!(f.add_sat(127, 1), 127);
        assert_eq!(f.sub_sat(-128, 1), -128);
        assert_eq!(f.neg_sat(-128), 127);
        assert_eq!(f.add_sat(20, 12), 32);
    }

    #[test]
    fn multiplication_truncates_vs_rounds() {
        let f = fmt(8, 4);
        // 1.25 × 1.25 = 1.5625 = raw 25 exactly at q=4? 25/16 = 1.5625: raw
        // product = 20×20 = 400; >>4 = 25 exactly (no truncation error).
        assert_eq!(f.mul_truncate(20, 20), 25);
        assert_eq!(f.mul_round(20, 20), 25);
        // 0.3125 × 0.3125 = 0.09765625: raw 5×5 = 25; >>4 trunc = 1 (0.0625),
        // rne = 2 (0.125) since 25/16 = 1.5625 rounds to 2.
        assert_eq!(f.mul_truncate(5, 5), 1);
        assert_eq!(f.mul_round(5, 5), 2);
        // Truncation is floor, also for negatives (arithmetic shift).
        assert_eq!(f.mul_truncate(-5, 5), -2);
    }

    #[test]
    fn rne_shift_cases() {
        assert_eq!(rne_shift(25, 4), 2);
        assert_eq!(rne_shift(24, 4), 2, "tie 1.5 -> 2");
        assert_eq!(rne_shift(8, 4), 0, "tie 0.5 -> 0");
        assert_eq!(rne_shift(-8, 4), 0, "-0.5 tie -> 0");
        assert_eq!(rne_shift(-24, 4), -2, "-1.5 tie -> -2");
        assert_eq!(rne_shift(7, 0), 7);
    }

    #[test]
    fn dynamic_range_independent_of_q() {
        assert_eq!(
            fmt(8, 2).dynamic_range_log10(),
            fmt(8, 6).dynamic_range_log10()
        );
        assert!((fmt(8, 4).dynamic_range_log10() - 127f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", fmt(8, 4)), "fixed<8,4>");
    }
}
