//! # dp-fixed — parameterizable fixed-point arithmetic
//!
//! The fixed-point baseline of the Deep Positron comparison (paper §III-B):
//! an `n`-bit two's-complement word with `q` fraction bits. A weight, bias
//! or activation is the integer `raw` interpreted as `raw / 2^q`.
//!
//! Semantics follow the paper's EMAC datapath: quantization rounds to
//! nearest (ties to even) and **clips at the maximum magnitude**; the EMAC's
//! final output shift *truncates* (Fig. 3: the sum of products is shifted
//! right by `q` bits and truncated to `n` bits, clipping at the maximum
//! magnitude).
//!
//! ```
//! use dp_fixed::{FixedFormat, Fixed};
//!
//! let fmt = FixedFormat::new(8, 6)?;           // Q2.6
//! assert_eq!(fmt.max_value(), 127.0 / 64.0);
//! let x = fmt.from_f64(0.5);
//! assert_eq!(fmt.to_f64(fmt.add_sat(x, x)), 1.0);
//!
//! type Q8_6 = Fixed<8, 6>;
//! let a = Q8_6::from_f64(1.25);
//! assert_eq!((a + a).to_f64(), Q8_6::FORMAT.max_value()); // saturates
//! # Ok::<(), dp_fixed::FormatError>(())
//! ```

pub mod format;
pub mod lut;
pub mod value;

pub use format::{FixedFormat, FormatError};
pub use value::{Fixed, ParseFixedError};
