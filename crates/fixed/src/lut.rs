//! Table-driven fixed-point decode.
//!
//! Mirror of `dp_posit::lut` / `dp_minifloat::lut` for the fixed-point
//! EMAC: decoding a Q(n−q).q word is just an `n`-bit sign extension, but
//! keeping the same table-driven entry point lets format-generic engines
//! treat the three families uniformly (and the table is exactly the
//! weight-ROM a hardware EMAC would address). Entries hold the
//! sign-extended raw value [`FixedFormat::to_f64`] expects.
//!
//! Unlike the posit (split regime-prefix table, 13–16 bits) and minifloat
//! (computed fused operands, 13–16 bits) families, fixed point needs no
//! wide-format scheme at all: past [`MAX_LUT_WIDTH`] the EMAC computes the
//! sign extension directly — two shifts, exactly what a table lookup would
//! cost — and its eq.-(3) register (`2n + ⌈log2 k⌉` bits) stays inside a
//! native `i128` for every width the crate supports. The 13-bit boundary
//! therefore switches decode *strategy* only, never datapath width; the
//! `boundary_is_deterministic` test pins it.

use crate::format::FixedFormat;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Widest format that gets a decode table (`2^12` entries ≤ 32 KiB).
pub const MAX_LUT_WIDTH: u32 = 12;

/// A precomputed sign-extension table for one fixed-point format.
///
/// # Examples
///
/// ```
/// use dp_fixed::{lut, FixedFormat};
/// let fmt = FixedFormat::new(8, 4)?; // Q4.4
/// let lut = lut::cached(fmt).expect("8-bit formats are table-driven");
/// assert_eq!(lut.decode(0xff), -1); // raw -1 = -0.0625
/// assert_eq!(lut.decode(0x7f), 127);
/// # Ok::<(), dp_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodeLut {
    fmt: FixedFormat,
    entries: Vec<i64>,
}

impl DecodeLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_LUT_WIDTH`].
    pub fn build(fmt: FixedFormat) -> Option<Self> {
        if fmt.n() > MAX_LUT_WIDTH {
            return None;
        }
        let n = fmt.n();
        let entries = (0..(1u32 << n))
            .map(|bits| {
                let sh = 64 - n;
                (((bits as u64) << sh) as i64) >> sh
            })
            .collect();
        Some(DecodeLut { fmt, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// The sign-extended raw value of the low `n` bits of `bits`.
    #[inline]
    pub fn decode(&self, bits: u32) -> i64 {
        self.entries[(bits as usize) & (self.entries.len() - 1)]
    }

    /// Number of table entries (`2^n`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: every format has at least `2^2` patterns.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide decode table for `fmt`, built on first use, or `None`
/// for formats wider than [`MAX_LUT_WIDTH`]. Tables are leaked
/// intentionally (small, finite format space) so hot loops can hold a
/// `'static` borrow.
pub fn cached(fmt: FixedFormat) -> Option<&'static DecodeLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static DecodeLut>>> = OnceLock::new();
    if fmt.n() > MAX_LUT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("fixed LUT cache poisoned");
    Some(
        map.entry((fmt.n(), fmt.q()))
            .or_insert_with(|| Box::leak(Box::new(DecodeLut::build(fmt).expect("width checked")))),
    )
}

/// Widest format that gets a **finished-product table** ([`ProductLut`]):
/// `2^(2n)` entries keep the 8-bit table at 256 KiB.
pub const MAX_PRODUCT_WIDTH: u32 = 8;

/// A finished-product table: the signed `2n`-bit product
/// `sext(w) × sext(a)` for every operand pair — `2^(2n)` entries,
/// ≤ 256 KiB at 8 bits. The n ≤ 8 fixed EMAC inner loop becomes one load
/// and one add, with no sign extension and no multiply. (The raw products
/// carry `2q` fraction bits, exactly like the Fig. 3 multiply stage — the
/// table is independent of `q` but keyed per format for cache uniformity
/// with the posit/minifloat tables.)
#[derive(Debug, Clone)]
pub struct ProductLut {
    fmt: FixedFormat,
    n: u32,
    entries: Vec<i32>,
}

impl ProductLut {
    /// Builds the table for `fmt`, or `None` when the format is wider than
    /// [`MAX_PRODUCT_WIDTH`].
    pub fn build(fmt: FixedFormat) -> Option<Self> {
        if fmt.n() > MAX_PRODUCT_WIDTH {
            return None;
        }
        let n = fmt.n();
        let sext = |bits: u32| -> i64 {
            let sh = 64 - n;
            (((bits as u64) << sh) as i64) >> sh
        };
        let mut entries = Vec::with_capacity(1usize << (2 * n));
        for w in 0..(1u32 << n) {
            let sw = sext(w);
            for a in 0..(1u32 << n) {
                entries.push((sw * sext(a)) as i32);
            }
        }
        Some(ProductLut { fmt, n, entries })
    }

    /// The format this table was built for.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// The signed raw product for the pair (low `n` bits of each operand).
    #[inline]
    pub fn entry(&self, weight: u32, activation: u32) -> i64 {
        let mask = (1u32 << self.n) - 1;
        self.entries[(((weight & mask) as usize) << self.n) | (activation & mask) as usize] as i64
    }

    /// The contiguous `2^n`-entry row for `weight`: element `a` of the
    /// returned slice is `entry(weight, a)` (stored narrow as `i32`).
    /// The tile kernels resolve a weight's row base once and index it
    /// per column, hoisting the weight shift out of the column-wide
    /// inner step — and because the row length is a power of two,
    /// `row[(a & (len − 1)) as usize]` needs no bounds check.
    #[inline]
    pub fn row(&self, weight: u32) -> &[i32] {
        let mask = (1u32 << self.n) - 1;
        let base = ((weight & mask) as usize) << self.n;
        &self.entries[base..base + (1usize << self.n)]
    }

    /// Number of table entries (`2^(2n)`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: every format has at least `2^4` pairs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The process-wide finished-product table for `fmt` (leaked like
/// [`cached`]'s tables), or `None` for formats wider than
/// [`MAX_PRODUCT_WIDTH`].
pub fn product_cached(fmt: FixedFormat) -> Option<&'static ProductLut> {
    static CACHE: OnceLock<Mutex<HashMap<(u32, u32), &'static ProductLut>>> = OnceLock::new();
    if fmt.n() > MAX_PRODUCT_WIDTH {
        return None;
    }
    let mut map = CACHE
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("fixed product LUT cache poisoned");
    Some(
        map.entry((fmt.n(), fmt.q()))
            .or_insert_with(|| Box::leak(Box::new(ProductLut::build(fmt).expect("width checked")))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_table_only_up_to_8_bits() {
        assert!(ProductLut::build(FixedFormat::new(8, 4).unwrap()).is_some());
        assert!(ProductLut::build(FixedFormat::new(9, 4).unwrap()).is_none());
        assert!(product_cached(FixedFormat::new(9, 4).unwrap()).is_none());
        let fmt = FixedFormat::new(8, 6).unwrap();
        assert!(std::ptr::eq(
            product_cached(fmt).unwrap(),
            product_cached(fmt).unwrap()
        ));
    }

    #[test]
    fn product_entries_match_sign_extended_multiply_exhaustively() {
        for (n, q) in [(4u32, 2u32), (6, 3), (8, 6)] {
            let fmt = FixedFormat::new(n, q).unwrap();
            let lut = ProductLut::build(fmt).unwrap();
            assert_eq!(lut.len(), 1usize << (2 * n));
            assert!(!lut.is_empty());
            assert_eq!(lut.format(), fmt);
            let sext = |bits: u32| -> i64 {
                let sh = 64 - n;
                (((bits as u64) << sh) as i64) >> sh
            };
            for w in 0..(1u32 << n) {
                let row = lut.row(w);
                assert_eq!(row.len(), 1usize << n);
                for a in 0..(1u32 << n) {
                    assert_eq!(lut.entry(w, a), sext(w) * sext(a), "{fmt} {w:#x}×{a:#x}");
                    assert_eq!(row[a as usize] as i64, lut.entry(w, a), "{fmt} {w:#x} row");
                }
            }
        }
    }

    #[test]
    fn builds_only_up_to_max_width() {
        assert!(DecodeLut::build(FixedFormat::new(8, 4).unwrap()).is_some());
        assert!(DecodeLut::build(FixedFormat::new(12, 6).unwrap()).is_some());
        assert!(DecodeLut::build(FixedFormat::new(16, 8).unwrap()).is_none());
        assert!(cached(FixedFormat::new(32, 16).unwrap()).is_none());
    }

    #[test]
    fn boundary_is_deterministic() {
        // n = 12 is the last tabulated width; 13 and 16 always compute the
        // sign extension directly (`cached` is None), so no call site can
        // mix table and computed paths for one format.
        assert!(cached(FixedFormat::new(12, 6).unwrap()).is_some());
        for n in [13u32, 16] {
            let fmt = FixedFormat::new(n, 6).unwrap();
            assert!(cached(fmt).is_none(), "n = {n} must skip the table");
            assert!(DecodeLut::build(fmt).is_none());
        }
    }

    #[test]
    fn table_matches_sign_extension_exhaustively() {
        for (n, q) in [(4u32, 2u32), (5, 4), (8, 4), (8, 7), (12, 6)] {
            let fmt = FixedFormat::new(n, q).unwrap();
            let lut = DecodeLut::build(fmt).unwrap();
            assert_eq!(lut.len(), 1 << n);
            for bits in 0..(1u32 << n) {
                let sh = 64 - n;
                let want = (((bits as u64) << sh) as i64) >> sh;
                assert_eq!(lut.decode(bits), want, "{fmt} {bits:#x}");
            }
        }
    }

    #[test]
    fn raw_range_covers_format_extremes() {
        let fmt = FixedFormat::new(8, 4).unwrap();
        let lut = DecodeLut::build(fmt).unwrap();
        assert_eq!(lut.decode(0x80), fmt.min_raw());
        assert_eq!(lut.decode(0x7f), fmt.max_raw());
        assert!(!lut.is_empty());
    }

    #[test]
    fn cached_returns_the_same_table() {
        let fmt = FixedFormat::new(6, 3).unwrap();
        let a = cached(fmt).unwrap();
        let b = cached(fmt).unwrap();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.format(), fmt);
    }
}
