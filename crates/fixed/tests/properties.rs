//! Property-based tests for fixed-point quantization and saturation.

use dp_fixed::FixedFormat;
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = FixedFormat> {
    prop_oneof![
        Just(FixedFormat::new(5, 2).unwrap()),
        Just(FixedFormat::new(5, 4).unwrap()),
        Just(FixedFormat::new(8, 1).unwrap()),
        Just(FixedFormat::new(8, 4).unwrap()),
        Just(FixedFormat::new(8, 7).unwrap()),
        Just(FixedFormat::new(12, 8).unwrap()),
        Just(FixedFormat::new(16, 12).unwrap()),
        Just(FixedFormat::new(32, 16).unwrap()),
    ]
}

proptest! {
    #[test]
    fn quantization_error_is_at_most_half_lsb(f in formats(), v in -1e6f64..1e6f64) {
        let raw = f.from_f64(v);
        let back = f.to_f64(raw);
        if v.abs() <= f.max_value() {
            prop_assert!(
                (back - v).abs() <= f.min_value() / 2.0 + 1e-12,
                "{f}: {v} -> {back}"
            );
        } else {
            // Clipped at a rail.
            prop_assert!(raw == f.max_raw() || raw == f.min_raw());
        }
    }

    #[test]
    fn quantization_is_monotone(f in formats(), a in -1e6f64..1e6f64, b in -1e6f64..1e6f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(f.from_f64(lo) <= f.from_f64(hi));
    }

    #[test]
    fn roundtrip_raw_words(f in formats(), r in any::<i64>()) {
        let raw = f.saturate(r);
        prop_assert_eq!(f.from_f64(f.to_f64(raw)), raw);
    }

    #[test]
    fn saturating_ops_stay_in_range(f in formats(), a in any::<i64>(), b in any::<i64>()) {
        let (a, b) = (f.saturate(a), f.saturate(b));
        for v in [f.add_sat(a, b), f.sub_sat(a, b), f.neg_sat(a), f.mul_truncate(a, b), f.mul_round(a, b)] {
            prop_assert!(v >= f.min_raw() && v <= f.max_raw());
        }
    }

    #[test]
    fn mul_round_is_at_least_as_accurate_as_truncate(
        f in formats(), a in any::<i64>(), b in any::<i64>(),
    ) {
        let (a, b) = (f.saturate(a), f.saturate(b));
        let exact = (f.to_f64(a) * f.to_f64(b))
            .clamp(f.to_f64(f.min_raw()), f.to_f64(f.max_raw()));
        let e_round = (f.to_f64(f.mul_round(a, b)) - exact).abs();
        let e_trunc = (f.to_f64(f.mul_truncate(a, b)) - exact).abs();
        prop_assert!(e_round <= e_trunc + 1e-12, "round {e_round} vs trunc {e_trunc}");
    }

    #[test]
    fn add_sat_matches_clamped_integer(f in formats(), a in any::<i64>(), b in any::<i64>()) {
        let (a, b) = (f.saturate(a), f.saturate(b));
        prop_assert_eq!(
            f.add_sat(a, b),
            (a + b).clamp(f.min_raw(), f.max_raw())
        );
    }
}
