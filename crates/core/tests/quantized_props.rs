//! Property tests on the quantized-network machinery: random tiny
//! networks, random formats — streaming simulation must equal functional
//! inference, and quantization must respect format saturation.

use deep_positron::streaming::simulate;
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = NumericFormat> {
    prop_oneof![
        (5u32..=8, 0u32..=2)
            .prop_map(|(n, es)| NumericFormat::Posit(PositFormat::new(n, es.min(n - 3)).unwrap())),
        (2u32..=4, 2u32..=4)
            .prop_map(|(we, wf)| NumericFormat::Float(FloatFormat::new(we, wf).unwrap())),
        (5u32..=8, 2u32..=7)
            .prop_map(|(n, q)| NumericFormat::Fixed(FixedFormat::new(n, q.min(n - 1)).unwrap())),
    ]
}

prop_compose! {
    fn tiny_network()(
        seed in 0u64..10_000,
        d_in in 1usize..6,
        d_hidden in 1usize..6,
        d_out in 2usize..4,
    ) -> Mlp {
        Mlp::new(&[d_in, d_hidden, d_out], seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_equals_functional_on_random_networks(
        mlp in tiny_network(),
        fmt in formats(),
        inputs in prop::collection::vec(
            prop::collection::vec(-1.5f32..1.5, 1..6), 1..6),
    ) {
        let d_in = mlp.layers[0].fan_in();
        let inputs: Vec<Vec<f32>> = inputs
            .into_iter()
            .map(|mut v| { v.resize(d_in, 0.25); v })
            .collect();
        let q = QuantizedMlp::quantize(&mlp, fmt);
        let (streamed, report) = simulate(&q, &inputs);
        let functional: Vec<usize> = inputs.iter().map(|x| q.infer(x)).collect();
        prop_assert_eq!(streamed, functional, "{}", fmt);
        prop_assert!(report.total_cycles >= report.first_latency_cycles);
        prop_assert_eq!(report.inferences, inputs.len());
    }

    #[test]
    fn quantized_weights_are_within_format_range(
        mlp in tiny_network(),
        fmt in formats(),
    ) {
        let q = QuantizedMlp::quantize(&mlp, fmt);
        // Two's-complement fixed point is asymmetric: |min| = max + 1 LSB.
        let max = match fmt {
            NumericFormat::F32 => f64::MAX,
            NumericFormat::Posit(f) => f.max_value(),
            NumericFormat::Float(f) => f.max_value(),
            NumericFormat::Fixed(f) => f.to_f64(f.min_raw()).abs(),
        };
        for layer in &q.layers {
            for row in layer.weight_rows() {
                for &w in row {
                    let v = fmt.to_f64(w);
                    prop_assert!(v.is_finite());
                    prop_assert!(v.abs() <= max + 1e-9, "{}: {}", fmt, v);
                }
            }
        }
    }

    #[test]
    fn quantization_preserves_weight_sign(
        mlp in tiny_network(),
        fmt in formats(),
    ) {
        let q = QuantizedMlp::quantize(&mlp, fmt);
        for (l, layer) in q.layers.iter().enumerate() {
            for (j, row) in layer.weight_rows().enumerate() {
                for (i, &wbits) in row.iter().enumerate() {
                    let orig = mlp.layers[l].w.get(j, i) as f64;
                    let quant = fmt.to_f64(wbits);
                    // Rounding may flush tiny values to zero but must never
                    // flip the sign.
                    prop_assert!(
                        quant == 0.0 || quant.signum() == orig.signum(),
                        "{}: {} -> {}", fmt, orig, quant
                    );
                }
            }
        }
    }

    #[test]
    fn inference_is_deterministic(
        mlp in tiny_network(),
        fmt in formats(),
        x in prop::collection::vec(-1.0f32..1.0, 6),
    ) {
        let d_in = mlp.layers[0].fan_in();
        let x = &x[..d_in.min(x.len())];
        let mut x = x.to_vec();
        x.resize(d_in, 0.0);
        let q = QuantizedMlp::quantize(&mlp, fmt);
        prop_assert_eq!(q.infer(&x), q.infer(&x));
        prop_assert_eq!(q.infer_inexact(&x), q.infer_inexact(&x));
    }
}
