//! Drivers for the paper's evaluation artifacts (Table II, Figs. 2 and 9).

use crate::format::NumericFormat;
use crate::mlp::Mlp;
use crate::quantized::QuantizedMlp;
use crate::train::{train, TrainConfig};
use dp_datasets::{iris, mushroom, wbc, TrainTest};
use dp_fixed::FixedFormat;
use dp_hw::Family;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;

/// A trained task: dataset split + 32-bit float model + its baseline
/// accuracy (one row-group of Table II).
#[derive(Debug, Clone)]
pub struct TrainedTask {
    /// Dataset name.
    pub name: String,
    /// Normalized train/test split (test = the paper's inference set).
    pub split: TrainTest,
    /// The trained 32-bit float network.
    pub mlp: Mlp,
    /// Test accuracy of the float network (Table II "32-bit Float").
    pub f32_test_accuracy: f64,
}

/// Paper-scale workloads: WBC (inference size 190), Iris (50), Mushroom
/// (2708). `quick` trains fewer epochs — for tests and smoke runs; the
/// benchmark binaries use the full schedule.
pub fn paper_tasks(quick: bool, seed: u64) -> Vec<TrainedTask> {
    let specs: [(&str, dp_datasets::Dataset, usize, Vec<usize>, TrainConfig); 3] = [
        (
            "Wisconsin Breast Cancer",
            wbc::load(seed),
            190,
            vec![30, 16, 2],
            TrainConfig {
                epochs: if quick { 40 } else { 300 },
                batch_size: 16,
                lr: 0.01,
                seed,
            },
        ),
        (
            "Iris",
            iris::load(seed),
            50,
            vec![4, 16, 3],
            TrainConfig {
                epochs: if quick { 60 } else { 600 },
                batch_size: 8,
                lr: 0.01,
                seed,
            },
        ),
        (
            "Mushroom",
            mushroom::load(seed),
            2708,
            vec![117, 24, 2],
            TrainConfig {
                epochs: if quick { 2 } else { 25 },
                batch_size: 64,
                lr: 0.01,
                seed,
            },
        ),
    ];
    specs
        .into_iter()
        .map(|(name, data, test_count, dims, cfg)| {
            let split = data.split(test_count, seed).normalized();
            let mut mlp = Mlp::new(&dims, seed);
            train(&mut mlp, &split.train, cfg);
            let f32_test_accuracy = mlp.accuracy(&split.test);
            TrainedTask {
                name: name.to_string(),
                split,
                mlp,
                f32_test_accuracy,
            }
        })
        .collect()
}

/// Candidate configurations at width `n` for one family, matching the
/// paper's sweep: posit es ∈ {0,1,2}; float we ∈ {2..5} (paper: best use
/// we ∈ {3,4}); fixed point uses the pure-fractional Q1.(n−1) layout.
///
/// The fixed-point choice reproduces the paper's configuration: with all
/// DNN inputs normalized to [0, 1] and weights clustered in [−1, 1]
/// (Fig. 2b), q = n−1 maximizes fraction resolution — but saturates hard
/// at ±1, which is exactly what produces the paper's weak fixed-point
/// accuracy (57.8% on WBC). [`candidate_formats_tuned`] sweeps the binary
/// point instead; the comparison is an extension experiment.
pub fn candidate_formats(family: Family, n: u32) -> Vec<NumericFormat> {
    match family {
        Family::Posit => (0..=2u32)
            .filter(|&es| es <= n - 3)
            .map(|es| NumericFormat::Posit(PositFormat::new(n, es).unwrap()))
            .collect(),
        Family::Float => (2..=5u32)
            .filter(|&we| we + 2 <= n)
            .map(|we| NumericFormat::Float(FloatFormat::new(we, n - 1 - we).unwrap()))
            .collect(),
        Family::Fixed => {
            vec![NumericFormat::Fixed(FixedFormat::new(n, n - 1).unwrap())]
        }
    }
}

/// Like [`candidate_formats`] but sweeping every placement of the fixed
/// binary point (posit/float sets are unchanged) — the tuned-fixed
/// extension study.
pub fn candidate_formats_tuned(family: Family, n: u32) -> Vec<NumericFormat> {
    match family {
        Family::Fixed => (1..n)
            .map(|q| NumericFormat::Fixed(FixedFormat::new(n, q).unwrap()))
            .collect(),
        _ => candidate_formats(family, n),
    }
}

/// One evaluated configuration.
#[derive(Debug, Clone)]
pub struct FormatResult {
    /// The configuration.
    pub format: NumericFormat,
    /// EMAC-path test accuracy.
    pub accuracy: f64,
}

/// Evaluates every candidate of `family` at width `n` on the task's test
/// set and returns the best (the paper's Table II reports best-per-cell;
/// §IV-B "best results are when posit has es ∈ {0,2} and floating point
/// has we ∈ {3,4}").
pub fn best_config(task: &TrainedTask, family: Family, n: u32) -> FormatResult {
    best_config_on(task, family, n, usize::MAX)
}

/// Like [`best_config`] but evaluating at most `limit` test samples
/// (keeps debug-build tests fast on Mushroom's 2708-sample test set).
pub fn best_config_on(task: &TrainedTask, family: Family, n: u32, limit: usize) -> FormatResult {
    best_among(task, candidate_formats(family, n), limit)
}

/// Best configuration over the tuned-fixed candidate set (extension).
pub fn best_config_tuned(task: &TrainedTask, family: Family, n: u32, limit: usize) -> FormatResult {
    best_among(task, candidate_formats_tuned(family, n), limit)
}

fn best_among(task: &TrainedTask, candidates: Vec<NumericFormat>, limit: usize) -> FormatResult {
    let mut test = task.split.test.clone();
    if test.len() > limit {
        test.features.truncate(limit);
        test.labels.truncate(limit);
    }
    candidates
        .into_iter()
        .map(|format| {
            let q = QuantizedMlp::quantize(&task.mlp, format);
            FormatResult {
                format,
                accuracy: q.accuracy(&test),
            }
        })
        .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).unwrap())
        .expect("at least one candidate")
}

/// One Table II row: best 8-bit accuracy per family + the f32 baseline.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Inference (test) set size.
    pub inference_size: usize,
    /// Best 8-bit posit result.
    pub posit: FormatResult,
    /// Best 8-bit float result.
    pub float: FormatResult,
    /// Best 8-bit fixed result.
    pub fixed: FormatResult,
    /// 32-bit float baseline accuracy.
    pub f32_accuracy: f64,
}

/// Regenerates Table II (8-bit EMACs on the three datasets).
pub fn table2(tasks: &[TrainedTask]) -> Vec<Table2Row> {
    tasks
        .iter()
        .map(|t| Table2Row {
            dataset: t.name.clone(),
            inference_size: t.split.test.len(),
            posit: best_config(t, Family::Posit, 8),
            float: best_config(t, Family::Float, 8),
            fixed: best_config(t, Family::Fixed, 8),
            f32_accuracy: t.f32_test_accuracy,
        })
        .collect()
}

/// One Fig. 9 point: a bit width × family, with the average (over
/// datasets) accuracy degradation of the best configs, and the EDP of the
/// family's representative EMAC at that width.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Bit width.
    pub n: u32,
    /// Format family.
    pub family: Family,
    /// Mean accuracy degradation vs the 32-bit float baseline (percent,
    /// positive = worse).
    pub avg_degradation_pct: f64,
    /// Energy-delay product of the representative EMAC (J·s, k = 128).
    pub edp: f64,
}

/// Regenerates Fig. 9: average accuracy degradation vs EDP for n ∈ [5, 8].
pub fn fig9(tasks: &[TrainedTask]) -> Vec<Fig9Point> {
    fig9_on(tasks, usize::MAX)
}

/// Like [`fig9`] but with a per-dataset evaluation sample limit.
pub fn fig9_on(tasks: &[TrainedTask], limit: usize) -> Vec<Fig9Point> {
    let mut out = Vec::new();
    for n in 5..=8u32 {
        for family in [Family::Fixed, Family::Float, Family::Posit] {
            let mut deg = 0.0;
            for t in tasks {
                let best = best_config_on(t, family, n, limit);
                deg += (t.f32_test_accuracy - best.accuracy).max(0.0);
            }
            let avg_degradation_pct = 100.0 * deg / tasks.len() as f64;
            let spec = dp_hw::representative(n, family);
            let edp = dp_hw::report(spec, 128, dp_hw::Calib::default()).edp;
            out.push(Fig9Point {
                n,
                family,
                avg_degradation_pct,
                edp,
            });
        }
    }
    out
}

/// Histogram of values in `[lo, hi)` over `bins` equal-width buckets;
/// returns `(bin_center, count)` pairs. Used for both panels of Fig. 2.
pub fn histogram(
    values: impl IntoIterator<Item = f64>,
    lo: f64,
    hi: f64,
    bins: usize,
) -> Vec<(f64, usize)> {
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for v in values {
        if v >= lo && v < hi {
            let b = ((v - lo) / width) as usize;
            counts[b.min(bins - 1)] += 1;
        }
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (lo + (i as f64 + 0.5) * width, c))
        .collect()
}

/// Fig. 2a: the distribution of representable 7-bit posit (es = 0) values
/// in `[lo, hi)`.
pub fn posit_value_histogram(fmt: PositFormat, lo: f64, hi: f64, bins: usize) -> Vec<(f64, usize)> {
    histogram(
        fmt.reals().map(|b| dp_posit::convert::to_f64(fmt, b)),
        lo,
        hi,
        bins,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_sets_match_paper_sweeps() {
        assert_eq!(candidate_formats(Family::Posit, 8).len(), 3);
        assert_eq!(candidate_formats(Family::Posit, 5).len(), 3);
        assert_eq!(candidate_formats(Family::Float, 8).len(), 4);
        assert_eq!(candidate_formats(Family::Float, 5).len(), 2);
        // Paper-faithful fixed point: the single Q1.(n−1) layout.
        assert_eq!(candidate_formats(Family::Fixed, 8).len(), 1);
        assert_eq!(
            candidate_formats(Family::Fixed, 8)[0].to_string(),
            "fixed<8,7>"
        );
        // The tuned extension sweeps the binary point.
        assert_eq!(candidate_formats_tuned(Family::Fixed, 8).len(), 7);
        for f in candidate_formats(Family::Float, 6) {
            assert_eq!(f.n(), 6);
        }
    }

    #[test]
    fn histogram_bins_and_centers() {
        let h = histogram([0.1, 0.1, 0.9, -2.0], 0.0, 1.0, 2);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], (0.25, 2));
        assert_eq!(h[1], (0.75, 1));
    }

    #[test]
    fn posit7_values_cluster_in_unit_interval() {
        // Paper Fig. 2a: 7-bit posit values cluster heavily in [-1, 1].
        let fmt = PositFormat::new(7, 0).unwrap();
        let inside: usize = posit_value_histogram(fmt, -1.0, 1.0001, 4)
            .iter()
            .map(|(_, c)| c)
            .sum();
        let total = fmt.reals().count();
        assert!(
            inside as f64 / total as f64 > 0.5,
            "{inside}/{total} inside [-1,1]"
        );
    }
}
