//! # deep-positron — the Deep Positron DNN architecture
//!
//! Reproduction of *"Deep Positron: A Deep Neural Network Using the Posit
//! Number System"* (Carmichael, Langroudi, Khazanov, Lillie, Gustafson,
//! Kudithipudi — DATE 2019): a DNN inference architecture whose neurons are
//! **exact multiply-and-accumulate (EMAC)** units instantiated for posit,
//! floating-point or fixed-point numerics at matched ≤8-bit widths.
//!
//! The crate ties the substrates together into the paper's end-to-end flow:
//!
//! 1. **Train** a 32-bit float MLP ([`mlp`], [`train`](mod@train)) — ReLU hidden
//!    layers, affine readout (paper Fig. 1).
//! 2. **Quantize** weights/biases/activations into a [`format::NumericFormat`]
//!    ([`quantized`]).
//! 3. **Infer** through per-layer EMAC arrays with a single rounding per
//!    neuron ([`quantized::QuantizedMlp::infer`]), or cycle-accurately
//!    through the streaming pipeline of Fig. 1 ([`streaming`]).
//! 4. **Evaluate** the paper's artifacts: Table II and Figs. 2/9
//!    ([`experiments`]), plus the exact-vs-inexact MAC ablation
//!    ([`ablation`]).
//!
//! ```no_run
//! use deep_positron::experiments::{paper_tasks, table2};
//!
//! let tasks = paper_tasks(true, 42); // quick training schedule
//! for row in table2(&tasks) {
//!     println!(
//!         "{:<24} {:>5}  posit {:.1}%  float {:.1}%  fixed {:.1}%  f32 {:.1}%",
//!         row.dataset,
//!         row.inference_size,
//!         100.0 * row.posit.accuracy,
//!         100.0 * row.float.accuracy,
//!         100.0 * row.fixed.accuracy,
//!         100.0 * row.f32_accuracy,
//!     );
//! }
//! ```

pub mod ablation;
pub mod batch;
pub mod experiments;
pub mod format;
pub mod io;
pub mod mlp;
pub mod quantized;
pub mod streaming;
pub mod tensor;
pub mod train;

pub use format::NumericFormat;
pub use mlp::{Dense, Mlp};
pub use quantized::{QuantizedLayer, QuantizedMlp};
pub use streaming::{simulate, StreamingReport};
pub use train::{train, TrainConfig, TrainReport};
