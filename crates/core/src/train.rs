//! Mini-batch Adam training with softmax cross-entropy.
//!
//! The paper trains its networks in 32-bit floating point and quantizes
//! for inference only; this module is that training substrate.

use crate::mlp::{softmax, Mlp};
use crate::tensor::Matrix;
use dp_datasets::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            batch_size: 16,
            lr: 0.01,
            seed: 42,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean cross-entropy per epoch.
    pub loss_history: Vec<f64>,
    /// Final training-set accuracy.
    pub train_accuracy: f64,
}

struct Adam {
    m_w: Vec<Matrix>,
    v_w: Vec<Matrix>,
    m_b: Vec<Vec<f32>>,
    v_b: Vec<Vec<f32>>,
    t: i32,
}

const BETA1: f32 = 0.9;
const BETA2: f32 = 0.999;
const EPS: f32 = 1e-8;

impl Adam {
    fn new(mlp: &Mlp) -> Self {
        Adam {
            m_w: mlp
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.fan_out(), l.fan_in()))
                .collect(),
            v_w: mlp
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.fan_out(), l.fan_in()))
                .collect(),
            m_b: mlp.layers.iter().map(|l| vec![0.0; l.fan_out()]).collect(),
            v_b: mlp.layers.iter().map(|l| vec![0.0; l.fan_out()]).collect(),
            t: 0,
        }
    }

    fn step(&mut self, mlp: &mut Mlp, grads_w: &[Matrix], grads_b: &[Vec<f32>], lr: f32) {
        self.t += 1;
        let bc1 = 1.0 - BETA1.powi(self.t);
        let bc2 = 1.0 - BETA2.powi(self.t);
        for (l, layer) in mlp.layers.iter_mut().enumerate() {
            let (mw, vw) = (self.m_w[l].as_mut_slice(), self.v_w[l].as_mut_slice());
            for ((w, &g), (m, v)) in layer
                .w
                .as_mut_slice()
                .iter_mut()
                .zip(grads_w[l].as_slice())
                .zip(mw.iter_mut().zip(vw.iter_mut()))
            {
                *m = BETA1 * *m + (1.0 - BETA1) * g;
                *v = BETA2 * *v + (1.0 - BETA2) * g * g;
                *w -= lr * (*m / bc1) / ((*v / bc2).sqrt() + EPS);
            }
            for ((b, &g), (m, v)) in layer
                .b
                .iter_mut()
                .zip(&grads_b[l])
                .zip(self.m_b[l].iter_mut().zip(self.v_b[l].iter_mut()))
            {
                *m = BETA1 * *m + (1.0 - BETA1) * g;
                *v = BETA2 * *v + (1.0 - BETA2) * g * g;
                *b -= lr * (*m / bc1) / ((*v / bc2).sqrt() + EPS);
            }
        }
    }
}

/// Trains `mlp` on `data` with mini-batch Adam; deterministic per config.
///
/// # Panics
///
/// Panics if the dataset is empty or its dimensionality does not match the
/// network input width.
pub fn train(mlp: &mut Mlp, data: &Dataset, cfg: TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "empty training set");
    assert_eq!(data.dim(), mlp.layers[0].fan_in(), "input width mismatch");
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0xada));
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut adam = Adam::new(mlp);
    let mut loss_history = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let mut grads_w: Vec<Matrix> = mlp
                .layers
                .iter()
                .map(|l| Matrix::zeros(l.fan_out(), l.fan_in()))
                .collect();
            let mut grads_b: Vec<Vec<f32>> =
                mlp.layers.iter().map(|l| vec![0.0; l.fan_out()]).collect();
            for &idx in chunk {
                let x = &data.features[idx];
                let y = data.labels[idx];
                let acts = mlp.forward(x);
                let probs = softmax(acts.last().unwrap());
                epoch_loss -= (probs[y].max(1e-12) as f64).ln();
                // delta at the readout: softmax + cross-entropy.
                let mut delta: Vec<f32> = probs;
                delta[y] -= 1.0;
                // Backpropagate through the layers.
                for l in (0..mlp.layers.len()).rev() {
                    let input = &acts[l];
                    for (j, &dj) in delta.iter().enumerate() {
                        grads_b[l][j] += dj;
                        for (i, &xi) in input.iter().enumerate() {
                            grads_w[l].add_at(j, i, dj * xi);
                        }
                    }
                    if l > 0 {
                        let mut prev = mlp.layers[l].w.matvec_t(&delta);
                        // ReLU derivative of the hidden activation.
                        for (p, &a) in prev.iter_mut().zip(acts[l].iter()) {
                            if a <= 0.0 {
                                *p = 0.0;
                            }
                        }
                        delta = prev;
                    }
                }
            }
            let scale = 1.0 / chunk.len() as f32;
            for g in &mut grads_w {
                g.as_mut_slice().iter_mut().for_each(|v| *v *= scale);
            }
            for g in &mut grads_b {
                g.iter_mut().for_each(|v| *v *= scale);
            }
            adam.step(mlp, &grads_w, &grads_b, cfg.lr);
        }
        loss_history.push(epoch_loss / data.len() as f64);
    }
    TrainReport {
        loss_history,
        train_accuracy: mlp.accuracy(data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_datasets::iris;

    #[test]
    fn learns_iris_quickly() {
        let split = iris::load(11).split(50, 11).normalized();
        let mut mlp = Mlp::new(&[4, 8, 3], 11);
        let report = train(
            &mut mlp,
            &split.train,
            TrainConfig {
                epochs: 60,
                batch_size: 16,
                lr: 0.02,
                seed: 11,
            },
        );
        assert!(
            report.train_accuracy > 0.93,
            "train acc {}",
            report.train_accuracy
        );
        assert!(mlp.accuracy(&split.test) > 0.88);
        // Loss decreased substantially.
        let first = report.loss_history.first().unwrap();
        let last = report.loss_history.last().unwrap();
        assert!(last < &(first * 0.5), "loss {first} -> {last}");
    }

    #[test]
    fn training_is_deterministic() {
        let split = iris::load(3).split(50, 3).normalized();
        let run = |_| {
            let mut mlp = Mlp::new(&[4, 6, 3], 5);
            train(
                &mut mlp,
                &split.train,
                TrainConfig {
                    epochs: 5,
                    batch_size: 8,
                    lr: 0.01,
                    seed: 5,
                },
            );
            mlp.all_weights()
        };
        assert_eq!(run(0), run(1));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_dimensionality() {
        let split = iris::load(1).split(50, 1);
        let mut mlp = Mlp::new(&[7, 4, 3], 1);
        train(&mut mlp, &split.train, TrainConfig::default());
    }
}
