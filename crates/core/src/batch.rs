//! Batch partitioning policy and the scoped-thread fallback engine.
//!
//! This module owns the *how many workers, how big a chunk* policy shared
//! by every dataset-scale entry point, plus the scoped-thread parallel map
//! the [`crate::quantized::QuantizedMlp`] batch methods fall back to. The
//! long-lived serving path — a persistent worker pool with a request
//! queue, completion handles and a multi-format model registry — lives in
//! the `dp_serve` crate and reuses this module's thread-count policy; the
//! scoped path here stays alive as the zero-setup fallback and as the
//! differential baseline the pool is tested against.

use std::sync::Once;

/// The environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "DEEP_POSITRON_THREADS";

/// Result of parsing a [`THREADS_ENV`] override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadOverride {
    /// Variable absent or empty: use the machine default.
    Unset,
    /// A valid explicit worker count (≥ 1).
    Threads(usize),
    /// Present but not a positive integer (`0`, junk, overflow): the
    /// override is rejected and the machine default applies.
    Invalid,
}

/// Parses a [`THREADS_ENV`] value. `None` and empty/whitespace strings are
/// [`ThreadOverride::Unset`]; `0`, non-numeric and overflowing values are
/// [`ThreadOverride::Invalid`] rather than being silently clamped or
/// silently ignored.
pub fn parse_thread_override(raw: Option<&str>) -> ThreadOverride {
    let Some(raw) = raw else {
        return ThreadOverride::Unset;
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return ThreadOverride::Unset;
    }
    match trimmed.parse::<usize>() {
        Ok(0) | Err(_) => ThreadOverride::Invalid,
        Ok(n) => ThreadOverride::Threads(n),
    }
}

/// Number of worker threads for batch entry points: a valid
/// [`THREADS_ENV`] override when set, otherwise the machine's available
/// parallelism. An invalid override (zero or non-numeric) is rejected with
/// a one-time warning on stderr and the default is used instead.
pub fn batch_threads() -> usize {
    let raw = std::env::var(THREADS_ENV).ok();
    match parse_thread_override(raw.as_deref()) {
        ThreadOverride::Threads(n) => n,
        ThreadOverride::Unset => default_threads(),
        ThreadOverride::Invalid => {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "warning: {THREADS_ENV}={:?} is not a positive integer; \
                     falling back to {} worker thread(s)",
                    raw.unwrap_or_default(),
                    default_threads()
                );
            });
            default_threads()
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Minimum samples per worker before fanning out: below this, scoped
/// thread spawn/join overhead (tens of microseconds) exceeds the work of
/// microsecond-scale inferences, so small batches run on the caller's
/// thread (still with EMAC reuse). [`THREADS_ENV`] overrides the thread
/// count but the floor still applies.
pub const MIN_SAMPLES_PER_THREAD: usize = 32;

/// Maps `f` over `xs` in parallel, preserving order. Samples are split
/// into one contiguous chunk per thread; each thread builds its scratch
/// state once with `init` (per-layer EMAC arrays, in practice) and reuses
/// it across its chunk. Thread count follows [`batch_threads`] capped by
/// [`MIN_SAMPLES_PER_THREAD`].
pub fn par_map_with<S, R, I, F>(xs: &[Vec<f32>], init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[f32]) -> R + Sync,
{
    let threads = batch_threads()
        .min(xs.len() / MIN_SAMPLES_PER_THREAD)
        .max(1);
    par_map_with_threads(xs, threads, init, f)
}

/// Chunk-at-a-time [`par_map_with`]: each worker hands its **whole
/// contiguous chunk** to `f` in one call instead of one sample at a time,
/// so the callee can run tile-level kernels across the chunk (the
/// weight-stationary [`dp_emac::Emac::dot_tile`] sweep in
/// `QuantizedMlp::forward_batch_bits_with`, in practice). `f` must return
/// exactly one result per sample, in sample order; ordering and thread
/// policy match [`par_map_with`].
pub fn par_chunk_map_with<S, R, I, F>(xs: &[Vec<f32>], init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[Vec<f32>]) -> Vec<R> + Sync,
{
    let threads = batch_threads()
        .min(xs.len() / MIN_SAMPLES_PER_THREAD)
        .max(1);
    par_chunk_map_with_threads(xs, threads, init, f)
}

/// Why a chunk of a scoped batch failed.
///
/// The scoped engine used to `expect` on worker joins, so one poisoned
/// chunk aborted the whole process with a generic panic message. Admission
/// layers (the `dp_serve` pool, the `dp_gateway` front end) need the
/// typed form instead, so a failed or shed chunk propagates as a value
/// the caller can account for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// The worker evaluating chunk `chunk` (0-based, in sample order)
    /// panicked; the other chunks were unaffected.
    ChunkPanicked {
        /// Index of the failed chunk.
        chunk: usize,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::ChunkPanicked { chunk } => {
                write!(f, "batch worker for chunk {chunk} panicked")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// [`par_map_with`] with an explicit worker count — the policy-free core,
/// public so the spawn/chunk/merge path can be exercised directly (even on
/// single-core machines) and so `dp_serve` can differential-test its
/// persistent pool against the scoped path. A panicking chunk worker
/// re-raises the **original** panic payload on the caller (so diagnostic
/// messages from the datapath survive); use [`try_par_map_with_threads`]
/// to get the typed [`BatchError`] instead.
pub fn par_map_with_threads<S, R, I, F>(xs: &[Vec<f32>], threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[f32]) -> R + Sync,
{
    match par_map_impl(xs, threads, init, f) {
        Ok(out) => out,
        Err((_, payload)) => std::panic::resume_unwind(payload),
    }
}

/// [`par_chunk_map_with`] with an explicit worker count — the policy-free
/// core, public so the chunked spawn/merge path can be exercised directly
/// and so worker-count invariance of the tile sweep can be pinned even on
/// single-core machines. A panicking chunk worker re-raises the original
/// panic payload on the caller.
pub fn par_chunk_map_with_threads<S, R, I, F>(
    xs: &[Vec<f32>],
    threads: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[Vec<f32>]) -> Vec<R> + Sync,
{
    match par_chunk_map_impl(xs, threads, init, f) {
        Ok(out) => out,
        Err((_, payload)) => std::panic::resume_unwind(payload),
    }
}

/// Fallible [`par_map_with_threads`]: a panicking chunk worker is reported
/// as [`BatchError::ChunkPanicked`] (after every other chunk finished)
/// instead of tearing down the caller, so admission layers can shed the
/// failed chunk's request and keep serving the rest.
///
/// # Errors
///
/// [`BatchError::ChunkPanicked`] naming the first failed chunk.
pub fn try_par_map_with_threads<S, R, I, F>(
    xs: &[Vec<f32>],
    threads: usize,
    init: I,
    f: F,
) -> Result<Vec<R>, BatchError>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[f32]) -> R + Sync,
{
    par_map_impl(xs, threads, init, f)
        .map_err(|(chunk, _payload)| BatchError::ChunkPanicked { chunk })
}

/// Per-sample core: the chunked engine with `f` lifted to map each chunk
/// one sample at a time.
fn par_map_impl<S, R, I, F>(
    xs: &[Vec<f32>],
    threads: usize,
    init: I,
    f: F,
) -> Result<Vec<R>, (usize, Box<dyn std::any::Any + Send>)>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[f32]) -> R + Sync,
{
    par_chunk_map_impl(xs, threads, init, |state, slice| {
        slice.iter().map(|x| f(state, x)).collect()
    })
}

/// Shared core: maps whole contiguous chunks in parallel, reporting the
/// first failed chunk with its original panic payload so each wrapper can
/// choose between the typed error and a faithful re-raise.
fn par_chunk_map_impl<S, R, I, F>(
    xs: &[Vec<f32>],
    threads: usize,
    init: I,
    f: F,
) -> Result<Vec<R>, (usize, Box<dyn std::any::Any + Send>)>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[Vec<f32>]) -> Vec<R> + Sync,
{
    if threads <= 1 || xs.len() <= 1 {
        // One chunk on the caller's thread; a panic is still reported as
        // that chunk failing (everything is discarded on unwind).
        return std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut state = init();
            let out = f(&mut state, xs);
            debug_assert_eq!(out.len(), xs.len(), "chunk map must be 1:1");
            out
        }))
        .map_err(|payload| (0, payload));
    }
    let chunk = xs.len().div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(xs.len());
    let mut failed: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = xs
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(|| {
                    let mut state = init();
                    let part = f(&mut state, slice);
                    debug_assert_eq!(part.len(), slice.len(), "chunk map must be 1:1");
                    part
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) if failed.is_none() => failed = Some((i, payload)),
                Err(_) => {}
            }
        }
    });
    match failed {
        None => Ok(out),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_positive_integers() {
        assert_eq!(parse_thread_override(Some("1")), ThreadOverride::Threads(1));
        assert_eq!(parse_thread_override(Some("4")), ThreadOverride::Threads(4));
        assert_eq!(
            parse_thread_override(Some(" 16 ")),
            ThreadOverride::Threads(16)
        );
    }

    #[test]
    fn parse_treats_missing_and_empty_as_unset() {
        assert_eq!(parse_thread_override(None), ThreadOverride::Unset);
        assert_eq!(parse_thread_override(Some("")), ThreadOverride::Unset);
        assert_eq!(parse_thread_override(Some("   ")), ThreadOverride::Unset);
    }

    #[test]
    fn parse_rejects_zero_and_junk() {
        for bad in ["0", "-1", "two", "4.5", "4t", "99999999999999999999999"] {
            assert_eq!(
                parse_thread_override(Some(bad)),
                ThreadOverride::Invalid,
                "{bad}"
            );
        }
    }

    #[test]
    fn batch_threads_is_at_least_one() {
        // Whatever the environment says, the policy never returns zero.
        assert!(batch_threads() >= 1);
    }

    #[test]
    fn try_par_map_reports_panicked_chunk_as_typed_error() {
        let xs: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32]).collect();
        // Chunk 1 (samples 4..8) panics; the error names it and the caller
        // survives instead of aborting on a join expect.
        let err = try_par_map_with_threads(
            &xs,
            2,
            || (),
            |_, x| {
                if x[0] >= 4.0 {
                    panic!("injected chunk failure");
                }
                x[0] as usize
            },
        )
        .unwrap_err();
        assert_eq!(err, BatchError::ChunkPanicked { chunk: 1 });
        assert!(err.to_string().contains("chunk 1"));
        // Serial path: the single logical chunk is chunk 0.
        let err = try_par_map_with_threads(&xs, 1, || (), |_, _| -> usize { panic!("boom") })
            .unwrap_err();
        assert_eq!(err, BatchError::ChunkPanicked { chunk: 0 });
        // Healthy workloads are untouched.
        let ok = try_par_map_with_threads(&xs, 3, || (), |_, x| x[0] as usize).unwrap();
        assert_eq!(ok, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn infallible_wrapper_reraises_the_original_payload() {
        // The typed-error seam must not cost existing callers their
        // diagnostics: the infallible wrapper re-raises the worker's own
        // panic payload, not a generic "worker panicked" message.
        let xs: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32]).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_with_threads(
                &xs,
                2,
                || (),
                |_, _| -> usize { panic!("dimension mismatch: got 1, want 4") },
            )
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<&str>().unwrap();
        assert!(msg.contains("dimension mismatch"), "{msg}");
        // Serial path preserves the payload too.
        let caught = std::panic::catch_unwind(|| {
            par_map_with_threads(&xs, 1, || (), |_, _| -> usize { panic!("serial boom") })
        });
        let payload = caught.unwrap_err();
        assert!(payload
            .downcast_ref::<&str>()
            .unwrap()
            .contains("serial boom"));
    }

    #[test]
    fn par_chunk_map_preserves_order_and_hands_whole_chunks() {
        let xs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        for threads in [1usize, 3, 10, 1000] {
            let out = par_chunk_map_with_threads(
                &xs,
                threads,
                || (),
                |(), chunk| {
                    // Each worker sees one contiguous chunk and maps it 1:1.
                    assert!(!chunk.is_empty());
                    chunk.iter().map(|x| x[0] as usize).collect()
                },
            );
            assert_eq!(out, (0..10).collect::<Vec<_>>(), "threads = {threads}");
        }
        let none: Vec<Vec<f32>> = Vec::new();
        assert!(par_chunk_map_with(&none, || (), |(), c| vec![0usize; c.len()]).is_empty());
    }

    #[test]
    fn par_map_preserves_order_and_runs_init_per_chunk() {
        let xs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let out = par_map_with_threads(
            &xs,
            3,
            || 0usize,
            |calls, x| {
                *calls += 1;
                x[0] as usize
            },
        );
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
