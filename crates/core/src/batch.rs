//! Batch partitioning policy and the scoped-thread fallback engine.
//!
//! This module owns the *how many workers, how big a chunk* policy shared
//! by every dataset-scale entry point, plus the scoped-thread parallel map
//! the [`crate::quantized::QuantizedMlp`] batch methods fall back to. The
//! long-lived serving path — a persistent worker pool with a request
//! queue, completion handles and a multi-format model registry — lives in
//! the `dp_serve` crate and reuses this module's thread-count policy; the
//! scoped path here stays alive as the zero-setup fallback and as the
//! differential baseline the pool is tested against.

use std::sync::Once;

/// The environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "DEEP_POSITRON_THREADS";

/// Result of parsing a [`THREADS_ENV`] override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadOverride {
    /// Variable absent or empty: use the machine default.
    Unset,
    /// A valid explicit worker count (≥ 1).
    Threads(usize),
    /// Present but not a positive integer (`0`, junk, overflow): the
    /// override is rejected and the machine default applies.
    Invalid,
}

/// Parses a [`THREADS_ENV`] value. `None` and empty/whitespace strings are
/// [`ThreadOverride::Unset`]; `0`, non-numeric and overflowing values are
/// [`ThreadOverride::Invalid`] rather than being silently clamped or
/// silently ignored.
pub fn parse_thread_override(raw: Option<&str>) -> ThreadOverride {
    let Some(raw) = raw else {
        return ThreadOverride::Unset;
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return ThreadOverride::Unset;
    }
    match trimmed.parse::<usize>() {
        Ok(0) | Err(_) => ThreadOverride::Invalid,
        Ok(n) => ThreadOverride::Threads(n),
    }
}

/// Number of worker threads for batch entry points: a valid
/// [`THREADS_ENV`] override when set, otherwise the machine's available
/// parallelism. An invalid override (zero or non-numeric) is rejected with
/// a one-time warning on stderr and the default is used instead.
pub fn batch_threads() -> usize {
    let raw = std::env::var(THREADS_ENV).ok();
    match parse_thread_override(raw.as_deref()) {
        ThreadOverride::Threads(n) => n,
        ThreadOverride::Unset => default_threads(),
        ThreadOverride::Invalid => {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "warning: {THREADS_ENV}={:?} is not a positive integer; \
                     falling back to {} worker thread(s)",
                    raw.unwrap_or_default(),
                    default_threads()
                );
            });
            default_threads()
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Minimum samples per worker before fanning out: below this, scoped
/// thread spawn/join overhead (tens of microseconds) exceeds the work of
/// microsecond-scale inferences, so small batches run on the caller's
/// thread (still with EMAC reuse). [`THREADS_ENV`] overrides the thread
/// count but the floor still applies.
pub const MIN_SAMPLES_PER_THREAD: usize = 32;

/// Maps `f` over `xs` in parallel, preserving order. Samples are split
/// into one contiguous chunk per thread; each thread builds its scratch
/// state once with `init` (per-layer EMAC arrays, in practice) and reuses
/// it across its chunk. Thread count follows [`batch_threads`] capped by
/// [`MIN_SAMPLES_PER_THREAD`].
pub fn par_map_with<S, R, I, F>(xs: &[Vec<f32>], init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[f32]) -> R + Sync,
{
    let threads = batch_threads()
        .min(xs.len() / MIN_SAMPLES_PER_THREAD)
        .max(1);
    par_map_with_threads(xs, threads, init, f)
}

/// [`par_map_with`] with an explicit worker count — the policy-free core,
/// public so the spawn/chunk/merge path can be exercised directly (even on
/// single-core machines) and so `dp_serve` can differential-test its
/// persistent pool against the scoped path.
pub fn par_map_with_threads<S, R, I, F>(xs: &[Vec<f32>], threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[f32]) -> R + Sync,
{
    if threads <= 1 || xs.len() <= 1 {
        let mut state = init();
        return xs.iter().map(|x| f(&mut state, x)).collect();
    }
    let chunk = xs.len().div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(xs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = xs
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(|| {
                    let mut state = init();
                    slice.iter().map(|x| f(&mut state, x)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("batch worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_positive_integers() {
        assert_eq!(parse_thread_override(Some("1")), ThreadOverride::Threads(1));
        assert_eq!(parse_thread_override(Some("4")), ThreadOverride::Threads(4));
        assert_eq!(
            parse_thread_override(Some(" 16 ")),
            ThreadOverride::Threads(16)
        );
    }

    #[test]
    fn parse_treats_missing_and_empty_as_unset() {
        assert_eq!(parse_thread_override(None), ThreadOverride::Unset);
        assert_eq!(parse_thread_override(Some("")), ThreadOverride::Unset);
        assert_eq!(parse_thread_override(Some("   ")), ThreadOverride::Unset);
    }

    #[test]
    fn parse_rejects_zero_and_junk() {
        for bad in ["0", "-1", "two", "4.5", "4t", "99999999999999999999999"] {
            assert_eq!(
                parse_thread_override(Some(bad)),
                ThreadOverride::Invalid,
                "{bad}"
            );
        }
    }

    #[test]
    fn batch_threads_is_at_least_one() {
        // Whatever the environment says, the policy never returns zero.
        assert!(batch_threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order_and_runs_init_per_chunk() {
        let xs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let out = par_map_with_threads(
            &xs,
            3,
            || 0usize,
            |calls, x| {
                *calls += 1;
                x[0] as usize
            },
        );
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
