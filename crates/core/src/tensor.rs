//! A minimal row-major `f32` matrix — the only tensor the MLP needs.

use std::fmt;

/// A dense `rows × cols` matrix of `f32` in row-major order.
///
/// # Examples
///
/// ```
/// use deep_positron::tensor::Matrix;
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        assert!(rows.iter().all(|x| x.len() == c), "ragged rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to an element (gradient accumulation).
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] += v;
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = self · x` for a column vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(&w, &v)| w * v).sum::<f32>())
            .collect()
    }

    /// `y = selfᵀ · x` (used by backprop without materializing transposes).
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            for (c, yc) in y.iter_mut().enumerate() {
                *yc += self.get(r, c) * xr;
            }
        }
        y
    }

    /// Flat view of all elements.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view of all elements.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}×{})", self.rows, self.cols)
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        m.add_at(1, 2, 1.5);
        assert_eq!(m.get(1, 2), 6.5);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        Matrix::zeros(2, 3).matvec(&[1.0]);
    }

    #[test]
    fn argmax_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }
}
