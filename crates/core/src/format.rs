//! The format-erased numeric type the quantized network runs on.

use dp_emac::{EmacUnit, FixedEmac, FloatEmac, PositEmac, UnsupportedFormat};
use dp_fixed::FixedFormat;
use dp_hw::FormatSpec;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use std::fmt;

/// A numerical format for quantized inference: one of the paper's three
/// low-precision families, or the 32-bit float baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericFormat {
    /// IEEE single precision (the paper's "32-bit Float" column).
    F32,
    /// (n, es) posit.
    Posit(PositFormat),
    /// (1, we, wf) minifloat.
    Float(FloatFormat),
    /// Q(n−q).q fixed point.
    Fixed(FixedFormat),
}

impl NumericFormat {
    /// Total bit width.
    pub fn n(&self) -> u32 {
        match self {
            NumericFormat::F32 => 32,
            NumericFormat::Posit(f) => f.n(),
            NumericFormat::Float(f) => f.n(),
            NumericFormat::Fixed(f) => f.n(),
        }
    }

    /// Quantizes an `f32` to this format's bit pattern (saturating — the
    /// paper's EMACs clip at the maximum magnitude). `F32` returns the raw
    /// IEEE bits.
    pub fn quantize(&self, v: f32) -> u32 {
        match self {
            NumericFormat::F32 => v.to_bits(),
            NumericFormat::Posit(f) => dp_posit::convert::from_f64(*f, v as f64),
            NumericFormat::Float(f) => dp_minifloat::convert::from_f64_saturating(*f, v as f64),
            NumericFormat::Fixed(f) => {
                let raw = f.from_f64(v as f64);
                (raw as u64 as u32) & mask(f.n())
            }
        }
    }

    /// The exact value of a bit pattern of this format.
    pub fn to_f64(&self, bits: u32) -> f64 {
        match self {
            NumericFormat::F32 => f32::from_bits(bits) as f64,
            NumericFormat::Posit(f) => dp_posit::convert::to_f64(*f, bits),
            NumericFormat::Float(f) => dp_minifloat::convert::to_f64(*f, bits),
            NumericFormat::Fixed(f) => f.to_f64(sext(bits, f.n())),
        }
    }

    /// The quantization round-trip `f32 → format → f64` (for error studies).
    pub fn quantized_value(&self, v: f32) -> f64 {
        self.to_f64(self.quantize(v))
    }

    /// ReLU on a bit pattern: negative values clamp to zero.
    pub fn relu_bits(&self, bits: u32) -> u32 {
        match self {
            NumericFormat::F32 => {
                let v = f32::from_bits(bits);
                if v < 0.0 {
                    0
                } else {
                    bits
                }
            }
            NumericFormat::Posit(f) => {
                if dp_posit::ops::is_negative(*f, bits) {
                    0
                } else {
                    bits
                }
            }
            NumericFormat::Float(f) => {
                if dp_minifloat::ops::is_negative(*f, bits) {
                    f.zero_bits(false)
                } else {
                    bits
                }
            }
            NumericFormat::Fixed(f) => {
                if sext(bits, f.n()) < 0 {
                    0
                } else {
                    bits
                }
            }
        }
    }

    /// An exact multiply-and-accumulate unit for `k`-element dot products,
    /// or `None` for the `F32` baseline (which uses plain float math).
    ///
    /// # Panics
    ///
    /// Panics for low-precision formats without an EMAC datapath (e.g. a
    /// posit with `es > n − 3`); use [`NumericFormat::try_make_emac`] when
    /// the format comes from an untrusted caller.
    pub fn make_emac(&self, k: u64) -> Option<EmacUnit> {
        self.try_make_emac(k)
            .expect("format has no EMAC datapath (see try_make_emac)")
    }

    /// [`NumericFormat::make_emac`] with a typed error instead of a panic
    /// for formats without an EMAC datapath — `Ok(None)` is the `F32`
    /// baseline, `Err` a low-precision format the EMACs cannot serve
    /// (posit `es > n − 3`, fixed eq.-(3) register past `i128`). Serving
    /// registries validate with this before accepting a model.
    ///
    /// # Errors
    ///
    /// [`UnsupportedFormat`] describing why the datapath is missing.
    pub fn try_make_emac(&self, k: u64) -> Result<Option<EmacUnit>, UnsupportedFormat> {
        match self {
            NumericFormat::F32 => Ok(None),
            NumericFormat::Posit(f) => Ok(Some(EmacUnit::Posit(PositEmac::try_new(*f, k)?))),
            NumericFormat::Float(f) => Ok(Some(EmacUnit::Float(FloatEmac::try_new(*f, k)?))),
            NumericFormat::Fixed(f) => Ok(Some(EmacUnit::Fixed(FixedEmac::try_new(*f, k)?))),
        }
    }

    /// The hardware-model spec, or `None` for `F32`.
    pub fn spec(&self) -> Option<FormatSpec> {
        match self {
            NumericFormat::F32 => None,
            NumericFormat::Posit(f) => Some(FormatSpec::Posit(*f)),
            NumericFormat::Float(f) => Some(FormatSpec::Float(*f)),
            NumericFormat::Fixed(f) => Some(FormatSpec::Fixed(*f)),
        }
    }

    /// Rounded multiplication of two patterns (per-op MAC, for the
    /// exact-vs-inexact ablation). Fixed point truncates, as its hardware
    /// multiplier does.
    pub fn mul_bits(&self, a: u32, b: u32) -> u32 {
        match self {
            NumericFormat::F32 => (f32::from_bits(a) * f32::from_bits(b)).to_bits(),
            NumericFormat::Posit(f) => dp_posit::ops::mul(*f, a, b),
            NumericFormat::Float(f) => dp_minifloat::ops::mul(*f, a, b),
            NumericFormat::Fixed(f) => {
                let r = f.mul_truncate(sext(a, f.n()), sext(b, f.n()));
                (r as u64 as u32) & mask(f.n())
            }
        }
    }

    /// Rounded addition of two patterns (per-op MAC, for the ablation).
    pub fn add_bits(&self, a: u32, b: u32) -> u32 {
        match self {
            NumericFormat::F32 => (f32::from_bits(a) + f32::from_bits(b)).to_bits(),
            NumericFormat::Posit(f) => dp_posit::ops::add(*f, a, b),
            NumericFormat::Float(f) => dp_minifloat::ops::add(*f, a, b),
            NumericFormat::Fixed(f) => {
                let r = f.add_sat(sext(a, f.n()), sext(b, f.n()));
                (r as u64 as u32) & mask(f.n())
            }
        }
    }
}

fn mask(n: u32) -> u32 {
    if n == 32 {
        u32::MAX
    } else {
        (1 << n) - 1
    }
}

fn sext(bits: u32, n: u32) -> i64 {
    let sh = 64 - n;
    (((bits as u64) << sh) as i64) >> sh
}

impl fmt::Display for NumericFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericFormat::F32 => write!(f, "float32"),
            NumericFormat::Posit(x) => write!(f, "{x}"),
            NumericFormat::Float(x) => write!(f, "{x}"),
            NumericFormat::Fixed(x) => write!(f, "{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn formats() -> Vec<NumericFormat> {
        vec![
            NumericFormat::F32,
            NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
            NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap()),
        ]
    }

    #[test]
    fn quantize_roundtrip_of_exact_values() {
        for fmt in formats() {
            for v in [0.0f32, 0.5, -0.5, 1.0, -1.0] {
                assert_eq!(fmt.quantized_value(v), v as f64, "{fmt} {v}");
            }
        }
    }

    #[test]
    fn quantize_saturates() {
        let posit = NumericFormat::Posit(PositFormat::new(8, 0).unwrap());
        assert_eq!(posit.quantized_value(1e9), 64.0);
        let float = NumericFormat::Float(FloatFormat::new(4, 3).unwrap());
        assert_eq!(float.quantized_value(1e9), 240.0);
        let fixed = NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap());
        assert_eq!(fixed.quantized_value(1e9), 127.0 / 64.0);
    }

    #[test]
    fn relu_clamps_negatives_only() {
        for fmt in formats() {
            let neg = fmt.quantize(-0.75);
            let pos = fmt.quantize(0.75);
            assert_eq!(fmt.to_f64(fmt.relu_bits(neg)), 0.0, "{fmt}");
            assert_eq!(fmt.relu_bits(pos), pos, "{fmt}");
            assert_eq!(fmt.to_f64(fmt.relu_bits(fmt.quantize(0.0))), 0.0);
        }
    }

    #[test]
    fn emac_only_for_low_precision() {
        assert!(NumericFormat::F32.make_emac(8).is_none());
        for fmt in formats().into_iter().skip(1) {
            assert!(fmt.make_emac(8).is_some(), "{fmt}");
            assert!(fmt.spec().is_some());
        }
        assert!(NumericFormat::F32.spec().is_none());
    }

    #[test]
    fn try_make_emac_rejects_datapathless_formats_without_panicking() {
        // posit<8,6> has no significand bits: es > n − 3.
        let bad = NumericFormat::Posit(PositFormat::new(8, 6).unwrap());
        let err = bad.try_make_emac(8).unwrap_err();
        assert!(err.reason().contains("es <= n-3"), "{err}");
        // The baseline is Ok(None), supported formats Ok(Some).
        assert!(NumericFormat::F32.try_make_emac(8).unwrap().is_none());
        for fmt in formats().into_iter().skip(1) {
            assert!(fmt.try_make_emac(8).unwrap().is_some(), "{fmt}");
        }
        // 16-bit formats are supported across all three families.
        assert!(NumericFormat::Posit(PositFormat::new(16, 1).unwrap())
            .try_make_emac(128)
            .unwrap()
            .is_some());
        assert!(NumericFormat::Float(FloatFormat::new(5, 10).unwrap())
            .try_make_emac(128)
            .unwrap()
            .is_some());
        assert!(NumericFormat::Fixed(FixedFormat::new(16, 8).unwrap())
            .try_make_emac(128)
            .unwrap()
            .is_some());
    }

    #[test]
    fn per_op_arithmetic_matches_values() {
        for fmt in formats() {
            let a = fmt.quantize(0.5);
            let b = fmt.quantize(0.25);
            assert_eq!(fmt.to_f64(fmt.mul_bits(a, b)), 0.125, "{fmt}");
            assert_eq!(fmt.to_f64(fmt.add_bits(a, b)), 0.75, "{fmt}");
        }
    }

    #[test]
    fn widths_and_labels() {
        let fs = formats();
        assert_eq!(fs[0].n(), 32);
        assert_eq!(fs[1].n(), 8);
        assert!(fs[1].to_string().contains("posit"));
        assert!(fs[3].to_string().contains("fixed"));
    }
}
