//! Cycle-accurate simulation of the Deep Positron streaming architecture.
//!
//! Paper Fig. 1 / §III-E: each layer owns an array of EMACs with local
//! weight/bias memories; a main control FSM streams activations forward.
//! "The compute cycle of each layer is triggered when its directly
//! preceding layer has terminated computation for an input. This flow
//! performs inference in a parallel streaming fashion."
//!
//! The simulator models each layer as an FSM that occupies
//! `fan_in + pipeline_depth` cycles per input vector (one MAC per cycle
//! across all its EMACs in parallel, plus pipeline drain), with
//! single-buffered handoff between layers. Layer `ℓ` can work on input
//! `i+1` while layer `ℓ+1` works on input `i`.

use crate::quantized::QuantizedMlp;
use dp_emac::Emac;

/// Latency/throughput results of a streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingReport {
    /// Cycles until the first inference completed.
    pub first_latency_cycles: u64,
    /// Total cycles until the last inference completed.
    pub total_cycles: u64,
    /// Steady-state initiation interval between results (cycles).
    pub steady_interval_cycles: u64,
    /// Number of inferences performed.
    pub inferences: usize,
}

impl StreamingReport {
    /// Wall-clock first-inference latency at `fmax_hz`.
    pub fn first_latency_ns(&self, fmax_hz: f64) -> f64 {
        self.first_latency_cycles as f64 * 1e9 / fmax_hz
    }

    /// Wall-clock throughput (inferences per second) at `fmax_hz`.
    pub fn throughput_per_s(&self, fmax_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.inferences as f64 * fmax_hz / self.total_cycles as f64
    }
}

/// The analytic per-layer occupancy in cycles: `fan_in` MACs (one per
/// cycle) plus the EMAC pipeline depth for drain and rounding.
pub fn layer_cycles(qmlp: &QuantizedMlp) -> Vec<u64> {
    qmlp.layers
        .iter()
        .map(|l| {
            let depth = qmlp
                .format
                .make_emac(l.fan_in() as u64)
                .map(|e| e.pipeline_depth())
                .unwrap_or(1) as u64;
            l.fan_in() as u64 + depth
        })
        .collect()
}

/// Runs the streaming pipeline over `inputs`, returning per-input
/// predictions (identical to [`QuantizedMlp::infer`]) and the cycle counts.
///
/// # Panics
///
/// Panics if the format is `F32` (the streaming architecture exists for
/// the low-precision EMACs).
pub fn simulate(qmlp: &QuantizedMlp, inputs: &[Vec<f32>]) -> (Vec<usize>, StreamingReport) {
    let occupancy = layer_cycles(qmlp);
    let n_layers = qmlp.layers.len();
    // Per-layer state: Some((input_index, remaining_cycles)) when busy.
    let mut busy: Vec<Option<(usize, u64)>> = vec![None; n_layers];
    // Activation values travelling with each in-flight input (functional
    // payload carried alongside the timing model).
    let mut payload: Vec<Option<Vec<u32>>> = vec![None; n_layers];
    let mut next_input = 0usize;
    let mut results: Vec<Option<usize>> = vec![None; inputs.len()];
    let mut first_done: Option<u64> = None;
    let mut cycle: u64 = 0;
    let mut done = 0usize;

    while done < inputs.len() {
        // Retire / hand off from the last layer backwards so a freed layer
        // can accept new work in the same cycle boundary.
        for l in (0..n_layers).rev() {
            if let Some((idx, remaining)) = busy[l] {
                if remaining > 0 {
                    continue;
                }
                // Layer finished: compute its functional output now.
                let acts = payload[l].take().expect("payload follows busy");
                let out = layer_forward(qmlp, l, &acts);
                if l + 1 == n_layers {
                    let logits: Vec<f32> =
                        out.iter().map(|&b| qmlp.format.to_f64(b) as f32).collect();
                    results[idx] = Some(crate::tensor::argmax(&logits));
                    done += 1;
                    if first_done.is_none() {
                        first_done = Some(cycle);
                    }
                    busy[l] = None;
                } else if busy[l + 1].is_none() {
                    busy[l + 1] = Some((idx, occupancy[l + 1]));
                    payload[l + 1] = Some(out);
                    busy[l] = None;
                } else {
                    // Stalled: keep holding the result (put payload back).
                    payload[l] = Some(acts);
                }
            }
        }
        // Feed a new input when the first layer is free.
        if busy[0].is_none() && next_input < inputs.len() {
            busy[0] = Some((next_input, occupancy[0]));
            payload[0] = Some(qmlp.quantize_input(&inputs[next_input]));
            next_input += 1;
        }
        // Advance one clock.
        for slot in busy.iter_mut().flatten() {
            slot.1 = slot.1.saturating_sub(1);
        }
        cycle += 1;
        assert!(
            cycle < 10_000_000,
            "streaming simulation failed to converge"
        );
    }

    let preds: Vec<usize> = results.into_iter().map(|r| r.expect("all done")).collect();
    let report = StreamingReport {
        first_latency_cycles: first_done.unwrap_or(0),
        total_cycles: cycle - 1,
        steady_interval_cycles: *occupancy.iter().max().unwrap_or(&1),
        inferences: inputs.len(),
    };
    (preds, report)
}

/// One layer of EMAC evaluation on quantized activations (ReLU on hidden
/// layers, identity on the readout — same semantics as
/// [`QuantizedMlp::forward_bits`]). The streaming FSM advances one input
/// at a time, so each weight row goes through [`Emac::dot_tile`] with a
/// single activation column — the B = 1 per-column wrap of the row
/// kernels, same entry point as the batch tile sweep.
fn layer_forward(qmlp: &QuantizedMlp, l: usize, acts: &[u32]) -> Vec<u32> {
    let layer = &qmlp.layers[l];
    let last = qmlp.layers.len() - 1;
    let mut emac = qmlp
        .format
        .make_emac(layer.fan_in() as u64)
        .expect("streaming requires a low-precision format");
    let mut out = [0u32];
    layer
        .weight_rows()
        .zip(layer.biases())
        .map(|(wrow, &bias)| {
            emac.dot_tile(bias, wrow, &[acts], &mut out);
            if l != last {
                qmlp.format.relu_bits(out[0])
            } else {
                out[0]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::NumericFormat;
    use crate::mlp::Mlp;
    use crate::quantized::QuantizedMlp;
    use crate::train::{train, TrainConfig};
    use dp_datasets::iris;
    use dp_posit::PositFormat;

    fn quantized_iris() -> (QuantizedMlp, dp_datasets::TrainTest) {
        let split = iris::load(31).split(50, 31).normalized();
        let mut mlp = Mlp::new(&[4, 8, 3], 31);
        train(
            &mut mlp,
            &split.train,
            TrainConfig {
                epochs: 40,
                batch_size: 16,
                lr: 0.02,
                seed: 31,
            },
        );
        (
            QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 0).unwrap())),
            split,
        )
    }

    #[test]
    fn streaming_matches_functional_inference() {
        let (q, split) = quantized_iris();
        let inputs: Vec<Vec<f32>> = split.test.features.iter().take(20).cloned().collect();
        let (preds, report) = simulate(&q, &inputs);
        let expect: Vec<usize> = inputs.iter().map(|x| q.infer(x)).collect();
        assert_eq!(preds, expect);
        assert_eq!(report.inferences, 20);
    }

    #[test]
    fn first_latency_is_sum_of_layer_occupancies() {
        let (q, split) = quantized_iris();
        let inputs = vec![split.test.features[0].clone()];
        let (_, report) = simulate(&q, &inputs);
        let occ = layer_cycles(&q);
        // Layers: fan_in + depth cycles each; the result is visible at the
        // end of the cycle in which the last layer finishes.
        let analytic: u64 = occ.iter().sum();
        assert_eq!(report.first_latency_cycles, analytic);
    }

    #[test]
    fn pipelining_overlaps_layers() {
        let (q, split) = quantized_iris();
        let inputs: Vec<Vec<f32>> = split.test.features.iter().take(10).cloned().collect();
        let (_, report) = simulate(&q, &inputs);
        let occ = layer_cycles(&q);
        let serial: u64 = occ.iter().sum::<u64>() * inputs.len() as u64;
        assert!(
            report.total_cycles < serial,
            "pipelined {} vs serial {}",
            report.total_cycles,
            serial
        );
        // Steady state: one result per max-occupancy interval (+ slack).
        let max_occ = *occ.iter().max().unwrap();
        assert_eq!(report.steady_interval_cycles, max_occ);
        let lower = report.first_latency_cycles + (inputs.len() as u64 - 1) * max_occ;
        assert!(
            report.total_cycles >= lower - inputs.len() as u64
                && report.total_cycles <= lower + 2 * inputs.len() as u64,
            "total {} vs analytic steady-state {}",
            report.total_cycles,
            lower
        );
    }

    #[test]
    fn wall_clock_conversions() {
        let r = StreamingReport {
            first_latency_cycles: 100,
            total_cycles: 1000,
            steady_interval_cycles: 10,
            inferences: 90,
        };
        assert!((r.first_latency_ns(1e8) - 1000.0).abs() < 1e-9);
        assert!((r.throughput_per_s(1e8) - 9e6).abs() < 1.0);
    }
}
