//! Quantized Deep Positron inference through EMAC units.
//!
//! A trained 32-bit float [`Mlp`] is quantized per format: weights and
//! biases become bit patterns, and each neuron evaluates
//! `round(bias + Σ wᵢ·aᵢ)` on an exact multiply-and-accumulate unit —
//! precisely the computation of the paper's per-layer EMAC arrays (Fig. 1).
//! An *inexact* per-op rounding path is also provided, for the ablation
//! quantifying how much the EMAC's delayed rounding matters (paper §III-A).

use crate::format::NumericFormat;
use crate::mlp::Mlp;
use crate::tensor::argmax;
use dp_datasets::Dataset;
use dp_emac::Emac;

/// One quantized dense layer.
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    /// Per-neuron weight patterns (`out × in`).
    pub weights: Vec<Vec<u32>>,
    /// Per-neuron bias patterns.
    pub biases: Vec<u32>,
}

impl QuantizedLayer {
    /// Fan-in of the layer.
    pub fn fan_in(&self) -> usize {
        self.weights.first().map_or(0, |w| w.len())
    }

    /// Fan-out (neuron count).
    pub fn fan_out(&self) -> usize {
        self.weights.len()
    }
}

/// A quantized MLP bound to a [`NumericFormat`].
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    /// The inference format.
    pub format: NumericFormat,
    /// Quantized layers, input to output.
    pub layers: Vec<QuantizedLayer>,
}

impl QuantizedMlp {
    /// Quantizes a trained float network into `format`.
    pub fn quantize(mlp: &Mlp, format: NumericFormat) -> Self {
        let layers = mlp
            .layers
            .iter()
            .map(|l| QuantizedLayer {
                weights: (0..l.fan_out())
                    .map(|j| l.w.row(j).iter().map(|&w| format.quantize(w)).collect())
                    .collect(),
                biases: l.b.iter().map(|&b| format.quantize(b)).collect(),
            })
            .collect();
        QuantizedMlp { format, layers }
    }

    /// Quantizes an input feature vector.
    pub fn quantize_input(&self, x: &[f32]) -> Vec<u32> {
        x.iter().map(|&v| self.format.quantize(v)).collect()
    }

    /// EMAC inference: each neuron seeds its accumulator with the bias,
    /// streams one exact MAC per input, rounds once, then applies ReLU
    /// (identity on the readout layer). Returns the output activations as
    /// bit patterns.
    pub fn forward_bits(&self, x: &[f32]) -> Vec<u32> {
        let mut acts = self.quantize_input(x);
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let k = layer.fan_in() as u64;
            let mut next = Vec::with_capacity(layer.fan_out());
            let mut emac = self
                .format
                .make_emac(k)
                .expect("EMAC inference requires a low-precision format");
            for (wrow, &bias) in layer.weights.iter().zip(&layer.biases) {
                emac.set_bias(bias);
                for (&w, &a) in wrow.iter().zip(&acts) {
                    emac.mac(w, a);
                }
                let mut out = emac.result();
                if li != last {
                    out = self.format.relu_bits(out);
                }
                next.push(out);
            }
            acts = next;
        }
        acts
    }

    /// Predicted class via the EMAC path (or plain f32 math for `F32`).
    pub fn infer(&self, x: &[f32]) -> usize {
        let logits: Vec<f32> = match self.format {
            NumericFormat::F32 => return self.infer_inexact(x),
            _ => self
                .forward_bits(x)
                .iter()
                .map(|&b| self.format.to_f64(b) as f32)
                .collect(),
        };
        argmax(&logits)
    }

    /// Classification accuracy of the EMAC path on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| self.infer(x) == y)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Per-op rounding inference (an ordinary MAC: every product and every
    /// accumulation rounds to the format) — the ablation baseline showing
    /// what the EMAC's exactness buys.
    pub fn infer_inexact(&self, x: &[f32]) -> usize {
        let mut acts = self.quantize_input(x);
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let mut next = Vec::with_capacity(layer.fan_out());
            for (wrow, &bias) in layer.weights.iter().zip(&layer.biases) {
                let mut acc = bias;
                for (&w, &a) in wrow.iter().zip(&acts) {
                    let p = self.format.mul_bits(w, a);
                    acc = self.format.add_bits(acc, p);
                }
                if li != last {
                    acc = self.format.relu_bits(acc);
                }
                next.push(acc);
            }
            acts = next;
        }
        let logits: Vec<f32> = acts
            .iter()
            .map(|&b| self.format.to_f64(b) as f32)
            .collect();
        argmax(&logits)
    }

    /// Accuracy of the per-op rounding path.
    pub fn accuracy_inexact(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| self.infer_inexact(x) == y)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Layer widths `[in, hidden..., out]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut d = vec![self.layers[0].fan_in()];
        d.extend(self.layers.iter().map(|l| l.fan_out()));
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, TrainConfig};
    use dp_datasets::iris;
    use dp_fixed::FixedFormat;
    use dp_minifloat::FloatFormat;
    use dp_posit::PositFormat;

    fn trained_iris() -> (Mlp, dp_datasets::TrainTest) {
        let split = iris::load(21).split(50, 21).normalized();
        let mut mlp = Mlp::new(&[4, 8, 3], 21);
        train(
            &mut mlp,
            &split.train,
            TrainConfig {
                epochs: 80,
                batch_size: 16,
                lr: 0.02,
                seed: 21,
            },
        );
        (mlp, split)
    }

    #[test]
    fn quantized_shapes_match() {
        let (mlp, _) = trained_iris();
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 0).unwrap()));
        assert_eq!(q.dims(), vec![4, 8, 3]);
        assert_eq!(q.layers[0].fan_in(), 4);
        assert_eq!(q.layers[1].fan_out(), 3);
    }

    #[test]
    fn eight_bit_posit_tracks_f32_on_iris() {
        let (mlp, split) = trained_iris();
        let f32_acc = mlp.accuracy(&split.test);
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 0).unwrap()));
        let acc = q.accuracy(&split.test);
        assert!(f32_acc > 0.9, "f32 {f32_acc}");
        assert!(
            acc >= f32_acc - 0.08,
            "posit8 {acc} vs f32 {f32_acc} (paper: equal on Iris)"
        );
    }

    #[test]
    fn eight_bit_float_and_fixed_work_on_iris() {
        let (mlp, split) = trained_iris();
        for fmt in [
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
            NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
        ] {
            let q = QuantizedMlp::quantize(&mlp, fmt);
            let acc = q.accuracy(&split.test);
            assert!(acc > 0.8, "{fmt}: {acc}");
        }
    }

    #[test]
    fn f32_roundtrip_format_is_identity() {
        let (mlp, split) = trained_iris();
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::F32);
        assert_eq!(q.accuracy(&split.test), mlp.accuracy(&split.test));
    }

    #[test]
    fn exact_path_at_least_as_good_as_inexact_on_average() {
        // Not a theorem per-sample, but with 5-bit formats the EMAC path
        // should not be (much) worse in aggregate.
        let (mlp, split) = trained_iris();
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(6, 0).unwrap()));
        let exact = q.accuracy(&split.test);
        let inexact = q.accuracy_inexact(&split.test);
        assert!(
            exact + 0.05 >= inexact,
            "exact {exact} vs inexact {inexact}"
        );
    }
}
