//! Quantized Deep Positron inference through EMAC units.
//!
//! A trained 32-bit float [`Mlp`] is quantized per format: weights and
//! biases become bit patterns, and each neuron evaluates
//! `round(bias + Σ wᵢ·aᵢ)` on an exact multiply-and-accumulate unit —
//! precisely the computation of the paper's per-layer EMAC arrays (Fig. 1).
//! An *inexact* per-op rounding path is also provided, for the ablation
//! quantifying how much the EMAC's delayed rounding matters (paper §III-A).
//!
//! ## Batch engine
//!
//! Weights are stored as one contiguous row-major pattern array per layer,
//! so a whole layer streams through the cache linearly. Dataset-scale
//! entry points ([`QuantizedMlp::forward_batch`],
//! [`QuantizedMlp::infer_batch`], [`QuantizedMlp::accuracy`]) partition
//! samples across threads; each thread builds its per-layer EMAC array
//! once and sweeps its whole contiguous chunk through
//! [`QuantizedMlp::forward_batch_bits_with`], which evaluates each layer
//! across the entire chunk before advancing — every neuron's weight row is
//! fed to [`dp_emac::Emac::dot_tile`] exactly once per layer, so the
//! weight-stationary tile kernels amortize operand gather and product-table
//! traffic across the batch the way a hardware EMAC array is amortized
//! across a request stream. Results are bit-identical to per-sample
//! [`QuantizedMlp::forward_bits`] (the tile contract).
//!
//! Partitioning policy (thread counts, chunking, the scoped-thread
//! fallback) lives in [`crate::batch`]; the persistent serving path —
//! long-lived worker pool, request queue, completion handles and a
//! multi-format model registry — is the `dp_serve` crate, which drives
//! the same [`QuantizedMlp::forward_bits_with`] /
//! [`QuantizedMlp::infer_with`] inner loops and therefore stays
//! bit-identical too.

pub use crate::batch::batch_threads;
use crate::batch::{par_chunk_map_with, par_map_with};
use crate::format::NumericFormat;
use crate::mlp::Mlp;
use crate::tensor::argmax;
use dp_datasets::Dataset;
use dp_emac::{Emac, EmacUnit};

/// One quantized dense layer: contiguous row-major weight patterns plus
/// per-neuron biases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedLayer {
    fan_in: usize,
    fan_out: usize,
    /// Row-major `fan_out × fan_in` weight patterns (neuron `j`'s weights
    /// occupy `weights[j*fan_in .. (j+1)*fan_in]`).
    weights: Vec<u32>,
    /// Per-neuron bias patterns.
    biases: Vec<u32>,
}

impl QuantizedLayer {
    /// Builds a layer from a contiguous row-major weight array.
    ///
    /// # Panics
    ///
    /// Panics unless `weights.len() == fan_in × fan_out` and
    /// `biases.len() == fan_out`.
    pub fn new(fan_in: usize, fan_out: usize, weights: Vec<u32>, biases: Vec<u32>) -> Self {
        assert_eq!(weights.len(), fan_in * fan_out, "weight array shape");
        assert_eq!(biases.len(), fan_out, "bias array shape");
        QuantizedLayer {
            fan_in,
            fan_out,
            weights,
            biases,
        }
    }

    /// Builds a layer from per-neuron weight rows (all rows must share one
    /// length).
    ///
    /// # Panics
    ///
    /// Panics on ragged rows or a bias/row-count mismatch.
    pub fn from_rows(rows: &[Vec<u32>], biases: Vec<u32>) -> Self {
        let fan_out = rows.len();
        let fan_in = rows.first().map_or(0, |r| r.len());
        let mut weights = Vec::with_capacity(fan_in * fan_out);
        for row in rows {
            assert_eq!(row.len(), fan_in, "ragged weight rows");
            weights.extend_from_slice(row);
        }
        Self::new(fan_in, fan_out, weights, biases)
    }

    /// Fan-in of the layer.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Fan-out (neuron count).
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The contiguous row-major weight patterns.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Neuron `j`'s weight row.
    ///
    /// # Panics
    ///
    /// Panics if `j >= fan_out`.
    pub fn weight_row(&self, j: usize) -> &[u32] {
        &self.weights[j * self.fan_in..(j + 1) * self.fan_in]
    }

    /// Iterator over the per-neuron weight rows (always exactly
    /// [`QuantizedLayer::fan_out`] of them, even in the degenerate
    /// `fan_in == 0` case).
    pub fn weight_rows(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.fan_out).map(|j| self.weight_row(j))
    }

    /// Per-neuron bias patterns.
    pub fn biases(&self) -> &[u32] {
        &self.biases
    }

    /// Mutable view of neuron `j`'s weight row (weight surgery, fault
    /// injection).
    ///
    /// # Panics
    ///
    /// Panics if `j >= fan_out`.
    pub fn weight_row_mut(&mut self, j: usize) -> &mut [u32] {
        &mut self.weights[j * self.fan_in..(j + 1) * self.fan_in]
    }

    /// Mutable view of the bias patterns.
    pub fn biases_mut(&mut self) -> &mut [u32] {
        &mut self.biases
    }
}

/// A quantized MLP bound to a [`NumericFormat`].
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    /// The inference format.
    pub format: NumericFormat,
    /// Quantized layers, input to output.
    pub layers: Vec<QuantizedLayer>,
}

impl QuantizedMlp {
    /// Quantizes a trained float network into `format`.
    pub fn quantize(mlp: &Mlp, format: NumericFormat) -> Self {
        let layers = mlp
            .layers
            .iter()
            .map(|l| {
                let (fan_in, fan_out) = (l.fan_in(), l.fan_out());
                let mut weights = Vec::with_capacity(fan_in * fan_out);
                for j in 0..fan_out {
                    weights.extend(l.w.row(j).iter().map(|&w| format.quantize(w)));
                }
                QuantizedLayer::new(
                    fan_in,
                    fan_out,
                    weights,
                    l.b.iter().map(|&b| format.quantize(b)).collect(),
                )
            })
            .collect();
        QuantizedMlp { format, layers }
    }

    /// Quantizes an input feature vector.
    pub fn quantize_input(&self, x: &[f32]) -> Vec<u32> {
        x.iter().map(|&v| self.format.quantize(v)).collect()
    }

    /// One EMAC per layer, sized for that layer's fan-in, or `None` for
    /// the `F32` baseline. Batch callers build this once per thread and
    /// reuse it across samples.
    ///
    /// # Panics
    ///
    /// Panics when the format has no EMAC datapath (e.g. a posit with
    /// `es > n − 3`); registries and other untrusted entry points should
    /// gate on [`QuantizedMlp::try_make_layer_emacs`] first.
    pub fn make_layer_emacs(&self) -> Option<Vec<EmacUnit>> {
        self.try_make_layer_emacs()
            .expect("format has no EMAC datapath (see try_make_layer_emacs)")
    }

    /// [`QuantizedMlp::make_layer_emacs`] with a typed error instead of a
    /// panic: `Ok(None)` for the `F32` baseline, `Err` when the format
    /// has no EMAC datapath for some layer. `dp_serve`'s model registry
    /// calls this at registration time so an unsupported model is
    /// rejected up front rather than panicking a pool worker mid-request.
    ///
    /// # Errors
    ///
    /// [`dp_emac::UnsupportedFormat`] naming the offending format/layer
    /// pairing.
    pub fn try_make_layer_emacs(
        &self,
    ) -> Result<Option<Vec<EmacUnit>>, dp_emac::UnsupportedFormat> {
        if matches!(self.format, NumericFormat::F32) {
            return Ok(None);
        }
        self.layers
            .iter()
            .map(|l| {
                self.format
                    .try_make_emac(l.fan_in() as u64)
                    .map(|unit| unit.expect("low-precision formats yield an EMAC"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some)
    }

    /// EMAC inference: each neuron seeds its accumulator with the bias,
    /// streams one exact MAC per input, rounds once, then applies ReLU
    /// (identity on the readout layer). Returns the output activations as
    /// bit patterns.
    pub fn forward_bits(&self, x: &[f32]) -> Vec<u32> {
        let mut emacs = self
            .make_layer_emacs()
            .expect("EMAC inference requires a low-precision format");
        self.forward_bits_with(&mut emacs, x)
    }

    /// [`QuantizedMlp::forward_bits`] with caller-owned EMACs (one per
    /// layer, as built by [`QuantizedMlp::make_layer_emacs`]); the batch
    /// engine's inner loop.
    ///
    /// Each neuron feeds its whole contiguous weight row to
    /// [`dp_emac::Emac::dot_slice`], so the unit runs its slice-level
    /// [`dp_emac::MacKernel`] (finished-product table at ≤ 8 bits, batched
    /// fused-operand gather at ≤ 16) instead of one `mac()` dispatch per
    /// weight — bit-identical to the scalar loop by the kernel contract.
    pub fn forward_bits_with(&self, emacs: &mut [EmacUnit], x: &[f32]) -> Vec<u32> {
        debug_assert_eq!(emacs.len(), self.layers.len());
        let mut acts = self.quantize_input(x);
        let last = self.layers.len() - 1;
        for (li, (layer, emac)) in self.layers.iter().zip(emacs).enumerate() {
            let mut next = Vec::with_capacity(layer.fan_out());
            for (wrow, &bias) in layer.weight_rows().zip(layer.biases()) {
                emac.set_bias(bias);
                emac.dot_slice(wrow, &acts);
                let mut out = emac.result();
                if li != last {
                    out = self.format.relu_bits(out);
                }
                next.push(out);
            }
            acts = next;
        }
        acts
    }

    /// The slice-level [`dp_emac::MacKernel`] each layer's EMAC selected
    /// (in layer order), or `None` for the `F32` baseline — serving
    /// introspection for registries, reports and the `kernel_sweep`
    /// example.
    ///
    /// # Panics
    ///
    /// Panics when the format has no EMAC datapath, like
    /// [`QuantizedMlp::make_layer_emacs`].
    pub fn layer_kernels(&self) -> Option<Vec<dp_emac::MacKernel>> {
        self.make_layer_emacs()
            .map(|emacs| emacs.iter().map(|u| u.kernel()).collect())
    }

    /// The tile-level [`dp_emac::TileKernel`] each layer's EMAC runs when
    /// [`QuantizedMlp::forward_batch_bits_with`] sweeps a chunk of `batch`
    /// samples (in layer order), or `None` for the `F32` baseline. `batch
    /// ≤ 1` reports the per-column wrap of [`QuantizedMlp::layer_kernels`].
    ///
    /// # Panics
    ///
    /// Panics when the format has no EMAC datapath, like
    /// [`QuantizedMlp::make_layer_emacs`].
    pub fn layer_tile_kernels(&self, batch: usize) -> Option<Vec<dp_emac::TileKernel>> {
        self.make_layer_emacs()
            .map(|emacs| emacs.iter().map(|u| u.tile_kernel(batch)).collect())
    }

    /// Whole-chunk EMAC inference with caller-owned EMACs: evaluates each
    /// layer across **all** of `xs` before advancing to the next, feeding
    /// every neuron's weight row to [`dp_emac::Emac::dot_tile`] once per
    /// layer so the tile kernels gather fused operands or cache-block the
    /// product table across the batch. Per sample, the output is
    /// bit-identical to [`QuantizedMlp::forward_bits_with`] (the tile
    /// contract); this is the batch engine's and the serving chunk path's
    /// inner loop.
    pub fn forward_batch_bits_with(
        &self,
        emacs: &mut [EmacUnit],
        xs: &[Vec<f32>],
    ) -> Vec<Vec<u32>> {
        debug_assert_eq!(emacs.len(), self.layers.len());
        if xs.is_empty() {
            return Vec::new();
        }
        let b = xs.len();
        let mut acts: Vec<Vec<u32>> = xs.iter().map(|x| self.quantize_input(x)).collect();
        let last = self.layers.len() - 1;
        let mut row_out = vec![0u32; b];
        for (li, (layer, emac)) in self.layers.iter().zip(emacs).enumerate() {
            let cols: Vec<&[u32]> = acts.iter().map(|a| a.as_slice()).collect();
            let mut next: Vec<Vec<u32>> = vec![Vec::with_capacity(layer.fan_out()); b];
            for (wrow, &bias) in layer.weight_rows().zip(layer.biases()) {
                emac.dot_tile(bias, wrow, &cols, &mut row_out);
                for (&out, sample) in row_out.iter().zip(next.iter_mut()) {
                    sample.push(if li != last {
                        self.format.relu_bits(out)
                    } else {
                        out
                    });
                }
            }
            acts = next;
        }
        acts
    }

    /// Predicted classes for a whole chunk via the tile sweep — the
    /// classify counterpart of [`QuantizedMlp::forward_batch_bits_with`],
    /// shared by [`QuantizedMlp::infer_batch`] and the `dp_serve` chunk
    /// path. Agrees with per-sample [`QuantizedMlp::infer_with`] exactly.
    pub fn infer_batch_with(&self, emacs: &mut [EmacUnit], xs: &[Vec<f32>]) -> Vec<usize> {
        self.forward_batch_bits_with(emacs, xs)
            .iter()
            .map(|bits| self.argmax_bits(bits))
            .collect()
    }

    /// EMAC inference over a whole batch, bit-identical to calling
    /// [`QuantizedMlp::forward_bits`] per sample but with the samples
    /// partitioned across threads, per-layer EMACs reused within each
    /// thread, and each thread's chunk evaluated as one weight-stationary
    /// tile sweep per layer ([`QuantizedMlp::forward_batch_bits_with`]).
    ///
    /// Thread count defaults to the machine's available parallelism
    /// (capped by the batch size) and can be pinned with the
    /// `DEEP_POSITRON_THREADS` environment variable.
    ///
    /// # Panics
    ///
    /// Panics for the `F32` baseline (which has no EMAC datapath).
    pub fn forward_batch(&self, xs: &[Vec<f32>]) -> Vec<Vec<u32>> {
        assert!(
            !matches!(self.format, NumericFormat::F32),
            "forward_batch requires a low-precision format"
        );
        par_chunk_map_with(
            xs,
            || self.make_layer_emacs().expect("low-precision format"),
            |emacs, chunk| self.forward_batch_bits_with(emacs, chunk),
        )
    }

    /// Predicted class via the EMAC path (or plain f32 math for `F32`).
    pub fn infer(&self, x: &[f32]) -> usize {
        match self.format {
            NumericFormat::F32 => self.infer_inexact(x),
            _ => self.argmax_bits(&self.forward_bits(x)),
        }
    }

    /// Predicted classes for a whole batch (parallel, EMACs reused per
    /// thread, one tile sweep per layer per chunk); agrees with per-sample
    /// [`QuantizedMlp::infer`] exactly.
    pub fn infer_batch(&self, xs: &[Vec<f32>]) -> Vec<usize> {
        match self.format {
            NumericFormat::F32 => par_map_with(xs, || (), |(), x| self.infer_inexact(x)),
            _ => par_chunk_map_with(
                xs,
                || self.make_layer_emacs().expect("low-precision format"),
                |emacs, chunk| self.infer_batch_with(emacs, chunk),
            ),
        }
    }

    /// [`QuantizedMlp::infer`] with caller-owned EMACs (one per layer, as
    /// built by [`QuantizedMlp::make_layer_emacs`]) — the classify inner
    /// loop shared by the batch engine and the `dp_serve` worker pool.
    pub fn infer_with(&self, emacs: &mut [EmacUnit], x: &[f32]) -> usize {
        self.argmax_bits(&self.forward_bits_with(emacs, x))
    }

    fn argmax_bits(&self, bits: &[u32]) -> usize {
        let logits: Vec<f32> = bits.iter().map(|&b| self.format.to_f64(b) as f32).collect();
        argmax(&logits)
    }

    /// Classification accuracy of the EMAC path on a dataset (batched and
    /// parallel; see [`QuantizedMlp::infer_batch`]).
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let preds = self.infer_batch(&data.features);
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, &y)| **p == y)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Per-op rounding inference (an ordinary MAC: every product and every
    /// accumulation rounds to the format) — the ablation baseline showing
    /// what the EMAC's exactness buys.
    pub fn infer_inexact(&self, x: &[f32]) -> usize {
        let mut acts = self.quantize_input(x);
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            let mut next = Vec::with_capacity(layer.fan_out());
            for (wrow, &bias) in layer.weight_rows().zip(layer.biases()) {
                let mut acc = bias;
                for (&w, &a) in wrow.iter().zip(&acts) {
                    let p = self.format.mul_bits(w, a);
                    acc = self.format.add_bits(acc, p);
                }
                if li != last {
                    acc = self.format.relu_bits(acc);
                }
                next.push(acc);
            }
            acts = next;
        }
        self.argmax_bits(&acts)
    }

    /// Accuracy of the per-op rounding path (batched and parallel).
    pub fn accuracy_inexact(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let preds = par_map_with(&data.features, || (), |(), x| self.infer_inexact(x));
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, &y)| **p == y)
            .count();
        correct as f64 / data.len() as f64
    }

    /// Layer widths `[in, hidden..., out]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut d = vec![self.layers[0].fan_in()];
        d.extend(self.layers.iter().map(|l| l.fan_out()));
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::par_map_with_threads;
    use crate::train::{train, TrainConfig};
    use dp_datasets::iris;
    use dp_fixed::FixedFormat;
    use dp_minifloat::FloatFormat;
    use dp_posit::PositFormat;

    fn trained_iris() -> (Mlp, dp_datasets::TrainTest) {
        let split = iris::load(21).split(50, 21).normalized();
        let mut mlp = Mlp::new(&[4, 8, 3], 21);
        train(
            &mut mlp,
            &split.train,
            TrainConfig {
                epochs: 80,
                batch_size: 16,
                lr: 0.02,
                seed: 21,
            },
        );
        (mlp, split)
    }

    #[test]
    fn quantized_shapes_match() {
        let (mlp, _) = trained_iris();
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 0).unwrap()));
        assert_eq!(q.dims(), vec![4, 8, 3]);
        assert_eq!(q.layers[0].fan_in(), 4);
        assert_eq!(q.layers[1].fan_out(), 3);
        assert_eq!(q.layers[0].weights().len(), 4 * 8);
        assert_eq!(q.layers[0].weight_rows().count(), 8);
        assert_eq!(q.layers[0].weight_row(3), &q.layers[0].weights()[12..16]);
    }

    #[test]
    fn layer_constructors_agree_and_validate() {
        let rows = vec![vec![1u32, 2], vec![3, 4], vec![5, 6]];
        let a = QuantizedLayer::from_rows(&rows, vec![7, 8, 9]);
        let b = QuantizedLayer::new(2, 3, vec![1, 2, 3, 4, 5, 6], vec![7, 8, 9]);
        assert_eq!(a, b);
        assert_eq!(a.biases(), &[7, 8, 9]);
        assert!(std::panic::catch_unwind(|| {
            QuantizedLayer::new(2, 3, vec![1, 2, 3], vec![7, 8, 9])
        })
        .is_err());
        // Degenerate fan_in = 0 still yields one (empty) row per neuron.
        let empty_in = QuantizedLayer::new(0, 2, vec![], vec![1, 2]);
        assert_eq!(empty_in.weight_rows().count(), 2);
        assert!(empty_in.weight_rows().all(|r| r.is_empty()));
    }

    #[test]
    fn eight_bit_posit_tracks_f32_on_iris() {
        let (mlp, split) = trained_iris();
        let f32_acc = mlp.accuracy(&split.test);
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 0).unwrap()));
        let acc = q.accuracy(&split.test);
        assert!(f32_acc > 0.9, "f32 {f32_acc}");
        assert!(
            acc >= f32_acc - 0.08,
            "posit8 {acc} vs f32 {f32_acc} (paper: equal on Iris)"
        );
    }

    #[test]
    fn eight_bit_float_and_fixed_work_on_iris() {
        let (mlp, split) = trained_iris();
        for fmt in [
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
            NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
        ] {
            let q = QuantizedMlp::quantize(&mlp, fmt);
            let acc = q.accuracy(&split.test);
            assert!(acc > 0.8, "{fmt}: {acc}");
        }
    }

    #[test]
    fn batch_forward_is_bit_identical_to_per_sample() {
        // Includes the 16-bit §IV formats, which exercise the split-table
        // decode and the 256-bit accumulator through the batch engine.
        let (mlp, split) = trained_iris();
        for fmt in [
            NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
            NumericFormat::Posit(PositFormat::new(16, 1).unwrap()),
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
            NumericFormat::Float(FloatFormat::new(5, 10).unwrap()),
            NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
            NumericFormat::Fixed(FixedFormat::new(16, 10).unwrap()),
        ] {
            let q = QuantizedMlp::quantize(&mlp, fmt);
            let xs: Vec<Vec<f32>> = split.test.features.iter().take(25).cloned().collect();
            let batch = q.forward_batch(&xs);
            let scalar: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
            assert_eq!(batch, scalar, "{fmt}");
            let preds = q.infer_batch(&xs);
            let scalar_preds: Vec<usize> = xs.iter().map(|x| q.infer(x)).collect();
            assert_eq!(preds, scalar_preds, "{fmt}");
        }
    }

    #[test]
    fn try_make_layer_emacs_validates_instead_of_panicking() {
        let (mlp, _) = trained_iris();
        // A datapath-less format: posit es > n − 3.
        let bad =
            QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 6).unwrap()));
        let err = bad.try_make_layer_emacs().unwrap_err();
        assert!(err.reason().contains("es <= n-3"), "{err}");
        // Supported formats yield one EMAC per layer; F32 yields None.
        let good =
            QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(16, 1).unwrap()));
        assert_eq!(good.try_make_layer_emacs().unwrap().unwrap().len(), 2);
        let f32_model = QuantizedMlp::quantize(&mlp, NumericFormat::F32);
        assert!(f32_model.try_make_layer_emacs().unwrap().is_none());
    }

    #[test]
    fn sixteen_bit_posit_tracks_f32_on_iris() {
        // Paper §IV Tables II–III run the sweep up to [16,1]; at 16 bits
        // the quantized network should match the f32 baseline closely.
        let (mlp, split) = trained_iris();
        let f32_acc = mlp.accuracy(&split.test);
        let q =
            QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(16, 1).unwrap()));
        let acc = q.accuracy(&split.test);
        assert!(
            acc >= f32_acc - 0.04,
            "posit16 {acc} vs f32 {f32_acc} (paper: 16-bit matches f32)"
        );
    }

    #[test]
    fn slice_forward_matches_scalar_mac_loop() {
        // forward_bits now rides dot_slice (kernel datapath); an inline
        // per-element mac() loop is the pre-slice definition and must agree
        // bit for bit, across all three kernel bands.
        let (mlp, split) = trained_iris();
        for fmt in [
            NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
            NumericFormat::Posit(PositFormat::new(16, 1).unwrap()),
            NumericFormat::Posit(PositFormat::new(17, 1).unwrap()),
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
            NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
        ] {
            let q = QuantizedMlp::quantize(&mlp, fmt);
            let scalar_forward = |x: &[f32]| -> Vec<u32> {
                let mut emacs = q.make_layer_emacs().unwrap();
                let mut acts = q.quantize_input(x);
                let last = q.layers.len() - 1;
                for (li, (layer, emac)) in q.layers.iter().zip(&mut emacs).enumerate() {
                    let mut next = Vec::with_capacity(layer.fan_out());
                    for (wrow, &bias) in layer.weight_rows().zip(layer.biases()) {
                        emac.set_bias(bias);
                        for (&w, &a) in wrow.iter().zip(&acts) {
                            emac.mac(w, a);
                        }
                        let mut out = emac.result();
                        if li != last {
                            out = q.format.relu_bits(out);
                        }
                        next.push(out);
                    }
                    acts = next;
                }
                acts
            };
            for x in split.test.features.iter().take(20) {
                assert_eq!(q.forward_bits(x), scalar_forward(x), "{fmt}");
            }
        }
    }

    #[test]
    fn chunk_tile_sweep_is_bit_identical_to_per_sample() {
        // forward_batch_bits_with evaluates a whole chunk layer-by-layer
        // through dot_tile; per sample it must match forward_bits exactly,
        // across every tile band and at ragged chunk widths.
        let (mlp, split) = trained_iris();
        for fmt in [
            NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
            NumericFormat::Posit(PositFormat::new(16, 1).unwrap()),
            NumericFormat::Posit(PositFormat::new(17, 1).unwrap()),
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
            NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
            NumericFormat::Fixed(FixedFormat::new(16, 10).unwrap()),
        ] {
            let q = QuantizedMlp::quantize(&mlp, fmt);
            for take in [1usize, 7, 25] {
                let xs: Vec<Vec<f32>> = split.test.features.iter().take(take).cloned().collect();
                let mut emacs = q.make_layer_emacs().unwrap();
                let chunk = q.forward_batch_bits_with(&mut emacs, &xs);
                let per_sample: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
                assert_eq!(chunk, per_sample, "{fmt} B={take}");
                let mut emacs = q.make_layer_emacs().unwrap();
                let preds = q.infer_batch_with(&mut emacs, &xs);
                let scalar_preds: Vec<usize> = xs.iter().map(|x| q.infer(x)).collect();
                assert_eq!(preds, scalar_preds, "{fmt} B={take}");
            }
            let mut emacs = q.make_layer_emacs().unwrap();
            assert!(q.forward_batch_bits_with(&mut emacs, &[]).is_empty());
        }
    }

    #[test]
    fn chunk_worker_count_does_not_change_results() {
        use crate::batch::par_chunk_map_with_threads;
        let (mlp, split) = trained_iris();
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 0).unwrap()));
        let xs: Vec<Vec<f32>> = split
            .test
            .features
            .iter()
            .cycle()
            .take(100)
            .cloned()
            .collect();
        let run = |threads: usize| {
            par_chunk_map_with_threads(
                &xs,
                threads,
                || q.make_layer_emacs().unwrap(),
                |emacs, chunk| q.forward_batch_bits_with(emacs, chunk),
            )
        };
        let serial = run(1);
        // The tile width is the chunk width, so worker count changes B —
        // bit-identity must hold anyway (per-column tile contract).
        for threads in [2, 4, 7, 1000] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
        let per_sample: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
        assert_eq!(serial, per_sample);
    }

    #[test]
    fn layer_tile_kernels_reports_batch_width_selection() {
        use dp_emac::{MacKernel, TileKernel};
        let (mlp, _) = trained_iris();
        let by_fmt = |fmt: NumericFormat, b: usize| {
            QuantizedMlp::quantize(&mlp, fmt)
                .layer_tile_kernels(b)
                .expect("low-precision format")
        };
        let p8 = NumericFormat::Posit(PositFormat::new(8, 0).unwrap());
        let p16 = NumericFormat::Posit(PositFormat::new(16, 1).unwrap());
        let p17 = NumericFormat::Posit(PositFormat::new(17, 1).unwrap());
        assert!(by_fmt(p8, 64)
            .iter()
            .all(|&k| k == TileKernel::BlockedProduct));
        assert!(by_fmt(p8, 1)
            .iter()
            .all(|&k| k == TileKernel::PerColumn(MacKernel::ProductTable)));
        assert!(by_fmt(p16, 64)
            .iter()
            .all(|&k| k == TileKernel::GatherFused));
        assert!(by_fmt(p17, 64)
            .iter()
            .all(|&k| k == TileKernel::PerColumn(MacKernel::Scalar)));
        assert!(QuantizedMlp::quantize(&mlp, NumericFormat::F32)
            .layer_tile_kernels(64)
            .is_none());
    }

    #[test]
    fn layer_kernels_reports_band_selection() {
        let (mlp, _) = trained_iris();
        let by_fmt = |fmt: NumericFormat| {
            QuantizedMlp::quantize(&mlp, fmt)
                .layer_kernels()
                .expect("low-precision format")
        };
        use dp_emac::MacKernel;
        let p8 = by_fmt(NumericFormat::Posit(PositFormat::new(8, 0).unwrap()));
        assert!(p8.iter().all(|&k| k == MacKernel::ProductTable), "{p8:?}");
        let p16 = by_fmt(NumericFormat::Posit(PositFormat::new(16, 1).unwrap()));
        assert!(p16.iter().all(|&k| k == MacKernel::BatchedFused), "{p16:?}");
        let p17 = by_fmt(NumericFormat::Posit(PositFormat::new(17, 1).unwrap()));
        assert!(p17.iter().all(|&k| k == MacKernel::Scalar), "{p17:?}");
        assert!(QuantizedMlp::quantize(&mlp, NumericFormat::F32)
            .layer_kernels()
            .is_none());
    }

    #[test]
    fn batch_handles_empty_input() {
        let (mlp, _) = trained_iris();
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 0).unwrap()));
        assert!(q.forward_batch(&[]).is_empty());
        assert!(q.infer_batch(&[]).is_empty());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // Drive the spawn/chunk/merge path directly with explicit worker
        // counts (the public entry points would stay single-threaded for
        // small batches, and on single-core machines always).
        let (mlp, split) = trained_iris();
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 0).unwrap()));
        let xs: Vec<Vec<f32>> = split
            .test
            .features
            .iter()
            .cycle()
            .take(100)
            .cloned()
            .collect();
        let run = |threads: usize| {
            par_map_with_threads(
                &xs,
                threads,
                || q.make_layer_emacs().unwrap(),
                |emacs, x| q.forward_bits_with(emacs, x),
            )
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
        // Degenerate worker counts clamp instead of panicking.
        assert_eq!(run(0), serial);
        assert_eq!(run(1000), serial);
    }

    #[test]
    fn f32_roundtrip_format_is_identity() {
        let (mlp, split) = trained_iris();
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::F32);
        assert_eq!(q.accuracy(&split.test), mlp.accuracy(&split.test));
    }

    #[test]
    fn exact_path_at_least_as_good_as_inexact_on_average() {
        // Not a theorem per-sample, but with 5-bit formats the EMAC path
        // should not be (much) worse in aggregate.
        let (mlp, split) = trained_iris();
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(6, 0).unwrap()));
        let exact = q.accuracy(&split.test);
        let inexact = q.accuracy_inexact(&split.test);
        assert!(
            exact + 0.05 >= inexact,
            "exact {exact} vs inexact {inexact}"
        );
    }
}
