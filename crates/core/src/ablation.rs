//! Exact-vs-inexact MAC ablation (paper §III-A's motivation, E10 in
//! DESIGN.md): how much accuracy does the EMAC's delayed rounding buy over
//! an ordinary per-operation-rounding MAC?

use crate::format::NumericFormat;
use crate::quantized::QuantizedMlp;
use dp_datasets::Dataset;

/// Accuracy of the same quantized network under both accumulation rules.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// The format under test.
    pub format: NumericFormat,
    /// EMAC (exact accumulation, single rounding) accuracy.
    pub exact_accuracy: f64,
    /// Ordinary MAC (round every product and every add) accuracy.
    pub inexact_accuracy: f64,
}

impl AblationResult {
    /// Percentage points gained by exact accumulation.
    pub fn emac_gain_pct(&self) -> f64 {
        100.0 * (self.exact_accuracy - self.inexact_accuracy)
    }
}

/// Runs both inference paths of `qmlp` on (up to `limit` samples of) the
/// test set.
pub fn compare_exact_vs_inexact(
    qmlp: &QuantizedMlp,
    test: &Dataset,
    limit: usize,
) -> AblationResult {
    let mut test = test.clone();
    if test.len() > limit {
        test.features.truncate(limit);
        test.labels.truncate(limit);
    }
    AblationResult {
        format: qmlp.format,
        exact_accuracy: qmlp.accuracy(&test),
        inexact_accuracy: qmlp.accuracy_inexact(&test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Mlp;
    use crate::train::{train, TrainConfig};
    use dp_datasets::iris;
    use dp_posit::PositFormat;

    #[test]
    fn ablation_runs_and_reports() {
        let split = iris::load(41).split(50, 41).normalized();
        let mut mlp = Mlp::new(&[4, 8, 3], 41);
        train(
            &mut mlp,
            &split.train,
            TrainConfig {
                epochs: 40,
                batch_size: 16,
                lr: 0.02,
                seed: 41,
            },
        );
        let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(5, 0).unwrap()));
        let r = compare_exact_vs_inexact(&q, &split.test, 50);
        assert!(r.exact_accuracy >= 0.0 && r.exact_accuracy <= 1.0);
        assert!(r.inexact_accuracy >= 0.0 && r.inexact_accuracy <= 1.0);
        // At 5 bits the exact path should not lose to per-op rounding.
        assert!(
            r.emac_gain_pct() >= -5.0,
            "exact {} vs inexact {}",
            r.exact_accuracy,
            r.inexact_accuracy
        );
    }
}
