//! Save / load quantized models.
//!
//! A deployed Deep Positron instance is *defined* by its format and its
//! weight/bias bit patterns — exactly what a bitstream generator or an
//! embedded runtime needs. This module serializes a [`QuantizedMlp`] to a
//! small line-oriented text format (stable, diffable, no external
//! dependencies):
//!
//! ```text
//! deep-positron-model v1
//! format posit 8 0
//! dims 4 8 3
//! layer 0
//! w 40 2c ...        # one line per neuron, hex patterns
//! b 12 ...
//! ```

use crate::format::NumericFormat;
use crate::quantized::{QuantizedLayer, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Error from parsing a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    line: usize,
    message: String,
}

impl ParseModelError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseModelError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseModelError {}

/// Serializes a quantized model to the v1 text format.
pub fn to_string(model: &QuantizedMlp) -> String {
    let mut s = String::from("deep-positron-model v1\n");
    s.push_str(&format!("format {}\n", format_tag(&model.format)));
    let dims: Vec<String> = model.dims().iter().map(|d| d.to_string()).collect();
    s.push_str(&format!("dims {}\n", dims.join(" ")));
    for (i, layer) in model.layers.iter().enumerate() {
        s.push_str(&format!("layer {i}\n"));
        for row in layer.weight_rows() {
            let hex: Vec<String> = row.iter().map(|w| format!("{w:x}")).collect();
            s.push_str(&format!("w {}\n", hex.join(" ")));
        }
        let hex: Vec<String> = layer.biases().iter().map(|b| format!("{b:x}")).collect();
        s.push_str(&format!("b {}\n", hex.join(" ")));
    }
    s
}

/// Parses the v1 text format back into a model.
///
/// # Errors
///
/// Returns [`ParseModelError`] on malformed input (bad magic, unknown
/// format tag, inconsistent shapes, non-hex patterns).
pub fn from_str(text: &str) -> Result<QuantizedMlp, ParseModelError> {
    let mut lines = text.lines().enumerate();
    let (n, magic) = lines
        .next()
        .ok_or_else(|| ParseModelError::new(0, "empty input"))?;
    if magic.trim() != "deep-positron-model v1" {
        return Err(ParseModelError::new(n + 1, "bad magic line"));
    }
    let (n, fmt_line) = lines
        .next()
        .ok_or_else(|| ParseModelError::new(2, "missing format line"))?;
    let format = parse_format(fmt_line).map_err(|m| ParseModelError::new(n + 1, m))?;
    let (n, dims_line) = lines
        .next()
        .ok_or_else(|| ParseModelError::new(3, "missing dims line"))?;
    let dims: Vec<usize> = dims_line
        .strip_prefix("dims ")
        .ok_or_else(|| ParseModelError::new(n + 1, "expected `dims ...`"))?
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| ParseModelError::new(n + 1, format!("bad dim: {e}")))?;
    if dims.len() < 2 {
        return Err(ParseModelError::new(n + 1, "need at least two dims"));
    }

    let mut layers = Vec::new();
    for li in 0..dims.len() - 1 {
        let (fan_in, fan_out) = (dims[li], dims[li + 1]);
        let (n, header) = lines
            .next()
            .ok_or_else(|| ParseModelError::new(0, format!("missing layer {li}")))?;
        if header.trim() != format!("layer {li}") {
            return Err(ParseModelError::new(
                n + 1,
                format!("expected `layer {li}`"),
            ));
        }
        let mut weights = Vec::with_capacity(fan_in * fan_out);
        for _ in 0..fan_out {
            let (n, wline) = lines
                .next()
                .ok_or_else(|| ParseModelError::new(0, "missing weight row"))?;
            let row =
                parse_hex_row(wline, "w ", fan_in).map_err(|m| ParseModelError::new(n + 1, m))?;
            weights.extend_from_slice(&row);
        }
        let (n, bline) = lines
            .next()
            .ok_or_else(|| ParseModelError::new(0, "missing bias row"))?;
        let biases =
            parse_hex_row(bline, "b ", fan_out).map_err(|m| ParseModelError::new(n + 1, m))?;
        layers.push(QuantizedLayer::new(fan_in, fan_out, weights, biases));
    }
    Ok(QuantizedMlp { format, layers })
}

/// Writes a model to a file (v1 text format).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save<P: AsRef<Path>>(model: &QuantizedMlp, path: P) -> io::Result<()> {
    fs::write(path, to_string(model))
}

/// Reads a model from a file.
///
/// # Errors
///
/// Returns an `io::Error` for filesystem problems; parse failures are
/// wrapped as `InvalidData`.
pub fn load<P: AsRef<Path>>(path: P) -> io::Result<QuantizedMlp> {
    let text = fs::read_to_string(path)?;
    from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn format_tag(f: &NumericFormat) -> String {
    match f {
        NumericFormat::F32 => "f32".into(),
        NumericFormat::Posit(p) => format!("posit {} {}", p.n(), p.es()),
        NumericFormat::Float(p) => format!("float {} {}", p.we(), p.wf()),
        NumericFormat::Fixed(p) => format!("fixed {} {}", p.n(), p.q()),
    }
}

fn parse_format(line: &str) -> Result<NumericFormat, String> {
    let rest = line
        .strip_prefix("format ")
        .ok_or("expected `format ...`")?;
    let toks: Vec<&str> = rest.split_whitespace().collect();
    let num = |t: &str| t.parse::<u32>().map_err(|e| format!("bad number: {e}"));
    match toks.as_slice() {
        ["f32"] => Ok(NumericFormat::F32),
        ["posit", n, es] => PositFormat::new(num(n)?, num(es)?)
            .map(NumericFormat::Posit)
            .map_err(|e| e.to_string()),
        ["float", we, wf] => FloatFormat::new(num(we)?, num(wf)?)
            .map(NumericFormat::Float)
            .map_err(|e| e.to_string()),
        ["fixed", n, q] => FixedFormat::new(num(n)?, num(q)?)
            .map(NumericFormat::Fixed)
            .map_err(|e| e.to_string()),
        _ => Err(format!("unknown format tag `{rest}`")),
    }
}

fn parse_hex_row(line: &str, prefix: &str, expect: usize) -> Result<Vec<u32>, String> {
    let rest = line
        .strip_prefix(prefix)
        .ok_or_else(|| format!("expected `{prefix}...`"))?;
    let row: Vec<u32> = rest
        .split_whitespace()
        .map(|t| u32::from_str_radix(t, 16).map_err(|e| format!("bad hex `{t}`: {e}")))
        .collect::<Result<_, _>>()?;
    if row.len() != expect {
        return Err(format!("expected {expect} entries, got {}", row.len()));
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Mlp;

    fn model() -> QuantizedMlp {
        let mlp = Mlp::new(&[3, 4, 2], 77);
        QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 1).unwrap()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = model();
        let text = to_string(&m);
        let back = from_str(&text).expect("parse");
        assert_eq!(back.format, m.format);
        assert_eq!(back.dims(), m.dims());
        for (a, b) in m.layers.iter().zip(&back.layers) {
            assert_eq!(a, b);
        }
        // And it still infers identically.
        let x = [0.3, 0.6, 0.9];
        assert_eq!(m.infer(&x), back.infer(&x));
    }

    #[test]
    fn roundtrip_all_format_families() {
        let mlp = Mlp::new(&[2, 2], 5);
        for fmt in [
            NumericFormat::F32,
            NumericFormat::Posit(PositFormat::new(6, 0).unwrap()),
            NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
            NumericFormat::Fixed(FixedFormat::new(8, 6).unwrap()),
        ] {
            let m = QuantizedMlp::quantize(&mlp, fmt);
            let back = from_str(&to_string(&m)).expect("parse");
            assert_eq!(back.format, fmt);
            assert_eq!(back.layers[0].weights(), m.layers[0].weights());
        }
    }

    #[test]
    fn file_roundtrip() {
        let m = model();
        let path = std::env::temp_dir().join("dp_model_io_test.dpm");
        save(&m, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back.layers[0].biases(), m.layers[0].biases());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(from_str("").is_err());
        assert!(from_str("wrong magic").is_err());
        let e = from_str("deep-positron-model v1\nformat posit 99 0\ndims 2 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = from_str("deep-positron-model v1\nformat f32\ndims 2\n").unwrap_err();
        assert!(e.to_string().contains("two dims"));
        // Wrong row width.
        let text = "deep-positron-model v1\nformat f32\ndims 2 1\nlayer 0\nw 1\nb 1\n";
        assert!(from_str(text).is_err());
        // Bad hex.
        let text = "deep-positron-model v1\nformat f32\ndims 1 1\nlayer 0\nw zz\nb 1\n";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn format_is_human_auditable() {
        let text = to_string(&model());
        assert!(text.starts_with("deep-positron-model v1\n"));
        assert!(text.contains("format posit 8 1"));
        assert!(text.contains("dims 3 4 2"));
        assert!(text.contains("layer 1"));
    }
}
