//! The 32-bit float MLP (training substrate and Table II baseline).
//!
//! Mirrors the paper's Deep Positron topology (Fig. 1): dense layers with
//! ReLU activations throughout and an affine (identity) readout layer.

use crate::tensor::{argmax, Matrix};
use dp_datasets::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// One dense layer: `y = W·x + b` with `W` of shape `out × in`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, `out × in`.
    pub w: Matrix,
    /// Bias vector, length `out`.
    pub b: Vec<f32>,
}

impl Dense {
    /// He-uniform initialization (appropriate for ReLU networks).
    pub fn init(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / fan_in as f32).sqrt();
        let mut w = Matrix::zeros(fan_out, fan_in);
        for v in w.as_mut_slice() {
            *v = rng.gen_range(-bound..bound);
        }
        Dense {
            w,
            b: vec![0.0; fan_out],
        }
    }

    /// Fan-in (input dimensionality).
    pub fn fan_in(&self) -> usize {
        self.w.cols()
    }

    /// Fan-out (neuron count).
    pub fn fan_out(&self) -> usize {
        self.w.rows()
    }
}

/// A multi-layer perceptron with ReLU hidden layers and an identity
/// readout (paper §III-E: "The ReLU activation is used throughout the
/// network, except for the affine readout layer").
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Dense layers, input to output.
    pub layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[30, 16, 2]`,
    /// deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let layers = dims
            .windows(2)
            .map(|w| Dense::init(w[0], w[1], &mut rng))
            .collect();
        Mlp { layers }
    }

    /// Layer widths `[in, hidden..., out]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut d = vec![self.layers[0].fan_in()];
        d.extend(self.layers.iter().map(|l| l.fan_out()));
        d
    }

    /// Forward pass returning each layer's post-activation output
    /// (`result[0]` is the input itself; the last entry is the logits).
    pub fn forward(&self, x: &[f32]) -> Vec<Vec<f32>> {
        let mut acts = vec![x.to_vec()];
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = layer.w.matvec(acts.last().unwrap());
            for (zj, &bj) in z.iter_mut().zip(&layer.b) {
                *zj += bj;
            }
            if i + 1 < self.layers.len() {
                for v in &mut z {
                    *v = v.max(0.0); // ReLU
                }
            }
            acts.push(z);
        }
        acts
    }

    /// Raw output logits for one input.
    pub fn logits(&self, x: &[f32]) -> Vec<f32> {
        self.forward(x).pop().expect("at least one layer")
    }

    /// Predicted class for one input.
    pub fn predict(&self, x: &[f32]) -> usize {
        argmax(&self.logits(x))
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .features
            .iter()
            .zip(&data.labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / data.len() as f64
    }

    /// All weights flattened (for histograms, paper Fig. 2b).
    pub fn all_weights(&self) -> Vec<f32> {
        self.layers
            .iter()
            .flat_map(|l| l.w.as_slice().iter().copied())
            .collect()
    }
}

/// Numerically stable softmax.
pub fn softmax(z: &[f32]) -> Vec<f32> {
    let m = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = z.iter().map(|&v| (v - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shapes() {
        let mlp = Mlp::new(&[4, 8, 3], 1);
        assert_eq!(mlp.dims(), vec![4, 8, 3]);
        assert_eq!(mlp.layers[0].fan_in(), 4);
        assert_eq!(mlp.layers[0].fan_out(), 8);
        assert_eq!(mlp.layers[1].fan_out(), 3);
    }

    #[test]
    fn forward_applies_relu_to_hidden_only() {
        let mut mlp = Mlp::new(&[2, 2, 2], 2);
        // Force negative pre-activations everywhere.
        for l in &mut mlp.layers {
            for v in l.w.as_mut_slice() {
                *v = -1.0;
            }
            l.b.iter_mut().for_each(|b| *b = -0.5);
        }
        let acts = mlp.forward(&[1.0, 1.0]);
        assert_eq!(acts[1], vec![0.0, 0.0], "hidden clamped by ReLU");
        assert_eq!(acts[2], vec![-0.5, -0.5], "readout is affine");
    }

    #[test]
    fn deterministic_init() {
        let a = Mlp::new(&[3, 5, 2], 7);
        let b = Mlp::new(&[3, 5, 2], 7);
        let c = Mlp::new(&[3, 5, 2], 8);
        assert_eq!(a.all_weights(), b.all_weights());
        assert_ne!(a.all_weights(), c.all_weights());
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability under large inputs.
        let q = softmax(&[1000.0, 1001.0]);
        assert!(q[1] > q[0] && q.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn predict_uses_argmax_of_logits() {
        let mlp = Mlp::new(&[4, 6, 3], 3);
        let x = [0.1, 0.5, 0.9, 0.2];
        assert_eq!(mlp.predict(&x), argmax(&mlp.logits(&x)));
    }
}
