//! Integration tests: one persistent engine serving interleaved
//! posit/minifloat/fixed traffic, bit-identical to per-sample
//! `forward_bits`, with panic isolation and draining shutdown.

use deep_positron::train::{train, TrainConfig};
use deep_positron::{Mlp, NumericFormat, QuantizedMlp};
use dp_fixed::FixedFormat;
use dp_minifloat::FloatFormat;
use dp_posit::PositFormat;
use dp_serve::{EngineConfig, ModelKey, ServeEngine, ServeError};

fn trained_iris() -> (Mlp, dp_datasets::TrainTest) {
    let split = dp_datasets::iris::load(77).split(50, 77).normalized();
    let mut mlp = Mlp::new(&[4, 8, 3], 77);
    train(
        &mut mlp,
        &split.train,
        TrainConfig {
            epochs: 30,
            batch_size: 16,
            lr: 0.02,
            seed: 77,
        },
    );
    (mlp, split)
}

fn mixed_formats() -> Vec<NumericFormat> {
    vec![
        NumericFormat::Posit(PositFormat::new(8, 0).unwrap()),
        NumericFormat::Float(FloatFormat::new(4, 3).unwrap()),
        NumericFormat::Fixed(FixedFormat::new(8, 5).unwrap()),
    ]
}

/// An engine small enough that chunk splitting, slot targeting and
/// stealing all actually happen on the test workload.
fn test_engine() -> ServeEngine {
    ServeEngine::new(EngineConfig {
        workers: 4,
        chunk_samples: 8,
        ..EngineConfig::default()
    })
}

#[test]
fn mixed_format_traffic_is_bit_identical_to_forward_bits() {
    let (mlp, split) = trained_iris();
    let engine = test_engine();
    let keys: Vec<(ModelKey, QuantizedMlp)> = mixed_formats()
        .into_iter()
        .map(|fmt| {
            let q = QuantizedMlp::quantize(&mlp, fmt);
            (engine.registry().register("iris", q.clone()).unwrap(), q)
        })
        .collect();
    assert_eq!(engine.registry().len(), 3);
    assert_eq!(engine.registry().formats_of("iris").len(), 3);

    // 60 samples per format, admitted as one interleaved burst so the
    // three formats genuinely share the pool.
    let xs: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(60)
        .cloned()
        .collect();
    let pending: Vec<_> = keys
        .iter()
        .map(|(key, _)| engine.submit_forward(key, xs.clone()).unwrap())
        .collect();
    let classify: Vec<_> = keys
        .iter()
        .map(|(key, _)| engine.submit_classify(key, xs.clone()).unwrap())
        .collect();

    for (((key, q), forward), classes) in keys.iter().zip(pending).zip(classify) {
        let served = forward.wait().unwrap();
        let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
        assert_eq!(served, direct, "{key}: bits diverged from forward_bits");
        let served_classes = classes.wait().unwrap();
        let direct_classes: Vec<usize> = xs.iter().map(|x| q.infer(x)).collect();
        assert_eq!(served_classes, direct_classes, "{key}: classes diverged");
    }
    assert!(engine.stats().jobs_run >= 3 * 2 * (60 / 8) as u64);
    assert_eq!(engine.stats().panics, 0);
}

#[test]
fn single_sample_requests_match_batch_path() {
    let (mlp, split) = trained_iris();
    let engine = test_engine();
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = engine.registry().register("iris", q.clone()).unwrap();
    let x = split.test.features[3].clone();
    let bits = engine
        .submit_forward_one(&key, x.clone())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(bits, q.forward_bits(&x));
    let class = engine
        .submit_classify_one(&key, x.clone())
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(class, q.infer(&x));
}

#[test]
fn engine_accuracy_matches_batch_accuracy() {
    let (mlp, split) = trained_iris();
    let engine = test_engine();
    for fmt in mixed_formats() {
        let q = QuantizedMlp::quantize(&mlp, fmt);
        let key = engine.registry().register("iris", q.clone()).unwrap();
        assert_eq!(
            engine.accuracy(&key, &split.test).unwrap(),
            q.accuracy(&split.test),
            "{key}"
        );
    }
    // F32 baseline classifies through the engine too.
    let f32_model = QuantizedMlp::quantize(&mlp, NumericFormat::F32);
    let key = engine
        .registry()
        .register("iris", f32_model.clone())
        .unwrap();
    assert_eq!(
        engine.accuracy(&key, &split.test).unwrap(),
        f32_model.accuracy(&split.test)
    );
}

#[test]
fn admission_errors_are_reported() {
    let (mlp, _) = trained_iris();
    let engine = test_engine();
    let missing = ModelKey::new("ghost", "posit<8,0>");
    assert!(matches!(
        engine.submit_classify(&missing, vec![vec![0.0; 4]]),
        Err(ServeError::UnknownModel(_))
    ));
    // Raw EMAC activations are undefined for the f32 baseline.
    let key = engine
        .registry()
        .register("iris", QuantizedMlp::quantize(&mlp, NumericFormat::F32))
        .unwrap();
    assert!(matches!(
        engine.submit_forward(&key, vec![vec![0.0; 4]]),
        Err(ServeError::UnsupportedFormat(_))
    ));
    assert!(matches!(
        engine.submit_forward_one(&key, vec![0.0; 4]),
        Err(ServeError::UnsupportedFormat(_))
    ));
}

#[test]
fn unsupported_model_is_rejected_at_registration_not_in_a_worker() {
    // Regression: a posit<8,6> model (es > n − 3, no EMAC datapath) used
    // to register fine and then panic inside the pool on its first
    // forward, poisoning that job's handle. Registration must now fail
    // with a typed error, leave the registry unchanged, and keep the pool
    // fully healthy for other traffic.
    let (mlp, split) = trained_iris();
    let engine = test_engine();
    let bad = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(8, 6).unwrap()));
    let err = engine.registry().register("iris", bad).unwrap_err();
    assert!(matches!(
        &err,
        dp_serve::RegistryError::UnsupportedModel { key, .. }
            if key == &ModelKey::new("iris", "posit<8,6>")
    ));
    assert!(err.to_string().contains("es <= n-3"), "{err}");
    assert!(engine.registry().is_empty());
    // And the key is unknown at admission — a typed error, not a panic.
    let ghost = ModelKey::new("iris", "posit<8,6>");
    assert!(matches!(
        engine.submit_forward(&ghost, vec![vec![0.0; 4]]),
        Err(ServeError::UnknownModel(_))
    ));
    // The pool never saw a panicking job; healthy traffic still serves.
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = engine.registry().register("iris", q.clone()).unwrap();
    let served = engine
        .submit_forward(&key, split.test.features.clone())
        .unwrap()
        .wait()
        .unwrap();
    let direct: Vec<Vec<u32>> = split
        .test
        .features
        .iter()
        .map(|x| q.forward_bits(x))
        .collect();
    assert_eq!(served, direct);
    engine.wait_idle();
    assert_eq!(engine.stats().panics, 0);
}

#[test]
fn sixteen_bit_models_serve_bit_identically() {
    // The split-table datapath through the full serving stack: a
    // posit<16,1> model must serve bit-identically to forward_bits.
    let (mlp, split) = trained_iris();
    let engine = test_engine();
    let q = QuantizedMlp::quantize(&mlp, NumericFormat::Posit(PositFormat::new(16, 1).unwrap()));
    let key = engine.registry().register("iris", q.clone()).unwrap();
    let xs: Vec<Vec<f32>> = split.test.features.iter().take(40).cloned().collect();
    let served = engine
        .submit_forward(&key, xs.clone())
        .unwrap()
        .wait()
        .unwrap();
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    assert_eq!(served, direct);
}

#[test]
fn panicking_job_poisons_only_its_own_handle() {
    let (mlp, split) = trained_iris();
    let engine = test_engine();
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = engine.registry().register("iris", q.clone()).unwrap();

    let poisoned = engine
        .submit_job::<usize, _>(|| panic!("model evaluation blows up"))
        .unwrap();
    let healthy = engine
        .submit_classify(&key, split.test.features.clone())
        .unwrap();

    assert_eq!(poisoned.wait(), Err(dp_serve::JobError::Panicked));
    // The concurrent request and the engine itself are unaffected.
    let preds = healthy.wait().unwrap();
    assert_eq!(preds.len(), split.test.len());
    // Handles complete before the worker's unwind finishes; wait_idle
    // synchronizes with the pool counters.
    engine.wait_idle();
    assert_eq!(engine.stats().panics, 1);
    let again = engine
        .submit_classify_one(&key, split.test.features[0].clone())
        .unwrap();
    assert_eq!(again.wait().unwrap(), q.infer(&split.test.features[0]));
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (mlp, split) = trained_iris();
    let engine = ServeEngine::new(EngineConfig {
        workers: 2,
        chunk_samples: 4,
        ..EngineConfig::default()
    });
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = engine.registry().register("iris", q.clone()).unwrap();
    let xs: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(200)
        .cloned()
        .collect();
    let handles: Vec<_> = (0..4)
        .map(|_| engine.submit_forward(&key, xs.clone()).unwrap())
        .collect();
    // Shut down immediately: every admitted request must still complete.
    engine.shutdown();
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    for h in handles {
        assert_eq!(h.wait().unwrap(), direct);
    }
}

#[test]
fn closed_engine_rejects_whole_batches_with_typed_error() {
    // Regression: batch submission used to enqueue chunks one at a time,
    // so an engine closing mid-batch could admit the first chunks and
    // silently drop the rest (the caller got a generic shutdown error and
    // no way to tell how much had leaked into the pool). Chunk admission
    // is now all-or-nothing and the rejection is the typed `EngineClosed`.
    let (mlp, split) = trained_iris();
    let engine = ServeEngine::new(EngineConfig {
        workers: 2,
        chunk_samples: 4,
        ..EngineConfig::default()
    });
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = engine.registry().register("iris", q.clone()).unwrap();
    let xs: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(40)
        .cloned()
        .collect();
    // 40 samples / 4-sample chunks = 10 jobs admitted before the close.
    let admitted = engine.submit_forward(&key, xs.clone()).unwrap();
    engine.close();
    // Post-close submissions fail with the typed error and enqueue
    // *zero* chunks — jobs_run stays at exactly the admitted batch.
    assert_eq!(
        engine.submit_forward(&key, xs.clone()).unwrap_err(),
        ServeError::EngineClosed
    );
    assert_eq!(
        engine.submit_classify(&key, xs.clone()).unwrap_err(),
        ServeError::EngineClosed
    );
    assert_eq!(
        engine.submit_forward_one(&key, xs[0].clone()).unwrap_err(),
        ServeError::EngineClosed
    );
    // The admitted batch still drains completely and correctly.
    let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
    assert_eq!(admitted.wait().unwrap(), direct);
    engine.wait_idle();
    assert_eq!(engine.stats().jobs_run, 10);
}

#[test]
fn wait_after_pool_drained_still_returns_the_result() {
    // Completion-handle edge case: the pool can go fully idle (all chunks
    // done, results parked in the handle) long before the caller waits.
    let (mlp, split) = trained_iris();
    let engine = test_engine();
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = engine.registry().register("iris", q.clone()).unwrap();
    let handle = engine
        .submit_forward(&key, split.test.features.clone())
        .unwrap();
    engine.wait_idle();
    assert_eq!(engine.queue_depth(), 0);
    let direct: Vec<Vec<u32>> = split
        .test
        .features
        .iter()
        .map(|x| q.forward_bits(x))
        .collect();
    assert_eq!(handle.wait().unwrap(), direct);
}

#[test]
#[should_panic(expected = "batch result already taken")]
fn wait_after_poll_took_the_result_panics() {
    // The dp_serve handles are single-consumer: poll() hands the result
    // out exactly once and a later wait() is a caller bug, reported as a
    // panic (the cached-resolution behavior lives in dp_gateway handles).
    let (mlp, split) = trained_iris();
    let engine = test_engine();
    let key = engine
        .registry()
        .register("iris", QuantizedMlp::quantize(&mlp, mixed_formats()[0]))
        .unwrap();
    let handle = engine
        .submit_classify(&key, split.test.features.clone())
        .unwrap();
    engine.wait_idle();
    assert!(handle.poll().is_some());
    let _ = handle.wait();
}

#[test]
fn poll_transitions_from_pending_to_ready() {
    let (mlp, split) = trained_iris();
    let engine = test_engine();
    let q = QuantizedMlp::quantize(&mlp, mixed_formats()[0]);
    let key = engine.registry().register("iris", q).unwrap();
    let handle = engine
        .submit_classify(&key, split.test.features.clone())
        .unwrap();
    engine.wait_idle();
    assert!(handle.is_done());
    let polled = handle.poll().expect("done after wait_idle");
    assert_eq!(polled.unwrap().len(), split.test.len());
    // Taken exactly once.
    assert!(handle.poll().is_none());
}

#[test]
fn empty_batch_completes_immediately() {
    let (mlp, _) = trained_iris();
    let engine = test_engine();
    let key = engine
        .registry()
        .register("iris", QuantizedMlp::quantize(&mlp, mixed_formats()[0]))
        .unwrap();
    let handle = engine.submit_forward(&key, Vec::new()).unwrap();
    assert_eq!(handle.wait().unwrap(), Vec::<Vec<u32>>::new());
}

#[test]
fn chunked_tile_evaluation_is_bit_identical_to_per_sample() {
    // forward_chunk/classify_chunk now run one weight-stationary tile
    // sweep per layer over the whole chunk (dot_tile, B = chunk width);
    // per sample they must match forward_bits / infer exactly — at the
    // production chunk width of 64, at ragged widths, at B = 1, and for
    // the 16-bit formats whose gathered-fused tile rides the split-table
    // operands.
    let (mlp, split) = trained_iris();
    let mut formats = mixed_formats();
    formats.push(NumericFormat::Posit(PositFormat::new(16, 1).unwrap()));
    formats.push(NumericFormat::Float(FloatFormat::new(5, 10).unwrap()));
    formats.push(NumericFormat::Fixed(FixedFormat::new(16, 10).unwrap()));
    let xs: Vec<Vec<f32>> = split
        .test
        .features
        .iter()
        .cycle()
        .take(64)
        .cloned()
        .collect();
    for fmt in formats {
        let q = QuantizedMlp::quantize(&mlp, fmt);
        let direct: Vec<Vec<u32>> = xs.iter().map(|x| q.forward_bits(x)).collect();
        let classes: Vec<usize> = xs.iter().map(|x| q.infer(x)).collect();
        for width in [64usize, 13, 1] {
            let chunk = &xs[..width];
            assert_eq!(
                dp_serve::forward_chunk(&q, chunk),
                direct[..width],
                "{fmt} forward_chunk B={width}"
            );
            assert_eq!(
                dp_serve::classify_chunk(&q, chunk),
                classes[..width],
                "{fmt} classify_chunk B={width}"
            );
        }
    }
}
