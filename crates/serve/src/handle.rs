//! Completion handles: how callers get results back out of the pool.
//!
//! Submission returns immediately with a handle; the result is delivered
//! by the worker through the paired completer. Two shapes exist:
//! [`JobHandle`] for a single job's value and [`BatchHandle`] for a
//! request that admission split into several chunk jobs (the handle
//! reassembles the per-chunk outputs in request order). Both support
//! non-blocking [`poll`](JobHandle::poll) and blocking
//! [`wait`](JobHandle::wait).
//!
//! A job that panics poisons **only its own handle** ([`JobError::Panicked`]);
//! the pool and every other in-flight request are unaffected.

use crate::check::{self, check_yield, Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a submitted job failed to produce a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// The job's closure panicked; the panic was confined to this handle.
    Panicked,
    /// The watchdog declared the worker running this job stalled; the
    /// worker was respawned and only this job's handle failed.
    Stalled,
    /// The request's [`CancelToken`](crate::engine::CancelToken) was
    /// cancelled before the job finished.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked => write!(f, "serving job panicked"),
            JobError::Stalled => write!(f, "serving job stalled its worker (worker respawned)"),
            JobError::Cancelled => write!(f, "serving job was cancelled"),
        }
    }
}

impl std::error::Error for JobError {}

enum CellState<T> {
    Pending,
    Done(Result<T, JobError>),
    Taken,
}

struct Cell<T> {
    state: Mutex<CellState<T>>,
    done: Condvar,
}

impl<T> Cell<T> {
    fn st(&self) -> check::MutexGuard<'_, CellState<T>> {
        // panic-ok: holders only swap the enum in place; no unwind, so
        // poisoning is unreachable.
        self.state.lock().expect("handle lock")
    }
}

/// Handle to one submitted job. Single-consumer: the value can be taken
/// exactly once (by [`JobHandle::poll`] or [`JobHandle::wait`]).
pub struct JobHandle<T> {
    cell: Arc<Cell<T>>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("done", &self.is_done())
            .finish()
    }
}

impl<T> JobHandle<T> {
    /// Creates a pending handle and its completer side.
    pub(crate) fn pending() -> (Self, JobCompleter<T>) {
        let cell = Arc::new(Cell {
            state: check::mutex("serve.job_handle", CellState::Pending),
            done: check::condvar(),
        });
        (
            JobHandle {
                cell: Arc::clone(&cell),
            },
            JobCompleter { cell },
        )
    }

    /// Whether the job has finished (successfully or not).
    pub fn is_done(&self) -> bool {
        !matches!(*self.cell.st(), CellState::Pending)
    }

    /// Takes the result if the job has finished, `None` while it is still
    /// queued or running. A second call after the result was taken returns
    /// `None`.
    pub fn poll(&self) -> Option<Result<T, JobError>> {
        let mut st = self.cell.st();
        check_yield!("handle.job.poll");
        match std::mem::replace(&mut *st, CellState::Taken) {
            CellState::Done(r) => Some(r),
            other @ CellState::Pending => {
                *st = other;
                None
            }
            CellState::Taken => None,
        }
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Errors
    ///
    /// [`JobError::Panicked`] if the job's closure panicked.
    ///
    /// # Panics
    ///
    /// Panics if the result was already taken by [`JobHandle::poll`].
    pub fn wait(self) -> Result<T, JobError> {
        let mut st = self.cell.st();
        loop {
            check_yield!("handle.job.wait_take");
            match std::mem::replace(&mut *st, CellState::Taken) {
                CellState::Done(r) => return r,
                CellState::Pending => {
                    *st = CellState::Pending;
                    // panic-ok: see `Cell::st`.
                    st = self.cell.done.wait(st).expect("handle lock");
                }
                // panic-ok: documented contract — waiting after `poll`
                // took the value is a caller bug.
                CellState::Taken => panic!("job result already taken"),
            }
        }
    }

    /// Bounded wait: takes the result if the job finishes within
    /// `timeout`, returns `None` on timeout (the handle stays usable —
    /// wait again, poll, or abandon it) or if the result was already
    /// taken.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, JobError>> {
        // clock-ok: caller-side wall-clock wait bound (the OS condvar
        // wait below is real-time anyway).
        let deadline = Instant::now() + timeout;
        let mut st = self.cell.st();
        loop {
            check_yield!("handle.job.wait_take");
            match std::mem::replace(&mut *st, CellState::Taken) {
                CellState::Done(r) => return Some(r),
                CellState::Pending => {
                    *st = CellState::Pending;
                    // clock-ok: see the deadline note above.
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (guard, _timeout) = self
                        .cell
                        .done
                        .wait_timeout(st, deadline - now)
                        .expect("handle lock"); // panic-ok: see `Cell::st`
                    st = guard;
                }
                CellState::Taken => return None,
            }
        }
    }
}

/// Worker-side completer for a [`JobHandle`]; cloned when completion can
/// come from more than one place (normal path vs. watchdog stall
/// resolution — the engine's claim flag ensures only one fires).
pub(crate) struct JobCompleter<T> {
    cell: Arc<Cell<T>>,
}

impl<T> Clone for JobCompleter<T> {
    fn clone(&self) -> Self {
        JobCompleter {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T> JobCompleter<T> {
    pub(crate) fn complete(&self, result: Result<T, JobError>) {
        let mut st = self.cell.st();
        check_yield!("handle.job.complete");
        *st = CellState::Done(result);
        drop(st);
        self.cell.done.notify_all();
    }
}

struct BatchState<T> {
    /// One slot per chunk, filled in any order, read out in order.
    parts: Vec<Option<Vec<T>>>,
    remaining: usize,
    failed: Option<JobError>,
    taken: bool,
}

struct BatchCell<T> {
    state: Mutex<BatchState<T>>,
    done: Condvar,
}

impl<T> BatchCell<T> {
    fn st(&self) -> check::MutexGuard<'_, BatchState<T>> {
        // panic-ok: holders only move parts/flags; no unwind, so
        // poisoning is unreachable.
        self.state.lock().expect("handle lock")
    }
}

/// Handle to a batch request that admission split into chunk jobs.
///
/// The result is the concatenation of the per-chunk outputs in the
/// original sample order — byte-for-byte the same `Vec` a serial
/// evaluation would produce. If **any** chunk panics the whole request
/// reports [`JobError::Panicked`] (after all of its chunks have left the
/// pool, so a failed request never leaves stray jobs behind).
pub struct BatchHandle<T> {
    cell: Arc<BatchCell<T>>,
}

impl<T> std::fmt::Debug for BatchHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.cell.st();
        f.debug_struct("BatchHandle")
            .field("chunks", &st.parts.len())
            .field("remaining", &st.remaining)
            .finish()
    }
}

impl<T> BatchHandle<T> {
    /// Creates a handle expecting `chunks` chunk completions.
    pub(crate) fn pending(chunks: usize) -> (Self, BatchCompleter<T>) {
        let cell = Arc::new(BatchCell {
            state: check::mutex(
                "serve.batch_handle",
                BatchState {
                    parts: (0..chunks).map(|_| None).collect(),
                    remaining: chunks,
                    failed: None,
                    taken: false,
                },
            ),
            done: check::condvar(),
        });
        (
            BatchHandle {
                cell: Arc::clone(&cell),
            },
            BatchCompleter { cell },
        )
    }

    /// Number of chunks still queued or running.
    pub fn chunks_remaining(&self) -> usize {
        self.cell.st().remaining
    }

    /// Whether every chunk has finished.
    pub fn is_done(&self) -> bool {
        self.chunks_remaining() == 0
    }

    /// Takes the assembled result if every chunk has finished, `None`
    /// otherwise (or after the result was already taken).
    pub fn poll(&self) -> Option<Result<Vec<T>, JobError>> {
        let mut st = self.cell.st();
        check_yield!("handle.batch.poll");
        if st.remaining > 0 || st.taken {
            return None;
        }
        Some(Self::take(&mut st))
    }

    /// Blocks until every chunk finishes and returns the assembled result.
    ///
    /// # Errors
    ///
    /// [`JobError::Panicked`] if any chunk's job panicked.
    ///
    /// # Panics
    ///
    /// Panics if the result was already taken by [`BatchHandle::poll`].
    pub fn wait(self) -> Result<Vec<T>, JobError> {
        let mut st = self.cell.st();
        while st.remaining > 0 {
            // panic-ok: see `BatchCell::st`.
            st = self.cell.done.wait(st).expect("handle lock");
        }
        check_yield!("handle.batch.wait_take");
        assert!(!st.taken, "batch result already taken");
        Self::take(&mut st)
    }

    /// Bounded wait: takes the assembled result if every chunk finishes
    /// within `timeout`, returns `None` on timeout (the handle stays
    /// usable) or if the result was already taken.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Vec<T>, JobError>> {
        // clock-ok: caller-side wall-clock wait bound; see above.
        let deadline = Instant::now() + timeout;
        let mut st = self.cell.st();
        while st.remaining > 0 {
            // clock-ok: see the deadline note above.
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self
                .cell
                .done
                .wait_timeout(st, deadline - now)
                .expect("handle lock"); // panic-ok: see `BatchCell::st`
            st = guard;
        }
        if st.taken {
            return None;
        }
        Some(Self::take(&mut st))
    }

    fn take(st: &mut BatchState<T>) -> Result<Vec<T>, JobError> {
        st.taken = true;
        if let Some(err) = st.failed {
            return Err(err);
        }
        let mut out = Vec::new();
        for part in st.parts.iter_mut() {
            // panic-ok: callers only reach `take` at `remaining == 0`
            // with no failure, which means every part was filled.
            out.extend(part.take().expect("all chunks completed"));
        }
        Ok(out)
    }
}

/// Worker-side completer for a [`BatchHandle`]; cloned into each chunk job.
pub(crate) struct BatchCompleter<T> {
    cell: Arc<BatchCell<T>>,
}

impl<T> Clone for BatchCompleter<T> {
    fn clone(&self) -> Self {
        BatchCompleter {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T> BatchCompleter<T> {
    pub(crate) fn complete_chunk(&self, index: usize, result: Result<Vec<T>, JobError>) {
        let mut st = self.cell.st();
        check_yield!("handle.batch.complete_chunk");
        match result {
            Ok(part) => st.parts[index] = Some(part),
            Err(err) => st.failed = Some(err),
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.cell.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_handle_poll_then_complete() {
        let (handle, completer) = JobHandle::<u32>::pending();
        assert!(!handle.is_done());
        assert_eq!(handle.poll(), None);
        completer.complete(Ok(7));
        assert!(handle.is_done());
        assert_eq!(handle.poll(), Some(Ok(7)));
        // Single-consumer: taken results are gone.
        assert_eq!(handle.poll(), None);
    }

    #[test]
    fn job_handle_wait_blocks_until_complete() {
        let (handle, completer) = JobHandle::<u32>::pending();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            completer.complete(Ok(42));
        });
        assert_eq!(handle.wait(), Ok(42));
        t.join().unwrap();
    }

    #[test]
    fn batch_handle_assembles_in_request_order() {
        let (handle, completer) = BatchHandle::<u32>::pending(3);
        assert_eq!(handle.chunks_remaining(), 3);
        assert_eq!(handle.poll(), None);
        completer.complete_chunk(2, Ok(vec![5, 6]));
        completer.complete_chunk(0, Ok(vec![1, 2]));
        assert_eq!(handle.poll(), None);
        completer.complete_chunk(1, Ok(vec![3, 4]));
        assert_eq!(handle.poll(), Some(Ok(vec![1, 2, 3, 4, 5, 6])));
        assert_eq!(handle.poll(), None);
    }

    #[test]
    fn batch_handle_failure_poisons_whole_request() {
        let (handle, completer) = BatchHandle::<u32>::pending(2);
        completer.complete_chunk(0, Ok(vec![1]));
        completer.complete_chunk(1, Err(JobError::Panicked));
        assert_eq!(handle.wait(), Err(JobError::Panicked));
    }

    #[test]
    fn wait_timeout_returns_none_then_delivers() {
        let (handle, completer) = JobHandle::<u32>::pending();
        assert_eq!(handle.wait_timeout(Duration::from_millis(10)), None);
        completer.complete(Ok(9));
        assert_eq!(handle.wait_timeout(Duration::from_millis(10)), Some(Ok(9)));
        // Single-consumer: taken results are gone, even via wait_timeout.
        assert_eq!(handle.wait_timeout(Duration::from_millis(1)), None);

        let (bh, bc) = BatchHandle::<u32>::pending(2);
        assert_eq!(bh.wait_timeout(Duration::from_millis(10)), None);
        bc.complete_chunk(0, Ok(vec![1]));
        bc.complete_chunk(1, Ok(vec![2]));
        assert_eq!(
            bh.wait_timeout(Duration::from_millis(10)),
            Some(Ok(vec![1, 2]))
        );
        assert_eq!(bh.wait_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn empty_batch_is_immediately_ready() {
        let (handle, _completer) = BatchHandle::<u32>::pending(0);
        assert!(handle.is_done());
        assert_eq!(handle.poll(), Some(Ok(vec![])));
    }
}
