//! # dp-serve — the persistent Deep Positron serving engine
//!
//! The paper pitches posit EMACs as a low-precision *deployment* story;
//! this crate is the deployment half: a long-lived serving engine in front
//! of the `deep-positron` quantized batch datapath, built for sustained
//! request streams rather than one-shot batch calls.
//!
//! * [`pool`] — a fixed pool of long-lived worker threads around a
//!   condvar-backed injector queue, with per-worker LIFO slots and work
//!   stealing, panic-isolated jobs and graceful draining shutdown.
//! * [`handle`] — completion handles ([`JobHandle`], [`BatchHandle`]):
//!   submission returns immediately; results are polled or awaited, and a
//!   panicking job poisons only its own handle.
//! * [`registry`] — a [`ModelRegistry`] of named
//!   [`QuantizedMlp`](deep_positron::QuantizedMlp)s keyed
//!   by name + format descriptor, so one engine serves posit, minifloat
//!   and fixed-point models side by side.
//! * [`engine`] — the [`ServeEngine`] admission layer: accepts single
//!   samples or batches, splits large batches into chunk jobs with
//!   per-chunk EMAC reuse, and stays **bit-identical** to per-sample
//!   [`QuantizedMlp::forward_bits`](deep_positron::QuantizedMlp::forward_bits).
//!   Optional supervision hardens it: a stall **watchdog** respawns
//!   wedged workers (failing only the stuck job, [`JobError::Stalled`]),
//!   a **panic budget** flips admission to a degraded read-only mode
//!   ([`ServeError::Degraded`]), and a [`CancelToken`] lets callers stop
//!   an abandoned batch at sample granularity.
//! * [`faults`] — the compile-time seam for the `dp_fault` failure points
//!   (feature `fault-inject`; inert inlined stubs otherwise).
//!
//! ```no_run
//! use deep_positron::{NumericFormat, QuantizedMlp};
//! use dp_posit::PositFormat;
//! use dp_serve::ServeEngine;
//!
//! # fn trained() -> deep_positron::Mlp { unimplemented!() }
//! let engine = ServeEngine::with_defaults();
//! let format = NumericFormat::Posit(PositFormat::new(8, 0)?);
//! let key = engine
//!     .registry()
//!     .register("iris", QuantizedMlp::quantize(&trained(), format))?;
//! let pending = engine.submit_classify(&key, vec![vec![0.1, 0.2, 0.3, 0.4]])?;
//! let classes = pending.wait()?;
//! # let _ = classes;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub(crate) mod check;
pub(crate) mod claim;
pub mod engine;
pub mod faults;
pub mod handle;
pub mod pool;
pub mod registry;

pub use engine::{
    classify_chunk, classify_chunk_cancellable, forward_chunk, forward_chunk_cancellable,
    CancelToken, DispatchOptions, EngineConfig, ServeEngine, ServeError,
};
pub use handle::{BatchHandle, JobError, JobHandle};
pub use pool::{Job, PanicBudget, PoolStats, WatchdogConfig, WorkerPool};
pub use registry::{ModelKey, ModelRegistry, RegistryError};
