//! The long-lived worker pool: a condvar-backed injector queue plus one
//! LIFO slot per worker, with work stealing.
//!
//! Workers are ordinary `std::thread`s that live for the pool's lifetime,
//! so a request stream pays thread spawn cost once rather than per batch
//! (the scoped-thread engine in `deep_positron::batch` remains as the
//! zero-setup fallback). Scheduling is the classic two-level scheme:
//!
//! * the **injector** is a global FIFO that any producer can push to;
//! * each worker owns a **LIFO slot** — targeted submissions
//!   ([`WorkerPool::spawn_at`]) land there, the owner pops newest-first
//!   (its model/EMAC state is still cache-warm), and idle workers steal
//!   oldest-first from other slots once the injector is dry.
//!
//! A panicking job is caught and counted; the worker thread survives and
//! keeps serving (the `engine` layer additionally poisons the panicked
//! request's completion handle). Shutdown is graceful: workers drain every
//! queued job before exiting.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned when submitting to a pool that is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuttingDown;

impl std::fmt::Display for ShuttingDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool is shutting down")
    }
}

impl std::error::Error for ShuttingDown {}

/// Counters exposed for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker thread count.
    pub workers: usize,
    /// Jobs executed to completion (including panicked ones).
    pub jobs_run: u64,
    /// Jobs whose closure panicked (caught; the worker survived).
    pub panics: u64,
}

struct State {
    injector: VecDeque<Job>,
    /// Jobs currently sitting in per-worker LIFO slots.
    queued_local: usize,
    /// Jobs currently executing on a worker.
    active: usize,
    shutdown: bool,
}

impl State {
    fn is_drained(&self) -> bool {
        self.injector.is_empty() && self.queued_local == 0 && self.active == 0
    }

    /// Queued + running jobs (injector, LIFO slots, and active workers).
    fn depth(&self) -> usize {
        self.injector.len() + self.queued_local + self.active
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when work arrives or shutdown flips.
    work: Condvar,
    /// Signalled after every job completion, so waiters can re-check
    /// drain ([`WorkerPool::wait_idle`]) or depth
    /// ([`WorkerPool::wait_depth_below`]).
    progress: Condvar,
    /// Per-worker LIFO slots. Lock order: `state` before any slot.
    slots: Vec<Mutex<Vec<Job>>>,
    jobs_run: AtomicU64,
    panics: AtomicU64,
}

impl Shared {
    /// Pops the next job for worker `me`: own slot newest-first, then the
    /// injector, then steal oldest-first from the other slots. Must be
    /// called with the `state` lock held (`st` is that guard's contents).
    fn take_job(&self, st: &mut State, me: usize) -> Option<Job> {
        if st.queued_local > 0 {
            if let Some(job) = self.slots[me].lock().expect("slot lock").pop() {
                st.queued_local -= 1;
                return Some(job);
            }
        }
        if let Some(job) = st.injector.pop_front() {
            return Some(job);
        }
        if st.queued_local > 0 {
            let n = self.slots.len();
            for off in 1..n {
                let victim = (me + off) % n;
                let mut slot = self.slots[victim].lock().expect("slot lock");
                if !slot.is_empty() {
                    let job = slot.remove(0);
                    st.queued_local -= 1;
                    return Some(job);
                }
            }
        }
        None
    }
}

/// A fixed-size pool of long-lived worker threads.
///
/// See the [module docs](self) for the scheduling scheme. Dropping the
/// pool performs a graceful [`WorkerPool::shutdown`].
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                injector: VecDeque::new(),
                queued_local: 0,
                active: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            progress: Condvar::new(),
            slots: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            jobs_run: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Worker thread count (stable across shutdown).
    pub fn workers(&self) -> usize {
        self.shared.slots.len()
    }

    /// Observability counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.shared.slots.len(),
            jobs_run: self.shared.jobs_run.load(Ordering::Relaxed),
            panics: self.shared.panics.load(Ordering::Relaxed),
        }
    }

    /// Submits a job to the global injector queue.
    ///
    /// # Errors
    ///
    /// [`ShuttingDown`] once [`WorkerPool::shutdown`] has begun.
    pub fn spawn(&self, job: Job) -> Result<(), ShuttingDown> {
        let mut st = self.shared.state.lock().expect("pool lock");
        if st.shutdown {
            return Err(ShuttingDown);
        }
        st.injector.push_back(job);
        drop(st);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Submits a whole batch of `(hint, job)` pairs **atomically**: either
    /// every job is enqueued (each to worker `hint % workers`'s LIFO slot,
    /// like [`WorkerPool::spawn_at`]) or — if shutdown has begun — none
    /// are. A multi-chunk request can therefore never be split by a
    /// concurrent shutdown into "first half enqueued, second half
    /// rejected".
    ///
    /// # Errors
    ///
    /// [`ShuttingDown`] once [`WorkerPool::shutdown`] has begun; no job
    /// from the batch was enqueued.
    pub fn spawn_batch(&self, jobs: Vec<(usize, Job)>) -> Result<(), ShuttingDown> {
        let n_slots = self.shared.slots.len();
        let mut st = self.shared.state.lock().expect("pool lock");
        if st.shutdown {
            return Err(ShuttingDown);
        }
        let n = jobs.len();
        for (hint, job) in jobs {
            let slot = hint % n_slots;
            st.queued_local += 1;
            self.shared.slots[slot].lock().expect("slot lock").push(job);
        }
        drop(st);
        if n == 1 {
            self.shared.work.notify_one();
        } else if n > 1 {
            self.shared.work.notify_all();
        }
        Ok(())
    }

    /// Queued + running job count: injector backlog, LIFO-slot backlog and
    /// jobs currently executing. This is the pressure signal admission
    /// layers (the `dp_gateway` dispatcher) throttle on.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("pool lock").depth()
    }

    /// Blocks until [`WorkerPool::queue_depth`] drops below `below` (or
    /// the pool drains entirely, which covers `below == 0`), returning the
    /// depth observed. Progress is guaranteed: workers signal after every
    /// job completion and queued jobs always run, even during shutdown
    /// (draining semantics).
    pub fn wait_depth_below(&self, below: usize) -> usize {
        let mut st = self.shared.state.lock().expect("pool lock");
        loop {
            let depth = st.depth();
            if depth < below || st.is_drained() {
                return depth;
            }
            st = self.shared.progress.wait(st).expect("pool lock");
        }
    }

    /// Submits a job to worker `hint % workers`'s LIFO slot — producers
    /// spreading a chunked batch round-robin keep each worker on its own
    /// chunk run (cache-warm model state) while idle workers steal.
    ///
    /// # Errors
    ///
    /// [`ShuttingDown`] once [`WorkerPool::shutdown`] has begun.
    pub fn spawn_at(&self, hint: usize, job: Job) -> Result<(), ShuttingDown> {
        let slot = hint % self.shared.slots.len();
        let mut st = self.shared.state.lock().expect("pool lock");
        if st.shutdown {
            return Err(ShuttingDown);
        }
        st.queued_local += 1;
        self.shared.slots[slot].lock().expect("slot lock").push(job);
        drop(st);
        // One waker suffices: whichever worker wakes reaches the job via
        // its own slot, the injector, or the steal scan.
        self.shared.work.notify_one();
        Ok(())
    }

    /// Blocks until every submitted job has finished executing.
    pub fn wait_idle(&self) {
        let mut st = self.shared.state.lock().expect("pool lock");
        while !st.is_drained() {
            st = self.shared.progress.wait(st).expect("pool lock");
        }
    }

    /// Begins shutdown **without joining**: new submissions are rejected
    /// from this point on, while the workers keep draining every queued
    /// and in-flight job. Idempotent; [`WorkerPool::shutdown`] (or drop)
    /// later joins the workers.
    pub fn begin_shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            if st.shutdown {
                return;
            }
            st.shutdown = true;
        }
        self.shared.work.notify_all();
    }

    /// Graceful shutdown: rejects new submissions, lets the workers drain
    /// every queued and in-flight job, then joins them. Called implicitly
    /// on drop.
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            h.join().expect("pool worker never panics");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, me: usize) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = shared.take_job(&mut st, me) {
                    st.active += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).expect("pool lock");
            }
        };
        // The job is run outside every lock; a panic is confined to the
        // job (the engine layer has already arranged for the request's
        // completion handle to be poisoned).
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
        let mut st = shared.state.lock().expect("pool lock");
        st.active -= 1;
        // Every completion is progress: depth waiters re-check their
        // threshold, idle waiters re-check the drain condition.
        shared.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn counting_job(counter: &Arc<AtomicUsize>) -> Job {
        let counter = Arc::clone(counter);
        Box::new(move || {
            std::thread::sleep(Duration::from_micros(200));
            counter.fetch_add(1, Ordering::SeqCst);
        })
    }

    #[test]
    fn executes_injected_and_targeted_jobs() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..40 {
            if i % 2 == 0 {
                pool.spawn(counting_job(&counter)).unwrap();
            } else {
                pool.spawn_at(i, counting_job(&counter)).unwrap();
            }
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 40);
        assert_eq!(pool.stats().jobs_run, 40);
        assert_eq!(pool.stats().panics, 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let mut pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..64 {
            pool.spawn_at(i, counting_job(&counter)).unwrap();
        }
        // Shut down immediately: every queued job must still run.
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        // Submissions after shutdown are rejected.
        assert_eq!(pool.spawn(counting_job(&counter)), Err(ShuttingDown));
        assert_eq!(pool.spawn_at(0, counting_job(&counter)), Err(ShuttingDown));
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn panicking_job_leaves_pool_serviceable() {
        let pool = WorkerPool::new(1);
        pool.spawn(Box::new(|| panic!("job blows up"))).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        pool.spawn(counting_job(&counter)).unwrap();
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        let stats = pool.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.jobs_run, 2);
    }

    #[test]
    fn stealing_moves_work_off_a_busy_slot() {
        // All jobs targeted at slot 0; with 4 workers the others must
        // steal for the batch to finish promptly.
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            pool.spawn_at(0, counting_job(&counter)).unwrap();
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = WorkerPool::new(2);
        pool.wait_idle();
        assert_eq!(pool.stats().jobs_run, 0);
    }

    #[test]
    fn spawn_batch_runs_all_or_nothing() {
        let mut pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<(usize, Job)> = (0..10).map(|i| (i, counting_job(&counter))).collect();
        pool.spawn_batch(jobs).unwrap();
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        pool.shutdown();
        // After shutdown: the whole batch is rejected, nothing runs.
        let jobs: Vec<(usize, Job)> = (0..10).map(|i| (i, counting_job(&counter))).collect();
        assert_eq!(pool.spawn_batch(jobs), Err(ShuttingDown));
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(pool.stats().jobs_run, 10);
    }

    #[test]
    fn queue_depth_tracks_backlog_and_drains_to_zero() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.queue_depth(), 0);
        // A gate job holds the single worker busy while we pile up backlog.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            pool.spawn(Box::new(move || {
                let (open, cv) = &*gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }))
            .unwrap();
        }
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..5 {
            pool.spawn_at(i, counting_job(&counter)).unwrap();
        }
        // Gate job active (or queued) + 5 queued behind it.
        assert!(pool.queue_depth() >= 5);
        {
            let (open, cv) = &*gate;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        assert_eq!(pool.wait_depth_below(1), 0);
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }
}
