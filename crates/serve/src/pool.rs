//! The long-lived worker pool: a condvar-backed injector queue plus one
//! LIFO slot per worker, with work stealing — now supervised.
//!
//! Workers are ordinary `std::thread`s that live for the pool's lifetime,
//! so a request stream pays thread spawn cost once rather than per batch
//! (the scoped-thread engine in `deep_positron::batch` remains as the
//! zero-setup fallback). Scheduling is the classic two-level scheme:
//!
//! * the **injector** is a global FIFO that any producer can push to;
//! * each worker owns a **LIFO slot** — targeted submissions
//!   ([`WorkerPool::spawn_at`]) land there, the owner pops newest-first
//!   (its model/EMAC state is still cache-warm), and idle workers steal
//!   oldest-first from other slots once the injector is dry.
//!
//! A panicking job is caught and counted; the worker thread survives and
//! keeps serving (the `engine` layer additionally poisons the panicked
//! request's completion handle). Shutdown is graceful: workers drain every
//! queued job before exiting.
//!
//! # Supervision
//!
//! Two optional supervisors harden the pool against the failure modes a
//! caught panic cannot cover:
//!
//! * A **watchdog** ([`WatchdogConfig`]) — every worker stamps a heartbeat
//!   when it picks up a job; a supervisor thread scans the stamps and,
//!   when a worker has been busy on one job beyond the stall threshold,
//!   *abandons* that worker (its thread is detached, its generation
//!   retired), runs the job's registered stall handler (which fails only
//!   the stuck job's completion handle) and respawns a fresh worker on the
//!   same slot. Queue accounting (`active`, `jobs_run`) is settled by the
//!   watchdog, so drain and depth waiters never hang on a wedged thread.
//! * A **panic budget** ([`PanicBudget`]) — worker panics are timestamped;
//!   when more than the budgeted number land inside the trailing window
//!   the pool flips to **degraded** ([`WorkerPool::is_degraded`]). The
//!   pool itself keeps draining; admission layers (`ServeEngine`,
//!   `dp_gateway`) consult the flag and reject new work with a typed
//!   error until an operator calls [`WorkerPool::reset_degraded`].

use crate::check::{self, check_yield, Condvar, Mutex};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A unit of work for the pool: the job closure plus an optional stall
/// handler the watchdog runs if the job wedges its worker (see
/// [`WatchdogConfig`]). The handler's contract is to fail **only this
/// job's** completion handle; the watchdog has already settled the pool's
/// queue accounting when it runs.
pub struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    on_stalled: Option<Box<dyn FnOnce() + Send + 'static>>,
}

impl Job {
    /// A plain job with no stall handler (a stalled worker is still
    /// respawned; there is just nothing to notify).
    pub fn new(run: impl FnOnce() + Send + 'static) -> Self {
        Job {
            run: Box::new(run),
            on_stalled: None,
        }
    }

    /// A job with a stall handler, invoked (at most once, instead of the
    /// job ever completing normally from the pool's point of view) when
    /// the watchdog abandons the worker running this job.
    pub fn with_stall_handler(
        run: impl FnOnce() + Send + 'static,
        on_stalled: impl FnOnce() + Send + 'static,
    ) -> Self {
        Job {
            run: Box::new(run),
            on_stalled: Some(Box::new(on_stalled)),
        }
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("has_stall_handler", &self.on_stalled.is_some())
            .finish()
    }
}

/// Watchdog sizing: how long a worker may sit on one job before it is
/// declared stalled, and how often the supervisor scans the heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Busy-on-one-job threshold beyond which a worker is abandoned and
    /// respawned. Must comfortably exceed the longest legitimate chunk
    /// evaluation.
    pub stall_timeout: Duration,
    /// Heartbeat scan cadence (also bounds how late a stall is detected:
    /// worst case `stall_timeout + poll_interval`).
    pub poll_interval: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(100),
        }
    }
}

/// Panic budget: how many worker panics the pool tolerates inside a
/// trailing window before flipping to degraded mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanicBudget {
    /// Panics tolerated within [`PanicBudget::window`]; the
    /// `max_panics + 1`-th trips [`WorkerPool::is_degraded`].
    pub max_panics: u32,
    /// Trailing window over which panics are counted.
    pub window: Duration,
}

impl Default for PanicBudget {
    fn default() -> Self {
        PanicBudget {
            max_panics: 8,
            window: Duration::from_secs(10),
        }
    }
}

/// Error returned when submitting to a pool that is shutting down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShuttingDown;

impl std::fmt::Display for ShuttingDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool is shutting down")
    }
}

impl std::error::Error for ShuttingDown {}

/// Counters exposed for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker thread count.
    pub workers: usize,
    /// Jobs executed to completion (including panicked and stalled ones —
    /// a stalled job is counted by the watchdog when it abandons the
    /// worker, so `jobs_run` always converges to the submitted total).
    pub jobs_run: u64,
    /// Jobs whose closure panicked (caught; the worker survived).
    pub panics: u64,
    /// Workers the watchdog declared stalled and abandoned.
    pub stalled: u64,
    /// Replacement workers the watchdog spawned (equals `stalled` unless a
    /// respawn itself failed).
    pub respawned: u64,
    /// Whether the panic budget has tripped (see
    /// [`WorkerPool::is_degraded`]).
    pub degraded: bool,
}

struct State {
    injector: VecDeque<Job>,
    /// Jobs currently sitting in per-worker LIFO slots.
    queued_local: usize,
    /// Jobs currently executing on a worker.
    active: usize,
    shutdown: bool,
}

impl State {
    fn is_drained(&self) -> bool {
        self.injector.is_empty() && self.queued_local == 0 && self.active == 0
    }

    /// Queued + running jobs (injector, LIFO slots, and active workers).
    fn depth(&self) -> usize {
        self.injector.len() + self.queued_local + self.active
    }
}

/// Per-slot heartbeat + supervision state. A *slot* outlives any one
/// worker thread: the watchdog retires a wedged worker's generation and
/// hands the slot to a replacement.
struct WorkerWatch {
    /// Generation of the thread currently owning this slot. A worker
    /// whose spawn-time generation no longer matches has been abandoned
    /// and must exit without touching slot state or queue accounting.
    gen: AtomicU64,
    /// Heartbeat: 0 when idle, else `Shared::now_ms` at the moment the
    /// current job was picked up.
    busy_since_ms: AtomicU64,
    /// The running job's stall handler, parked here so the watchdog can
    /// take it without cooperating with the (possibly wedged) worker.
    /// Lock order: `state` before this.
    stall_handler: Mutex<Option<Box<dyn FnOnce() + Send + 'static>>>,
}

impl WorkerWatch {
    /// The parked stall handler (lock order: `state` before this).
    fn handler(&self) -> check::MutexGuard<'_, Option<Box<dyn FnOnce() + Send + 'static>>> {
        // panic-ok: holders only move the boxed handler; no unwind.
        self.stall_handler.lock().expect("stall handler lock")
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when work arrives or shutdown flips.
    work: Condvar,
    /// Signalled after every job completion, so waiters can re-check
    /// drain ([`WorkerPool::wait_idle`]) or depth
    /// ([`WorkerPool::wait_depth_below`]).
    progress: Condvar,
    /// Per-worker LIFO slots. Lock order: `state` before any slot.
    slots: Vec<Mutex<Vec<Job>>>,
    /// Per-worker supervision state, parallel to `slots`.
    watches: Vec<WorkerWatch>,
    /// Worker thread handles by slot, swapped by the watchdog on respawn
    /// (the wedged thread's handle is dropped, i.e. detached).
    threads: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Monotonic time base for the heartbeat stamps.
    epoch: Instant,
    jobs_run: AtomicU64,
    panics: AtomicU64,
    stalled: AtomicU64,
    respawned: AtomicU64,
    degraded: AtomicBool,
    budget: Option<PanicBudget>,
    /// Timestamps of recent panics (trimmed to the budget window).
    panic_times: Mutex<VecDeque<Instant>>,
}

impl Shared {
    /// Milliseconds since pool start, offset by 1 so 0 can mean "idle".
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64 + 1
    }

    /// The central queue/accounting lock.
    fn st(&self) -> check::MutexGuard<'_, State> {
        // panic-ok: no holder of the state lock can unwind — jobs run
        // outside every lock — so poisoning is unreachable.
        self.state.lock().expect("pool lock")
    }

    /// Worker `i`'s LIFO slot (lock order: `state` before any slot).
    fn slot(&self, i: usize) -> check::MutexGuard<'_, Vec<Job>> {
        // panic-ok: slot holders only push/pop a Vec; no unwind.
        self.slots[i].lock().expect("slot lock")
    }

    /// The worker-thread handle table (lock order: `state` before this).
    fn thread_table(&self) -> check::MutexGuard<'_, Vec<Option<JoinHandle<()>>>> {
        // panic-ok: holders only swap Option handles; no unwind.
        self.threads.lock().expect("threads lock")
    }

    /// Pops the next job for worker `me`: own slot newest-first, then the
    /// injector, then steal oldest-first from the other slots. Must be
    /// called with the `state` lock held (`st` is that guard's contents).
    fn take_job(&self, st: &mut State, me: usize) -> Option<Job> {
        if st.queued_local > 0 {
            if let Some(job) = self.slot(me).pop() {
                st.queued_local -= 1;
                return Some(job);
            }
        }
        if let Some(job) = st.injector.pop_front() {
            return Some(job);
        }
        if st.queued_local > 0 {
            let n = self.slots.len();
            for off in 1..n {
                let victim = (me + off) % n;
                let mut slot = self.slot(victim);
                if !slot.is_empty() {
                    let job = slot.remove(0);
                    st.queued_local -= 1;
                    return Some(job);
                }
            }
        }
        None
    }

    /// Records one worker panic against the budget; flips `degraded` when
    /// the trailing-window count exceeds it.
    fn note_panic(&self) {
        let Some(budget) = self.budget else { return };
        // clock-ok: the panic budget's trailing window is a wall-clock
        // supervision contract, independent of the trace clock seam.
        let now = Instant::now();
        // panic-ok: holders only mutate a VecDeque; no unwind.
        let mut times = self.panic_times.lock().expect("panic budget lock");
        times.push_back(now);
        while let Some(&front) = times.front() {
            if now.duration_since(front) > budget.window {
                times.pop_front();
            } else {
                break;
            }
        }
        if times.len() as u64 > u64::from(budget.max_panics) {
            // seqcst-ok: standalone admission flag read lock-free by the
            // engine/gateway; the cold full fence keeps the degraded flip
            // immediately visible to every admission thread.
            self.degraded.store(true, Ordering::SeqCst);
        }
    }
}

/// A fixed-size pool of long-lived worker threads.
///
/// See the [module docs](self) for the scheduling scheme and optional
/// supervision. Dropping the pool performs a graceful
/// [`WorkerPool::shutdown`].
pub struct WorkerPool {
    shared: Arc<Shared>,
    watchdog: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.shared.slots.len())
            .field("supervised", &self.watchdog.is_some())
            .finish_non_exhaustive()
    }
}

fn spawn_worker(shared: &Arc<Shared>, slot: usize, gen: u64) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("dp-serve-worker-{slot}-g{gen}"))
        .spawn(move || worker_loop(&shared, slot, gen))
        // panic-ok: thread spawn fails only on resource exhaustion at
        // pool construction / respawn; no graceful degradation exists.
        .expect("spawn pool worker")
}

impl WorkerPool {
    /// Spawns an unsupervised pool with `workers` threads (clamped to
    /// ≥ 1): no watchdog, no panic budget — the PR-4 behaviour.
    pub fn new(workers: usize) -> Self {
        Self::with_supervision(workers, None, None)
    }

    /// Spawns a pool with `workers` threads (clamped to ≥ 1) and optional
    /// supervision: a stall watchdog and/or a panic budget (see the
    /// [module docs](self)).
    pub fn with_supervision(
        workers: usize,
        watchdog: Option<WatchdogConfig>,
        budget: Option<PanicBudget>,
    ) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: check::mutex(
                "pool.state",
                State {
                    injector: VecDeque::new(),
                    queued_local: 0,
                    active: 0,
                    shutdown: false,
                },
            ),
            work: check::condvar(),
            progress: check::condvar(),
            slots: (0..workers)
                .map(|_| check::mutex("pool.slot", Vec::new()))
                .collect(),
            watches: (0..workers)
                .map(|_| WorkerWatch {
                    gen: AtomicU64::new(0),
                    busy_since_ms: AtomicU64::new(0),
                    stall_handler: check::mutex("pool.stall_handler", None),
                })
                .collect(),
            threads: check::mutex("pool.threads", (0..workers).map(|_| None).collect()),
            // clock-ok: construction-time anchor for busy-ms deltas, never compared to seam time
            epoch: Instant::now(),
            jobs_run: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            budget,
            panic_times: check::mutex("pool.panic_times", VecDeque::new()),
        });
        {
            let mut threads = shared.thread_table();
            for i in 0..workers {
                threads[i] = Some(spawn_worker(&shared, i, 0));
            }
        }
        let watchdog = watchdog.map(|cfg| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dp-serve-watchdog".to_string())
                .spawn(move || watchdog_loop(&shared, cfg))
                // panic-ok: see `spawn_worker`.
                .expect("spawn pool watchdog")
        });
        WorkerPool { shared, watchdog }
    }

    /// Worker thread count (stable across shutdown and respawns).
    pub fn workers(&self) -> usize {
        self.shared.slots.len()
    }

    /// Observability counters.
    pub fn stats(&self) -> PoolStats {
        // relaxed-ok: independent monotone counters; a stats read needs
        // no ordering against the workers that bump them.
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        PoolStats {
            workers: self.shared.slots.len(),
            jobs_run: ld(&self.shared.jobs_run),
            panics: ld(&self.shared.panics),
            stalled: ld(&self.shared.stalled),
            respawned: ld(&self.shared.respawned),
            degraded: self.is_degraded(),
        }
    }

    /// Per-worker busy time: `0` for an idle slot, else how many
    /// milliseconds the slot's current job has been running. Observability
    /// only (the `/statusz` endpoint renders it); values are heartbeat
    /// snapshots and may lag a worker's actual state by one store.
    pub fn worker_busy_ms(&self) -> Vec<u64> {
        let now = self.shared.now_ms();
        self.shared
            .watches
            .iter()
            .map(|w| {
                // relaxed-ok: single-word heartbeat observation; staleness
                // only skews a debug rendering.
                match w.busy_since_ms.load(Ordering::Relaxed) {
                    0 => 0,
                    since => now.saturating_sub(since).max(1),
                }
            })
            .collect()
    }

    /// Whether the panic budget has tripped. The pool itself still drains
    /// (and still accepts jobs — admission layers are the ones expected to
    /// consult this flag and reject with a typed error).
    pub fn is_degraded(&self) -> bool {
        // seqcst-ok: pairs with the SeqCst stores in `note_panic` /
        // `reset_degraded`; lock-free admission check off the hot loop.
        self.shared.degraded.load(Ordering::SeqCst)
    }

    /// Operator action: clears the degraded flag and forgets the panic
    /// history that tripped it.
    pub fn reset_degraded(&self) {
        self.shared
            .panic_times
            .lock()
            .expect("panic budget lock") // panic-ok: see `note_panic`
            .clear();
        // seqcst-ok: pairs with the loads in `is_degraded`.
        self.shared.degraded.store(false, Ordering::SeqCst);
    }

    /// Submits a job to the global injector queue.
    ///
    /// # Errors
    ///
    /// [`ShuttingDown`] once [`WorkerPool::shutdown`] has begun.
    pub fn spawn(&self, job: Job) -> Result<(), ShuttingDown> {
        let mut st = self.shared.st();
        if st.shutdown {
            return Err(ShuttingDown);
        }
        st.injector.push_back(job);
        drop(st);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Submits a whole batch of `(hint, job)` pairs **atomically**: either
    /// every job is enqueued (each to worker `hint % workers`'s LIFO slot,
    /// like [`WorkerPool::spawn_at`]) or — if shutdown has begun — none
    /// are. A multi-chunk request can therefore never be split by a
    /// concurrent shutdown into "first half enqueued, second half
    /// rejected".
    ///
    /// # Errors
    ///
    /// [`ShuttingDown`] once [`WorkerPool::shutdown`] has begun; no job
    /// from the batch was enqueued.
    pub fn spawn_batch(&self, jobs: Vec<(usize, Job)>) -> Result<(), ShuttingDown> {
        let n_slots = self.shared.slots.len();
        let mut st = self.shared.st();
        if st.shutdown {
            return Err(ShuttingDown);
        }
        let n = jobs.len();
        for (hint, job) in jobs {
            let slot = hint % n_slots;
            st.queued_local += 1;
            self.shared.slot(slot).push(job);
        }
        drop(st);
        if n == 1 {
            self.shared.work.notify_one();
        } else if n > 1 {
            self.shared.work.notify_all();
        }
        Ok(())
    }

    /// Queued + running job count: injector backlog, LIFO-slot backlog and
    /// jobs currently executing. This is the pressure signal admission
    /// layers (the `dp_gateway` dispatcher) throttle on.
    pub fn queue_depth(&self) -> usize {
        self.shared.st().depth()
    }

    /// Blocks until [`WorkerPool::queue_depth`] drops below `below` (or
    /// the pool drains entirely, which covers `below == 0`), returning the
    /// depth observed. Progress is guaranteed: workers signal after every
    /// job completion and queued jobs always run, even during shutdown
    /// (draining semantics) — and under a watchdog even a wedged worker's
    /// accounting is settled.
    pub fn wait_depth_below(&self, below: usize) -> usize {
        let mut st = self.shared.st();
        loop {
            let depth = st.depth();
            if depth < below || st.is_drained() {
                return depth;
            }
            // panic-ok: see `Shared::st` — the state lock cannot poison.
            st = self.shared.progress.wait(st).expect("pool lock");
        }
    }

    /// Bounded [`WorkerPool::wait_depth_below`]: returns `Some(depth)` as
    /// soon as the depth condition holds, or `None` if `timeout` elapses
    /// first (the depth condition still false).
    pub fn wait_depth_below_for(&self, below: usize, timeout: Duration) -> Option<usize> {
        // clock-ok: caller-side wall-clock wait bound (the OS condvar
        // wait below is real-time anyway).
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.st();
        loop {
            let depth = st.depth();
            if depth < below || st.is_drained() {
                return Some(depth);
            }
            // clock-ok: see the deadline note above.
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self
                .shared
                .progress
                .wait_timeout(st, deadline - now)
                .expect("pool lock"); // panic-ok: see `Shared::st`
            st = guard;
        }
    }

    /// Submits a job to worker `hint % workers`'s LIFO slot — producers
    /// spreading a chunked batch round-robin keep each worker on its own
    /// chunk run (cache-warm model state) while idle workers steal.
    ///
    /// # Errors
    ///
    /// [`ShuttingDown`] once [`WorkerPool::shutdown`] has begun.
    pub fn spawn_at(&self, hint: usize, job: Job) -> Result<(), ShuttingDown> {
        let slot = hint % self.shared.slots.len();
        let mut st = self.shared.st();
        if st.shutdown {
            return Err(ShuttingDown);
        }
        st.queued_local += 1;
        self.shared.slot(slot).push(job);
        drop(st);
        // One waker suffices: whichever worker wakes reaches the job via
        // its own slot, the injector, or the steal scan.
        self.shared.work.notify_one();
        Ok(())
    }

    /// Blocks until every submitted job has finished executing.
    pub fn wait_idle(&self) {
        let mut st = self.shared.st();
        while !st.is_drained() {
            // panic-ok: see `Shared::st` — the state lock cannot poison.
            st = self.shared.progress.wait(st).expect("pool lock");
        }
    }

    /// Begins shutdown **without joining**: new submissions are rejected
    /// from this point on, while the workers keep draining every queued
    /// and in-flight job. Idempotent; [`WorkerPool::shutdown`] (or drop)
    /// later joins the workers.
    pub fn begin_shutdown(&self) {
        {
            let mut st = self.shared.st();
            if st.shutdown {
                return;
            }
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        // The watchdog re-checks its exit condition on progress signals.
        self.shared.progress.notify_all();
    }

    /// Graceful shutdown: rejects new submissions, lets the workers drain
    /// every queued and in-flight job, then joins them (and the watchdog,
    /// if any). Called implicitly on drop. A worker the watchdog abandoned
    /// is **not** joined — its thread was detached at respawn time.
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        let handles: Vec<JoinHandle<()>> = {
            let mut threads = self.shared.thread_table();
            threads.iter_mut().filter_map(Option::take).collect()
        };
        for h in handles {
            // panic-ok: the worker loop catches job panics; an unwind
            // here is a pool bug worth crashing loudly on.
            h.join().expect("pool worker never panics");
        }
        if let Some(w) = self.watchdog.take() {
            // panic-ok: same contract as the worker join above.
            w.join().expect("pool watchdog never panics");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, me: usize, my_gen: u64) {
    let watch = &shared.watches[me];
    loop {
        let job = {
            let mut st = shared.st();
            loop {
                // relaxed-ok: (audited, was SeqCst) every access to `gen`
                // — this check, the post-job check, and the watchdog's
                // bump — happens under the state lock, which already
                // orders them; the fence bought nothing.
                if watch.gen.load(Ordering::Relaxed) != my_gen {
                    // Abandoned while idle (cannot happen today — the
                    // watchdog only retires busy workers — but harmless
                    // and future-proof).
                    return;
                }
                if let Some(mut job) = shared.take_job(&mut st, me) {
                    check_yield!("pool.worker.pickup");
                    st.active += 1;
                    // Heartbeat + stall handler are published before the
                    // job runs, all under the state lock the watchdog
                    // scans under.
                    *watch.handler() = job.on_stalled.take();
                    let now = shared.now_ms();
                    // relaxed-ok: (audited, was SeqCst) only written and
                    // read under the state lock, like `gen`.
                    watch.busy_since_ms.store(now, Ordering::Relaxed);
                    break job;
                }
                if st.shutdown {
                    return;
                }
                // panic-ok: see `Shared::st` — the state lock cannot poison.
                st = shared.work.wait(st).expect("pool lock");
            }
        };
        // The job is run outside every lock; a panic is confined to the
        // job (the engine layer has already arranged for the request's
        // completion handle to be poisoned).
        let panicked = catch_unwind(AssertUnwindSafe(job.run)).is_err();
        let mut st = shared.st();
        check_yield!("pool.worker.settle");
        // relaxed-ok: under the state lock; see the pickup-loop note.
        if watch.gen.load(Ordering::Relaxed) != my_gen {
            // The watchdog declared this worker stalled while the job ran:
            // it already settled `active`/`jobs_run`, ran the stall
            // handler, and handed the slot (heartbeat included) to a
            // replacement. Exit without touching anything.
            return;
        }
        // relaxed-ok: under the state lock; see the pickup-loop note.
        watch.busy_since_ms.store(0, Ordering::Relaxed);
        *watch.handler() = None;
        if panicked {
            // relaxed-ok: monotone counter; stats reads need no ordering.
            shared.panics.fetch_add(1, Ordering::Relaxed);
            shared.note_panic();
        }
        // relaxed-ok: monotone counter; drain waiters sync via the lock.
        shared.jobs_run.fetch_add(1, Ordering::Relaxed);
        st.active -= 1;
        drop(st);
        // Every completion is progress: depth waiters re-check their
        // threshold, idle waiters re-check the drain condition.
        shared.progress.notify_all();
    }
}

/// The supervisor: scans heartbeats, abandons + respawns stalled workers,
/// and exits once the pool is shut down and drained.
fn watchdog_loop(shared: &Arc<Shared>, cfg: WatchdogConfig) {
    let stall_ms = cfg.stall_timeout.as_millis().max(1) as u64;
    loop {
        let mut handlers: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
        {
            let mut st = shared.st();
            if st.shutdown && st.is_drained() {
                return;
            }
            let now = shared.now_ms();
            for (i, watch) in shared.watches.iter().enumerate() {
                // relaxed-ok: under the state lock; see `worker_loop`.
                let busy = watch.busy_since_ms.load(Ordering::Relaxed);
                if busy == 0 || now.saturating_sub(busy) < stall_ms {
                    continue;
                }
                check_yield!("pool.watchdog.claim");
                // Stalled: retire this worker's generation. The wedged
                // thread will see the bump when (if ever) its job returns
                // and exit without double-accounting.
                // relaxed-ok: under the state lock; see `worker_loop`.
                let next_gen = watch.gen.load(Ordering::Relaxed) + 1;
                // relaxed-ok: under the state lock; see `worker_loop`.
                watch.gen.store(next_gen, Ordering::Relaxed);
                // relaxed-ok: under the state lock; see `worker_loop`.
                watch.busy_since_ms.store(0, Ordering::Relaxed);
                st.active -= 1;
                // relaxed-ok: monotone counters; see `worker_loop`.
                shared.jobs_run.fetch_add(1, Ordering::Relaxed);
                // relaxed-ok: monotone counters; see `worker_loop`.
                shared.stalled.fetch_add(1, Ordering::Relaxed);
                if let Some(h) = watch.handler().take() {
                    handlers.push(h);
                }
                // Respawn on the same slot; dropping the old handle
                // detaches the wedged thread.
                let replacement = spawn_worker(shared, i, next_gen);
                shared.thread_table()[i] = Some(replacement);
                check_yield!("pool.watchdog.respawn");
                // relaxed-ok: monotone counter; see `worker_loop`.
                shared.respawned.fetch_add(1, Ordering::Relaxed);
            }
            if handlers.is_empty() {
                // Nothing stalled: park until progress or the next scan.
                let (guard, _timeout) = shared
                    .progress
                    .wait_timeout(st, cfg.poll_interval)
                    .expect("pool lock"); // panic-ok: see `Shared::st`
                drop(guard);
                continue;
            }
        }
        // Handlers run outside every lock (they complete request handles,
        // which take handle locks of their own).
        for h in handlers {
            h();
        }
        shared.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Test-only counter bump, keeping the ordering annotation in one
    /// place.
    fn bump(c: &AtomicUsize) {
        // seqcst-ok: cross-thread test counter; SeqCst keeps the
        // assertions free of ordering caveats at test-only cost.
        c.fetch_add(1, Ordering::SeqCst);
    }

    /// Test-only counter read; see [`bump`].
    fn get(c: &AtomicUsize) -> usize {
        // seqcst-ok: pairs with `bump`.
        c.load(Ordering::SeqCst)
    }

    fn counting_job(counter: &Arc<AtomicUsize>) -> Job {
        let counter = Arc::clone(counter);
        Job::new(move || {
            std::thread::sleep(Duration::from_micros(200));
            bump(&counter);
        })
    }

    #[test]
    fn executes_injected_and_targeted_jobs() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..40 {
            if i % 2 == 0 {
                pool.spawn(counting_job(&counter)).unwrap();
            } else {
                pool.spawn_at(i, counting_job(&counter)).unwrap();
            }
        }
        pool.wait_idle();
        assert_eq!(get(&counter), 40);
        assert_eq!(pool.stats().jobs_run, 40);
        assert_eq!(pool.stats().panics, 0);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let mut pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..64 {
            pool.spawn_at(i, counting_job(&counter)).unwrap();
        }
        // Shut down immediately: every queued job must still run.
        pool.shutdown();
        assert_eq!(get(&counter), 64);
        // Submissions after shutdown are rejected.
        assert!(pool.spawn(counting_job(&counter)).is_err());
        assert!(pool.spawn_at(0, counting_job(&counter)).is_err());
        assert_eq!(get(&counter), 64);
    }

    #[test]
    fn panicking_job_leaves_pool_serviceable() {
        let pool = WorkerPool::new(1);
        pool.spawn(Job::new(|| panic!("job blows up"))).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        pool.spawn(counting_job(&counter)).unwrap();
        pool.wait_idle();
        assert_eq!(get(&counter), 1);
        let stats = pool.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.jobs_run, 2);
    }

    #[test]
    fn stealing_moves_work_off_a_busy_slot() {
        // All jobs targeted at slot 0; with 4 workers the others must
        // steal for the batch to finish promptly.
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            pool.spawn_at(0, counting_job(&counter)).unwrap();
        }
        pool.wait_idle();
        assert_eq!(get(&counter), 32);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = WorkerPool::new(2);
        pool.wait_idle();
        assert_eq!(pool.stats().jobs_run, 0);
    }

    #[test]
    fn spawn_batch_runs_all_or_nothing() {
        let mut pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<(usize, Job)> = (0..10).map(|i| (i, counting_job(&counter))).collect();
        pool.spawn_batch(jobs).unwrap();
        pool.wait_idle();
        assert_eq!(get(&counter), 10);
        pool.shutdown();
        // After shutdown: the whole batch is rejected, nothing runs.
        let jobs: Vec<(usize, Job)> = (0..10).map(|i| (i, counting_job(&counter))).collect();
        assert!(pool.spawn_batch(jobs).is_err());
        assert_eq!(get(&counter), 10);
        assert_eq!(pool.stats().jobs_run, 10);
    }

    #[test]
    fn queue_depth_tracks_backlog_and_drains_to_zero() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.queue_depth(), 0);
        // A gate job holds the single worker busy while we pile up backlog.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            pool.spawn(Job::new(move || {
                let (open, cv) = &*gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }))
            .unwrap();
        }
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..5 {
            pool.spawn_at(i, counting_job(&counter)).unwrap();
        }
        // Gate job active (or queued) + 5 queued behind it.
        assert!(pool.queue_depth() >= 5);
        {
            let (open, cv) = &*gate;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        assert_eq!(pool.wait_depth_below(1), 0);
        assert_eq!(pool.queue_depth(), 0);
        assert_eq!(get(&counter), 5);
    }

    #[test]
    fn wait_depth_below_for_times_out_while_blocked() {
        let pool = WorkerPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            pool.spawn(Job::new(move || {
                let (open, cv) = &*gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }))
            .unwrap();
        }
        // One job active forever-ish: depth never drops below 1.
        assert_eq!(
            pool.wait_depth_below_for(1, Duration::from_millis(50)),
            None
        );
        {
            let (open, cv) = &*gate;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        assert_eq!(
            pool.wait_depth_below_for(1, Duration::from_secs(5)),
            Some(0)
        );
    }

    #[test]
    fn watchdog_respawns_stalled_worker_and_runs_stall_handler() {
        let pool = WorkerPool::with_supervision(
            1,
            Some(WatchdogConfig {
                stall_timeout: Duration::from_millis(50),
                poll_interval: Duration::from_millis(10),
            }),
            None,
        );
        let stalled_seen = Arc::new(AtomicUsize::new(0));
        {
            let stalled_seen = Arc::clone(&stalled_seen);
            pool.spawn(Job::with_stall_handler(
                // Wedge the only worker well past the stall threshold.
                || std::thread::sleep(Duration::from_millis(400)),
                move || {
                    bump(&stalled_seen);
                },
            ))
            .unwrap();
        }
        // A job queued behind the wedge: the respawned worker must run it.
        let counter = Arc::new(AtomicUsize::new(0));
        pool.spawn(counting_job(&counter)).unwrap();
        pool.wait_idle();
        assert_eq!(get(&counter), 1);
        assert_eq!(get(&stalled_seen), 1);
        let stats = pool.stats();
        assert_eq!(stats.stalled, 1);
        assert_eq!(stats.respawned, 1);
        // Accounting intact: both jobs counted exactly once (the stalled
        // one by the watchdog), even though the wedged thread finishes
        // later and exits silently.
        assert_eq!(stats.jobs_run, 2);
        // Let the wedged thread finish and confirm no double count.
        std::thread::sleep(Duration::from_millis(450));
        assert_eq!(pool.stats().jobs_run, 2);
    }

    #[test]
    fn panic_budget_flips_degraded() {
        let pool = WorkerPool::with_supervision(
            1,
            None,
            Some(PanicBudget {
                max_panics: 2,
                window: Duration::from_secs(30),
            }),
        );
        for _ in 0..2 {
            pool.spawn(Job::new(|| panic!("boom"))).unwrap();
        }
        pool.wait_idle();
        assert!(!pool.is_degraded(), "within budget");
        pool.spawn(Job::new(|| panic!("boom"))).unwrap();
        pool.wait_idle();
        assert!(pool.is_degraded(), "third panic exceeds max_panics = 2");
        assert!(pool.stats().degraded);
        pool.reset_degraded();
        assert!(!pool.is_degraded());
    }
}
