//! First-claimant-wins completion guard ([`ClaimCell`]).
//!
//! A chunk job's completion can come from three racing paths: the worker
//! finishing (or panicking) normally, the chunk-boundary cancellation
//! check, and the watchdog's stall handler after the worker was
//! abandoned. Exactly one of them may touch the completion handle — a
//! second completion would corrupt the batch accounting (`remaining`
//! underflow). The cell is that race's single linearization point,
//! named so the interleaving checker can schedule around it
//! (`check-yield` feature) and tests can assert first-claimant
//! uniqueness directly.

use crate::check::check_yield;
use std::sync::atomic::{AtomicBool, Ordering};

/// One-shot claim flag: the first `claim` wins, every later one loses.
#[derive(Debug, Default)]
pub(crate) struct ClaimCell {
    claimed: AtomicBool,
}

impl ClaimCell {
    /// A fresh, unclaimed cell.
    pub(crate) fn new() -> Self {
        ClaimCell::default()
    }

    /// Whether some path already claimed the completion (advisory: a
    /// `false` answer can be stale by the time the caller acts; use
    /// [`ClaimCell::claim`] to decide).
    pub(crate) fn is_claimed(&self) -> bool {
        self.claimed.load(Ordering::Acquire)
    }

    /// Attempts to claim the completion; `true` for exactly one caller
    /// across the cell's lifetime. `point` names the claiming path for
    /// the interleaving checker's schedule traces.
    ///
    /// AcqRel (audited: was SeqCst before the cell was factored out):
    /// the RMW already guarantees a single winner on its own, Release
    /// publishes the winner's prior writes, and Acquire lets a loser see
    /// everything the winner published — no claimant path compares
    /// against any *other* atomic, so the SeqCst total order bought
    /// nothing.
    pub(crate) fn claim(&self, point: &'static str) -> bool {
        check_yield!(point);
        !self.claimed.swap(true, Ordering::AcqRel)
    }
}

/// Seeded PCT interleave tests (compiled only with `--features
/// check-yield`): the checker drives the *real* three-way completion
/// race through ≥1000 schedules per seed instead of hoping the OS
/// scheduler stumbles into the bad ordering.
#[cfg(all(test, feature = "check-yield"))]
mod interleave_tests {
    use super::*;
    use dp_check::sched::explore;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn bump(c: &AtomicUsize) {
        // relaxed-ok: per-run test tally, read only after the schedule
        // has joined every thread.
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn get(c: &AtomicUsize) -> usize {
        // relaxed-ok: see `bump` — the run's threads are already joined.
        c.load(Ordering::Relaxed)
    }

    /// The race the cell exists for: worker completion, the
    /// chunk-boundary cancellation check, and the watchdog stall handler
    /// all claim at once. Every explored schedule must produce exactly
    /// one winner, and every loser must observe the cell as claimed.
    #[test]
    fn completion_stall_cancel_race_has_one_winner_per_schedule() {
        const POINTS: [&str; 3] = [
            "engine.chunk.complete",
            "engine.chunk.stall",
            "engine.chunk.cancel",
        ];
        for master in [0x51AB_0001u64, 0x51AB_0002, 0x51AB_0003] {
            let mut audits: Vec<Arc<AtomicUsize>> = Vec::new();
            let out = explore(master, 1000, 3, |_| {
                let cell = Arc::new(ClaimCell::new());
                let winners = Arc::new(AtomicUsize::new(0));
                audits.push(Arc::clone(&winners));
                POINTS
                    .iter()
                    .map(|&point| {
                        let cell = Arc::clone(&cell);
                        let winners = Arc::clone(&winners);
                        Box::new(move || {
                            if cell.claim(point) {
                                bump(&winners);
                            }
                            // Win or lose, the claim is settled from the
                            // claimant's point of view afterwards.
                            assert!(cell.is_claimed());
                        }) as Box<dyn FnOnce() + Send>
                    })
                    .collect()
            });
            assert_eq!(out.schedules, 1000);
            assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
            assert!(
                out.distinct_traces >= 4,
                "seed {master:#x}: the seed is not steering the schedule \
                 ({} distinct traces)",
                out.distinct_traces
            );
            for (run, winners) in audits.iter().enumerate() {
                assert_eq!(
                    get(winners),
                    1,
                    "seed {master:#x} run {run}: completion claimed {} times",
                    get(winners)
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_claim_wins_exactly_once() {
        let cell = ClaimCell::new();
        assert!(!cell.is_claimed());
        assert!(cell.claim("test.first"));
        assert!(cell.is_claimed());
        assert!(!cell.claim("test.second"));
        assert!(!cell.claim("test.third"));
    }

    #[test]
    fn concurrent_claimants_produce_one_winner() {
        for _ in 0..64 {
            let cell = Arc::new(ClaimCell::new());
            let winners: usize = (0..4)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    std::thread::spawn(move || usize::from(cell.claim("test.race")))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().expect("claimant thread"))
                .sum();
            assert_eq!(winners, 1);
        }
    }
}
