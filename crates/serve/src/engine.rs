//! The serving engine: admission control in front of the worker pool.
//!
//! A [`ServeEngine`] owns one long-lived [`WorkerPool`] and one
//! [`ModelRegistry`], and serves heterogeneous traffic — posit, minifloat
//! and fixed-point models side by side — from that single pool. Admission
//! accepts a request (a single sample or a batch against a registered
//! model), splits large batches into chunks of
//! [`EngineConfig::chunk_samples`], spreads the chunks round-robin across
//! the workers' LIFO slots (idle workers steal), and returns a completion
//! handle immediately. Each chunk job builds the model's per-layer EMAC
//! array once and reuses it across its samples, so the pool amortizes
//! EMAC construction exactly like the scoped-thread batch engine — and
//! because the inner loop is the same
//! [`QuantizedMlp::forward_bits_with`] / [`QuantizedMlp::infer_with`]
//! datapath, results are **bit-identical** to per-sample
//! [`QuantizedMlp::forward_bits`].

use crate::handle::{BatchHandle, JobError, JobHandle};
use crate::pool::{PoolStats, WorkerPool};
use crate::registry::{ModelKey, ModelRegistry};
use deep_positron::{NumericFormat, QuantizedMlp};
use dp_datasets::Dataset;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker thread count (clamped to ≥ 1). Defaults to
    /// [`deep_positron::batch::batch_threads`] — the machine's available
    /// parallelism unless `DEEP_POSITRON_THREADS` overrides it.
    pub workers: usize,
    /// Samples per chunk job when admission splits a batch (clamped to
    /// ≥ 1). The default of 64 keeps per-chunk EMAC construction amortized
    /// (cf. the scoped engine's 32-samples-per-thread spawn floor) while
    /// still feeding every worker on serving-scale batches.
    pub chunk_samples: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: deep_positron::batch::batch_threads(),
            chunk_samples: 64,
        }
    }
}

/// Errors surfaced at admission or completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a key with no registered model.
    UnknownModel(ModelKey),
    /// The operation is not defined for the model's format (e.g. raw
    /// EMAC activations of an `F32` baseline model, which has no EMAC
    /// datapath).
    UnsupportedFormat(String),
    /// The engine is closed (shutdown has begun) and rejected the whole
    /// submission — **no** chunk of the request was enqueued.
    EngineClosed,
    /// A worker job failed; the failure poisoned only this request.
    Job(JobError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(key) => write!(f, "no model registered under {key}"),
            ServeError::UnsupportedFormat(what) => write!(f, "{what}"),
            ServeError::EngineClosed => write!(f, "serving engine is closed (shutting down)"),
            ServeError::Job(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JobError> for ServeError {
    fn from(e: JobError) -> Self {
        ServeError::Job(e)
    }
}

/// A persistent serving engine: one worker pool, one registry, many
/// formats.
#[derive(Debug)]
pub struct ServeEngine {
    pool: WorkerPool,
    registry: Arc<ModelRegistry>,
    chunk_samples: usize,
    /// Round-robin cursor for spreading chunks across worker slots.
    cursor: AtomicUsize,
}

impl ServeEngine {
    /// Builds an engine from `config`.
    pub fn new(config: EngineConfig) -> Self {
        ServeEngine {
            pool: WorkerPool::new(config.workers.max(1)),
            registry: Arc::new(ModelRegistry::new()),
            chunk_samples: config.chunk_samples.max(1),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Builds an engine with [`EngineConfig::default`] sizing.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The model registry (register/lookup/unregister models here).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Pool observability counters.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Chunk size admission splits batches into (see
    /// [`EngineConfig::chunk_samples`]). Front ends use this to predict
    /// how many pool jobs a request will become.
    pub fn chunk_samples(&self) -> usize {
        self.chunk_samples
    }

    /// Queued + running pool jobs — the backpressure signal a bounded
    /// front end (the `dp_gateway` dispatcher) throttles on.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Blocks until [`ServeEngine::queue_depth`] drops below `below` (or
    /// the pool drains), returning the observed depth. See
    /// [`WorkerPool::wait_depth_below`].
    pub fn wait_depth_below(&self, below: usize) -> usize {
        self.pool.wait_depth_below(below)
    }

    fn model(&self, key: &ModelKey) -> Result<Arc<QuantizedMlp>, ServeError> {
        self.registry
            .get(key)
            .ok_or_else(|| ServeError::UnknownModel(key.clone()))
    }

    /// [`ServeEngine::model`] restricted to models with an EMAC datapath
    /// (raw activations are undefined for the `F32` baseline).
    fn emac_model(&self, key: &ModelKey) -> Result<Arc<QuantizedMlp>, ServeError> {
        let model = self.model(key)?;
        if matches!(model.format, NumericFormat::F32) {
            return Err(ServeError::UnsupportedFormat(format!(
                "{key}: raw EMAC activations are undefined for the f32 baseline"
            )));
        }
        Ok(model)
    }

    /// The non-blocking dispatch seam: splits `xs` into chunk jobs running
    /// `per_chunk` on the pool and returns the assembling handle
    /// immediately — it never waits for queue space or results.
    ///
    /// Chunk enqueueing is **atomic** (via [`WorkerPool::spawn_batch`]):
    /// either every chunk of the request is admitted or, if the engine is
    /// closed, none is. This is the entry point bounded front ends
    /// (`dp_gateway`) drive with their own per-chunk closures; the
    /// `submit_*` methods below are thin wrappers over it.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineClosed`] once shutdown has begun; no chunk was
    /// enqueued.
    pub fn try_dispatch<T, F>(
        &self,
        model: Arc<QuantizedMlp>,
        xs: Vec<Vec<f32>>,
        per_chunk: F,
    ) -> Result<BatchHandle<T>, ServeError>
    where
        T: Send + 'static,
        F: Fn(&QuantizedMlp, &[Vec<f32>]) -> Vec<T> + Send + Sync + 'static,
    {
        let chunks: Vec<Vec<Vec<f32>>> = split_chunks(xs, self.chunk_samples);
        let (handle, completer) = BatchHandle::pending(chunks.len());
        let per_chunk = Arc::new(per_chunk);
        let jobs: Vec<(usize, crate::pool::Job)> = chunks
            .into_iter()
            .enumerate()
            .map(|(index, chunk)| {
                let model = Arc::clone(&model);
                let per_chunk = Arc::clone(&per_chunk);
                let completer = completer.clone();
                let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
                let job: crate::pool::Job = Box::new(move || {
                    // A panic inside the model evaluation poisons only
                    // this request's handle; re-raising lets the pool
                    // count it (and keep its worker alive).
                    match catch_unwind(AssertUnwindSafe(|| per_chunk(&model, &chunk))) {
                        Ok(part) => completer.complete_chunk(index, Ok(part)),
                        Err(payload) => {
                            completer.complete_chunk(index, Err(JobError::Panicked));
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
                (slot, job)
            })
            .collect();
        self.pool
            .spawn_batch(jobs)
            .map_err(|_| ServeError::EngineClosed)?;
        Ok(handle)
    }

    /// Submits a batch for raw EMAC output activations (bit patterns),
    /// bit-identical to per-sample [`QuantizedMlp::forward_bits`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered key,
    /// [`ServeError::UnsupportedFormat`] for an `F32` model (no EMAC
    /// datapath), [`ServeError::EngineClosed`] after shutdown began.
    pub fn submit_forward(
        &self,
        key: &ModelKey,
        xs: Vec<Vec<f32>>,
    ) -> Result<BatchHandle<Vec<u32>>, ServeError> {
        let model = self.emac_model(key)?;
        self.try_dispatch(model, xs, forward_chunk)
    }

    /// Submits a batch for class predictions, identical to per-sample
    /// [`QuantizedMlp::infer`] (all formats, including the `F32`
    /// baseline).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered key,
    /// [`ServeError::EngineClosed`] after shutdown began.
    pub fn submit_classify(
        &self,
        key: &ModelKey,
        xs: Vec<Vec<f32>>,
    ) -> Result<BatchHandle<usize>, ServeError> {
        let model = self.model(key)?;
        self.try_dispatch(model, xs, classify_chunk)
    }

    /// Single-sample convenience: [`ServeEngine::submit_forward`] for one
    /// input, yielding the output activations directly.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit_forward`].
    pub fn submit_forward_one(
        &self,
        key: &ModelKey,
        x: Vec<f32>,
    ) -> Result<JobHandle<Vec<u32>>, ServeError> {
        let model = self.emac_model(key)?;
        self.submit_job(move || model.forward_bits(&x))
    }

    /// Single-sample convenience: class prediction for one input.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit_classify`].
    pub fn submit_classify_one(
        &self,
        key: &ModelKey,
        x: Vec<f32>,
    ) -> Result<JobHandle<usize>, ServeError> {
        let model = self.model(key)?;
        self.submit_job(move || model.infer(&x))
    }

    /// Runs an arbitrary closure on the pool, returning a handle to its
    /// value. A panic inside `f` poisons only the returned handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineClosed`] after shutdown began.
    pub fn submit_job<T, F>(&self, f: F) -> Result<JobHandle<T>, ServeError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (handle, completer) = JobHandle::pending();
        self.pool
            .spawn(Box::new(move || match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => completer.complete(Ok(v)),
                Err(payload) => {
                    completer.complete(Err(JobError::Panicked));
                    std::panic::resume_unwind(payload);
                }
            }))
            .map_err(|_| ServeError::EngineClosed)?;
        Ok(handle)
    }

    /// Classification accuracy of a registered model over a dataset,
    /// evaluated on the pool (the serving-path counterpart of
    /// [`QuantizedMlp::accuracy`], with which it agrees exactly).
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit_classify`].
    pub fn accuracy(&self, key: &ModelKey, data: &Dataset) -> Result<f64, ServeError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let preds = self.submit_classify(key, data.features.clone())?.wait()?;
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, &y)| **p == y)
            .count();
        Ok(correct as f64 / data.len() as f64)
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        self.pool.wait_idle();
    }

    /// Closes admission through a shared reference: every subsequent
    /// submission returns [`ServeError::EngineClosed`] (with **zero**
    /// chunks enqueued — see [`ServeEngine::try_dispatch`]), while
    /// already-admitted jobs keep draining. Workers are joined by
    /// [`ServeEngine::shutdown`] or drop.
    pub fn close(&self) {
        self.pool.begin_shutdown();
    }

    /// Graceful shutdown: stops admission, drains every queued and
    /// in-flight request (their handles complete), joins the workers.
    /// Dropping the engine does the same.
    pub fn shutdown(mut self) {
        self.pool.shutdown();
    }
}

/// The canonical per-chunk forward evaluation: build the model's
/// per-layer EMAC array once, reuse it across the chunk's samples. This is
/// the **single** definition shared by [`ServeEngine::submit_forward`] and
/// external front ends (`dp_gateway`), so every admission path runs the
/// identical datapath and stays bit-identical to per-sample
/// [`QuantizedMlp::forward_bits`].
///
/// # Panics
///
/// Panics if the model's format has no EMAC datapath. Callers must gate
/// admission the way the engine does: registration already validates EMAC
/// support ([`crate::ModelRegistry::register`]), so excluding the `F32`
/// baseline at admission makes this infallible inside a pool worker.
pub fn forward_chunk(model: &QuantizedMlp, chunk: &[Vec<f32>]) -> Vec<Vec<u32>> {
    let mut emacs = model
        .make_layer_emacs()
        .expect("admission validated the format");
    chunk
        .iter()
        .map(|x| model.forward_bits_with(&mut emacs, x))
        .collect()
}

/// The canonical per-chunk classification: EMAC-reuse datapath where one
/// exists, plain float math for the `F32` baseline. Shared by
/// [`ServeEngine::submit_classify`] and external front ends (`dp_gateway`)
/// — see [`forward_chunk`].
pub fn classify_chunk(model: &QuantizedMlp, chunk: &[Vec<f32>]) -> Vec<usize> {
    match model.make_layer_emacs() {
        Some(mut emacs) => chunk
            .iter()
            .map(|x| model.infer_with(&mut emacs, x))
            .collect(),
        None => chunk.iter().map(|x| model.infer(x)).collect(),
    }
}

/// Splits owned samples into chunks of at most `chunk_samples`, preserving
/// order.
fn split_chunks(xs: Vec<Vec<f32>>, chunk_samples: usize) -> Vec<Vec<Vec<f32>>> {
    let chunk_samples = chunk_samples.max(1);
    let mut chunks = Vec::with_capacity(xs.len().div_ceil(chunk_samples));
    let mut rest = xs;
    while rest.len() > chunk_samples {
        let tail = rest.split_off(chunk_samples);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    if !rest.is_empty() {
        chunks.push(rest);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_chunks_preserves_order_and_sizes() {
        let xs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let chunks = split_chunks(xs.clone(), 4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        let flat: Vec<Vec<f32>> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, xs);
        assert!(split_chunks(Vec::new(), 4).is_empty());
        assert_eq!(split_chunks(xs.clone(), 1).len(), 10);
        assert_eq!(split_chunks(xs, 100).len(), 1);
    }
}
