//! The serving engine: admission control in front of the worker pool.
//!
//! A [`ServeEngine`] owns one long-lived [`WorkerPool`] and one
//! [`ModelRegistry`], and serves heterogeneous traffic — posit, minifloat
//! and fixed-point models side by side — from that single pool. Admission
//! accepts a request (a single sample or a batch against a registered
//! model), splits large batches into chunks of
//! [`EngineConfig::chunk_samples`], spreads the chunks round-robin across
//! the workers' LIFO slots (idle workers steal), and returns a completion
//! handle immediately. Each chunk job builds the model's per-layer EMAC
//! array once and sweeps its whole chunk through the weight-stationary
//! tile kernels ([`QuantizedMlp::forward_batch_bits_with`]: one
//! `dp_emac::Emac::dot_tile` call per neuron per layer, operand gather
//! and product-table traffic amortized across the chunk's samples) — and
//! because the tile contract is per-column bit-identity, results are
//! **bit-identical** to per-sample [`QuantizedMlp::forward_bits`].

use crate::claim::ClaimCell;
use crate::faults;
use crate::handle::{BatchHandle, JobError, JobHandle};
use crate::pool::{Job, PanicBudget, PoolStats, WatchdogConfig, WorkerPool};
use crate::registry::{ModelKey, ModelRegistry};
use deep_positron::{NumericFormat, QuantizedMlp};
use dp_datasets::Dataset;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker thread count (clamped to ≥ 1). Defaults to
    /// [`deep_positron::batch::batch_threads`] — the machine's available
    /// parallelism unless `DEEP_POSITRON_THREADS` overrides it.
    pub workers: usize,
    /// Samples per chunk job when admission splits a batch (clamped to
    /// ≥ 1). The default of 64 keeps per-chunk EMAC construction amortized
    /// (cf. the scoped engine's 32-samples-per-thread spawn floor) while
    /// still feeding every worker on serving-scale batches.
    pub chunk_samples: usize,
    /// Optional stall watchdog: a wedged worker is detected, its job's
    /// handle failed with [`JobError::Stalled`], and the worker respawned
    /// (see [`WatchdogConfig`]). `None` (the default) keeps the PR-4
    /// behaviour: a wedged worker wedges forever.
    pub watchdog: Option<WatchdogConfig>,
    /// Optional panic budget: too many worker panics inside a trailing
    /// window flip the engine to degraded mode, where every new
    /// submission is rejected with [`ServeError::Degraded`] (see
    /// [`PanicBudget`]). `None` (the default) never degrades.
    pub panic_budget: Option<PanicBudget>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: deep_positron::batch::batch_threads(),
            chunk_samples: 64,
            watchdog: None,
            panic_budget: None,
        }
    }
}

/// Errors surfaced at admission or completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a key with no registered model.
    UnknownModel(ModelKey),
    /// The operation is not defined for the model's format (e.g. raw
    /// EMAC activations of an `F32` baseline model, which has no EMAC
    /// datapath).
    UnsupportedFormat(String),
    /// The engine is closed (shutdown has begun) and rejected the whole
    /// submission — **no** chunk of the request was enqueued.
    EngineClosed,
    /// The engine is in degraded mode (the worker panic budget tripped —
    /// see [`PanicBudget`]): metrics and already-admitted work still
    /// drain, but every new submission is rejected until an operator
    /// calls [`ServeEngine::reset_degraded`].
    Degraded,
    /// A worker job failed; the failure poisoned only this request.
    Job(JobError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(key) => write!(f, "no model registered under {key}"),
            ServeError::UnsupportedFormat(what) => write!(f, "{what}"),
            ServeError::EngineClosed => write!(f, "serving engine is closed (shutting down)"),
            ServeError::Degraded => write!(
                f,
                "serving engine is degraded (worker panic budget exceeded); \
                 new submissions are rejected"
            ),
            ServeError::Job(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JobError> for ServeError {
    fn from(e: JobError) -> Self {
        ServeError::Job(e)
    }
}

/// A shared cancellation flag for one request.
///
/// Cloning yields another handle to the same flag. The serving datapath
/// checks it at **chunk boundaries** (before a chunk job starts its
/// evaluation) and the cancel-aware chunk evaluators
/// ([`forward_chunk_cancellable`], [`classify_chunk_cancellable`]) check
/// it between samples, so an abandoned batch stops burning workers within
/// one sample's latency instead of finishing the whole request.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; already-running samples finish,
    /// everything after the next check point is skipped and the affected
    /// handles resolve with [`JobError::Cancelled`].
    pub fn cancel(&self) {
        // seqcst-ok: standalone cancellation flag with no payload; the
        // cold full fence keeps a cancel immediately visible to every
        // chunk-boundary check.
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        // seqcst-ok: pairs with the store in `cancel`; read at chunk and
        // sample boundaries, well off the per-MAC hot path.
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// Per-dispatch options for [`ServeEngine::try_dispatch_with`].
#[derive(Debug, Clone, Default)]
pub struct DispatchOptions {
    /// Logical model name, used to scope fault-injection hits (see the
    /// `dp_fault` crate) and future per-model diagnostics.
    pub scope: Option<String>,
    /// Cooperative cancellation: when the token fires, chunks that have
    /// not started are completed with [`JobError::Cancelled`] instead of
    /// being evaluated.
    pub cancel: Option<CancelToken>,
}

/// A persistent serving engine: one worker pool, one registry, many
/// formats.
#[derive(Debug)]
pub struct ServeEngine {
    pool: WorkerPool,
    registry: Arc<ModelRegistry>,
    chunk_samples: usize,
    /// Round-robin cursor for spreading chunks across worker slots.
    cursor: AtomicUsize,
}

impl ServeEngine {
    /// Builds an engine from `config`.
    pub fn new(config: EngineConfig) -> Self {
        ServeEngine {
            pool: WorkerPool::with_supervision(
                config.workers.max(1),
                config.watchdog,
                config.panic_budget,
            ),
            registry: Arc::new(ModelRegistry::new()),
            chunk_samples: config.chunk_samples.max(1),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Builds an engine with [`EngineConfig::default`] sizing.
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// The model registry (register/lookup/unregister models here).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Pool observability counters.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Whether the worker panic budget has tripped (see
    /// [`EngineConfig::panic_budget`]): already-admitted work drains and
    /// metrics stay readable, but new submissions are rejected with
    /// [`ServeError::Degraded`].
    pub fn is_degraded(&self) -> bool {
        self.pool.is_degraded()
    }

    /// Operator action: leaves degraded mode and forgets the panic
    /// history that tripped it.
    pub fn reset_degraded(&self) {
        self.pool.reset_degraded();
    }

    /// Chunk size admission splits batches into (see
    /// [`EngineConfig::chunk_samples`]). Front ends use this to predict
    /// how many pool jobs a request will become.
    pub fn chunk_samples(&self) -> usize {
        self.chunk_samples
    }

    /// Per-worker busy time in milliseconds (`0` = idle); see
    /// [`WorkerPool::worker_busy_ms`](crate::pool::WorkerPool::worker_busy_ms).
    pub fn worker_busy_ms(&self) -> Vec<u64> {
        self.pool.worker_busy_ms()
    }

    /// Queued + running pool jobs — the backpressure signal a bounded
    /// front end (the `dp_gateway` dispatcher) throttles on.
    pub fn queue_depth(&self) -> usize {
        self.pool.queue_depth()
    }

    /// Blocks until [`ServeEngine::queue_depth`] drops below `below` (or
    /// the pool drains), returning the observed depth. See
    /// [`WorkerPool::wait_depth_below`].
    pub fn wait_depth_below(&self, below: usize) -> usize {
        self.pool.wait_depth_below(below)
    }

    /// Bounded [`ServeEngine::wait_depth_below`]: `Some(depth)` once the
    /// condition holds, `None` if `timeout` elapses first. Front ends use
    /// this to keep their drain loops responsive to their own deadlines
    /// even when a worker is wedged.
    pub fn wait_depth_below_for(
        &self,
        below: usize,
        timeout: std::time::Duration,
    ) -> Option<usize> {
        self.pool.wait_depth_below_for(below, timeout)
    }

    fn model(&self, key: &ModelKey) -> Result<Arc<QuantizedMlp>, ServeError> {
        self.registry
            .get(key)
            .ok_or_else(|| ServeError::UnknownModel(key.clone()))
    }

    /// [`ServeEngine::model`] restricted to models with an EMAC datapath
    /// (raw activations are undefined for the `F32` baseline).
    fn emac_model(&self, key: &ModelKey) -> Result<Arc<QuantizedMlp>, ServeError> {
        let model = self.model(key)?;
        if matches!(model.format, NumericFormat::F32) {
            return Err(ServeError::UnsupportedFormat(format!(
                "{key}: raw EMAC activations are undefined for the f32 baseline"
            )));
        }
        Ok(model)
    }

    /// The non-blocking dispatch seam: splits `xs` into chunk jobs running
    /// `per_chunk` on the pool and returns the assembling handle
    /// immediately — it never waits for queue space or results.
    ///
    /// Chunk enqueueing is **atomic** (via [`WorkerPool::spawn_batch`]):
    /// either every chunk of the request is admitted or, if the engine is
    /// closed, none is. This is the entry point bounded front ends
    /// (`dp_gateway`) drive with their own per-chunk closures; the
    /// `submit_*` methods below are thin wrappers over it.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineClosed`] once shutdown has begun, or
    /// [`ServeError::Degraded`] while the panic budget is tripped; no
    /// chunk was enqueued either way.
    pub fn try_dispatch<T, F>(
        &self,
        model: Arc<QuantizedMlp>,
        xs: Vec<Vec<f32>>,
        per_chunk: F,
    ) -> Result<BatchHandle<T>, ServeError>
    where
        T: Send + 'static,
        F: Fn(&QuantizedMlp, &[Vec<f32>]) -> Vec<T> + Send + Sync + 'static,
    {
        self.try_dispatch_with(model, xs, DispatchOptions::default(), move |m, chunk| {
            Ok(per_chunk(m, chunk))
        })
    }

    /// [`ServeEngine::try_dispatch`] with per-request [`DispatchOptions`]
    /// (cancellation, fault-injection scope) and a fallible per-chunk
    /// closure: a chunk may resolve to a typed [`JobError`] — e.g.
    /// [`JobError::Cancelled`] from a cancel-aware evaluator — without
    /// panicking its worker.
    ///
    /// Lifecycle guarantees per chunk: exactly **one** of normal
    /// completion, panic poisoning, or the watchdog's stall resolution
    /// completes it (first claimant wins), so the batch handle can never
    /// see a double completion — not even when an abandoned worker's
    /// chunk eventually finishes after the watchdog already failed it.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::try_dispatch`].
    pub fn try_dispatch_with<T, F>(
        &self,
        model: Arc<QuantizedMlp>,
        xs: Vec<Vec<f32>>,
        opts: DispatchOptions,
        per_chunk: F,
    ) -> Result<BatchHandle<T>, ServeError>
    where
        T: Send + 'static,
        F: Fn(&QuantizedMlp, &[Vec<f32>]) -> Result<Vec<T>, JobError> + Send + Sync + 'static,
    {
        if self.pool.is_degraded() {
            return Err(ServeError::Degraded);
        }
        let scope: Option<Arc<str>> = opts.scope.map(Arc::from);
        let cancel = opts.cancel;
        let chunks: Vec<Vec<Vec<f32>>> = split_chunks(xs, self.chunk_samples);
        let (handle, completer) = BatchHandle::pending(chunks.len());
        let per_chunk = Arc::new(per_chunk);
        let jobs: Vec<(usize, Job)> = chunks
            .into_iter()
            .enumerate()
            .map(|(index, chunk)| {
                let model = Arc::clone(&model);
                let per_chunk = Arc::clone(&per_chunk);
                let completer = completer.clone();
                let stall_completer = completer.clone();
                let scope = scope.clone();
                let cancel = cancel.clone();
                // First claimant — normal completion, panic poisoning, or
                // stall resolution — completes the chunk; the rest no-op.
                let claimed = Arc::new(ClaimCell::new());
                let stall_claimed = Arc::clone(&claimed);
                // relaxed-ok: round-robin placement hint only; a torn or
                // reordered read just shifts which slot a chunk lands on.
                let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
                let job = Job::with_stall_handler(
                    move || {
                        let scope = scope.as_deref();
                        // A planned sleep here wedges the worker exactly
                        // like a runaway evaluation would.
                        faults::fire(faults::points::STALL_WORKER, scope);
                        if claimed.is_claimed() {
                            // The watchdog already failed this chunk while
                            // the worker was wedged; don't evaluate it.
                            return;
                        }
                        // Chunk-boundary cancellation check; the cancel-
                        // aware evaluators additionally check per sample.
                        if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                            if claimed.claim("engine.chunk.cancel") {
                                completer.complete_chunk(index, Err(JobError::Cancelled));
                            }
                            return;
                        }
                        // A panic inside the model evaluation poisons only
                        // this request's handle; re-raising lets the pool
                        // count it (and keep its worker alive). The
                        // `panic_in_chunk` failure point fires *inside*
                        // the evaluation closure (see `submit_forward` /
                        // the gateway's chunk closure), so an injected
                        // panic unwinds through the caller's per-chunk
                        // accounting exactly like a real one.
                        match catch_unwind(AssertUnwindSafe(|| per_chunk(&model, &chunk))) {
                            Ok(result) => {
                                let dropped = faults::fire(faults::points::DROP_COMPLETION, scope);
                                if !dropped && claimed.claim("engine.chunk.complete") {
                                    completer.complete_chunk(index, result);
                                }
                            }
                            Err(payload) => {
                                if claimed.claim("engine.chunk.panic") {
                                    completer.complete_chunk(index, Err(JobError::Panicked));
                                }
                                std::panic::resume_unwind(payload);
                            }
                        }
                    },
                    move || {
                        if stall_claimed.claim("engine.chunk.stall") {
                            stall_completer.complete_chunk(index, Err(JobError::Stalled));
                        }
                    },
                );
                (slot, job)
            })
            .collect();
        self.pool
            .spawn_batch(jobs)
            .map_err(|_| ServeError::EngineClosed)?;
        Ok(handle)
    }

    /// Submits a batch for raw EMAC output activations (bit patterns),
    /// bit-identical to per-sample [`QuantizedMlp::forward_bits`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered key,
    /// [`ServeError::UnsupportedFormat`] for an `F32` model (no EMAC
    /// datapath), [`ServeError::EngineClosed`] after shutdown began.
    pub fn submit_forward(
        &self,
        key: &ModelKey,
        xs: Vec<Vec<f32>>,
    ) -> Result<BatchHandle<Vec<u32>>, ServeError> {
        let model = self.emac_model(key)?;
        let scope = key.name().to_string();
        let opts = DispatchOptions {
            scope: Some(scope.clone()),
            cancel: None,
        };
        self.try_dispatch_with(model, xs, opts, move |m, chunk| {
            faults::fire(faults::points::PANIC_IN_CHUNK, Some(&scope));
            Ok(forward_chunk(m, chunk))
        })
    }

    /// Submits a batch for class predictions, identical to per-sample
    /// [`QuantizedMlp::infer`] (all formats, including the `F32`
    /// baseline).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] for an unregistered key,
    /// [`ServeError::EngineClosed`] after shutdown began.
    pub fn submit_classify(
        &self,
        key: &ModelKey,
        xs: Vec<Vec<f32>>,
    ) -> Result<BatchHandle<usize>, ServeError> {
        let model = self.model(key)?;
        let scope = key.name().to_string();
        let opts = DispatchOptions {
            scope: Some(scope.clone()),
            cancel: None,
        };
        self.try_dispatch_with(model, xs, opts, move |m, chunk| {
            faults::fire(faults::points::PANIC_IN_CHUNK, Some(&scope));
            Ok(classify_chunk(m, chunk))
        })
    }

    /// Single-sample convenience: [`ServeEngine::submit_forward`] for one
    /// input, yielding the output activations directly.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit_forward`].
    pub fn submit_forward_one(
        &self,
        key: &ModelKey,
        x: Vec<f32>,
    ) -> Result<JobHandle<Vec<u32>>, ServeError> {
        let model = self.emac_model(key)?;
        self.submit_job(move || model.forward_bits(&x))
    }

    /// Single-sample convenience: class prediction for one input.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit_classify`].
    pub fn submit_classify_one(
        &self,
        key: &ModelKey,
        x: Vec<f32>,
    ) -> Result<JobHandle<usize>, ServeError> {
        let model = self.model(key)?;
        self.submit_job(move || model.infer(&x))
    }

    /// Runs an arbitrary closure on the pool, returning a handle to its
    /// value. A panic inside `f` poisons only the returned handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::EngineClosed`] after shutdown began;
    /// [`ServeError::Degraded`] while the panic budget is tripped.
    pub fn submit_job<T, F>(&self, f: F) -> Result<JobHandle<T>, ServeError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if self.pool.is_degraded() {
            return Err(ServeError::Degraded);
        }
        let (handle, completer) = JobHandle::pending();
        let stall_completer = completer.clone();
        let claimed = Arc::new(ClaimCell::new());
        let stall_claimed = Arc::clone(&claimed);
        self.pool
            .spawn(Job::with_stall_handler(
                move || match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        if claimed.claim("engine.job.complete") {
                            completer.complete(Ok(v));
                        }
                    }
                    Err(payload) => {
                        if claimed.claim("engine.job.panic") {
                            completer.complete(Err(JobError::Panicked));
                        }
                        std::panic::resume_unwind(payload);
                    }
                },
                move || {
                    if stall_claimed.claim("engine.job.stall") {
                        stall_completer.complete(Err(JobError::Stalled));
                    }
                },
            ))
            .map_err(|_| ServeError::EngineClosed)?;
        Ok(handle)
    }

    /// Classification accuracy of a registered model over a dataset,
    /// evaluated on the pool (the serving-path counterpart of
    /// [`QuantizedMlp::accuracy`], with which it agrees exactly).
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit_classify`].
    pub fn accuracy(&self, key: &ModelKey, data: &Dataset) -> Result<f64, ServeError> {
        if data.is_empty() {
            return Ok(0.0);
        }
        let preds = self.submit_classify(key, data.features.clone())?.wait()?;
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, &y)| **p == y)
            .count();
        Ok(correct as f64 / data.len() as f64)
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        self.pool.wait_idle();
    }

    /// Closes admission through a shared reference: every subsequent
    /// submission returns [`ServeError::EngineClosed`] (with **zero**
    /// chunks enqueued — see [`ServeEngine::try_dispatch`]), while
    /// already-admitted jobs keep draining. Workers are joined by
    /// [`ServeEngine::shutdown`] or drop.
    pub fn close(&self) {
        self.pool.begin_shutdown();
    }

    /// Graceful shutdown: stops admission, drains every queued and
    /// in-flight request (their handles complete), joins the workers.
    /// Dropping the engine does the same.
    pub fn shutdown(mut self) {
        self.pool.shutdown();
    }
}

/// The canonical per-chunk forward evaluation: build the model's
/// per-layer EMAC array once, then run the whole chunk as one
/// weight-stationary tile sweep per layer
/// ([`QuantizedMlp::forward_batch_bits_with`] — each neuron's weight row
/// goes through `dp_emac::Emac::dot_tile` exactly once, with the chunk's
/// samples as the tile's activation columns). This is the **single**
/// definition shared by [`ServeEngine::submit_forward`] and external front
/// ends (`dp_gateway`), so every admission path runs the identical
/// datapath and stays bit-identical to per-sample
/// [`QuantizedMlp::forward_bits`] (the tile contract).
///
/// # Panics
///
/// Panics if the model's format has no EMAC datapath. Callers must gate
/// admission the way the engine does: registration already validates EMAC
/// support ([`crate::ModelRegistry::register`]), so excluding the `F32`
/// baseline at admission makes this infallible inside a pool worker.
pub fn forward_chunk(model: &QuantizedMlp, chunk: &[Vec<f32>]) -> Vec<Vec<u32>> {
    let mut emacs = model
        .make_layer_emacs()
        .expect("admission validated the format"); // panic-ok: registry admission excludes formats without an EMAC datapath
    model.forward_batch_bits_with(&mut emacs, chunk)
}

/// The canonical per-chunk classification: the tile-sweep datapath where
/// an EMAC exists, plain float math for the `F32` baseline. Shared by
/// [`ServeEngine::submit_classify`] and external front ends (`dp_gateway`)
/// — see [`forward_chunk`].
pub fn classify_chunk(model: &QuantizedMlp, chunk: &[Vec<f32>]) -> Vec<usize> {
    match model.make_layer_emacs() {
        Some(mut emacs) => model.infer_batch_with(&mut emacs, chunk),
        None => chunk.iter().map(|x| model.infer(x)).collect(),
    }
}

/// Cancel-aware [`forward_chunk`]: checks `cancel` **between samples** and
/// returns [`JobError::Cancelled`] as soon as it fires, so an abandoned
/// batch stops burning its worker within one sample's latency. Already-
/// computed samples are discarded — a cancelled request has no partial
/// result. Deliberately stays on the per-sample datapath (no tile sweep):
/// a layer-wide tile would push the earliest cancellation point out to a
/// whole chunk-layer's latency.
///
/// # Errors
///
/// [`JobError::Cancelled`] once `cancel` has fired.
///
/// # Panics
///
/// As [`forward_chunk`]: the model's format must have an EMAC datapath.
pub fn forward_chunk_cancellable(
    model: &QuantizedMlp,
    chunk: &[Vec<f32>],
    cancel: &CancelToken,
) -> Result<Vec<Vec<u32>>, JobError> {
    let mut emacs = model
        .make_layer_emacs()
        .expect("admission validated the format"); // panic-ok: registry admission excludes formats without an EMAC datapath
    let mut out = Vec::with_capacity(chunk.len());
    for x in chunk {
        if cancel.is_cancelled() {
            return Err(JobError::Cancelled);
        }
        out.push(model.forward_bits_with(&mut emacs, x));
    }
    Ok(out)
}

/// Cancel-aware [`classify_chunk`]: checks `cancel` between samples (see
/// [`forward_chunk_cancellable`]).
///
/// # Errors
///
/// [`JobError::Cancelled`] once `cancel` has fired.
pub fn classify_chunk_cancellable(
    model: &QuantizedMlp,
    chunk: &[Vec<f32>],
    cancel: &CancelToken,
) -> Result<Vec<usize>, JobError> {
    let mut emacs = model.make_layer_emacs();
    let mut out = Vec::with_capacity(chunk.len());
    for x in chunk {
        if cancel.is_cancelled() {
            return Err(JobError::Cancelled);
        }
        out.push(match &mut emacs {
            Some(emacs) => model.infer_with(emacs, x),
            None => model.infer(x),
        });
    }
    Ok(out)
}

/// Splits owned samples into chunks of at most `chunk_samples`, preserving
/// order.
fn split_chunks(xs: Vec<Vec<f32>>, chunk_samples: usize) -> Vec<Vec<Vec<f32>>> {
    let chunk_samples = chunk_samples.max(1);
    let mut chunks = Vec::with_capacity(xs.len().div_ceil(chunk_samples));
    let mut rest = xs;
    while rest.len() > chunk_samples {
        let tail = rest.split_off(chunk_samples);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    if !rest.is_empty() {
        chunks.push(rest);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_chunks_preserves_order_and_sizes() {
        let xs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let chunks = split_chunks(xs.clone(), 4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        let flat: Vec<Vec<f32>> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, xs);
        assert!(split_chunks(Vec::new(), 4).is_empty());
        assert_eq!(split_chunks(xs.clone(), 1).len(), 10);
        assert_eq!(split_chunks(xs, 100).len(), 1);
    }
}
