//! Compile-time seam for `dp_fault` failure points.
//!
//! With the `fault-inject` feature the serving datapath's named failure
//! points delegate to `dp_fault::apply`; without it they compile to an
//! inlined `false` and the release binary carries no hook code at all.
//! Even with the feature on, an uninstalled plan costs one relaxed atomic
//! load per hit.

/// Failure-point names compiled into this crate (re-exported so callers
/// and tests use one set of constants whether or not `dp_fault` is
/// linked).
pub mod points {
    /// Chunk evaluation panics inside a pool worker.
    pub const PANIC_IN_CHUNK: &str = "panic_in_chunk";
    /// A pool worker sleeps mid-job, looking wedged to the watchdog.
    pub const STALL_WORKER: &str = "stall_worker";
    /// A finished chunk's completion is dropped instead of delivered.
    pub const DROP_COMPLETION: &str = "drop_completion";
}

/// Evaluates a hit of `point` for model `scope` against the installed
/// fault plan: may panic or sleep (per the plan), and returns `true` when
/// the caller should drop the completion it was about to deliver.
#[cfg(feature = "fault-inject")]
#[inline]
pub fn fire(point: &str, scope: Option<&str>) -> bool {
    dp_fault::apply(point, scope)
}

/// Inert stub: without the `fault-inject` feature every failure point is
/// a no-op that the optimizer removes entirely.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub fn fire(_point: &str, _scope: Option<&str>) -> bool {
    false
}
