//! The multi-format model registry: named [`QuantizedMlp`] instances one
//! engine serves side by side.
//!
//! Models are keyed by **name + format descriptor** (the format's display
//! form, e.g. `posit<8,0>`), so the same logical network quantized into
//! several formats — the paper's posit/minifloat/fixed comparison — can be
//! registered under one name and addressed per format. Lookups hand out
//! `Arc` clones, so requests hold the model alive even if it is
//! unregistered mid-flight.

use deep_positron::QuantizedMlp;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Error returned when a model cannot be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The model's format has no EMAC datapath for at least one layer
    /// (e.g. a posit with `es > n − 3`): serving it would panic a pool
    /// worker mid-request, so registration rejects it up front.
    UnsupportedModel {
        /// The key the model would have been registered under.
        key: ModelKey,
        /// Why the format has no EMAC datapath.
        reason: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnsupportedModel { key, reason } => {
                write!(f, "cannot register {key}: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Identifies one registered model: logical name plus format descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelKey {
    name: String,
    format: String,
}

impl ModelKey {
    /// Builds a key from a name and a format descriptor (the
    /// `NumericFormat` display form, e.g. `posit<8,0>`, `float<4,3>`,
    /// `fixed<8,6>`, `float32`).
    pub fn new(name: impl Into<String>, format: impl Into<String>) -> Self {
        ModelKey {
            name: name.into(),
            format: format.into(),
        }
    }

    /// The logical model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The format descriptor.
    pub fn format(&self) -> &str {
        &self.format
    }
}

impl std::fmt::Display for ModelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.name, self.format)
    }
}

/// Thread-safe registry of named quantized models across formats.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<ModelKey, Arc<QuantizedMlp>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the model table.
    fn rd(&self) -> std::sync::RwLockReadGuard<'_, HashMap<ModelKey, Arc<QuantizedMlp>>> {
        // panic-ok: the registry lock is only poisoned if a reader/writer
        // panicked while holding it; every critical section here is a
        // HashMap operation that cannot panic, so poisoning means memory
        // corruption already happened and continuing would serve from a
        // torn table.
        self.models.read().expect("registry lock")
    }

    /// Write access to the model table.
    fn wr(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<ModelKey, Arc<QuantizedMlp>>> {
        // panic-ok: see `ModelRegistry::rd`.
        self.models.write().expect("registry lock")
    }

    /// Registers `model` under `name`, deriving the format descriptor from
    /// the model itself. Returns the key; an existing entry under the same
    /// key is replaced (in-flight requests keep their `Arc`).
    ///
    /// EMAC support is validated here, at admission: a model whose format
    /// has no EMAC datapath (e.g. posit `es > n − 3`) used to panic inside
    /// a pool worker on its first request, poisoning that job's handle;
    /// now it never enters the registry, so every registered low-precision
    /// model is guaranteed servable.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnsupportedModel`] when some layer of the model
    /// cannot build its EMAC (`F32` baseline models are fine: they serve
    /// classification through plain float math).
    pub fn register(
        &self,
        name: impl Into<String>,
        model: QuantizedMlp,
    ) -> Result<ModelKey, RegistryError> {
        let key = ModelKey::new(name, model.format.to_string());
        if let Err(e) = model.try_make_layer_emacs() {
            return Err(RegistryError::UnsupportedModel {
                key,
                reason: e.reason().to_string(),
            });
        }
        self.wr().insert(key.clone(), Arc::new(model));
        Ok(key)
    }

    /// Looks up a model by key.
    pub fn get(&self, key: &ModelKey) -> Option<Arc<QuantizedMlp>> {
        self.rd().get(key).cloned()
    }

    /// All keys registered under a logical name (one per format),
    /// sorted by format descriptor for determinism.
    pub fn formats_of(&self, name: &str) -> Vec<ModelKey> {
        let mut keys: Vec<ModelKey> = self
            .rd()
            .keys()
            .filter(|k| k.name == name)
            .cloned()
            .collect();
        keys.sort_by(|a, b| a.format.cmp(&b.format));
        keys
    }

    /// Every registered key, sorted for determinism.
    pub fn keys(&self) -> Vec<ModelKey> {
        let mut keys: Vec<ModelKey> = self.rd().keys().cloned().collect();
        keys.sort_by(|a, b| (&a.name, &a.format).cmp(&(&b.name, &b.format)));
        keys
    }

    /// Removes a model, returning it if present.
    pub fn remove(&self, key: &ModelKey) -> Option<Arc<QuantizedMlp>> {
        self.wr().remove(key)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.rd().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deep_positron::train::{train, TrainConfig};
    use deep_positron::{Mlp, NumericFormat};
    use dp_datasets::iris;
    use dp_posit::PositFormat;

    fn tiny_model(format: NumericFormat) -> QuantizedMlp {
        let split = iris::load(7).split(50, 7).normalized();
        let mut mlp = Mlp::new(&[4, 6, 3], 7);
        train(
            &mut mlp,
            &split.train,
            TrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 0.02,
                seed: 7,
            },
        );
        QuantizedMlp::quantize(&mlp, format)
    }

    #[test]
    fn register_and_lookup_by_name_and_format() {
        let reg = ModelRegistry::new();
        assert!(reg.is_empty());
        let p8 = NumericFormat::Posit(PositFormat::new(8, 0).unwrap());
        let p6 = NumericFormat::Posit(PositFormat::new(6, 0).unwrap());
        let k8 = reg.register("iris", tiny_model(p8)).unwrap();
        let k6 = reg.register("iris", tiny_model(p6)).unwrap();
        assert_eq!(k8, ModelKey::new("iris", "posit<8,0>"));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(&k8).unwrap().format, p8);
        assert_eq!(reg.get(&k6).unwrap().format, p6);
        assert_eq!(reg.formats_of("iris"), vec![k6.clone(), k8.clone()]);
        assert!(reg.formats_of("absent").is_empty());
        assert!(reg.get(&ModelKey::new("iris", "fixed<8,6>")).is_none());
    }

    #[test]
    fn remove_keeps_in_flight_arcs_alive() {
        let reg = ModelRegistry::new();
        let key = reg
            .register(
                "m",
                tiny_model(NumericFormat::Posit(PositFormat::new(8, 0).unwrap())),
            )
            .unwrap();
        let held = reg.get(&key).unwrap();
        assert!(reg.remove(&key).is_some());
        assert!(reg.get(&key).is_none());
        // The request-side Arc still works after unregistration.
        assert_eq!(held.dims(), vec![4, 6, 3]);
    }

    #[test]
    fn register_rejects_datapathless_formats_with_typed_error() {
        // posit<8,6> has es > n − 3: no EMAC datapath. Before validation
        // moved to registration, serving such a model panicked inside a
        // pool worker; now the registry rejects it cleanly.
        let reg = ModelRegistry::new();
        let bad = NumericFormat::Posit(PositFormat::new(8, 6).unwrap());
        let err = reg.register("iris", tiny_model(bad)).unwrap_err();
        let RegistryError::UnsupportedModel { key, reason } = &err;
        assert_eq!(key, &ModelKey::new("iris", "posit<8,6>"));
        assert!(reason.contains("es <= n-3"), "{err}");
        assert!(err.to_string().contains("iris@posit<8,6>"));
        // Nothing was registered, and the registry still works.
        assert!(reg.is_empty());
        let ok = NumericFormat::Posit(PositFormat::new(8, 0).unwrap());
        assert!(reg.register("iris", tiny_model(ok)).is_ok());
        // The F32 baseline stays registrable (classify-only serving).
        assert!(reg.register("iris", tiny_model(NumericFormat::F32)).is_ok());
        // 16-bit formats are servable via the split-table datapath.
        let p16 = NumericFormat::Posit(PositFormat::new(16, 1).unwrap());
        assert!(reg.register("iris", tiny_model(p16)).is_ok());
    }
}
