//! Compile-time seam for the `dp_check` interleaving checker (feature
//! `check-yield`), mirroring the [`crate::faults`] pattern: with the
//! feature on, the crate's mutexes and condvars are the instrumented
//! `dp_check::sync` pair and `check_yield!` names a scheduling decision
//! point; without it they alias `std::sync` and the macro compiles to
//! nothing, so release builds carry no hook code.
//!
//! Labels passed to [`mutex`] name a lock *role* (`"pool.state"`), not
//! an instance — the checker's lock-order graph and deadlock findings
//! are per-role.

#[cfg(feature = "check-yield")]
pub(crate) use dp_check::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(feature = "check-yield"))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

/// A mutex labelled for the checker; the label is compiled out without
/// the `check-yield` feature.
#[cfg(feature = "check-yield")]
pub(crate) fn mutex<T>(label: &'static str, value: T) -> Mutex<T> {
    Mutex::new_labeled(label, value)
}

/// A mutex labelled for the checker; the label is compiled out without
/// the `check-yield` feature.
#[cfg(not(feature = "check-yield"))]
pub(crate) fn mutex<T>(_label: &'static str, value: T) -> Mutex<T> {
    Mutex::new(value)
}

/// A condition variable (instrumented only under `check-yield`).
pub(crate) fn condvar() -> Condvar {
    Condvar::new()
}

/// Names a linearization point for the interleaving checker. Expands to
/// nothing without the `check-yield` feature.
#[cfg(feature = "check-yield")]
macro_rules! check_yield {
    ($point:expr) => {
        dp_check::check_yield!($point)
    };
}

/// Names a linearization point for the interleaving checker. Expands to
/// nothing without the `check-yield` feature.
#[cfg(not(feature = "check-yield"))]
macro_rules! check_yield {
    ($point:expr) => {{
        let _ = $point;
    }};
}

pub(crate) use check_yield;
