//! The flight recorder: per-request staging contexts feeding a
//! preallocated, lock-free seqlock ring of finished request timelines.
//!
//! A [`TraceCtx`] is handed out at admission and rides the request
//! through the pipeline; each stage stamps one atomic field (a single
//! store — no allocation, no locks). At the **terminal** event the
//! winning resolver decides whether the timeline is kept: sampled
//! requests (deterministic request-id hash, seeded) and **slow
//! exemplars** (total latency over [`TraceConfig::slow_threshold`],
//! captured regardless of sampling) are published into the ring.
//!
//! Publication claims a slot with one `fetch_add` (wait-free) and
//! guards the copy with a per-slot seqlock generation: writers flip the
//! generation odd, store the fields, flip it even; a writer finding the
//! slot mid-write **drops** its record (bounded, never waits) and the
//! contention is counted. Readers snapshot generation → fields →
//! generation and skip torn or in-progress slots, so `/tracez` can
//! render concurrently with the hot path without ever blocking it.

use crate::check::check_yield;
use crate::clock::Clock;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bytes of the model key kept per timeline (fixed so slots stay
/// allocation-free; longer names are truncated for display).
const MODEL_BYTES: usize = 24;

/// Queue-depth reservoir size (ring of recent observations).
const DEPTH_SLOTS: usize = 64;

/// SplitMix64: the deterministic sampler hash. Public so tests and
/// other crates can reproduce sampling decisions bit-for-bit.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Recorder configuration. All knobs are plain data so builders can
/// embed it; [`TraceConfig::off`] disables tracing entirely (callers
/// then skip creating contexts, leaving zero per-request overhead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether tracing is on at all. When `false`, gateway builders skip
    /// recorder construction entirely.
    pub enabled: bool,
    /// Ring capacity: how many finished timelines are retained.
    pub slots: usize,
    /// Keep 1-in-N requests by deterministic id hash (`1` = every
    /// request, `0` = sampling off — only slow exemplars are kept).
    pub sample_every: u64,
    /// Seed mixed into the sampling hash, so tests pin exact decisions.
    pub seed: u64,
    /// Requests whose admit→resolve latency reaches this threshold are
    /// recorded in full even when not sampled. `Duration::ZERO`
    /// disables exemplar capture.
    pub slow_threshold: Duration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            slots: 64,
            sample_every: 16,
            seed: 0x00D5_AF00,
            slow_threshold: Duration::from_millis(250),
        }
    }
}

impl TraceConfig {
    /// Tracing fully disabled: no recorder, no per-request contexts.
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        }
    }

    /// Sample every request (plus the default slow-exemplar capture).
    pub fn every_request() -> Self {
        TraceConfig {
            sample_every: 1,
            ..TraceConfig::default()
        }
    }
}

/// How a request left the pipeline. Exactly one terminal event is
/// emitted per admitted request; the `u8` values are stable (used in
/// slot words and the stats array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TerminalKind {
    /// Every chunk finished successfully.
    Completed = 1,
    /// At least one chunk failed (panicked or was stall-failed by the
    /// watchdog — stalls surface as failed chunks at the gateway).
    Failed = 2,
    /// Shed by an overload policy (full-ring rejection or eviction).
    Shed = 3,
    /// Deadline passed before dispatch.
    Expired = 4,
    /// Cancelled via the request's handle or token.
    Cancelled = 5,
    /// Dropped because the gateway/engine closed underneath it.
    Closed = 6,
    /// Dropped at dispatch because the engine was degraded.
    Degraded = 7,
}

impl TerminalKind {
    /// Every terminal kind, in `u8` order.
    pub const ALL: [TerminalKind; 7] = [
        TerminalKind::Completed,
        TerminalKind::Failed,
        TerminalKind::Shed,
        TerminalKind::Expired,
        TerminalKind::Cancelled,
        TerminalKind::Closed,
        TerminalKind::Degraded,
    ];

    /// Stable lowercase name (rendered in `/tracez` and JSON).
    pub fn name(self) -> &'static str {
        match self {
            TerminalKind::Completed => "completed",
            TerminalKind::Failed => "failed",
            TerminalKind::Shed => "shed",
            TerminalKind::Expired => "expired",
            TerminalKind::Cancelled => "cancelled",
            TerminalKind::Closed => "closed",
            TerminalKind::Degraded => "degraded",
        }
    }

    fn from_u64(v: u64) -> Option<TerminalKind> {
        TerminalKind::ALL.into_iter().find(|k| *k as u64 == v)
    }
}

/// One ring slot: a seqlock generation word plus the timeline fields,
/// all individually atomic (the workspace forbids `unsafe`, so torn
/// protection comes from the generation protocol, not `UnsafeCell`).
#[derive(Debug)]
struct Slot {
    /// Seqlock generation: `0` = never written, odd = writer active,
    /// even = stable. Monotone, so readers can detect any interleaved
    /// write by re-reading it.
    gen: AtomicU64,
    /// Global claim sequence of the record (orders timelines).
    seq: AtomicU64,
    req_id: AtomicU64,
    model: [AtomicU64; 3],
    /// `model_len | slow << 8 | terminal << 16`.
    meta: AtomicU64,
    samples: AtomicU64,
    /// `chunks_done << 32 | chunks_total`.
    chunks: AtomicU64,
    received_ns: AtomicU64,
    admitted_ns: AtomicU64,
    enqueued_ns: AtomicU64,
    dispatched_ns: AtomicU64,
    first_chunk_ns: AtomicU64,
    last_chunk_ns: AtomicU64,
    resolved_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            gen: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            req_id: AtomicU64::new(0),
            model: std::array::from_fn(|_| AtomicU64::new(0)),
            meta: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            received_ns: AtomicU64::new(0),
            admitted_ns: AtomicU64::new(0),
            enqueued_ns: AtomicU64::new(0),
            dispatched_ns: AtomicU64::new(0),
            first_chunk_ns: AtomicU64::new(0),
            last_chunk_ns: AtomicU64::new(0),
            resolved_ns: AtomicU64::new(0),
        }
    }
}

/// A read-side copy of one recorded request timeline. Timestamps are
/// nanoseconds on the recorder's [`Clock`] (0 = stage never reached;
/// real stamps are clamped to ≥ 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Global publication sequence (newer = larger).
    pub seq: u64,
    /// The request id the timeline belongs to (wire id or generated).
    pub req_id: u64,
    /// Model key (`name@format`), truncated to 24 bytes.
    pub model: String,
    /// Samples in the request batch.
    pub samples: u64,
    /// Chunks that finished (success or failure).
    pub chunks_done: u32,
    /// Chunks the dispatcher split the request into (0 = undispatched).
    pub chunks_total: u32,
    /// How the request resolved.
    pub terminal: TerminalKind,
    /// Whether this is a slow-request exemplar (kept past sampling).
    pub slow: bool,
    /// Frame receive stamp from the network front end (0 = in-process).
    pub received_ns: u64,
    /// Admission verdict stamp.
    pub admitted_ns: u64,
    /// Submission-ring enqueue stamp.
    pub enqueued_ns: u64,
    /// Dispatcher pick-up stamp.
    pub dispatched_ns: u64,
    /// First chunk completion stamp.
    pub first_chunk_ns: u64,
    /// Last chunk completion stamp.
    pub last_chunk_ns: u64,
    /// Terminal event stamp.
    pub resolved_ns: u64,
}

impl Timeline {
    /// Total latency: admission → terminal, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.resolved_ns.saturating_sub(self.admitted_ns)
    }

    /// The stage stamps that were actually reached, in pipeline order —
    /// the monotonicity contract `/tracez` consumers assert.
    pub fn stages(&self) -> Vec<(&'static str, u64)> {
        [
            ("received", self.received_ns),
            ("admitted", self.admitted_ns),
            ("enqueued", self.enqueued_ns),
            ("dispatched", self.dispatched_ns),
            ("first_chunk", self.first_chunk_ns),
            ("last_chunk", self.last_chunk_ns),
            ("resolved", self.resolved_ns),
        ]
        .into_iter()
        .filter(|(_, ns)| *ns != 0)
        .collect()
    }
}

/// Counter snapshot of the recorder (rendered on `/statusz`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Trace contexts handed out (≡ admitted, traced requests).
    pub begun: u64,
    /// Timelines published into the ring.
    pub published: u64,
    /// Publications dropped because the claimed slot was mid-write
    /// (the recorder never waits; it sheds its own records instead).
    pub dropped_contended: u64,
    /// Duplicate terminal events suppressed (first one wins). Nonzero
    /// means a lifecycle bug — the conservation tests pin it to 0.
    pub dup_terminals: u64,
    /// Slow exemplars captured past the sampling decision.
    pub slow_captured: u64,
    /// Terminal events by kind, indexed by `TerminalKind as u8`
    /// (index 0 unused).
    pub terminals: [u64; 8],
}

impl RecorderStats {
    /// Terminal-event count for one kind.
    pub fn terminal(&self, kind: TerminalKind) -> u64 {
        self.terminals[kind as usize]
    }

    /// Total terminal events across all kinds.
    pub fn terminals_total(&self) -> u64 {
        self.terminals.iter().sum()
    }
}

/// Min/mean/max of the recent queue-depth reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthSummary {
    /// Smallest observed depth in the reservoir window.
    pub min: u64,
    /// Largest observed depth in the reservoir window.
    pub max: u64,
    /// Mean depth (integer-truncated).
    pub mean: u64,
    /// Observations currently in the window.
    pub count: u64,
}

/// The flight recorder. Shared as `Arc<Recorder>`; the module-level
/// docs at the top of this file describe the concurrency protocol.
#[derive(Debug)]
pub struct Recorder {
    cfg: TraceConfig,
    clock: Clock,
    slots: Vec<Slot>,
    /// Global claim counter: `fetch_add` here is the wait-free slot
    /// claim.
    head: AtomicU64,
    begun: AtomicU64,
    published: AtomicU64,
    dropped_contended: AtomicU64,
    dup_terminals: AtomicU64,
    slow_captured: AtomicU64,
    terminals: [AtomicU64; 8],
    depth: [AtomicU64; DEPTH_SLOTS],
    depth_head: AtomicU64,
}

/// Bumps a recorder counter by one.
fn bump(c: &AtomicU64) {
    // relaxed-ok: independent monotone counter; nothing orders against
    // it and stats snapshots tolerate cross-counter skew.
    c.fetch_add(1, Ordering::Relaxed);
}

impl Recorder {
    /// Builds a recorder over `clock`. The slot ring is fully
    /// preallocated here; the hot path never allocates again.
    pub fn new(cfg: TraceConfig, clock: Clock) -> Arc<Recorder> {
        let slots = (0..cfg.slots).map(|_| Slot::empty()).collect();
        Arc::new(Recorder {
            cfg,
            clock,
            slots,
            head: AtomicU64::new(0),
            begun: AtomicU64::new(0),
            published: AtomicU64::new(0),
            dropped_contended: AtomicU64::new(0),
            dup_terminals: AtomicU64::new(0),
            slow_captured: AtomicU64::new(0),
            terminals: std::array::from_fn(|_| AtomicU64::new(0)),
            depth: std::array::from_fn(|_| AtomicU64::new(0)),
            depth_head: AtomicU64::new(0),
        })
    }

    /// The recorder's clock seam.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The configuration the recorder was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// The deterministic sampling decision for a request id: seeded
    /// SplitMix64 hash, keep 1-in-`sample_every`. Reproducible across
    /// runs, hosts, and `check-yield` schedules.
    pub fn would_sample(&self, req_id: u64) -> bool {
        match self.cfg.sample_every {
            0 => false,
            n => splitmix64(req_id ^ self.cfg.seed).is_multiple_of(n),
        }
    }

    /// A stage stamp: clock nanoseconds clamped to ≥ 1 so `0` can mean
    /// "stage never reached" in slot words.
    fn stamp(&self) -> u64 {
        self.clock.now_ns().max(1)
    }

    /// Maps an externally captured instant onto the recorder clock.
    fn instant_ns(&self, at: Instant) -> u64 {
        let ns = at.saturating_duration_since(self.clock.epoch()).as_nanos();
        u64::try_from(ns).unwrap_or(u64::MAX).max(1)
    }

    /// Opens a trace context for an admitted request. One small
    /// allocation (the shared context) per request — the recorder ring
    /// itself is never allocated into.
    ///
    /// `received` is the network front end's frame-receive stamp when
    /// the request came over the wire (`None` for in-process submits).
    pub fn begin(
        self: &Arc<Self>,
        req_id: u64,
        model: &str,
        samples: u64,
        received: Option<Instant>,
    ) -> TraceCtx {
        bump(&self.begun);
        let bytes = model.as_bytes();
        let len = bytes.len().min(MODEL_BYTES);
        let mut name = [0u8; MODEL_BYTES];
        name[..len].copy_from_slice(&bytes[..len]);
        TraceCtx {
            inner: Arc::new(CtxInner {
                recorder: Arc::clone(self),
                req_id,
                sampled: self.would_sample(req_id),
                model: name,
                model_len: len as u8,
                samples,
                received_ns: received.map(|at| self.instant_ns(at)).unwrap_or(0),
                admitted_ns: self.stamp(),
                enqueued_ns: AtomicU64::new(0),
                dispatched_ns: AtomicU64::new(0),
                chunks_total: AtomicU64::new(0),
                chunks_done: AtomicU64::new(0),
                first_chunk_ns: AtomicU64::new(0),
                last_chunk_ns: AtomicU64::new(0),
                terminal: AtomicU64::new(0),
            }),
        }
    }

    /// Records a queue-depth observation into the reservoir. Wait-free
    /// (one `fetch_add`, one store).
    pub fn note_queue_depth(&self, depth: usize) {
        // relaxed-ok: reservoir index round-robin; slots are
        // independent words and readers tolerate any interleaving.
        let i = self.depth_head.fetch_add(1, Ordering::Relaxed) as usize % DEPTH_SLOTS;
        // relaxed-ok: single-word observation (+1 so 0 = empty slot);
        // torn cross-slot reads only skew a debug summary.
        self.depth[i].store(depth as u64 + 1, Ordering::Relaxed);
    }

    /// Summarizes the queue-depth reservoir (`None` until the first
    /// observation).
    pub fn queue_depth_summary(&self) -> Option<DepthSummary> {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut count = 0u64;
        for s in &self.depth {
            // relaxed-ok: independent observation words; see `note_queue_depth`.
            let v = s.load(Ordering::Relaxed);
            if v == 0 {
                continue;
            }
            let d = v - 1;
            min = min.min(d);
            max = max.max(d);
            sum += d;
            count += 1;
        }
        (count > 0).then(|| DepthSummary {
            min,
            max,
            mean: sum / count,
            count,
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RecorderStats {
        // relaxed-ok: (audited) independent monotone counters; snapshots
        // tolerate cross-counter skew, consistency holds at quiescence.
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        RecorderStats {
            begun: ld(&self.begun),
            published: ld(&self.published),
            dropped_contended: ld(&self.dropped_contended),
            dup_terminals: ld(&self.dup_terminals),
            slow_captured: ld(&self.slow_captured),
            terminals: std::array::from_fn(|i| ld(&self.terminals[i])),
        }
    }

    /// Publishes a resolved context into the ring. Called by the thread
    /// that won the terminal race; wait-free (see module docs).
    fn publish(&self, ctx: &CtxInner, resolved_ns: u64, terminal: TerminalKind, slow: bool) {
        if self.slots.is_empty() {
            return;
        }
        check_yield!("trace.slot.claim");
        // relaxed-ok: the claim only needs a unique sequence number;
        // slot synchronization is the generation protocol below.
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) % self.slots.len()];
        let g = slot.gen.load(Ordering::Acquire);
        if g & 1 == 1 {
            // Another writer is mid-copy in this slot (the ring lapped
            // itself). Never wait on the hot path: drop our record.
            bump(&self.dropped_contended);
            return;
        }
        if slot
            .gen
            .compare_exchange(g, g + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            bump(&self.dropped_contended);
            return;
        }
        check_yield!("trace.slot.write");
        // The odd generation above is the write lock; field stores are
        // relaxed-ok: they publish through the Release flip to even
        // below, and readers discard anything torn via the generation
        // re-check. (One annotation for the block: every store here is
        // the same single-writer-in-odd-section pattern.)
        let st = |w: &AtomicU64, v: u64| w.store(v, Ordering::Relaxed);
        st(&slot.seq, seq);
        st(&slot.req_id, ctx.req_id);
        for (w, chunk) in slot.model.iter().zip(ctx.model.chunks_exact(8)) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            st(w, u64::from_le_bytes(b));
        }
        st(
            &slot.meta,
            u64::from(ctx.model_len) | (u64::from(slow) << 8) | ((terminal as u64) << 16),
        );
        st(&slot.samples, ctx.samples);
        // relaxed-ok: reading our own context's stage words; cross-thread
        // stage writers are ordered by the pipeline's existing handoffs
        // (ring, handle mutex) and a stale 0 only shortens the timeline.
        let ld = |w: &AtomicU64| w.load(Ordering::Relaxed);
        st(
            &slot.chunks,
            (ld(&ctx.chunks_done) << 32) | (ld(&ctx.chunks_total) & 0xFFFF_FFFF),
        );
        st(&slot.received_ns, ctx.received_ns);
        st(&slot.admitted_ns, ctx.admitted_ns);
        st(&slot.enqueued_ns, ld(&ctx.enqueued_ns));
        st(&slot.dispatched_ns, ld(&ctx.dispatched_ns));
        st(&slot.first_chunk_ns, ld(&ctx.first_chunk_ns));
        st(&slot.last_chunk_ns, ld(&ctx.last_chunk_ns));
        st(&slot.resolved_ns, resolved_ns);
        check_yield!("trace.slot.publish");
        slot.gen.store(g + 2, Ordering::Release);
        bump(&self.published);
    }

    /// Reads one slot, `None` if empty, mid-write, or torn by a
    /// concurrent writer.
    fn read_slot(&self, slot: &Slot) -> Option<Timeline> {
        check_yield!("trace.slot.read");
        let g1 = slot.gen.load(Ordering::Acquire);
        if g1 == 0 || g1 & 1 == 1 {
            return None;
        }
        // relaxed-ok: seqlock read side — the Acquire load above orders
        // these after the writer's Release publish, and the fence +
        // generation re-check below discards any torn copy.
        let ld = |w: &AtomicU64| w.load(Ordering::Relaxed);
        let seq = ld(&slot.seq);
        let req_id = ld(&slot.req_id);
        let model_words: [u64; 3] = std::array::from_fn(|i| ld(&slot.model[i]));
        let meta = ld(&slot.meta);
        let samples = ld(&slot.samples);
        let chunks = ld(&slot.chunks);
        let received_ns = ld(&slot.received_ns);
        let admitted_ns = ld(&slot.admitted_ns);
        let enqueued_ns = ld(&slot.enqueued_ns);
        let dispatched_ns = ld(&slot.dispatched_ns);
        let first_chunk_ns = ld(&slot.first_chunk_ns);
        let last_chunk_ns = ld(&slot.last_chunk_ns);
        let resolved_ns = ld(&slot.resolved_ns);
        // Order the field loads above before the validating re-read.
        fence(Ordering::Acquire);
        // relaxed-ok: the fence above sequences this validation load
        // after every field load; equality with the Acquire-read g1 is
        // the torn-copy check itself.
        if slot.gen.load(Ordering::Relaxed) != g1 {
            return None;
        }
        let model_len = (meta & 0xFF) as usize;
        let mut name = [0u8; MODEL_BYTES];
        for (dst, w) in name.chunks_exact_mut(8).zip(model_words) {
            dst.copy_from_slice(&w.to_le_bytes());
        }
        Some(Timeline {
            seq,
            req_id,
            model: String::from_utf8_lossy(&name[..model_len.min(MODEL_BYTES)]).into_owned(),
            samples,
            chunks_done: (chunks >> 32) as u32,
            chunks_total: (chunks & 0xFFFF_FFFF) as u32,
            terminal: TerminalKind::from_u64((meta >> 16) & 0xFF)?,
            slow: (meta >> 8) & 1 == 1,
            received_ns,
            admitted_ns,
            enqueued_ns,
            dispatched_ns,
            first_chunk_ns,
            last_chunk_ns,
            resolved_ns,
        })
    }

    /// Snapshot of every readable timeline, newest first. Never blocks
    /// writers; slots mid-write or torn during the copy are skipped.
    pub fn timelines(&self) -> Vec<Timeline> {
        let mut out: Vec<Timeline> = self
            .slots
            .iter()
            .filter_map(|s| self.read_slot(s))
            .collect();
        out.sort_by_key(|t| std::cmp::Reverse(t.seq));
        out
    }

    /// Renders recent timelines as human-readable text (`/tracez`).
    /// `slow_only` restricts the listing to the slow-exemplar subset
    /// (`/tracez?slow`) — the recorder-wide stats header stays unfiltered.
    pub fn render_text(&self, slow_only: bool) -> String {
        use std::fmt::Write as _;
        let stats = self.stats();
        let mut s = String::new();
        let _ = writeln!(
            s,
            "dp_trace flight recorder: {} traced, {} published, {} dropped (slot contention), \
             {} slow exemplars",
            stats.begun, stats.published, stats.dropped_contended, stats.slow_captured
        );
        let _ = writeln!(
            s,
            "sampling 1-in-{} (seed {:#x}), slow threshold {:?}, {} slots{}",
            self.cfg.sample_every,
            self.cfg.seed,
            self.cfg.slow_threshold,
            self.cfg.slots,
            if slow_only {
                ", showing slow exemplars only"
            } else {
                ""
            },
        );
        let us = |ns: u64, base: u64| (ns.saturating_sub(base)) as f64 / 1_000.0;
        for t in self.timelines() {
            if slow_only && !t.slow {
                continue;
            }
            let _ = writeln!(
                s,
                "req {:#018x} model={} samples={} chunks={}/{} terminal={}{}",
                t.req_id,
                t.model,
                t.samples,
                t.chunks_done,
                t.chunks_total,
                t.terminal.name(),
                if t.slow { " [slow]" } else { "" },
            );
            let base = if t.received_ns != 0 {
                t.received_ns
            } else {
                t.admitted_ns
            };
            let mut line = String::from(" ");
            for (stage, ns) in t.stages() {
                let _ = write!(line, " {stage}=+{:.1}us", us(ns, base));
            }
            let _ = write!(line, " total={:.1}us", us(t.resolved_ns, base));
            let _ = writeln!(s, "{line}");
        }
        s
    }

    /// Renders recorder state as JSON (`/tracez?format=json`);
    /// hand-rolled like the rest of the workspace (serde is outside the
    /// offline dependency allow-list). `slow_only` restricts the
    /// `timelines` array to the slow-exemplar subset
    /// (`/tracez?format=json&slow`); the stats fields stay unfiltered.
    pub fn render_json(&self, slow_only: bool) -> String {
        use std::fmt::Write as _;
        let stats = self.stats();
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"traced\": {},", stats.begun);
        let _ = writeln!(s, "  \"published\": {},", stats.published);
        let _ = writeln!(s, "  \"dropped_contended\": {},", stats.dropped_contended);
        let _ = writeln!(s, "  \"dup_terminals\": {},", stats.dup_terminals);
        let _ = writeln!(s, "  \"slow_captured\": {},", stats.slow_captured);
        let _ = writeln!(s, "  \"sample_every\": {},", self.cfg.sample_every);
        let _ = writeln!(s, "  \"seed\": {},", self.cfg.seed);
        let _ = writeln!(
            s,
            "  \"slow_threshold_ns\": {},",
            u64::try_from(self.cfg.slow_threshold.as_nanos()).unwrap_or(u64::MAX)
        );
        let _ = writeln!(s, "  \"slow_only\": {slow_only},");
        s.push_str("  \"timelines\": [");
        let mut timelines = self.timelines();
        if slow_only {
            timelines.retain(|t| t.slow);
        }
        for (i, t) in timelines.iter().enumerate() {
            let comma = if i + 1 < timelines.len() { "," } else { "" };
            let _ = write!(
                s,
                "\n    {{\"req_id\": {}, \"model\": \"{}\", \"samples\": {}, \
                 \"chunks_done\": {}, \"chunks_total\": {}, \"terminal\": \"{}\", \
                 \"slow\": {}, \"received_ns\": {}, \"admitted_ns\": {}, \
                 \"enqueued_ns\": {}, \"dispatched_ns\": {}, \"first_chunk_ns\": {}, \
                 \"last_chunk_ns\": {}, \"resolved_ns\": {}}}{comma}",
                t.req_id,
                t.model.replace('\\', "\\\\").replace('"', "\\\""),
                t.samples,
                t.chunks_done,
                t.chunks_total,
                t.terminal.name(),
                t.slow,
                t.received_ns,
                t.admitted_ns,
                t.enqueued_ns,
                t.dispatched_ns,
                t.first_chunk_ns,
                t.last_chunk_ns,
                t.resolved_ns,
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Inner shared state of a [`TraceCtx`]: the per-request staging
/// buffer. Fields written before sharing are plain; stage fields are
/// single atomic words, stamped once each by whichever pipeline thread
/// reaches the stage.
#[derive(Debug)]
struct CtxInner {
    recorder: Arc<Recorder>,
    req_id: u64,
    sampled: bool,
    model: [u8; MODEL_BYTES],
    model_len: u8,
    samples: u64,
    received_ns: u64,
    admitted_ns: u64,
    enqueued_ns: AtomicU64,
    dispatched_ns: AtomicU64,
    chunks_total: AtomicU64,
    chunks_done: AtomicU64,
    first_chunk_ns: AtomicU64,
    last_chunk_ns: AtomicU64,
    /// `TerminalKind as u64`, claimed first-wins by `compare_exchange`.
    terminal: AtomicU64,
}

/// Per-request trace handle threaded through the pipeline. Cloning is
/// cheap (one `Arc`); every stage call is wait-free (a single atomic
/// store or RMW into the staging buffer — no allocation, no locks).
#[derive(Debug, Clone)]
pub struct TraceCtx {
    inner: Arc<CtxInner>,
}

impl TraceCtx {
    /// The request id the context was opened with.
    pub fn req_id(&self) -> u64 {
        self.inner.req_id
    }

    /// Whether the deterministic sampler selected this request.
    pub fn is_sampled(&self) -> bool {
        self.inner.sampled
    }

    /// Stamps the submission-ring enqueue stage.
    pub fn enqueued(&self) {
        let i = &self.inner;
        // relaxed-ok: single stage stamp word; publication happens via
        // the recorder's seqlock at the terminal event.
        i.enqueued_ns.store(i.recorder.stamp(), Ordering::Relaxed);
    }

    /// Stamps the dispatcher pick-up stage and records the chunk fan-out.
    pub fn dispatched(&self, chunks_total: u64) {
        let i = &self.inner;
        // relaxed-ok: see `enqueued`.
        i.dispatched_ns.store(i.recorder.stamp(), Ordering::Relaxed);
        // relaxed-ok: see `enqueued`.
        i.chunks_total.store(chunks_total, Ordering::Relaxed);
    }

    /// Stamps one chunk completion (first-wins for the first-chunk
    /// stamp, max for the last-chunk stamp).
    pub fn chunk_done(&self) {
        let i = &self.inner;
        let now = i.recorder.stamp();
        // relaxed-ok: first-wins stamp; only the winning value is ever
        // rendered and no other memory publishes through it.
        let _ = i
            .first_chunk_ns
            .compare_exchange(0, now, Ordering::Relaxed, Ordering::Relaxed);
        // relaxed-ok: monotone max stamp; same reasoning as above.
        i.last_chunk_ns.fetch_max(now, Ordering::Relaxed);
        // relaxed-ok: monotone progress counter.
        i.chunks_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Emits the request's terminal event. **First call wins** and
    /// returns `true`; later calls are counted as duplicate terminals
    /// (a lifecycle bug the conservation tests pin to zero) and return
    /// `false`. The winner publishes the timeline into the ring when
    /// the request was sampled or crossed the slow threshold.
    pub fn resolve(&self, kind: TerminalKind) -> bool {
        let i = &self.inner;
        check_yield!("trace.terminal");
        if i.terminal
            // relaxed-ok: first-wins claim on an isolated word; the
            // winner's subsequent publish is ordered by the slot
            // generation protocol, not this claim.
            .compare_exchange(0, kind as u64, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            bump(&i.recorder.dup_terminals);
            return false;
        }
        bump(&i.recorder.terminals[kind as usize]);
        let resolved_ns = i.recorder.stamp();
        let threshold = &i.recorder.cfg.slow_threshold;
        let slow = !threshold.is_zero()
            && resolved_ns.saturating_sub(i.admitted_ns)
                >= u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX);
        if slow && !i.sampled {
            bump(&i.recorder.slow_captured);
        }
        if i.sampled || slow {
            i.recorder.publish(i, resolved_ns, kind, slow);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual_recorder(cfg: TraceConfig) -> Arc<Recorder> {
        Recorder::new(cfg, Clock::manual())
    }

    #[test]
    fn sampling_is_deterministic_and_seeded() {
        let cfg = TraceConfig {
            sample_every: 4,
            seed: 7,
            ..TraceConfig::default()
        };
        let r1 = manual_recorder(cfg.clone());
        let r2 = manual_recorder(cfg);
        let picks: Vec<u64> = (0..256).filter(|id| r1.would_sample(*id)).collect();
        // Same seed → identical decisions on a fresh recorder.
        let picks2: Vec<u64> = (0..256).filter(|id| r2.would_sample(*id)).collect();
        assert_eq!(picks, picks2);
        // Roughly 1-in-4 (hash quality, not exactness).
        assert!((32..=96).contains(&picks.len()), "{}", picks.len());
        // A different seed picks a different set.
        let r3 = manual_recorder(TraceConfig {
            sample_every: 4,
            seed: 8,
            ..TraceConfig::default()
        });
        let picks3: Vec<u64> = (0..256).filter(|id| r3.would_sample(*id)).collect();
        assert_ne!(picks, picks3);
        // sample_every = 1 keeps everything; 0 keeps nothing.
        let all = manual_recorder(TraceConfig::every_request());
        assert!((0..64).all(|id| all.would_sample(id)));
        let none = manual_recorder(TraceConfig {
            sample_every: 0,
            ..TraceConfig::default()
        });
        assert!(!(0..64).any(|id| none.would_sample(id)));
    }

    #[test]
    fn full_lifecycle_publishes_a_monotone_timeline() {
        let rec = manual_recorder(TraceConfig::every_request());
        let clock = rec.clock().clone();
        clock.advance(Duration::from_micros(1));
        let ctx = rec.begin(42, "iris@posit<8,0>", 32, None);
        assert!(ctx.is_sampled());
        clock.advance(Duration::from_micros(1));
        ctx.enqueued();
        clock.advance(Duration::from_micros(2));
        ctx.dispatched(2);
        clock.advance(Duration::from_micros(3));
        ctx.chunk_done();
        clock.advance(Duration::from_micros(4));
        ctx.chunk_done();
        assert!(ctx.resolve(TerminalKind::Completed));
        let stats = rec.stats();
        assert_eq!(stats.begun, 1);
        assert_eq!(stats.published, 1);
        assert_eq!(stats.terminal(TerminalKind::Completed), 1);
        assert_eq!(stats.terminals_total(), 1);
        let tl = rec.timelines();
        assert_eq!(tl.len(), 1);
        let t = &tl[0];
        assert_eq!(t.req_id, 42);
        assert_eq!(t.model, "iris@posit<8,0>");
        assert_eq!(t.samples, 32);
        assert_eq!((t.chunks_done, t.chunks_total), (2, 2));
        assert_eq!(t.terminal, TerminalKind::Completed);
        assert_eq!(t.received_ns, 0);
        // Stage stamps are monotone in pipeline order.
        let stages = t.stages();
        let names: Vec<&str> = stages.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "admitted",
                "enqueued",
                "dispatched",
                "first_chunk",
                "last_chunk",
                "resolved"
            ]
        );
        assert!(stages.windows(2).all(|w| w[0].1 <= w[1].1), "{stages:?}");
        assert!(t.first_chunk_ns < t.last_chunk_ns);
        assert_eq!(t.total_ns(), 10_000);
    }

    #[test]
    fn slow_exemplar_is_kept_past_sampling() {
        let rec = manual_recorder(TraceConfig {
            sample_every: 0, // sampling off entirely
            slow_threshold: Duration::from_micros(5),
            ..TraceConfig::default()
        });
        let clock = rec.clock().clone();
        // Fast request: not sampled, under threshold → not recorded.
        let fast = rec.begin(1, "m@f", 1, None);
        assert!(fast.resolve(TerminalKind::Completed));
        assert_eq!(rec.stats().published, 0);
        // Slow request: crosses the threshold → exemplar, marked slow.
        let slow = rec.begin(2, "m@f", 1, None);
        clock.advance(Duration::from_micros(6));
        assert!(slow.resolve(TerminalKind::Expired));
        let stats = rec.stats();
        assert_eq!(stats.published, 1);
        assert_eq!(stats.slow_captured, 1);
        let tl = rec.timelines();
        assert_eq!(tl.len(), 1);
        assert!(tl[0].slow);
        assert_eq!(tl[0].terminal, TerminalKind::Expired);
    }

    #[test]
    fn duplicate_terminals_are_suppressed_and_counted() {
        let rec = manual_recorder(TraceConfig::every_request());
        let ctx = rec.begin(9, "m@f", 1, None);
        assert!(ctx.resolve(TerminalKind::Shed));
        assert!(!ctx.resolve(TerminalKind::Completed));
        assert!(!ctx.resolve(TerminalKind::Shed));
        let stats = rec.stats();
        assert_eq!(stats.dup_terminals, 2);
        assert_eq!(stats.terminals_total(), 1);
        assert_eq!(stats.terminal(TerminalKind::Shed), 1);
        // The published record kept the winning verdict.
        assert_eq!(rec.timelines()[0].terminal, TerminalKind::Shed);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let rec = manual_recorder(TraceConfig {
            slots: 2,
            ..TraceConfig::every_request()
        });
        let clock = rec.clock().clone();
        for id in 0..5u64 {
            let ctx = rec.begin(id, "m@f", id, None);
            clock.advance(Duration::from_micros(1));
            assert!(ctx.resolve(TerminalKind::Completed));
        }
        assert_eq!(rec.stats().published, 5);
        let tl = rec.timelines();
        assert_eq!(tl.len(), 2);
        // Newest first.
        assert_eq!(tl[0].req_id, 4);
        assert_eq!(tl[1].req_id, 3);
    }

    #[test]
    fn model_names_longer_than_the_slot_are_truncated() {
        let rec = manual_recorder(TraceConfig::every_request());
        let long = "a-very-long-model-name-that-overflows@posit<16,1>";
        let ctx = rec.begin(1, long, 1, None);
        assert!(ctx.resolve(TerminalKind::Completed));
        let got = &rec.timelines()[0].model;
        assert_eq!(got.as_bytes(), &long.as_bytes()[..24]);
    }

    #[test]
    fn received_stamp_maps_onto_the_recorder_clock() {
        let rec = Recorder::new(TraceConfig::every_request(), Clock::real());
        let received = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let ctx = rec.begin(3, "m@f", 1, Some(received));
        assert!(ctx.resolve(TerminalKind::Completed));
        let t = &rec.timelines()[0];
        assert!(t.received_ns > 0);
        assert!(t.received_ns <= t.admitted_ns, "{t:?}");
        assert!(t.admitted_ns <= t.resolved_ns);
    }

    #[test]
    fn queue_depth_reservoir_summarizes() {
        let rec = manual_recorder(TraceConfig::default());
        assert_eq!(rec.queue_depth_summary(), None);
        for d in [3usize, 0, 7, 5] {
            rec.note_queue_depth(d);
        }
        let s = rec.queue_depth_summary().unwrap();
        assert_eq!((s.min, s.max, s.count), (0, 7, 4));
        assert_eq!(s.mean, 3);
        // Wraps past the reservoir size without losing the summary.
        for d in 0..200usize {
            rec.note_queue_depth(d);
        }
        let s = rec.queue_depth_summary().unwrap();
        assert_eq!(s.count, 64);
        assert_eq!(s.max, 199);
    }

    #[test]
    fn renderers_emit_wellformed_output() {
        let rec = manual_recorder(TraceConfig::every_request());
        let clock = rec.clock().clone();
        let ctx = rec.begin(0x2a, "iris@posit<8,0>", 16, None);
        ctx.enqueued();
        clock.advance(Duration::from_micros(10));
        ctx.dispatched(1);
        ctx.chunk_done();
        assert!(ctx.resolve(TerminalKind::Completed));
        rec.note_queue_depth(2);
        let text = rec.render_text(false);
        assert!(text.contains("model=iris@posit<8,0>"), "{text}");
        assert!(text.contains("terminal=completed"), "{text}");
        assert!(text.contains("sampling 1-in-1"), "{text}");
        let json = rec.render_json(false);
        assert!(json.contains("\"req_id\": 42"), "{json}");
        assert!(json.contains("\"terminal\": \"completed\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn slow_only_rendering_filters_to_slow_exemplars() {
        // One fast request, one pushed past the slow threshold; the
        // `?slow` views must list only the exemplar while the stats
        // header stays recorder-wide.
        let rec = manual_recorder(TraceConfig::every_request());
        let clock = rec.clock().clone();
        let fast = rec.begin(0x01, "iris@posit<8,0>", 1, None);
        assert!(fast.resolve(TerminalKind::Completed));
        let slow = rec.begin(0x02, "iris@posit<8,0>", 1, None);
        clock.advance(Duration::from_secs(1)); // default threshold 250ms
        assert!(slow.resolve(TerminalKind::Completed));

        let text = rec.render_text(true);
        assert!(text.contains("showing slow exemplars only"), "{text}");
        assert!(text.contains("req 0x0000000000000002"), "{text}");
        assert!(!text.contains("req 0x0000000000000001"), "{text}");
        // The unfiltered view still lists both.
        let all = rec.render_text(false);
        assert!(all.contains("req 0x0000000000000001"), "{all}");

        let json = rec.render_json(true);
        assert!(json.contains("\"slow_only\": true"), "{json}");
        assert!(json.contains("\"req_id\": 2"), "{json}");
        assert!(!json.contains("\"req_id\": 1,"), "{json}");
        // Recorder-wide stats are unfiltered: both requests published.
        assert!(json.contains("\"published\": 2"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn concurrent_publishers_never_produce_torn_records() {
        // Stress (non-deterministic) version of the check-yield suite:
        // many threads publish distinct records through a tiny ring
        // while a reader snapshots; every snapshot row must be
        // internally consistent (samples == req_id * 1000).
        let rec = Recorder::new(
            TraceConfig {
                slots: 2,
                ..TraceConfig::every_request()
            },
            Clock::real(),
        );
        let stop = Arc::new(AtomicU64::new(0));
        let reader = {
            let rec = Arc::clone(&rec);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // relaxed-ok: test stop flag; no ordering needed.
                while stop.load(Ordering::Relaxed) == 0 {
                    for t in rec.timelines() {
                        assert_eq!(t.samples, t.req_id * 1000, "torn record: {t:?}");
                    }
                }
            })
        };
        let writers: Vec<_> = (1..=4u64)
            .map(|w| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let id = w * 10_000 + i;
                        let ctx = rec.begin(id, "m@f", id * 1000, None);
                        assert!(ctx.resolve(TerminalKind::Completed));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // relaxed-ok: test stop flag.
        stop.store(1, Ordering::Relaxed);
        reader.join().unwrap();
        let stats = rec.stats();
        assert_eq!(stats.published + stats.dropped_contended, 2000);
        assert_eq!(stats.dup_terminals, 0);
    }
}

/// Seeded PCT interleave suite for the recorder's slot-claim path
/// (compiled only with `--features check-yield`): two publishers race a
/// reader through a single-slot ring across ≥1000 schedules per seed —
/// no schedule may surface a torn or double-claimed slot, and every
/// publish attempt must be accounted as published or dropped.
#[cfg(all(test, feature = "check-yield"))]
mod interleave_tests {
    use super::*;
    use dp_check::sched::explore;

    const SEEDS: [u64; 3] = [0x7AC3_0001, 0x7AC3_0002, 0x7AC3_0003];
    const RUNS: usize = 1000;

    /// Two writers contend for the same slot (single-slot ring) while a
    /// reader snapshots. Invariants, asserted inside the schedules:
    /// a readable record is always internally consistent
    /// (`samples == req_id * 100`, terminal matches the writer), and
    /// claim accounting is exact (`published + dropped == 2`, no
    /// duplicate terminals).
    #[test]
    fn slot_claims_are_never_torn_or_doubled() {
        for master in SEEDS {
            let out = explore(master, RUNS, 3, |_| {
                let rec = Recorder::new(
                    TraceConfig {
                        slots: 1,
                        ..TraceConfig::every_request()
                    },
                    Clock::manual(),
                );
                let ctx_a = rec.begin(1, "a@f", 100, None);
                let ctx_b = rec.begin(2, "b@f", 200, None);
                let done = Arc::new(AtomicU64::new(0));
                let (rec_a, rec_b, rec_r) = (Arc::clone(&rec), Arc::clone(&rec), rec);
                let (done_a, done_b) = (Arc::clone(&done), done);
                let finish = move |rec: &Recorder, done: &AtomicU64| {
                    // relaxed-ok: schedule-local join counter; the
                    // checker serializes the bodies around yields.
                    if done.fetch_add(1, Ordering::Relaxed) + 1 == 2 {
                        let stats = rec.stats();
                        assert_eq!(
                            stats.published + stats.dropped_contended,
                            2,
                            "claim accounting broke: {stats:?}"
                        );
                        assert_eq!(stats.dup_terminals, 0);
                        assert_eq!(stats.terminals_total(), 2);
                    }
                };
                vec![
                    Box::new(move || {
                        assert!(ctx_a.resolve(TerminalKind::Completed));
                        finish(&rec_a, &done_a);
                    }) as Box<dyn FnOnce() + Send>,
                    Box::new(move || {
                        assert!(ctx_b.resolve(TerminalKind::Shed));
                        finish(&rec_b, &done_b);
                    }),
                    Box::new(move || {
                        for t in rec_r.timelines() {
                            // A torn slot would mix the two records.
                            assert_eq!(t.samples, t.req_id * 100, "torn: {t:?}");
                            let want = if t.req_id == 1 {
                                TerminalKind::Completed
                            } else {
                                TerminalKind::Shed
                            };
                            assert_eq!(t.terminal, want, "torn: {t:?}");
                        }
                    }),
                ]
            });
            assert_eq!(out.schedules, RUNS);
            assert!(
                out.findings.is_empty(),
                "seed {master:#x}: {:?}",
                out.findings
            );
            assert!(
                out.distinct_traces >= 4,
                "seed {master:#x}: the seed is not steering the schedule \
                 ({} distinct traces)",
                out.distinct_traces
            );
        }
    }

    /// Two threads race to emit the terminal event for one request:
    /// exactly one must win under every schedule, and the published
    /// record must carry the winner's verdict.
    #[test]
    fn terminal_event_is_emitted_exactly_once() {
        for master in SEEDS {
            let out = explore(master, RUNS, 3, |_| {
                let rec = Recorder::new(TraceConfig::every_request(), Clock::manual());
                let ctx = rec.begin(7, "m@f", 700, None);
                let ctx2 = ctx.clone();
                let wins = Arc::new(AtomicU64::new(0));
                let done = Arc::new(AtomicU64::new(0));
                let (wins_a, wins_b) = (Arc::clone(&wins), wins);
                let (done_a, done_b) = (Arc::clone(&done), done);
                let rec2 = Arc::clone(&rec);
                let finish = move |rec: &Recorder, wins: &AtomicU64, done: &AtomicU64| {
                    // relaxed-ok: schedule-local counters; see above.
                    if done.fetch_add(1, Ordering::Relaxed) + 1 == 2 {
                        // relaxed-ok: read after both bodies finished.
                        assert_eq!(wins.load(Ordering::Relaxed), 1, "terminal not exactly-once");
                        let stats = rec.stats();
                        assert_eq!(stats.terminals_total(), 1);
                        assert_eq!(stats.dup_terminals, 1);
                        let tl = rec.timelines();
                        assert_eq!(tl.len(), 1);
                        assert!(
                            tl[0].terminal == TerminalKind::Completed
                                || tl[0].terminal == TerminalKind::Cancelled
                        );
                    }
                };
                let finish2 = finish.clone();
                vec![
                    Box::new(move || {
                        if ctx.resolve(TerminalKind::Completed) {
                            // relaxed-ok: schedule-local win counter.
                            wins_a.fetch_add(1, Ordering::Relaxed);
                        }
                        finish(&rec, &wins_a, &done_a);
                    }) as Box<dyn FnOnce() + Send>,
                    Box::new(move || {
                        if ctx2.resolve(TerminalKind::Cancelled) {
                            // relaxed-ok: schedule-local win counter.
                            wins_b.fetch_add(1, Ordering::Relaxed);
                        }
                        finish2(&rec2, &wins_b, &done_b);
                    }),
                ]
            });
            assert_eq!(out.schedules, RUNS);
            assert!(
                out.findings.is_empty(),
                "seed {master:#x}: {:?}",
                out.findings
            );
        }
    }
}
