//! The workspace clock seam: one handle every serving-path timestamp
//! goes through, so tests and the interleaving checker can virtualize
//! time instead of racing the wall clock.
//!
//! A [`Clock`] is either **real** (reads `Instant::now()` against a
//! fixed epoch) or **manual** (a virtual nanosecond counter advanced
//! explicitly by tests). Serving code holds a cloned handle and calls
//! [`Clock::now`]/[`Clock::now_ns`] wherever it used to call
//! `Instant::now()` directly; the `clock-via-seam` lint enforces the
//! convention on serve/gateway/net hot paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared clock handle; cloning is cheap (one `Arc`).
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Arc<ClockInner>,
}

#[derive(Debug)]
struct ClockInner {
    /// The instant nanosecond 0 maps to. Captured once at construction so
    /// `now_ns` is a plain subtraction on the real path.
    epoch: Instant,
    /// `Some(counter)` makes the clock manual: `now_ns` reads the counter
    /// instead of the wall clock and [`Clock::advance`] moves it.
    virt: Option<AtomicU64>,
}

impl Clock {
    /// A real clock: timestamps come from the wall clock, measured from a
    /// construction-time epoch.
    pub fn real() -> Self {
        Clock {
            inner: Arc::new(ClockInner {
                // clock-ok: this constructor IS the seam's single wall-clock
                // anchor; every later read is elapsed-since-epoch.
                epoch: Instant::now(),
                virt: None,
            }),
        }
    }

    /// A manual clock starting at nanosecond 0; time moves only through
    /// [`Clock::advance`]. Used by tests and the interleaving checker so
    /// schedules are independent of host timing.
    pub fn manual() -> Self {
        Clock {
            inner: Arc::new(ClockInner {
                // clock-ok: epoch anchor for mapping virtual nanoseconds
                // back onto `Instant` arithmetic; never read as "now".
                epoch: Instant::now(),
                virt: Some(AtomicU64::new(0)),
            }),
        }
    }

    /// Whether this is a manual (virtualized) clock.
    pub fn is_manual(&self) -> bool {
        self.inner.virt.is_some()
    }

    /// Nanoseconds since the clock's epoch. Monotone on both paths.
    pub fn now_ns(&self) -> u64 {
        match &self.inner.virt {
            // relaxed-ok: the counter is a single monotone word; readers
            // need no ordering against other memory, only a value that
            // never runs backwards, which the atomic itself guarantees.
            Some(v) => v.load(Ordering::Relaxed),
            None => {
                // clock-ok: the real branch of the seam itself.
                let ns = self.inner.epoch.elapsed().as_nanos();
                u64::try_from(ns).unwrap_or(u64::MAX)
            }
        }
    }

    /// The current time as an `Instant` (epoch + [`Clock::now_ns`]): on a
    /// real clock this equals `Instant::now()` to within measurement; on a
    /// manual clock it is the virtual time mapped onto the epoch, so code
    /// comparing deadlines built from the same clock stays consistent.
    pub fn now(&self) -> Instant {
        self.inner.epoch + Duration::from_nanos(self.now_ns())
    }

    /// The instant nanosecond 0 maps to.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Advances a manual clock by `d`; no-op on a real clock (the wall
    /// clock advances itself).
    pub fn advance(&self, d: Duration) {
        if let Some(v) = &self.inner.virt {
            let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
            // relaxed-ok: monotone counter bump; see `now_ns`.
            v.fetch_add(ns, Ordering::Relaxed);
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_tracks_wall_time() {
        let c = Clock::real();
        assert!(!c.is_manual());
        let a = c.now_ns();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now_ns();
        assert!(b > a, "{b} <= {a}");
        // `now()` stays consistent with Instant comparisons.
        assert!(c.now() >= c.epoch());
        c.advance(Duration::from_secs(1)); // no-op on real clocks
        assert!(c.now_ns() < 900_000_000, "advance moved a real clock");
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = Clock::manual();
        assert!(c.is_manual());
        assert_eq!(c.now_ns(), 0);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_micros(5));
        assert_eq!(c.now_ns(), 5_000);
        assert_eq!(c.now(), c.epoch() + Duration::from_micros(5));
        // Clones share the counter.
        let c2 = c.clone();
        c2.advance(Duration::from_micros(1));
        assert_eq!(c.now_ns(), 6_000);
    }
}
