//! `dp_trace` — request-lifecycle flight recorder for the serving stack.
//!
//! Prometheus counters say *how many* requests expired; this crate says
//! *which* and *where the time went*. A [`TraceCtx`] opened at gateway
//! admission rides the request through the pipeline (net receive →
//! admission → ring enqueue → dispatch → per-chunk service → terminal
//! verdict), stamping each stage with one wait-free atomic store. At
//! the terminal event, sampled requests (deterministic seeded
//! request-id hash — reproducible in tests and under `check-yield`) and
//! slow exemplars (latency over [`TraceConfig::slow_threshold`]) are
//! published into a preallocated seqlock ring the `/tracez` endpoint
//! renders live, without ever blocking the hot path.
//!
//! The crate also owns the workspace **clock seam** ([`Clock`]):
//! serving paths read time through a shared handle that tests and the
//! interleaving checker can virtualize; the `clock-via-seam` lint keeps
//! raw `Instant::now()` off those paths.
//!
//! std-only and dependency-free (the optional `check-yield` feature
//! compiles in `dp_check` scheduling hooks), like the rest of the
//! workspace's serving layers.

mod check;
mod clock;
mod recorder;

pub use clock::Clock;
pub use recorder::{
    splitmix64, DepthSummary, Recorder, RecorderStats, TerminalKind, Timeline, TraceConfig,
    TraceCtx,
};
