//! Compile-time seam for the `dp_check` interleaving checker (feature
//! `check-yield`), mirroring `dp_serve::check`: with the feature on,
//! `check_yield!` names a scheduling decision point the checker can
//! preempt at; without it the macro compiles to nothing, so release
//! builds carry no hook code. The recorder has no locks to instrument —
//! only yield points around its slot claim/publish/read sequences.

/// Names a linearization point for the interleaving checker. Expands to
/// nothing without the `check-yield` feature.
#[cfg(feature = "check-yield")]
macro_rules! check_yield {
    ($point:expr) => {
        dp_check::check_yield!($point)
    };
}

/// Names a linearization point for the interleaving checker. Expands to
/// nothing without the `check-yield` feature.
#[cfg(not(feature = "check-yield"))]
macro_rules! check_yield {
    ($point:expr) => {{
        let _ = $point;
    }};
}

pub(crate) use check_yield;
