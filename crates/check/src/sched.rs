//! Seeded deterministic interleaving scheduler (PCT-style).
//!
//! The checker runs real threads over real structures but **serializes**
//! them: exactly one scheduled thread executes at a time, and every
//! handoff happens at an explicit decision point — a `check_yield!`
//! call, a [`crate::sync::Mutex`] acquire/release, or a
//! [`crate::sync::Condvar`] wait/notify. Which thread runs next is
//! decided by PCT (probabilistic concurrency testing): each thread
//! gets a random priority from a seeded xorshift64\* stream (the same
//! generator family as `dp_fault::FaultPlan`), the highest-priority
//! runnable thread always runs, and `d` preemption points per run drop
//! the running thread's priority below everyone else's. Small `d`
//! provably covers all bugs of preemption depth `d` with good
//! probability, and the whole schedule is a pure function of the seed:
//! same seed ⇒ identical trace, which [`explore`] exploits to walk
//! thousands of distinct schedules per master seed.
//!
//! Blocking is virtualized. A scheduled thread that would block on an
//! instrumented mutex or condvar parks with the scheduler instead of
//! the OS; `wait_timeout` durations are ignored and fire
//! deterministically only when no thread is runnable (virtual time).
//! If nothing is runnable and no timeout is pending, the run is a
//! **deadlock**: the scheduler reports a [`Finding`] naming every
//! blocked thread and aborts the schedule by unwinding all of them.
//! Lock acquisition also feeds a label-level lock-order graph; any
//! cycle becomes a `lock-order-cycle` finding (see [`crate::sync`]).
//!
//! Threads that never touch an instrumented primitive (e.g. worker
//! pools spawned internally by the structure under test) simply run
//! unscheduled; instrumented calls from unregistered threads delegate
//! straight to `std`. Scheduled runs therefore must not *contend* with
//! unscheduled threads on the same instrumented locks — keep scheduled
//! tests component-level.

use crate::report::Finding;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// xorshift64\* (same recurrence as `dp_fault::FaultPlan`'s stream).
#[derive(Debug, Clone)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        // seed | 1 displaces the all-zero fixed point.
        XorShift64 { state: seed | 1 }
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Why a thread is not runnable.
#[derive(Debug, Clone, PartialEq)]
enum Blocked {
    /// Parked on an instrumented mutex (by address key).
    OnMutex { key: usize, label: &'static str },
    /// Parked on an instrumented condvar; `timeout` waits may be woken
    /// by virtual time when nothing else can run.
    OnCondvar { key: usize, timeout: bool },
}

#[derive(Debug, Clone, PartialEq)]
enum TState {
    Ready,
    Blocked(Blocked),
    Done,
}

#[derive(Debug)]
struct ThreadRec {
    state: TState,
    priority: u64,
    /// Set when a virtual timeout (not a notify) woke the thread.
    woke_by_timeout: bool,
}

/// Everything the scheduler knows about the run in flight.
struct Core {
    seed: u64,
    threads: Vec<ThreadRec>,
    current: usize,
    rng: XorShift64,
    preempt_at: BTreeSet<u64>,
    /// Next value handed out when a preemption lowers a priority.
    low_water: u64,
    step: u64,
    max_steps: u64,
    trace: Vec<(usize, String)>,
    findings: Vec<Finding>,
    aborted: bool,
    /// Instrumented-mutex holders: key → scheduled holder tid.
    holders: BTreeMap<usize, usize>,
    /// Per-thread stack of held lock labels (for order edges).
    held: Vec<Vec<&'static str>>,
    /// Label-level lock-order edges `from → to`.
    edges: BTreeSet<(&'static str, &'static str)>,
}

const NO_THREAD: usize = usize::MAX;

struct Global {
    mu: Mutex<Option<Core>>,
    cv: Condvar,
}

fn global() -> &'static Global {
    static G: OnceLock<Global> = OnceLock::new();
    G.get_or_init(|| Global {
        mu: Mutex::new(None),
        cv: Condvar::new(),
    })
}

/// Fast-path gate: scheduled runs are rare, instrumented call sites are
/// hot.
// relaxed-ok: pure enable flag; the slow path re-synchronizes through
// the scheduler's own mutex before reading any shared state.
static ACTIVE: AtomicBool = AtomicBool::new(false);

thread_local! {
    static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Payload used to unwind threads when a schedule aborts; filtered out
/// of panic findings.
const ABORT_PAYLOAD: &str = "dp_check: schedule aborted";

fn lock_core() -> MutexGuard<'static, Option<Core>> {
    // panic-ok: threads unwound by an abort may poison the scheduler
    // mutex; recovering the guard is always safe because Core is
    // repaired or replaced at run boundaries.
    global().mu.lock().unwrap_or_else(|e| e.into_inner())
}

/// The scheduled tid of the calling thread, if any run is active.
pub(crate) fn scheduled_tid() -> Option<usize> {
    // relaxed-ok: pure fast-path gate — a stale read only skips
    // instrumentation for a thread that was never registered anyway.
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    TID.with(|t| t.get())
}

/// One finished schedule: the decision trace and any findings.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// Seed the schedule was derived from.
    pub seed: u64,
    /// Total decision points taken.
    pub steps: u64,
    /// `(thread, point)` decision sequence — identical across runs of
    /// the same seed and bodies.
    pub trace: Vec<(usize, String)>,
    /// Deadlocks, lock-order cycles, in-schedule panics, overruns.
    pub findings: Vec<Finding>,
}

impl ScheduleOutcome {
    /// A stable 64-bit fingerprint of the decision trace.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.trace.hash(&mut h);
        h.finish()
    }
}

/// Aggregate of [`explore`]: how much schedule space a seed covered.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Schedules executed.
    pub schedules: usize,
    /// Distinct decision traces among them.
    pub distinct_traces: usize,
    /// Decision points across all schedules.
    pub total_steps: u64,
    /// Findings from every schedule, in run order.
    pub findings: Vec<Finding>,
}

/// Runs `bodies` as scheduled threads under one seeded PCT schedule.
///
/// Returns after every body has finished (or been unwound by an
/// abort). Runs are serialized process-wide; instrumentation outside
/// an active run costs one relaxed atomic load.
pub fn run_schedule(
    seed: u64,
    preemptions: usize,
    bodies: Vec<Box<dyn FnOnce() + Send>>,
) -> ScheduleOutcome {
    static RUN_LOCK: Mutex<()> = Mutex::new(());
    // panic-ok: a failed assertion inside a scheduled test body must
    // not wedge every later schedule in the process.
    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let n = bodies.len();
    let mut rng = XorShift64::new(seed);
    let mut threads = Vec::with_capacity(n);
    for _ in 0..n {
        threads.push(ThreadRec {
            state: TState::Ready,
            // Priorities start well above the preemption low-water
            // region so demotions always land below every base draw.
            priority: (1 << 32) + rng.below(1 << 32),
            woke_by_timeout: false,
        });
    }
    let mut preempt_at = BTreeSet::new();
    for _ in 0..preemptions {
        // Drawn from the first 128 decision points: component-level
        // schedules rarely run longer, and a draw past the run's end is
        // a preemption that never fires (PCT wants them uniform over
        // the actual run length, which we cannot know up front).
        preempt_at.insert(1 + rng.below(128));
    }
    let mut core = Core {
        seed,
        threads,
        current: NO_THREAD,
        rng,
        preempt_at,
        low_water: 1 << 16,
        step: 0,
        max_steps: 200_000,
        trace: Vec::new(),
        findings: Vec::new(),
        aborted: false,
        holders: BTreeMap::new(),
        held: vec![Vec::new(); n],
        edges: BTreeSet::new(),
    };
    core.current = core.pick_next();
    *lock_core() = Some(core);
    ACTIVE.store(true, Ordering::SeqCst); // seqcst-ok: run-boundary publish, identical to dp_fault::install

    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(tid, body)| {
            std::thread::spawn(move || {
                TID.with(|t| t.set(Some(tid)));
                wait_for_turn(tid);
                let result = catch_unwind(AssertUnwindSafe(body));
                finish_thread(tid, result.err());
            })
        })
        .collect();
    for h in handles {
        // panic-ok: finish_thread caught every body panic, so a join
        // error here means the runner itself is broken.
        h.join().expect("scheduled thread must not die unwinding");
    }

    ACTIVE.store(false, Ordering::SeqCst); // seqcst-ok: run-boundary publish, identical to dp_fault::clear
                                           // panic-ok: Some() was installed above and only taken here.
    let mut core = lock_core().take().expect("scheduler core present");
    detect_lock_cycles(&mut core);
    ScheduleOutcome {
        seed,
        steps: core.step,
        trace: core.trace,
        findings: core.findings,
    }
}

/// Runs `runs` schedules, each with a fresh seed drawn from
/// `master_seed`'s stream; `mk(i)` builds the thread bodies for run
/// `i` (construct fresh structures per run).
pub fn explore(
    master_seed: u64,
    runs: usize,
    preemptions: usize,
    mut mk: impl FnMut(usize) -> Vec<Box<dyn FnOnce() + Send>>,
) -> ExploreOutcome {
    let mut rng = XorShift64::new(master_seed);
    let mut fingerprints = BTreeSet::new();
    let mut out = ExploreOutcome {
        schedules: 0,
        distinct_traces: 0,
        total_steps: 0,
        findings: Vec::new(),
    };
    for i in 0..runs {
        let seed = rng.next();
        let res = run_schedule(seed, preemptions, mk(i));
        out.schedules += 1;
        out.total_steps += res.steps;
        fingerprints.insert(res.fingerprint());
        out.findings.extend(res.findings);
    }
    out.distinct_traces = fingerprints.len();
    out
}

/// Explicit named decision point; no-op outside an active schedule or
/// on unregistered threads.
pub fn yield_point(point: &'static str) {
    let Some(tid) = scheduled_tid() else { return };
    let mut guard = lock_core();
    if guard.is_none() {
        return;
    }
    if decide(&mut guard, tid, point.to_string()) {
        block_until_turn(guard, tid);
    }
}

/// Records a decision step for `tid` and possibly switches `current`.
/// Caller must then wait for its turn if it lost it. Returns `false`
/// when the schedule is aborting and the caller must not park — in
/// particular for hooks reached from destructors during the abort
/// unwind itself, where a second panic would abort the process.
fn decide(guard: &mut MutexGuard<'_, Option<Core>>, tid: usize, point: String) -> bool {
    let Some(core) = guard.as_mut() else {
        return false;
    };
    if core.aborted {
        if std::thread::panicking() {
            return false;
        }
        drop_abort();
    }
    core.trace.push((tid, point));
    core.step += 1;
    if core.step > core.max_steps {
        core.findings.push(Finding::new(
            "schedule-overrun",
            format!("<schedule seed={}>", core.seed),
            0,
            format!(
                "schedule exceeded {} decision points without terminating",
                core.max_steps
            ),
            "look for an unbounded retry loop between yield points",
        ));
        abort(core);
        if std::thread::panicking() {
            return false;
        }
        drop_abort();
    }
    if core.preempt_at.contains(&core.step) {
        // PCT preemption: drop the running thread below everyone.
        core.low_water -= 1;
        core.threads[tid].priority = core.low_water;
    }
    let next = core.pick_next();
    if next == NO_THREAD {
        core.resolve_stall(tid);
    } else {
        core.current = next;
    }
    global().cv.notify_all();
    true
}

/// Parks until `current == tid`, honoring aborts.
fn block_until_turn(mut guard: MutexGuard<'static, Option<Core>>, tid: usize) {
    loop {
        let Some(core) = guard.as_mut() else { return };
        if core.aborted {
            if std::thread::panicking() {
                return;
            }
            drop(guard);
            drop_abort();
        }
        if core.current == tid && core.threads[tid].state == TState::Ready {
            return;
        }
        // panic-ok: poison recovery, same reasoning as lock_core.
        guard = global().cv.wait(guard).unwrap_or_else(|e| e.into_inner());
    }
}

fn wait_for_turn(tid: usize) {
    let guard = lock_core();
    if guard.is_none() {
        return;
    }
    block_until_turn(guard, tid);
}

/// Unwinds the calling scheduled thread as part of a schedule abort.
fn drop_abort() -> ! {
    // panic-ok: this is the abort mechanism itself — the unwind is
    // caught by the thread wrapper and recorded, never propagated.
    panic!("{ABORT_PAYLOAD}");
}

fn abort(core: &mut Core) {
    core.aborted = true;
    // Wake everything so blocked threads can unwind.
    for t in core.threads.iter_mut() {
        if t.state != TState::Done {
            t.state = TState::Ready;
        }
    }
}

/// Marks `tid` finished (recording a panic finding when `err` is a
/// real failure, not an abort unwind) and hands the turn on.
fn finish_thread(tid: usize, err: Option<Box<dyn std::any::Any + Send>>) {
    let mut guard = lock_core();
    let Some(core) = guard.as_mut() else { return };
    if let Some(payload) = err {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        if !msg.contains(ABORT_PAYLOAD) {
            core.findings.push(Finding::new(
                "panic-in-schedule",
                format!("<schedule seed={}>", core.seed),
                0,
                format!("scheduled thread {tid} panicked: {msg}"),
                "replay with the same seed to reproduce the interleaving",
            ));
        }
    }
    core.threads[tid].state = TState::Done;
    core.trace.push((tid, "thread.exit".to_string()));
    if core.current == tid || core.current == NO_THREAD {
        let next = core.pick_next();
        if next == NO_THREAD {
            core.resolve_stall(tid);
        } else {
            core.current = next;
        }
    }
    global().cv.notify_all();
}

impl Core {
    /// Highest-priority Ready thread, or NO_THREAD.
    fn pick_next(&self) -> usize {
        let mut best = NO_THREAD;
        for (tid, t) in self.threads.iter().enumerate() {
            if t.state == TState::Ready
                && (best == NO_THREAD || t.priority > self.threads[best].priority)
            {
                best = tid;
            }
        }
        best
    }

    /// Called when nothing is Ready: fire a virtual timeout if one is
    /// pending, report a deadlock if threads are parked, or let the
    /// run end if everyone is Done.
    fn resolve_stall(&mut self, at_tid: usize) {
        let timeout_waiters: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(
                    t.state,
                    TState::Blocked(Blocked::OnCondvar { timeout: true, .. })
                )
            })
            .map(|(tid, _)| tid)
            .collect();
        if !timeout_waiters.is_empty() {
            let pick = timeout_waiters[self.rng.below(timeout_waiters.len() as u64) as usize];
            self.threads[pick].state = TState::Ready;
            self.threads[pick].woke_by_timeout = true;
            self.trace.push((pick, "virtual-timeout".to_string()));
            self.current = pick;
            return;
        }
        let blocked: Vec<String> = self
            .threads
            .iter()
            .enumerate()
            .filter_map(|(tid, t)| match &t.state {
                TState::Blocked(Blocked::OnMutex { label, .. }) => {
                    Some(format!("thread {tid} waiting on mutex `{label}`"))
                }
                TState::Blocked(Blocked::OnCondvar { .. }) => {
                    Some(format!("thread {tid} waiting on a condvar"))
                }
                _ => None,
            })
            .collect();
        if !blocked.is_empty() {
            self.findings.push(Finding::new(
                "deadlock",
                format!("<schedule seed={}>", self.seed),
                0,
                format!(
                    "no runnable thread after step {} (decided at thread {at_tid}): {}",
                    self.step,
                    blocked.join("; ")
                ),
                "replay with the same seed; check the lock-order and missing-notify paths",
            ));
            abort(self);
        }
        self.current = NO_THREAD;
    }
}

// ---- hooks for crate::sync ------------------------------------------------

/// Records a successful instrumented-lock acquisition.
pub(crate) fn mutex_acquired(key: usize, label: &'static str) {
    let Some(tid) = scheduled_tid() else { return };
    let mut guard = lock_core();
    let Some(core) = guard.as_mut() else { return };
    // Edges from every currently-held label, including a self-edge
    // when two same-label instances overlap (reported as a cycle —
    // label-level ordering cannot prove those safe).
    for &from in &core.held[tid] {
        core.edges.insert((from, label));
    }
    core.held[tid].push(label);
    core.holders.insert(key, tid);
}

/// Parks the calling scheduled thread until `key`'s holder releases.
pub(crate) fn block_on_mutex(key: usize, label: &'static str) {
    let Some(tid) = scheduled_tid() else { return };
    let mut guard = lock_core();
    {
        let Some(core) = guard.as_mut() else { return };
        core.threads[tid].state = TState::Blocked(Blocked::OnMutex { key, label });
    }
    if decide(&mut guard, tid, format!("mutex.blocked:{label}")) {
        block_until_turn(guard, tid);
    } else if let Some(core) = lock_core().as_mut() {
        // Aborting: never leave the record parked, the run is tearing
        // down and nothing will wake it.
        core.threads[tid].state = TState::Ready;
    }
}

/// Records an instrumented-lock release and hands wakeups out.
pub(crate) fn mutex_released(key: usize, label: &'static str) {
    let Some(tid) = scheduled_tid() else { return };
    let mut guard = lock_core();
    {
        let Some(core) = guard.as_mut() else { return };
        if let Some(pos) = core.held[tid].iter().rposition(|&l| l == label) {
            core.held[tid].remove(pos);
        }
        core.holders.remove(&key);
        for t in core.threads.iter_mut() {
            if matches!(t.state, TState::Blocked(Blocked::OnMutex { key: k, .. }) if k == key) {
                t.state = TState::Ready;
            }
        }
    }
    if decide(&mut guard, tid, format!("mutex.unlock:{label}")) {
        block_until_turn(guard, tid);
    }
}

/// Registers the calling scheduled thread as a waiter on condvar `key`
/// **before** the associated mutex is released. No decision happens
/// here — the thread keeps running until the guard drop's
/// `mutex.unlock` decision, which then parks it in one atomic step.
/// Registering first closes the missed-wakeup window where a notifier
/// scheduled during the unlock found no waiter yet (the classic lost
/// wakeup, which here showed up as a false `deadlock` finding).
pub(crate) fn condvar_prepare_wait(key: usize, timeout: bool) {
    let Some(tid) = scheduled_tid() else { return };
    let mut guard = lock_core();
    let Some(core) = guard.as_mut() else { return };
    core.threads[tid].state = TState::Blocked(Blocked::OnCondvar { key, timeout });
    core.threads[tid].woke_by_timeout = false;
}

/// Completes a condvar wait begun by [`condvar_prepare_wait`]: reports
/// whether a virtual timeout (not a notify) woke the thread, and
/// repairs the thread record if an abort tore the run down while the
/// registration was still parked on paper.
pub(crate) fn condvar_finish_wait() -> bool {
    let Some(tid) = scheduled_tid() else {
        return false;
    };
    let mut guard = lock_core();
    let Some(core) = guard.as_mut() else {
        return false;
    };
    if matches!(core.threads[tid].state, TState::Blocked(_)) {
        core.threads[tid].state = TState::Ready;
    }
    core.threads[tid].woke_by_timeout
}

/// Wakes one (seeded choice) or all scheduled waiters of condvar `key`.
pub(crate) fn notify(key: usize, all: bool) {
    let Some(tid) = scheduled_tid() else { return };
    let mut guard = lock_core();
    {
        let Some(core) = guard.as_mut() else { return };
        let waiters: Vec<usize> = core
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(t.state, TState::Blocked(Blocked::OnCondvar { key: k, .. }) if k == key)
            })
            .map(|(i, _)| i)
            .collect();
        if !waiters.is_empty() {
            if all {
                for w in waiters {
                    core.threads[w].state = TState::Ready;
                }
            } else {
                let pick = waiters[core.rng.below(waiters.len() as u64) as usize];
                core.threads[pick].state = TState::Ready;
            }
        }
    }
    let label = if all {
        "condvar.notify_all"
    } else {
        "condvar.notify_one"
    };
    if decide(&mut guard, tid, label.to_string()) {
        block_until_turn(guard, tid);
    }
}

// ---- lock-order cycle detection -------------------------------------------

/// DFS over the label-level edge set; any cycle is a finding.
fn detect_lock_cycles(core: &mut Core) {
    let nodes: BTreeSet<&'static str> = core.edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    // Self-edges (two same-label instances held together) are reported
    // directly: label-level ordering cannot prove them safe.
    for &(a, b) in &core.edges {
        if a == b {
            core.findings.push(Finding::new(
                "lock-order-cycle",
                format!("<schedule seed={}>", core.seed),
                0,
                format!("two `{a}` locks were held at once; same-label instances have no order"),
                "give each instance a distinct label or impose an index order",
            ));
        }
    }
    let mut visiting: Vec<&'static str> = Vec::new();
    let mut done: BTreeSet<&'static str> = BTreeSet::new();
    for &start in &nodes {
        if done.contains(start) {
            continue;
        }
        dfs(start, core, &mut visiting, &mut done);
    }
}

fn dfs(
    node: &'static str,
    core: &mut Core,
    visiting: &mut Vec<&'static str>,
    done: &mut BTreeSet<&'static str>,
) {
    if let Some(pos) = visiting.iter().position(|&n| n == node) {
        let cycle: Vec<&str> = visiting[pos..].to_vec();
        core.findings.push(Finding::new(
            "lock-order-cycle",
            format!("<schedule seed={}>", core.seed),
            0,
            format!("lock-order cycle: {} -> {}", cycle.join(" -> "), node),
            "acquire these locks in one global order on every path",
        ));
        return;
    }
    if done.contains(node) {
        return;
    }
    visiting.push(node);
    let nexts: Vec<&'static str> = core
        .edges
        .iter()
        .filter(|&&(a, b)| a == node && a != b)
        .map(|&(_, b)| b)
        .collect();
    for n in nexts {
        dfs(n, core, visiting, done);
    }
    visiting.pop();
    done.insert(node);
}
